//! Umbrella crate for the ERASER (MICRO 2023) reproduction.
//!
//! Re-exports every workspace crate under one roof so that examples and
//! integration tests can `use eraser_repro::...`. See the individual crates
//! for the substantial documentation:
//!
//! * [`qec_core`] — Pauli algebra, circuit IR, noise model, PRNG.
//! * [`surface_code`] — rotated surface code lattice and circuit synthesis.
//! * [`leak_sim`] — leakage-aware Pauli-frame simulator + tableau verifier.
//! * [`qec_decoder`] — detector error models, blossom MWPM, union-find.
//! * [`eraser_core`] — ERASER/ERASER+M policies, the `Experiment` facade and
//!   `Sweep` engine, RTL generation.
//! * [`density_sim`] — ququart density-matrix simulator (Fig 7/8 study).
//!
//! # Entry point
//!
//! The one front door to the runtime is [`eraser_core::Experiment`]: a
//! validating builder over distance, noise, rounds, policy, and decoder.
//! Policies are selected by value through [`eraser_core::PolicyKind`], and
//! grids (distances × error rates × policies) run on
//! [`eraser_core::Sweep`].
//!
//! ```
//! use eraser_repro::eraser_core::{Experiment, PolicyKind};
//!
//! let result = Experiment::builder()
//!     .distance(3)
//!     .rounds(3)
//!     .policy(PolicyKind::eraser())
//!     .shots(10)
//!     .seed(1)
//!     .build()
//!     .expect("valid experiment")
//!     .run();
//! assert_eq!(result.shots, 10);
//! ```

pub use density_sim;
pub use eraser_core;
pub use leak_sim;
pub use qec_core;
pub use qec_decoder;
pub use surface_code;
