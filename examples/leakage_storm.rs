//! Leakage storm: drive the simulator by hand, inject a burst of leakage, and
//! watch the ERASER speculation pipeline (LSB → LTT → DLI) chase it down.
//!
//! This example exercises the lower-level public API: building rounds with
//! [`RoundBuilder`], executing them on the frame simulator, computing
//! detection events, and feeding an [`EraserPolicy`] directly — the same loop
//! the `Experiment` facade automates.
//!
//! ```text
//! cargo run --release --example leakage_storm
//! ```

use eraser_repro::eraser_core::{EraserPolicy, LrcPolicy, RoundContext};
use eraser_repro::leak_sim::{Discriminator, FrameSimulator};
use eraser_repro::qec_core::{NoiseParams, Rng};
use eraser_repro::surface_code::{LrcAssignment, MemoryExperiment, RotatedCode, StabKind};

fn main() {
    let code = RotatedCode::new(5);
    let rounds = 12;
    // Quiet background so the storm dominates the picture.
    let noise = NoiseParams::standard(1e-4);
    let exp = MemoryExperiment::new(code.clone(), noise, rounds);
    let keys = *exp.keys();
    let builder = exp.round_builder();

    let mut sim = FrameSimulator::new(
        code.num_qubits(),
        keys.total(),
        noise,
        Discriminator::TwoLevel,
        Rng::new(99),
    );
    let mut policy = EraserPolicy::new(&code);
    sim.run(&exp.init_segment());

    let storm_round = 3;
    let storm: Vec<usize> = vec![
        code.data_qubit(2, 2),
        code.data_qubit(2, 3),
        code.data_qubit(3, 2),
    ];

    let mut prev = vec![false; code.num_stabs()];
    let mut events = vec![false; code.num_stabs()];
    let no_labels = vec![false; code.num_stabs()];
    let no_oracle = vec![false; code.num_data()];
    let mut last: Vec<LrcAssignment> = Vec::new();

    println!("round | leaked data qubits | events | LRCs scheduled by ERASER");
    for r in 0..rounds {
        if r == storm_round {
            for &q in &storm {
                sim.force_leak(q);
            }
            println!("   -- leakage storm: forcing qubits {storm:?} into |L> --");
        }
        let plan = policy.plan_round(&RoundContext {
            round: r,
            events: &events,
            leaked_readouts: &no_labels,
            oracle_leaked_data: &no_oracle,
            last_lrcs: &last,
        });

        let round = builder.round(r, &plan, &keys);
        sim.run(&round.pre);
        let leaked: Vec<usize> = (0..code.num_data()).filter(|&q| sim.is_leaked(q)).collect();
        sim.run(&round.measure);
        sim.run(&round.mr_reset);
        for tail in &round.lrc_post {
            sim.run(&tail.swap_back);
        }

        let mut event_count = 0;
        for s in 0..code.num_stabs() {
            let flip = sim.record().flip(keys.stab_key(r, s));
            events[s] = if r == 0 {
                code.stabilizers()[s].kind == StabKind::Z && flip
            } else {
                flip ^ prev[s]
            };
            prev[s] = flip;
            event_count += events[s] as usize;
        }
        let scheduled: Vec<usize> = plan.iter().map(|l| l.data).collect();
        println!(
            "  {r:>3} | {:<18} | {event_count:>6} | {scheduled:?}",
            format!("{leaked:?}"),
        );
        last = plan;
    }
    println!("\nThe burst becomes visible through the random parity flips it causes;");
    println!("ERASER speculates the affected qubits within a round or two and its");
    println!("LRCs reset them, after which the event counts fall back to noise.");
}
