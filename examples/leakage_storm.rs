//! Leakage storm: inject a burst of leakage with a [`LeakageProfile`] and
//! watch the per-round leakage population ratio (LPR) as three policies
//! fight it — no LRCs at all, static ERASER, and the adaptive feedback
//! controller that escalates only while the storm lasts.
//!
//! This example runs entirely through the `Experiment` facade: the burst is
//! a declarative noise schedule, the per-round LPR trace comes out of
//! [`MemoryRunResult::lpr_data`], and the controller's telemetry rides in
//! [`MemoryRunResult::controller`].
//!
//! ```text
//! cargo run --release --example leakage_storm
//! ```

use eraser_repro::eraser_core::runtime::MemoryRunResult;
use eraser_repro::eraser_core::{ControlLawKind, Experiment, LeakageProfile, PolicyKind};
use eraser_repro::qec_core::NoiseParams;

fn run(policy: PolicyKind, storm: LeakageProfile, rounds: usize) -> MemoryRunResult {
    Experiment::builder()
        .distance(5)
        // Quiet background so the storm dominates the picture.
        .noise(NoiseParams::standard(1e-4))
        .rounds(rounds)
        .policy(policy)
        .shots(400)
        .seed(99)
        .leakage_profile(storm)
        .build()
        .expect("a valid storm experiment")
        .run()
}

fn main() {
    let rounds = 12;
    let storm = LeakageProfile::Burst {
        start: 3,
        len: 1,
        period: 0, // one-shot burst
        rate: 0.5,
    };

    let policies = [
        PolicyKind::NoLrc,
        PolicyKind::eraser(),
        PolicyKind::adaptive(ControlLawKind::Ewma),
    ];
    let results: Vec<MemoryRunResult> = policies
        .iter()
        .map(|p| run(p.clone(), storm, rounds))
        .collect();

    println!("Burst: every data qubit leaks with p=0.5 at round 3 (400 shots, d=5).");
    println!();
    println!("round | LPR no-lrc | LPR eraser | LPR adaptive");
    for r in 0..rounds {
        let marker = if r == 3 { "  <- storm" } else { "" };
        println!(
            "  {r:>3} | {:>10.4} | {:>10.4} | {:>12.4}{marker}",
            results[0].lpr_data[r], results[1].lpr_data[r], results[2].lpr_data[r],
        );
    }

    let ctrl = &results[2].controller;
    println!();
    println!(
        "adaptive controller: {} escalations, {} of {} rounds escalated \
         (mean leakage estimate {:.4}, peak {:.4})",
        ctrl.escalations,
        ctrl.rounds_escalated,
        ctrl.rounds(),
        ctrl.mean_estimate(),
        ctrl.peak_estimate(),
    );
    println!();
    println!("Without LRCs the burst never drains: seepage is far slower than the");
    println!("round clock. ERASER speculates the leaked qubits from their randomized");
    println!("parity checks and clears them within a few rounds; the adaptive");
    println!("controller does the same work only while its leakage estimate is");
    println!("elevated, then drops back to its cheap base policy.");
}
