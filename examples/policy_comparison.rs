//! Full policy comparison — the paper's Fig 14 workload in miniature, run as
//! a single `Sweep` grid: all five scheduling policies at d ∈ {3, 5}.
//!
//! Prints the metrics the paper evaluates: logical error rate, leakage
//! population ratio, LRCs per round, and speculation quality — streamed row
//! by row as each grid point completes.
//!
//! ```text
//! cargo run --release --example policy_comparison [shots]
//! ```

use eraser_repro::eraser_core::{PolicyKind, Sweep};

fn main() {
    let shots: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    let cycles = 10;

    let sweep = Sweep::builder()
        .distances([3, 5])
        .error_rates([1e-3])
        .policies([
            PolicyKind::NoLrc,
            PolicyKind::AlwaysLrc,
            PolicyKind::eraser(),
            PolicyKind::eraser_m(),
            PolicyKind::Optimal,
        ])
        .cycles(cycles)
        .shots(shots)
        .seed(42)
        .build()
        .expect("valid sweep grid");

    println!(
        "{} grid points: d in {{3, 5}}, {cycles} cycles, p=1e-3, {shots} shots (decoder: auto)\n\
         {:>2} {:<12} {:>10} {:>12} {:>12} {:>8} {:>8}",
        sweep.len(),
        "d",
        "policy",
        "LER",
        "mean LPR",
        "LRCs/round",
        "FPR %",
        "FNR %"
    );
    let mut last_d = 0;
    sweep.for_each(|point| {
        if point.distance != last_d && last_d != 0 {
            println!();
        }
        last_d = point.distance;
        let r = &point.result;
        println!(
            "{:>2} {:<12} {:>10.2e} {:>12.2e} {:>12.2} {:>8.2} {:>8.1}",
            point.distance,
            r.policy,
            r.ler(),
            r.mean_lpr(),
            r.lrcs_per_round(),
            r.speculation.false_positive_rate() * 100.0,
            r.speculation.false_negative_rate() * 100.0,
        );
    });
    println!("\nExpected ordering (paper): ERASER beats Always-LRC, ERASER+M approaches");
    println!("optimal. At small d the Always-LRC baseline can even lose to no-lrc — its");
    println!("five extra CNOTs per swap are new error sources, which is precisely the");
    println!("paper's motivation for scheduling LRCs adaptively. Ratios sharpen with");
    println!("more shots (try: policy_comparison 20000).");
}
