//! Full policy comparison — the paper's Fig 14 workload in miniature.
//!
//! Runs all five LRC scheduling policies on one code and prints the metrics
//! the paper evaluates: logical error rate, leakage population ratio, LRCs
//! per round, and speculation quality.
//!
//! ```text
//! cargo run --release --example policy_comparison [distance] [shots]
//! ```

use eraser_repro::eraser_core::{
    AlwaysLrcPolicy, EraserPolicy, LrcPolicy, MemoryRunner, NoLrcPolicy, OptimalPolicy,
    RunConfig,
};
use eraser_repro::qec_core::NoiseParams;
use eraser_repro::surface_code::RotatedCode;

fn main() {
    let mut args = std::env::args().skip(1);
    let distance: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let shots: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let cycles = 10;

    let runner = MemoryRunner::new(distance, NoiseParams::standard(1e-3), distance * cycles);
    let config = RunConfig { shots, seed: 42, ..RunConfig::default() };

    type Factory = fn(&RotatedCode) -> Box<dyn LrcPolicy>;
    let policies: [Factory; 5] = [
        |_| Box::new(NoLrcPolicy::new()),
        |c| Box::new(AlwaysLrcPolicy::new(c)),
        |c| Box::new(EraserPolicy::new(c)),
        |c| Box::new(EraserPolicy::with_multilevel(c)),
        |c| Box::new(OptimalPolicy::new(c)),
    ];

    println!(
        "d={distance}, {cycles} cycles, p=1e-3, {shots} shots (decoder: auto)\n\
         {:<12} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "policy", "LER", "mean LPR", "LRCs/round", "FPR %", "FNR %"
    );
    for factory in policies {
        let result = runner.run(&factory, &config);
        println!(
            "{:<12} {:>10.2e} {:>12.2e} {:>12.2} {:>8.2} {:>8.1}",
            result.policy,
            result.ler(),
            result.mean_lpr(),
            result.lrcs_per_round(),
            result.speculation.false_positive_rate() * 100.0,
            result.speculation.false_negative_rate() * 100.0,
        );
    }
    println!("\nExpected ordering (paper): ERASER beats Always-LRC, ERASER+M approaches");
    println!("optimal. At small d the Always-LRC baseline can even lose to no-lrc — its");
    println!("five extra CNOTs per swap are new error sources, which is precisely the");
    println!("paper's motivation for scheduling LRCs adaptively. Ratios sharpen with");
    println!("more shots and larger d (try: policy_comparison 7 20000).");
}
