//! Reproduce the paper's §3.3 density-matrix study interactively: watch
//! leakage flow from a data qubit through an LRC onto the parity qubit and
//! corrupt the stabilizer readout (Fig 8).
//!
//! ```text
//! cargo run --release --example density_stabilizer
//! ```

use eraser_repro::density_sim::StabilizerLeakageStudy;

fn main() {
    let study = StabilizerLeakageStudy::default();
    println!(
        "5 ququarts (q0..q3 data, P parity); q0 starts in |2>; p_LT={}, kick=RX(0.65π)\n",
        study.p_transport
    );
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>10}",
        "step", "q0", "q1", "q2", "q3", "P", "P(correct)"
    );
    for rec in study.run() {
        let bar_len = (rec.leak[4] * 40.0).round() as usize;
        println!(
            "{:<28} {:>7.4} {:>7.4} {:>7.4} {:>7.4} {:>7.4}   {:>10.4}  {}",
            rec.label,
            rec.leak[0],
            rec.leak[1],
            rec.leak[2],
            rec.leak[3],
            rec.leak[4],
            rec.p_correct,
            "#".repeat(bar_len),
        );
    }
    println!("\n(bar = parity-qubit leakage) Point A: the LRC swap-in has transported");
    println!("q0's leakage onto P — LRCs facilitate leakage transport. Point C: with P");
    println!("leaked, the stabilizer readout is barely better than a coin flip.");
}
