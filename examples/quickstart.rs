//! Quickstart: run a memory experiment with ERASER and compare it against the
//! Always-LRC baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eraser_repro::eraser_core::{AlwaysLrcPolicy, EraserPolicy, MemoryRunner, RunConfig};
use eraser_repro::qec_core::NoiseParams;

fn main() {
    // A distance-3 rotated surface code, the paper's default error model at
    // p = 1e-3 (leakage on), over 5 QEC cycles (15 rounds).
    let distance = 3;
    let cycles = 5;
    let runner = MemoryRunner::new(distance, NoiseParams::standard(1e-3), distance * cycles);
    let config = RunConfig { shots: 2000, seed: 7, ..RunConfig::default() };

    let always = runner.run(&|code| Box::new(AlwaysLrcPolicy::new(code)), &config);
    let eraser = runner.run(&|code| Box::new(EraserPolicy::new(code)), &config);

    println!("distance {distance}, {cycles} QEC cycles, p=1e-3, {} shots", config.shots);
    for result in [&always, &eraser] {
        println!(
            "  {:<12} LER {:.2e} (±{:.1e})   LRCs/round {:>5.2}   speculation accuracy {:.1}%",
            result.policy,
            result.ler(),
            result.ler_stderr(),
            result.lrcs_per_round(),
            result.speculation.accuracy() * 100.0,
        );
    }
    println!(
        "ERASER schedules {:.0}x fewer LRCs and improves the LER {:.1}x",
        always.lrcs_per_round() / eraser.lrcs_per_round(),
        always.ler() / eraser.ler().max(1e-9),
    );
}
