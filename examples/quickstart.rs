//! Quickstart: run a memory experiment with ERASER and compare it against the
//! Always-LRC baseline through the `Experiment` facade.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eraser_repro::eraser_core::{Experiment, PolicyKind};
use eraser_repro::qec_core::NoiseParams;

fn main() {
    // A distance-3 rotated surface code, the paper's default error model at
    // p = 1e-3 (leakage on), over 5 QEC cycles (15 rounds).
    let exp = Experiment::builder()
        .distance(3)
        .noise(NoiseParams::standard(1e-3))
        .cycles(5)
        .shots(2000)
        .seed(7)
        .build()
        .expect("valid experiment");

    let always = exp.run_policy(&PolicyKind::AlwaysLrc);
    let eraser = exp.run_policy(&PolicyKind::eraser());

    println!(
        "distance {}, {} rounds, p=1e-3, {} shots",
        exp.distance(),
        exp.rounds(),
        exp.config().shots
    );
    for result in [&always, &eraser] {
        println!(
            "  {:<12} LER {:.2e} (±{:.1e})   LRCs/round {:>5.2}   speculation accuracy {:.1}%",
            result.policy,
            result.ler(),
            result.ler_stderr(),
            result.lrcs_per_round(),
            result.speculation.accuracy() * 100.0,
        );
    }
    println!(
        "ERASER schedules {:.0}x fewer LRCs and improves the LER {:.1}x",
        always.lrcs_per_round() / eraser.lrcs_per_round(),
        always.ler() / eraser.ler().max(1e-9),
    );
}
