//! Export the ERASER hardware: generate SystemVerilog for each code distance
//! and print the Table-3-style resource estimates for the paper's FPGA.
//!
//! ```text
//! cargo run --release --example rtl_export [output-dir]
//! ```

use eraser_repro::eraser_core::{resource, rtl};
use eraser_repro::surface_code::RotatedCode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "rtl-out".to_string());
    std::fs::create_dir_all(&out_dir)?;

    println!("target part: {}", resource::XCKU3P.name);
    println!(
        "{:>3} {:>10} {:>8} {:>10} {:>8} {:>12}",
        "d", "LUTs", "LUT %", "FFs", "FF %", "latency ns"
    );
    for d in [3usize, 5, 7, 9, 11] {
        let code = RotatedCode::new(d);
        let est = resource::estimate(&code, resource::XCKU3P);
        println!(
            "{:>3} {:>10} {:>8.3} {:>10} {:>8.3} {:>12.2}",
            d, est.luts, est.lut_pct, est.ffs, est.ff_pct, est.latency_ns
        );
        let sv = rtl::generate(&code);
        let path = format!("{out_dir}/eraser_d{d}.sv");
        std::fs::write(&path, &sv)?;
        println!("    wrote {path} ({} lines)", sv.lines().count());
    }
    println!("\nFeed the .sv files to your synthesis flow (the paper used Vivado 2023.1");
    println!("with a 2 ns clock constraint); the estimates above reproduce Table 3's");
    println!("O(d^2) scaling and <1% utilization analytically.");
    Ok(())
}
