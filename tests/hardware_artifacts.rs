//! Hardware-side deliverables: the RTL generator and the FPGA resource model
//! across all evaluated distances (paper Table 3).

use eraser_repro::eraser_core::{resource, rtl};
use eraser_repro::surface_code::RotatedCode;

#[test]
fn rtl_generates_for_all_paper_distances() {
    for d in [3usize, 5, 7, 9, 11] {
        let code = RotatedCode::new(d);
        let sv = rtl::generate(&code);
        assert!(sv.contains(&format!("module eraser_d{d}")));
        assert_eq!(sv.matches("assign speculate[").count(), code.num_data());
        assert_eq!(sv.matches("assign lrc_valid[").count(), code.num_data());
        // The allocation chain has one `used_*` vector per data qubit plus
        // the PUTT seed.
        assert!(
            sv.matches("logic [").count() >= code.num_data(),
            "allocation chain incomplete at d={d}"
        );
    }
}

#[test]
fn resource_model_reproduces_table3_shape() {
    let mut prev_luts = 0;
    for d in [3usize, 5, 7, 9, 11] {
        let est = resource::estimate(&RotatedCode::new(d), resource::XCKU3P);
        assert!(est.lut_pct < 1.0, "paper: <1% logic at d={d}");
        assert!(est.ff_pct < 1.0);
        assert!(est.latency_ns <= 5.0, "paper: 5 ns worst-case latency");
        assert!(est.luts > prev_luts, "monotone growth");
        prev_luts = est.luts;
    }
}

#[test]
fn rtl_is_distance_specific() {
    let sv3 = rtl::generate(&RotatedCode::new(3));
    let sv5 = rtl::generate(&RotatedCode::new(5));
    assert_ne!(sv3, sv5);
    assert!(sv5.len() > sv3.len());
}
