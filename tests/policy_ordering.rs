//! End-to-end statistical ordering tests: the qualitative claims of the paper
//! must hold in this reproduction — leakage hurts, LRC scheduling helps, and
//! adaptive scheduling beats static scheduling on LRC count.
//!
//! Error rates are amplified (p = 3e-3) and margins kept loose so the tests
//! are stable at modest shot budgets.

use eraser_repro::eraser_core::{Experiment, PolicyKind};
use eraser_repro::qec_core::NoiseParams;

const P: f64 = 3e-3;

fn experiment(noise: NoiseParams, rounds: usize, shots: u64) -> Experiment {
    Experiment::builder()
        .distance(3)
        .noise(noise)
        .rounds(rounds)
        .shots(shots)
        .seed(1234)
        .build()
        .expect("valid experiment")
}

#[test]
fn leakage_degrades_logical_error_rate() {
    let rounds = 18;
    let ler_clean = experiment(NoiseParams::without_leakage(P), rounds, 1200)
        .run_policy(&PolicyKind::NoLrc)
        .ler();
    let ler_leaky = experiment(NoiseParams::standard(P), rounds, 1200)
        .run_policy(&PolicyKind::NoLrc)
        .ler();
    assert!(
        ler_leaky > 1.5 * ler_clean,
        "leakage must visibly degrade the LER: clean {ler_clean}, leaky {ler_leaky}"
    );
}

#[test]
fn optimal_lrc_scheduling_beats_no_lrcs() {
    let exp = experiment(NoiseParams::standard(P), 24, 1200);
    let none = exp.run_policy(&PolicyKind::NoLrc);
    let optimal = exp.run_policy(&PolicyKind::Optimal);
    assert!(
        optimal.ler() < none.ler(),
        "optimal {} must beat no-lrc {}",
        optimal.ler(),
        none.ler()
    );
    // And it keeps the leakage population much lower.
    assert!(optimal.mean_lpr() < 0.5 * none.mean_lpr());
}

#[test]
fn eraser_tracks_optimal_lpr_with_far_fewer_lrcs_than_always() {
    let exp = experiment(NoiseParams::standard(P), 24, 800);
    let always = exp.run_policy(&PolicyKind::AlwaysLrc);
    let eraser = exp.run_policy(&PolicyKind::eraser());
    let optimal = exp.run_policy(&PolicyKind::Optimal);

    // Table 4's shape: an order of magnitude fewer LRCs than Always.
    assert!(eraser.lrcs_per_round() < always.lrcs_per_round() / 5.0);
    // Fig 15's shape: ERASER's LPR sits between Always and Optimal, closer
    // to Optimal than Always is.
    assert!(eraser.mean_lpr() < always.mean_lpr());
    assert!(optimal.mean_lpr() <= eraser.mean_lpr() * 1.5);
}

#[test]
fn eraser_speculation_quality_matches_fig16_shape() {
    let exp = experiment(NoiseParams::standard(P), 24, 600);
    let always = exp.run_policy(&PolicyKind::AlwaysLrc);
    let eraser = exp.run_policy(&PolicyKind::eraser());
    let eraser_m = exp.run_policy(&PolicyKind::eraser_m());

    // Always-LRC blankets the lattice: ~50% FPR, accuracy far below ERASER.
    assert!(always.speculation.false_positive_rate() > 0.3);
    assert!(eraser.speculation.false_positive_rate() < 0.1);
    assert!(eraser.speculation.accuracy() > always.speculation.accuracy());
    // Multi-level readout reduces the FNR (Fig 16 bottom).
    assert!(
        eraser_m.speculation.false_negative_rate()
            <= eraser.speculation.false_negative_rate() + 0.02,
        "eraser+m FNR {} vs eraser FNR {}",
        eraser_m.speculation.false_negative_rate(),
        eraser.speculation.false_negative_rate()
    );
}

/// Erasure-aware decoding acceptance: at a fixed seed and d = 5, threading
/// the policy's leakage-detection flags into MWPM must not hurt — the
/// erasure-aware LER stays within a binomial-CI margin below the
/// leakage-blind LER (and is strictly better in expectation; the two runs
/// decode identical physical shots, so the comparison is paired). The
/// qualitative policy ordering `eraser ≤ always_lrc ≤ no_lrc` must also
/// survive with erasure-aware decoding enabled.
#[test]
fn erasure_aware_decoding_never_hurts_and_ordering_holds() {
    use eraser_repro::eraser_core::DecoderKind;
    let mut exp = Experiment::builder()
        .distance(5)
        .noise(NoiseParams::standard(P))
        .rounds(15)
        .shots(1500)
        .seed(1234)
        .decoder(DecoderKind::Mwpm)
        .build()
        .expect("valid experiment");
    let blind = exp.run_policy(&PolicyKind::eraser_m());
    exp.set_leakage_aware(true);
    let aware = exp.run_policy(&PolicyKind::eraser_m());
    assert!(
        aware.total_erasures > 0,
        "erasure flags must reach decoding"
    );
    // Identical physics, different decoding.
    assert_eq!(blind.total_lrcs, aware.total_lrcs);
    let margin = 2.0 * blind.ler_stderr().max(aware.ler_stderr());
    assert!(
        aware.ler() <= blind.ler() + margin,
        "erasure-aware MWPM must not hurt: aware {} vs blind {} (margin {margin})",
        aware.ler(),
        blind.ler()
    );
    // Two-level ERASER exposes no erasure-grade herald: bit-identical to
    // leakage-blind decoding (the "≤" direction is exact).
    let eraser_aware = exp.run_policy(&PolicyKind::eraser());
    exp.set_leakage_aware(false);
    let eraser_blind = exp.run_policy(&PolicyKind::eraser());
    assert_eq!(eraser_aware.logical_errors, eraser_blind.logical_errors);
    assert_eq!(eraser_aware.total_erasures, 0);

    // Policy ordering with erasure-aware decoding on: eraser ≤ always ≤
    // no-lrc (binomial-CI margins), at the paper's design point p = 1e-3 —
    // blanket Always-LRC noise only pays for itself once leakage dominates,
    // which at amplified p it never does.
    let mut exp = Experiment::builder()
        .distance(5)
        .noise(NoiseParams::standard(1e-3))
        .rounds(35)
        .shots(2000)
        .seed(1234)
        .decoder(DecoderKind::Mwpm)
        .build()
        .expect("valid experiment");
    exp.set_leakage_aware(true);
    let eraser = exp.run_policy(&PolicyKind::eraser());
    let always = exp.run_policy(&PolicyKind::AlwaysLrc);
    let none = exp.run_policy(&PolicyKind::NoLrc);
    let m = |a: &eraser_repro::eraser_core::MemoryRunResult,
             b: &eraser_repro::eraser_core::MemoryRunResult| {
        2.0 * a.ler_stderr().max(b.ler_stderr())
    };
    assert!(
        eraser.ler() <= always.ler() + m(&eraser, &always),
        "eraser {} must not exceed always-lrc {}",
        eraser.ler(),
        always.ler()
    );
    assert!(
        always.ler() <= none.ler() + m(&always, &none),
        "always-lrc {} must not exceed no-lrc {}",
        always.ler(),
        none.ler()
    );
}

#[test]
fn multilevel_discriminator_requires_flag() {
    let exp = experiment(NoiseParams::standard(P), 6, 50);
    let base = exp.run_policy(&PolicyKind::eraser());
    let multi = exp.run_policy(&PolicyKind::eraser_m());
    assert_eq!(base.policy, "eraser");
    assert_eq!(multi.policy, "eraser+m");
}
