//! Integration coverage of the `Experiment` facade: builder validation,
//! string round-trips of the policy/decoder registries, and the guarantee
//! that the `Sweep` engine is bit-identical to sequential per-point runs.

use eraser_repro::eraser_core::{
    DecoderKind, Experiment, ExperimentError, NoiseModel, PolicyKind, Sweep,
};
use eraser_repro::qec_core::NoiseParams;
use eraser_repro::surface_code::MemoryBasis;

#[test]
fn builder_validation_returns_errors_not_panics() {
    // Zero shots.
    assert_eq!(
        Experiment::builder()
            .distance(3)
            .rounds(2)
            .shots(0)
            .build()
            .unwrap_err(),
        ExperimentError::ZeroShots
    );
    // Even distance.
    assert_eq!(
        Experiment::builder()
            .distance(4)
            .rounds(2)
            .build()
            .unwrap_err(),
        ExperimentError::InvalidDistance(4)
    );
    // Zero rounds.
    assert_eq!(
        Experiment::builder()
            .distance(3)
            .rounds(0)
            .build()
            .unwrap_err(),
        ExperimentError::ZeroRounds
    );
    // Missing required fields.
    assert_eq!(
        Experiment::builder().rounds(2).build().unwrap_err(),
        ExperimentError::MissingDistance
    );
    assert_eq!(
        Experiment::builder().distance(3).build().unwrap_err(),
        ExperimentError::MissingRounds
    );
    // Errors render as readable messages.
    assert_eq!(
        ExperimentError::ZeroShots.to_string(),
        "a run needs at least one shot"
    );
}

#[test]
fn policy_kind_round_trips_through_strings() {
    for kind in PolicyKind::all_standard() {
        let rendered = kind.to_string();
        let parsed: PolicyKind = rendered.parse().expect("standard labels parse");
        assert_eq!(parsed, kind, "round-trip of `{rendered}`");
    }
    // Aliases accepted by the CLI surface.
    assert_eq!(
        "always".parse::<PolicyKind>().unwrap(),
        PolicyKind::AlwaysLrc
    );
    assert_eq!(
        "eraser-m".parse::<PolicyKind>().unwrap(),
        PolicyKind::eraser_m()
    );
    assert!(matches!(
        "warp-drive".parse::<PolicyKind>(),
        Err(ExperimentError::UnknownPolicy(_))
    ));
}

#[test]
fn decoder_kind_round_trips_through_strings() {
    for kind in [
        DecoderKind::Auto,
        DecoderKind::Mwpm,
        DecoderKind::UnionFind,
        DecoderKind::Greedy,
    ] {
        assert_eq!(kind.to_string().parse::<DecoderKind>().unwrap(), kind);
    }
    assert_eq!("uf".parse::<DecoderKind>().unwrap(), DecoderKind::UnionFind);
    assert!(matches!(
        "belief-propagation".parse::<DecoderKind>(),
        Err(ExperimentError::UnknownDecoder(_))
    ));
}

#[test]
fn custom_policy_escape_hatch_runs() {
    use eraser_repro::eraser_core::NoLrcPolicy;
    let kind = PolicyKind::custom("do-nothing", |_| Box::new(NoLrcPolicy::new()));
    let result = Experiment::builder()
        .distance(3)
        .rounds(2)
        .shots(15)
        .seed(8)
        .policy(kind)
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(result.policy, "no-lrc");
    assert_eq!(result.total_lrcs, 0);
}

#[test]
fn sweep_is_identical_to_sequential_runs_for_a_fixed_seed() {
    let distances = [3usize];
    let rates = [1e-3, 3e-3];
    let policies = [
        PolicyKind::NoLrc,
        PolicyKind::AlwaysLrc,
        PolicyKind::eraser(),
    ];
    let rounds = 4;
    let shots = 120;
    let seed = 4242;

    let sweep = Sweep::builder()
        .distances(distances)
        .error_rates(rates)
        .policies(policies.iter().cloned())
        .noise_model(NoiseModel::Standard)
        .rounds(rounds)
        .shots(shots)
        .seed(seed)
        .build()
        .expect("valid sweep");
    let points = sweep.run();
    assert_eq!(points.len(), distances.len() * rates.len() * policies.len());

    let mut i = 0;
    for &d in &distances {
        for &p in &rates {
            let exp = Experiment::builder()
                .distance(d)
                .noise(NoiseParams::standard(p))
                .rounds(rounds)
                .shots(shots)
                .seed(seed)
                .build()
                .expect("valid experiment");
            for kind in &policies {
                let expected = exp.run_policy(kind);
                let got = &points[i].result;
                assert_eq!(points[i].distance, d);
                assert_eq!(points[i].p, p);
                assert_eq!(points[i].policy, kind.label());
                assert_eq!(got.logical_errors, expected.logical_errors, "point {i}");
                assert_eq!(got.total_lrcs, expected.total_lrcs, "point {i}");
                assert_eq!(got.speculation, expected.speculation, "point {i}");
                assert_eq!(got.lpr_total, expected.lpr_total, "point {i}");
                assert_eq!(got.policy, expected.policy, "point {i}");
                i += 1;
            }
        }
    }
}

#[test]
fn sweep_supports_memory_x_grids() {
    let sweep = Sweep::builder()
        .distances([3])
        .error_rates([1e-3])
        .policy(PolicyKind::eraser())
        .rounds(3)
        .shots(40)
        .seed(6)
        .basis(MemoryBasis::X)
        .build()
        .expect("valid sweep");
    let points = sweep.run();
    assert_eq!(points.len(), 1);
    assert!(points[0].result.ler() <= 1.0);
}

#[test]
fn experiment_reports_resolved_geometry() {
    let exp = Experiment::builder()
        .distance(5)
        .cycles(3)
        .shots(1)
        .build()
        .expect("valid experiment");
    assert_eq!(exp.distance(), 5);
    assert_eq!(exp.rounds(), 15);
    assert_eq!(exp.basis(), MemoryBasis::Z);
    assert_eq!(exp.policy(), &PolicyKind::NoLrc);
}
