//! Cross-crate decoder checks: code-distance suppression, decoder agreement,
//! and the MWPM-vs-union-find accuracy relationship on real circuits.

use eraser_repro::eraser_core::{DecoderKind, MemoryRunner, NoLrcPolicy, RunConfig};
use eraser_repro::qec_core::circuit::DetectorBasis;
use eraser_repro::qec_core::NoiseParams;
use eraser_repro::qec_decoder::{build_dem, Decoder, DecodingGraph, MwpmDecoder, UnionFindDecoder};
use eraser_repro::surface_code::{MemoryExperiment, RotatedCode};

#[test]
fn increasing_distance_suppresses_pauli_errors() {
    // Without leakage and below threshold, LER must drop with distance.
    let cfg = RunConfig { shots: 1500, seed: 5, ..RunConfig::default() };
    let ler3 = MemoryRunner::new(3, NoiseParams::without_leakage(3e-3), 9)
        .run(&|_| Box::new(NoLrcPolicy::new()), &cfg)
        .ler();
    let ler5 = MemoryRunner::new(5, NoiseParams::without_leakage(3e-3), 15)
        .run(&|_| Box::new(NoLrcPolicy::new()), &cfg)
        .ler();
    assert!(
        ler5 < ler3,
        "distance must suppress errors below threshold: d3 {ler3}, d5 {ler5}"
    );
}

#[test]
fn union_find_ler_close_to_mwpm() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(3e-3), 9);
    let mwpm = runner
        .run(
            &|_| Box::new(NoLrcPolicy::new()),
            &RunConfig { shots: 1500, seed: 9, decoder: DecoderKind::Mwpm, ..RunConfig::default() },
        )
        .ler();
    let uf = runner
        .run(
            &|_| Box::new(NoLrcPolicy::new()),
            &RunConfig {
                shots: 1500,
                seed: 9,
                decoder: DecoderKind::UnionFind,
                ..RunConfig::default()
            },
        )
        .ler();
    assert!(uf >= mwpm * 0.8, "UF cannot beat exact matching by much: {uf} vs {mwpm}");
    assert!(uf <= mwpm * 2.5, "UF must stay near MWPM accuracy: {uf} vs {mwpm}");
}

#[test]
fn decoders_agree_on_most_sampled_syndromes() {
    let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 3);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    let mwpm = MwpmDecoder::new(&graph);
    let uf = UnionFindDecoder::new(&graph);

    let mut rng = eraser_repro::qec_core::Rng::new(2718);
    let mut agree = 0;
    let trials = 200;
    for _ in 0..trials {
        let mut events = vec![false; graph.num_nodes()];
        for _ in 0..(1 + rng.below(3)) {
            let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        let defects: Vec<usize> = (0..graph.num_nodes()).filter(|&n| events[n]).collect();
        if mwpm.decode(&defects) == uf.decode(&defects) {
            agree += 1;
        }
    }
    assert!(
        agree as f64 / trials as f64 > 0.9,
        "decoder agreement too low: {agree}/{trials}"
    );
}

#[test]
fn auto_decoder_picks_mwpm_for_small_graphs() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 2);
    let cfg = RunConfig { shots: 10, seed: 1, ..RunConfig::default() };
    let result = runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg);
    assert_eq!(result.decoder, "mwpm");
}

#[test]
fn lpr_only_runs_skip_decoding() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 4);
    let cfg = RunConfig { shots: 20, seed: 1, decode: false, ..RunConfig::default() };
    let result = runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg);
    assert_eq!(result.decoder, "none");
    assert_eq!(result.logical_errors, 0);
    assert_eq!(result.lpr_total.len(), 4);
}
