//! Cross-crate decoder checks: code-distance suppression, decoder agreement,
//! and the MWPM-vs-union-find accuracy relationship on real circuits.

use eraser_repro::eraser_core::{DecoderKind, Experiment, PolicyKind};
use eraser_repro::qec_core::circuit::DetectorBasis;
use eraser_repro::qec_core::NoiseParams;
use eraser_repro::qec_decoder::{
    build_dem, DecoderFactory, DecodingGraph, MwpmFactory, Syndrome, UnionFindFactory,
};
use eraser_repro::surface_code::{MemoryExperiment, RotatedCode};

fn pauli_only(d: usize, rounds: usize) -> Experiment {
    Experiment::builder()
        .distance(d)
        .noise(NoiseParams::without_leakage(3e-3))
        .rounds(rounds)
        .shots(1500)
        .seed(5)
        .build()
        .expect("valid experiment")
}

#[test]
fn increasing_distance_suppresses_pauli_errors() {
    // Without leakage and below threshold, LER must drop with distance.
    let ler3 = pauli_only(3, 9).run().ler();
    let ler5 = pauli_only(5, 15).run().ler();
    assert!(
        ler5 < ler3,
        "distance must suppress errors below threshold: d3 {ler3}, d5 {ler5}"
    );
}

#[test]
fn union_find_ler_close_to_mwpm() {
    let mut exp = Experiment::builder()
        .distance(3)
        .noise(NoiseParams::standard(3e-3))
        .rounds(9)
        .shots(1500)
        .seed(9)
        .decoder(DecoderKind::Mwpm)
        .build()
        .expect("valid experiment");
    let mwpm = exp.run().ler();
    exp.set_decoder(DecoderKind::UnionFind);
    let uf = exp.run().ler();
    assert!(
        uf >= mwpm * 0.8,
        "UF cannot beat exact matching by much: {uf} vs {mwpm}"
    );
    assert!(
        uf <= mwpm * 2.5,
        "UF must stay near MWPM accuracy: {uf} vs {mwpm}"
    );
}

#[test]
fn decoders_agree_on_most_sampled_syndromes() {
    let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 3);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    let mwpm_factory = MwpmFactory::new(&graph);
    let uf_factory = UnionFindFactory::new(&graph);
    let mut mwpm = mwpm_factory.build();
    let mut uf = uf_factory.build();

    let mut rng = eraser_repro::qec_core::Rng::new(2718);
    let mut agree = 0;
    let trials = 200;
    let mut syndrome = Syndrome::default();
    for _ in 0..trials {
        let mut events = vec![false; graph.num_nodes()];
        for _ in 0..(1 + rng.below(3)) {
            let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        syndrome.clear();
        syndrome
            .defects
            .extend((0..graph.num_nodes()).filter(|&n| events[n]));
        if mwpm.decode_syndrome(&syndrome).flip == uf.decode_syndrome(&syndrome).flip {
            agree += 1;
        }
    }
    assert!(
        agree as f64 / trials as f64 > 0.9,
        "decoder agreement too low: {agree}/{trials}"
    );
}

#[test]
fn auto_decoder_picks_mwpm_for_small_graphs() {
    let exp = Experiment::builder()
        .distance(3)
        .rounds(2)
        .shots(10)
        .seed(1)
        .build()
        .expect("valid experiment");
    // The facade resolves Auto through the same single-source rule the
    // runtime applies, so prediction and run report must agree. When the
    // CI matrix pins `ERASER_DECODER`, that pin wins over the size rule
    // (this graph is tiny, so a pinned concrete kind resolves to itself).
    let expected = match std::env::var("ERASER_DECODER") {
        Ok(raw) if !raw.trim().is_empty() => raw
            .parse::<DecoderKind>()
            .expect("CI pins a valid decoder kind"),
        _ => DecoderKind::Mwpm,
    };
    assert_eq!(exp.resolved_decoder(), expected);
    let result = exp.run();
    assert_eq!(result.decoder, expected.to_string());
    assert_eq!(result.decoder, exp.resolved_decoder().to_string());
}

#[test]
fn lpr_only_runs_skip_decoding() {
    let result = Experiment::builder()
        .distance(3)
        .rounds(4)
        .shots(20)
        .seed(1)
        .decode(false)
        .policy(PolicyKind::NoLrc)
        .build()
        .expect("valid experiment")
        .run();
    assert_eq!(result.decoder, "none");
    assert_eq!(result.logical_errors, 0);
    assert_eq!(result.lpr_total.len(), 4);
}
