//! Cross-validation of the (batch) frame simulator against the exact
//! density-matrix simulator on the d=3 stabilizer cell.
//!
//! A full distance-3 surface-code density simulation is intractable (17
//! ququarts → a 4³⁴-entry operator), so the exact reference is the paper's
//! §3.3 five-ququart study: one weight-4 Z stabilizer of the d=3 code —
//! four data qubits and a parity qubit — through a dance + LRC round
//! followed by a plain round, with q0 initially leaked. Under the
//! *frame-calibrated* channel set (Pauli-twirled kicks, exchange
//! transport, see `StabilizerLeakageStudy::frame_calibrated`) the density
//! dynamics stay diagonal and the leakage-aware Pauli-frame model is an
//! unbiased sampler of exactly that open system. The striped
//! [`BatchFrameSimulator`] must therefore reproduce, within binomial
//! Monte-Carlo tolerance, the exact per-step leakage populations of all
//! five qudits *and* the stabilizer-readout-correct probability — this is
//! the integration coverage tying the two simulation stacks together.

use eraser_repro::density_sim::StabilizerLeakageStudy;
use eraser_repro::leak_sim::{BatchFrameSimulator, Discriminator, STRIPE_WIDTH};
use eraser_repro::qec_core::{NoiseParams, Op, Rng};

const QUBITS: usize = 5;
const PARITY: usize = 4;
const STRIPES: usize = 1500; // 96_000 shots → binomial σ ≤ 0.0017

fn cx(control: usize, target: usize) -> Op {
    Op::Cnot { control, target }
}

/// The §3.3 circuit as frame-simulator ops, chunked exactly like the
/// density study's record points (one chunk per `StepRecord`, the first
/// being the empty init chunk).
fn chunks() -> Vec<Vec<Op>> {
    vec![
        vec![],                  // init (q0 = |2⟩)
        vec![cx(0, PARITY)],     // CX#1
        vec![cx(1, PARITY)],     // CX#2
        vec![cx(2, PARITY)],     // CX#3
        vec![cx(3, PARITY)],     // CX#4
        vec![cx(0, PARITY)],     // CX#5 (swap-in 1/3)
        vec![cx(PARITY, 0)],     // CX#6 (swap-in 2/3)
        vec![cx(0, PARITY)],     // A: CX#7
        vec![Op::Reset(0)],      // MR(q0)
        vec![cx(PARITY, 0)],     // CX#8 (swap-back 1/2)
        vec![cx(0, PARITY)],     // CX#9 (swap-back 2/2)
        vec![Op::Reset(PARITY)], // MR(P) / round 2 start
        vec![cx(0, PARITY)],     // CX#10
        vec![cx(1, PARITY)],     // CX#11
        vec![cx(2, PARITY)],     // CX#12
        vec![cx(3, PARITY)],     // C: CX#13
    ]
}

/// The frame-calibrated noise: exchange transport at p_LT = 0.1, no Pauli
/// noise, no injection/seepage (injection is excluded from the exact
/// comparison — the frame model injects from any computational state, the
/// density model only from |1⟩).
fn crossval_noise() -> NoiseParams {
    let mut noise = NoiseParams::exchange_transport(0.0);
    noise.p_transport = 0.1;
    noise
}

#[test]
fn batch_frame_simulator_matches_exact_density_dynamics() {
    let study = StabilizerLeakageStudy::frame_calibrated();
    assert_eq!(study.p_transport, crossval_noise().p_transport);
    let exact = study.run();
    let chunks = chunks();
    assert_eq!(exact.len(), chunks.len(), "record/chunk alignment");

    // Monte-Carlo accumulators per record point.
    let mut leak_counts = vec![[0u64; QUBITS]; chunks.len()];
    let mut correct_weight = vec![0f64; chunks.len()];

    let mut sim = BatchFrameSimulator::new(QUBITS, 0, crossval_noise(), Discriminator::TwoLevel);
    for stripe in 0..STRIPES {
        let rngs: Vec<Rng> = (0..STRIPE_WIDTH as u64)
            .map(|lane| Rng::new(stripe as u64 * 64 + lane + 1))
            .collect();
        sim.begin_stripe(&rngs);
        let active = sim.active();
        sim.force_leak_masked(0, active);
        for (ci, chunk) in chunks.iter().enumerate() {
            sim.run_masked(chunk, active);
            for (q, count) in leak_counts[ci].iter_mut().enumerate() {
                *count += (sim.leak_word(q) & active).count_ones() as u64;
            }
            // Readout-correct probability of P: leaked lanes read out
            // uniformly (weight ½), unleaked lanes read their X frame.
            let leaked = sim.leak_word(PARITY) & active;
            let wrong = sim.x_word(PARITY) & !leaked & active;
            correct_weight[ci] +=
                0.5 * leaked.count_ones() as f64 + (active & !leaked & !wrong).count_ones() as f64;
        }
    }

    let shots = (STRIPES * STRIPE_WIDTH) as f64;
    let tol = |p: f64| 5.0 * (p.clamp(1e-6, 1.0 - 1e-6) * (1.0 - p) / shots).sqrt() + 1e-9;
    for (ci, record) in exact.iter().enumerate() {
        for (q, &count) in leak_counts[ci].iter().enumerate() {
            let estimate = count as f64 / shots;
            let truth = record.leak[q];
            assert!(
                (estimate - truth).abs() <= tol(truth),
                "leak[{q}] at step {ci} ({}): MC {estimate:.5} vs exact {truth:.5}",
                record.label
            );
        }
        let estimate = correct_weight[ci] / shots;
        assert!(
            (estimate - record.p_correct).abs() <= tol(record.p_correct),
            "p_correct at step {ci} ({}): MC {estimate:.5} vs exact {:.5}",
            record.label,
            record.p_correct
        );
    }

    // The study must actually exercise the physics being validated.
    let a = exact.iter().find(|r| r.label.starts_with("A:")).unwrap();
    assert!(a.leak[PARITY] > 0.2, "LRC transports leakage onto P");
    // Under the frame-calibrated model q0 returns from the LRC in a
    // uniformly random computational state (exchange transport + twirl),
    // so the round-2 CX(q0 → P) pins the readout to a coin flip — unlike
    // the coherent default, whose swap-back restores most of |0⟩.
    let c = exact.iter().find(|r| r.label.starts_with("C:")).unwrap();
    assert!((c.p_correct - 0.5).abs() < 0.02, "got {}", c.p_correct);
}

/// The twirled-kick channel set is a *different* model from the paper's
/// coherent RX kick — the cross-validation must not silently compare
/// against the wrong reference.
#[test]
fn frame_calibrated_study_differs_from_coherent_default() {
    let coherent = StabilizerLeakageStudy {
        p_inject: 0.0,
        ..StabilizerLeakageStudy::default()
    }
    .run();
    let twirled = StabilizerLeakageStudy::frame_calibrated().run();
    let c_coherent = coherent.last().unwrap().p_correct;
    let c_twirled = twirled.last().unwrap().p_correct;
    assert!(
        (c_coherent - c_twirled).abs() > 1e-3,
        "kick models must be distinguishable: {c_coherent} vs {c_twirled}"
    );
}
