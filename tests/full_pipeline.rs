//! Smoke coverage of every (policy × protocol × transport-model) combination
//! the paper evaluates, plus determinism and API-surface checks.

use eraser_repro::eraser_core::{Experiment, LrcProtocol, PolicyKind};
use eraser_repro::qec_core::NoiseParams;

/// The six standard policies with their runtime names (as reported in
/// `MemoryRunResult::policy`).
fn policies() -> [(&'static str, PolicyKind); 6] {
    [
        ("no-lrc", PolicyKind::NoLrc),
        ("always-lrc", PolicyKind::AlwaysLrc),
        ("always-every-round", PolicyKind::AlwaysEveryRound),
        ("eraser", PolicyKind::eraser()),
        ("eraser+m", PolicyKind::eraser_m()),
        ("optimal", PolicyKind::Optimal),
    ]
}

#[test]
fn every_policy_runs_under_every_protocol_and_transport_model() {
    for noise in [
        NoiseParams::standard(1e-3),
        NoiseParams::exchange_transport(1e-3),
        NoiseParams::without_leakage(1e-3),
    ] {
        for protocol in [LrcProtocol::Swap, LrcProtocol::Dqlr] {
            let exp = Experiment::builder()
                .distance(3)
                .noise(noise)
                .rounds(6)
                .shots(25)
                .seed(3)
                .protocol(protocol)
                .build()
                .expect("valid experiment");
            for (name, kind) in policies() {
                let result = exp.run_policy(&kind);
                assert_eq!(result.shots, 25, "{name} under {protocol:?}");
                assert_eq!(result.policy, name);
                assert!(result.ler() <= 1.0);
                assert!(result.lpr_total.iter().all(|&x| (0.0..=1.0).contains(&x)));
                let s = &result.speculation;
                let decisions =
                    s.true_positive + s.false_positive + s.false_negative + s.true_negative;
                assert_eq!(
                    decisions,
                    25 * 6 * 9,
                    "one decision per data qubit per round"
                );
            }
        }
    }
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let exp = Experiment::builder()
        .distance(3)
        .noise(NoiseParams::standard(2e-3))
        .rounds(9)
        .shots(150)
        .seed(77)
        .threads(2)
        .policy(PolicyKind::eraser())
        .build()
        .expect("valid experiment");
    let a = exp.run();
    let b = exp.run();
    assert_eq!(a.logical_errors, b.logical_errors);
    assert_eq!(a.total_lrcs, b.total_lrcs);
    assert_eq!(a.speculation, b.speculation);
    assert_eq!(a.lpr_total, b.lpr_total);
}

#[test]
fn different_seeds_decorrelate() {
    let build = |seed: u64| {
        Experiment::builder()
            .distance(3)
            .noise(NoiseParams::standard(2e-3))
            .rounds(9)
            .shots(200)
            .seed(seed)
            .policy(PolicyKind::eraser())
            .build()
            .expect("valid experiment")
    };
    let a = build(1).run();
    let b = build(2).run();
    // Total LRCs is a fine-grained statistic; identical values across seeds
    // would indicate a seeding bug.
    assert_ne!(a.total_lrcs, b.total_lrcs);
}

#[test]
fn key_public_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<eraser_repro::eraser_core::Experiment>();
    assert_send_sync::<eraser_repro::eraser_core::Sweep>();
    assert_send_sync::<eraser_repro::eraser_core::PolicyKind>();
    assert_send_sync::<eraser_repro::eraser_core::runtime::MemoryRunner>();
    assert_send_sync::<eraser_repro::qec_core::Circuit>();
    assert_send_sync::<eraser_repro::surface_code::RotatedCode>();
    assert_send_sync::<eraser_repro::leak_sim::FrameSimulator>();
    assert_send_sync::<eraser_repro::qec_decoder::DecodingGraph>();
    assert_send_sync::<eraser_repro::density_sim::DensityMatrix>();
}

#[test]
fn dqlr_with_eraser_reduces_lpr_versus_no_removal() {
    let exp = Experiment::builder()
        .distance(3)
        .noise(NoiseParams::exchange_transport(3e-3))
        .rounds(12)
        .shots(300)
        .seed(4)
        .protocol(LrcProtocol::Dqlr)
        .decode(false)
        .build()
        .expect("valid experiment");
    let none = exp.run_policy(&PolicyKind::NoLrc);
    let eraser = exp.run_policy(&PolicyKind::eraser());
    assert!(
        eraser.mean_lpr() < none.mean_lpr(),
        "DQLR scheduled by ERASER must remove leakage: {} vs {}",
        eraser.mean_lpr(),
        none.mean_lpr()
    );
}
