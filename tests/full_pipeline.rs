//! Smoke coverage of every (policy × protocol × transport-model) combination
//! the paper evaluates, plus determinism and API-surface checks.

use eraser_repro::eraser_core::{
    AlwaysLrcPolicy, EraserPolicy, LrcPolicy, LrcProtocol, MemoryRunner, NoLrcPolicy,
    OptimalPolicy, RunConfig,
};
use eraser_repro::qec_core::NoiseParams;
use eraser_repro::surface_code::RotatedCode;

type Factory = fn(&RotatedCode) -> Box<dyn LrcPolicy>;

const POLICIES: [(&str, Factory); 6] = [
    ("no-lrc", |_| Box::new(NoLrcPolicy::new())),
    ("always-lrc", |c| Box::new(AlwaysLrcPolicy::new(c))),
    ("always-every-round", |c| Box::new(AlwaysLrcPolicy::every_round(c))),
    ("eraser", |c| Box::new(EraserPolicy::new(c))),
    ("eraser+m", |c| Box::new(EraserPolicy::with_multilevel(c))),
    ("optimal", |c| Box::new(OptimalPolicy::new(c))),
];

#[test]
fn every_policy_runs_under_every_protocol_and_transport_model() {
    for noise in [
        NoiseParams::standard(1e-3),
        NoiseParams::exchange_transport(1e-3),
        NoiseParams::without_leakage(1e-3),
    ] {
        let runner = MemoryRunner::new(3, noise, 6);
        for protocol in [LrcProtocol::Swap, LrcProtocol::Dqlr] {
            for (name, factory) in POLICIES {
                let cfg = RunConfig { shots: 25, seed: 3, protocol, ..RunConfig::default() };
                let result = runner.run(&factory, &cfg);
                assert_eq!(result.shots, 25, "{name} under {protocol:?}");
                assert_eq!(result.policy, name);
                assert!(result.ler() <= 1.0);
                assert!(result.lpr_total.iter().all(|&x| (0.0..=1.0).contains(&x)));
                let s = &result.speculation;
                let decisions = s.true_positive + s.false_positive + s.false_negative
                    + s.true_negative;
                assert_eq!(decisions, 25 * 6 * 9, "one decision per data qubit per round");
            }
        }
    }
}

#[test]
fn runs_are_reproducible_across_invocations() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(2e-3), 9);
    let cfg = RunConfig { shots: 150, seed: 77, threads: 2, ..RunConfig::default() };
    let a = runner.run(&|c| Box::new(EraserPolicy::new(c)), &cfg);
    let b = runner.run(&|c| Box::new(EraserPolicy::new(c)), &cfg);
    assert_eq!(a.logical_errors, b.logical_errors);
    assert_eq!(a.total_lrcs, b.total_lrcs);
    assert_eq!(a.speculation, b.speculation);
    assert_eq!(a.lpr_total, b.lpr_total);
}

#[test]
fn different_seeds_decorrelate() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(2e-3), 9);
    let a = runner.run(
        &|c| Box::new(EraserPolicy::new(c)),
        &RunConfig { shots: 200, seed: 1, ..RunConfig::default() },
    );
    let b = runner.run(
        &|c| Box::new(EraserPolicy::new(c)),
        &RunConfig { shots: 200, seed: 2, ..RunConfig::default() },
    );
    // Total LRCs is a fine-grained statistic; identical values across seeds
    // would indicate a seeding bug.
    assert_ne!(a.total_lrcs, b.total_lrcs);
}

#[test]
fn key_public_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MemoryRunner>();
    assert_send_sync::<eraser_repro::qec_core::Circuit>();
    assert_send_sync::<eraser_repro::surface_code::RotatedCode>();
    assert_send_sync::<eraser_repro::leak_sim::FrameSimulator>();
    assert_send_sync::<eraser_repro::qec_decoder::DecodingGraph>();
    assert_send_sync::<eraser_repro::density_sim::DensityMatrix>();
}

#[test]
fn dqlr_with_eraser_reduces_lpr_versus_no_removal() {
    let runner = MemoryRunner::new(3, NoiseParams::exchange_transport(3e-3), 12);
    let cfg = RunConfig {
        shots: 300,
        seed: 4,
        protocol: LrcProtocol::Dqlr,
        decode: false,
        ..RunConfig::default()
    };
    let none = runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg);
    let eraser = runner.run(&|c| Box::new(EraserPolicy::new(c)), &cfg);
    assert!(
        eraser.mean_lpr() < none.mean_lpr(),
        "DQLR scheduled by ERASER must remove leakage: {} vs {}",
        eraser.mean_lpr(),
        none.mean_lpr()
    );
}
