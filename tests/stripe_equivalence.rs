//! Stripe correctness: the word-parallel (64-shots-per-word) runtime must
//! be bit-identical, shot for shot, to the scalar reference path — across
//! every policy, both LRC protocols, erasure-aware decoding, and ragged
//! stripe tails. Stripe width is a pure wall-clock knob, exactly like the
//! worker-thread count.

use eraser_repro::eraser_core::runtime::{
    DecoderKind, ErasureDetection, LrcProtocol, MemoryRunResult, MemoryRunner, RunConfig,
};
use eraser_repro::eraser_core::{Experiment, PolicyKind};
use eraser_repro::qec_core::NoiseParams;

fn assert_identical(a: &MemoryRunResult, b: &MemoryRunResult, what: &str) {
    assert_eq!(a.shots, b.shots, "{what}: shots");
    assert_eq!(a.logical_errors, b.logical_errors, "{what}: logical errors");
    assert_eq!(a.total_lrcs, b.total_lrcs, "{what}: LRC count");
    assert_eq!(a.total_erasures, b.total_erasures, "{what}: erasures");
    assert_eq!(a.speculation, b.speculation, "{what}: speculation");
    assert_eq!(a.postselection, b.postselection, "{what}: post-selection");
    // The LPR sums accumulate integer counts, so even the f64 vectors are
    // exactly reproducible.
    assert_eq!(a.lpr_total, b.lpr_total, "{what}: LPR total");
    assert_eq!(a.lpr_data, b.lpr_data, "{what}: LPR data");
    assert_eq!(a.lpr_parity, b.lpr_parity, "{what}: LPR parity");
}

fn run_width(
    runner: &MemoryRunner,
    kind: &PolicyKind,
    base: &RunConfig,
    width: usize,
) -> MemoryRunResult {
    let config = RunConfig {
        stripe_width: width,
        ..*base
    };
    runner.run(&|code| kind.build(code), &config)
}

/// The headline property: every policy of the paper, striped vs scalar,
/// with a shot count that exercises a ragged final stripe (70 = 64 + 6).
#[test]
fn stripe_width_is_bit_identical_across_all_policies() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(4e-3), 6);
    let base = RunConfig {
        shots: 70,
        seed: 0xA11CE,
        threads: 2,
        decoder: DecoderKind::Mwpm,
        ..RunConfig::default()
    };
    for kind in PolicyKind::all_standard() {
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, kind.label());
        // A narrow stripe (width 7: ten stripes of 7 shots) must agree too.
        let narrow = run_width(&runner, &kind, &base, 7);
        assert_identical(&scalar, &narrow, &format!("{} width-7", kind.label()));
    }
}

/// The DQLR protocol's slot-gated post segment, striped vs scalar.
#[test]
fn stripe_width_is_bit_identical_under_dqlr() {
    let runner = MemoryRunner::new(3, NoiseParams::exchange_transport(4e-3), 5);
    let base = RunConfig {
        shots: 70,
        seed: 77,
        threads: 1,
        protocol: LrcProtocol::Dqlr,
        decoder: DecoderKind::Mwpm,
        ..RunConfig::default()
    };
    for kind in [PolicyKind::AlwaysEveryRound, PolicyKind::eraser()] {
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, kind.label());
    }
}

/// Erasure-aware decoding threads per-lane detection noise through the
/// independent per-shot streams; striped and scalar must collect the same
/// erasure sets and decode identically.
#[test]
fn stripe_width_is_bit_identical_with_erasure_decoding() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(5e-3), 6);
    let base = RunConfig {
        shots: 70,
        seed: 31,
        threads: 2,
        decoder: DecoderKind::Mwpm,
        erasure: ErasureDetection::imperfect(0.01, 0.05),
        ..RunConfig::default()
    };
    for kind in [
        PolicyKind::eraser_m(),
        PolicyKind::eraser(),
        PolicyKind::Optimal,
    ] {
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert!(
            kind != PolicyKind::eraser_m() || striped.total_erasures > 0,
            "ERASER+M must collect erasures"
        );
        assert_identical(&scalar, &striped, kind.label());
    }
}

/// Ragged-tail property: shot counts around the stripe boundary (63, 64,
/// 65, and a single shot) all agree with the scalar path.
#[test]
fn ragged_stripe_tails_are_bit_identical() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(4e-3), 4);
    for shots in [1u64, 63, 64, 65, 130] {
        let base = RunConfig {
            shots,
            seed: 5 + shots,
            threads: 1,
            decoder: DecoderKind::Mwpm,
            ..RunConfig::default()
        };
        let kind = PolicyKind::eraser();
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, &format!("{shots} shots"));
    }
}

/// Determinism property over seeds: width {1, 64} agreement is not a
/// one-seed accident, and thread partitioning composes with striping.
#[test]
fn stripe_determinism_property_over_seeds_and_threads() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(5e-3), 5);
    for seed in 0..8u64 {
        let base = RunConfig {
            shots: 37,
            seed,
            threads: 1,
            decoder: DecoderKind::Mwpm,
            ..RunConfig::default()
        };
        let kind = PolicyKind::eraser_m();
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, &format!("seed {seed}"));
        // Threads split the shot range mid-stripe; lanes re-form without
        // changing any shot's stream.
        let threaded = RunConfig {
            threads: 3,
            stripe_width: 64,
            ..base
        };
        let multi = runner.run(&|code| kind.build(code), &threaded);
        assert_identical(&striped, &multi, &format!("seed {seed} threaded"));
    }
}

/// The facade knob reaches the runtime and validates its range.
#[test]
fn stripe_width_knob_on_the_facade() {
    let build = |width: usize| {
        Experiment::builder()
            .distance(3)
            .noise(NoiseParams::standard(2e-3))
            .rounds(3)
            .policy(PolicyKind::eraser())
            .shots(40)
            .seed(9)
            .stripe_width(width)
            .build()
    };
    let scalar = build(1).expect("valid").run();
    let striped = build(64).expect("valid").run();
    assert_identical(&scalar, &striped, "facade");
    assert!(build(65).is_err(), "width > 64 must be rejected");
    assert!(build(0).is_ok(), "0 = auto");
}
