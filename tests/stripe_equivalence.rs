//! Stripe correctness: the word-parallel (64-shots-per-word) runtime must
//! be bit-identical, shot for shot, to the scalar reference path — across
//! every policy, both LRC protocols, erasure-aware decoding, and ragged
//! stripe tails. Stripe width is a pure wall-clock knob, exactly like the
//! worker-thread count.

use eraser_repro::eraser_core::runtime::{
    DecoderKind, ErasureDetection, LrcProtocol, MemoryRunResult, MemoryRunner, RunConfig,
};
use eraser_repro::eraser_core::{
    ControlLawKind, Experiment, LeakageProfile, PolicyKind, StripeRoundContext, StripedPolicy,
};
use eraser_repro::qec_core::NoiseParams;
use eraser_repro::surface_code::{RotatedCode, SlotTable};

fn assert_identical(a: &MemoryRunResult, b: &MemoryRunResult, what: &str) {
    assert_eq!(a.shots, b.shots, "{what}: shots");
    assert_eq!(a.logical_errors, b.logical_errors, "{what}: logical errors");
    assert_eq!(a.total_lrcs, b.total_lrcs, "{what}: LRC count");
    assert_eq!(a.total_erasures, b.total_erasures, "{what}: erasures");
    assert_eq!(a.speculation, b.speculation, "{what}: speculation");
    assert_eq!(a.postselection, b.postselection, "{what}: post-selection");
    // Controller telemetry is all-integer (Q16 fixed point) and merges by
    // sums and maxima, so it too must agree bit for bit.
    assert_eq!(a.controller, b.controller, "{what}: controller stats");
    // The LPR sums accumulate integer counts, so even the f64 vectors are
    // exactly reproducible.
    assert_eq!(a.lpr_total, b.lpr_total, "{what}: LPR total");
    assert_eq!(a.lpr_data, b.lpr_data, "{what}: LPR data");
    assert_eq!(a.lpr_parity, b.lpr_parity, "{what}: LPR parity");
}

fn run_width(
    runner: &MemoryRunner,
    kind: &PolicyKind,
    base: &RunConfig,
    width: usize,
) -> MemoryRunResult {
    let config = RunConfig {
        stripe_width: width,
        ..*base
    };
    runner.run(&|code| kind.build(code), &config)
}

/// The headline property: every policy of the paper, striped vs scalar,
/// with a shot count that exercises a ragged final stripe (70 = 64 + 6).
#[test]
fn stripe_width_is_bit_identical_across_all_policies() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(4e-3), 6);
    let base = RunConfig {
        shots: 70,
        seed: 0xA11CE,
        threads: 2,
        decoder: DecoderKind::Mwpm,
        ..RunConfig::default()
    };
    for kind in PolicyKind::all_standard() {
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, kind.label());
        // A narrow stripe (width 7: ten stripes of 7 shots) must agree too.
        let narrow = run_width(&runner, &kind, &base, 7);
        assert_identical(&scalar, &narrow, &format!("{} width-7", kind.label()));
    }
}

/// The DQLR protocol's slot-gated post segment, striped vs scalar.
#[test]
fn stripe_width_is_bit_identical_under_dqlr() {
    let runner = MemoryRunner::new(3, NoiseParams::exchange_transport(4e-3), 5);
    let base = RunConfig {
        shots: 70,
        seed: 77,
        threads: 1,
        protocol: LrcProtocol::Dqlr,
        decoder: DecoderKind::Mwpm,
        ..RunConfig::default()
    };
    for kind in [PolicyKind::AlwaysEveryRound, PolicyKind::eraser()] {
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, kind.label());
    }
}

/// Erasure-aware decoding threads per-lane detection noise through the
/// independent per-shot streams; striped and scalar must collect the same
/// erasure sets and decode identically.
#[test]
fn stripe_width_is_bit_identical_with_erasure_decoding() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(5e-3), 6);
    let base = RunConfig {
        shots: 70,
        seed: 31,
        threads: 2,
        decoder: DecoderKind::Mwpm,
        erasure: ErasureDetection::imperfect(0.01, 0.05),
        ..RunConfig::default()
    };
    for kind in [
        PolicyKind::eraser_m(),
        PolicyKind::eraser(),
        PolicyKind::Optimal,
    ] {
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert!(
            kind != PolicyKind::eraser_m() || striped.total_erasures > 0,
            "ERASER+M must collect erasures"
        );
        assert_identical(&scalar, &striped, kind.label());
    }
}

/// Ragged-tail property: shot counts around the stripe boundary (63, 64,
/// 65, and a single shot) all agree with the scalar path.
#[test]
fn ragged_stripe_tails_are_bit_identical() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(4e-3), 4);
    for shots in [1u64, 63, 64, 65, 130] {
        let base = RunConfig {
            shots,
            seed: 5 + shots,
            threads: 1,
            decoder: DecoderKind::Mwpm,
            ..RunConfig::default()
        };
        let kind = PolicyKind::eraser();
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, &format!("{shots} shots"));
    }
}

/// Determinism property over seeds: width {1, 64} agreement is not a
/// one-seed accident, and thread partitioning composes with striping.
#[test]
fn stripe_determinism_property_over_seeds_and_threads() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(5e-3), 5);
    for seed in 0..8u64 {
        let base = RunConfig {
            shots: 37,
            seed,
            threads: 1,
            decoder: DecoderKind::Mwpm,
            ..RunConfig::default()
        };
        let kind = PolicyKind::eraser_m();
        let scalar = run_width(&runner, &kind, &base, 1);
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, &format!("seed {seed}"));
        // Threads split the shot range mid-stripe; lanes re-form without
        // changing any shot's stream.
        let threaded = RunConfig {
            threads: 3,
            stripe_width: 64,
            ..base
        };
        let multi = runner.run(&|code| kind.build(code), &threaded);
        assert_identical(&striped, &multi, &format!("seed {seed} threaded"));
    }
}

/// Adaptive (feedback-controlled) policies keep the stripe invariant: each
/// lane runs its own controller, decisions become per-lane slot masks, and
/// the merged run — telemetry included — matches the scalar path exactly,
/// under a leakage storm that actually trips the escalator.
#[test]
fn adaptive_policies_are_bit_identical_across_widths_and_threads() {
    let runner = MemoryRunner::new(3, NoiseParams::standard(3e-3), 10);
    let base = RunConfig {
        shots: 70,
        seed: 0x570_12F,
        threads: 1,
        decoder: DecoderKind::Mwpm,
        profile: LeakageProfile::Burst {
            start: 3,
            len: 3,
            period: 7,
            rate: 0.08,
        },
        ..RunConfig::default()
    };
    for law in [ControlLawKind::Ewma, ControlLawKind::Budget] {
        let kind = PolicyKind::adaptive(law);
        let scalar = run_width(&runner, &kind, &base, 1);
        assert!(
            scalar.controller.escalations > 0,
            "{}: the storm must trip the controller for the test to bite",
            kind.label()
        );
        let striped = run_width(&runner, &kind, &base, 64);
        assert_identical(&scalar, &striped, kind.label());
        let narrow = run_width(&runner, &kind, &base, 7);
        assert_identical(&scalar, &narrow, &format!("{} width-7", kind.label()));
        // Thread partitioning splits the shot range mid-stripe; the
        // controller harvest merges per lane, so counts cannot drift.
        let threaded = RunConfig {
            threads: 3,
            stripe_width: 64,
            ..base
        };
        let multi = runner.run(&|code| kind.build(code), &threaded);
        assert_identical(&striped, &multi, &format!("{} threaded", kind.label()));
    }
}

/// Structural property: striped adaptive planning stays a masked selection
/// over the code's static slot table. Lanes fed a leakage storm escalate
/// and populate their mask bits; quiet lanes stay silent — on the *same*
/// schedule, with no per-lane slot structure.
#[test]
fn adaptive_striped_planning_is_masked_static_schedule_selection() {
    let code = RotatedCode::new(3);
    let slots = SlotTable::new(&code);
    let factory = |code: &RotatedCode| PolicyKind::adaptive(ControlLawKind::Ewma).build(code);
    let mut policy = StripedPolicy::new(&factory, &code, 2);
    policy.reset_stripe(2);
    let mut slot_masks = vec![0u64; slots.len()];

    // Lane 0 sees every stabilizer fire with |L⟩ labels (a storm); lane 1
    // sees nothing. Repeat for a few rounds so the EWMA clears its dwell.
    let stormy_lane = 1u64; // bit 0
    let events: Vec<u64> = vec![stormy_lane; code.num_stabs()];
    let labels: Vec<u64> = vec![stormy_lane; code.num_stabs()];
    let oracle: Vec<u64> = vec![0; code.num_data()];
    let mut lane0_planned = 0u32;
    for round in 0..6 {
        policy.plan_round(
            &StripeRoundContext {
                round,
                events: &events,
                leaked_readouts: &labels,
                oracle_leaked_data: &oracle,
                active: 0b11,
            },
            &slots,
            &mut slot_masks,
        );
        // Every scheduled LRC is a mask bit on an existing static slot —
        // the mask vector's length never leaves the slot table's.
        assert_eq!(slot_masks.len(), slots.len());
        for (slot, &mask) in slot_masks.iter().enumerate() {
            assert_eq!(
                mask & !0b11,
                0,
                "slot {slot}: mask bits outside the active stripe"
            );
            assert_eq!(mask & 0b10, 0, "slot {slot}: the quiet lane planned an LRC");
            lane0_planned += (mask & 0b01) as u32;
        }
    }
    assert!(
        lane0_planned > 0,
        "the stormy lane must escalate into a non-empty masked schedule"
    );
    assert!(
        policy.lane_controller(0).unwrap().escalations > 0,
        "lane 0's controller must have escalated"
    );
    assert_eq!(
        policy.lane_controller(1).unwrap().escalations,
        0,
        "lane 1's controller must have stayed in base mode"
    );
}

/// The facade knob reaches the runtime and validates its range.
#[test]
fn stripe_width_knob_on_the_facade() {
    let build = |width: usize| {
        Experiment::builder()
            .distance(3)
            .noise(NoiseParams::standard(2e-3))
            .rounds(3)
            .policy(PolicyKind::eraser())
            .shots(40)
            .seed(9)
            .stripe_width(width)
            .build()
    };
    let scalar = build(1).expect("valid").run();
    let striped = build(64).expect("valid").run();
    assert_identical(&scalar, &striped, "facade");
    assert!(build(65).is_err(), "width > 64 must be rejected");
    assert!(build(0).is_ok(), "0 = auto");
}
