//! Failure injection: force a cluster of data qubits into |L⟩ mid-run and
//! assert that the ERASER pipeline detects and removes the leakage within a
//! few rounds — the end-to-end version of the paper's "real-time leakage
//! suppression" claim.

use eraser_repro::eraser_core::{EraserPolicy, LrcPolicy, RoundContext};
use eraser_repro::leak_sim::{Discriminator, FrameSimulator};
use eraser_repro::qec_core::{NoiseParams, Rng};
use eraser_repro::surface_code::{LrcAssignment, MemoryExperiment, RotatedCode, StabKind};

/// Runs one storm scenario; returns, per round, the set of leaked storm
/// qubits and the LRC plan.
fn run_storm(seed: u64, storm_round: usize) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let code = RotatedCode::new(5);
    let rounds = storm_round + 6;
    let noise = NoiseParams::standard(1e-4); // quiet background
    let exp = MemoryExperiment::new(code.clone(), noise, rounds);
    let keys = *exp.keys();
    let builder = exp.round_builder();
    let mut sim = FrameSimulator::new(
        code.num_qubits(),
        keys.total(),
        noise,
        Discriminator::TwoLevel,
        Rng::new(seed),
    );
    let mut policy = EraserPolicy::new(&code);
    sim.run(&exp.init_segment());

    let storm = [
        code.data_qubit(2, 2),
        code.data_qubit(2, 3),
        code.data_qubit(3, 2),
    ];
    let mut prev = vec![false; code.num_stabs()];
    let mut events = vec![false; code.num_stabs()];
    let labels = vec![false; code.num_stabs()];
    let oracle = vec![false; code.num_data()];
    let mut last: Vec<LrcAssignment> = Vec::new();
    let mut leaked_history = Vec::new();
    let mut plan_history = Vec::new();

    for r in 0..rounds {
        if r == storm_round {
            for &q in &storm {
                sim.force_leak(q);
            }
        }
        let plan = policy.plan_round(&RoundContext {
            round: r,
            events: &events,
            leaked_readouts: &labels,
            oracle_leaked_data: &oracle,
            last_lrcs: &last,
        });
        let round = builder.round(r, &plan, &keys);
        sim.run(&round.pre);
        leaked_history.push(
            storm
                .iter()
                .copied()
                .filter(|&q| sim.is_leaked(q))
                .collect(),
        );
        plan_history.push(plan.iter().map(|l| l.data).collect());
        sim.run(&round.measure);
        sim.run(&round.mr_reset);
        for tail in &round.lrc_post {
            sim.run(&tail.swap_back);
        }
        for s in 0..code.num_stabs() {
            let flip = sim.record().flip(keys.stab_key(r, s));
            events[s] = if r == 0 {
                code.stabilizers()[s].kind == StabKind::Z && flip
            } else {
                flip ^ prev[s]
            };
            prev[s] = flip;
        }
        last = plan;
    }
    (leaked_history, plan_history)
}

#[test]
fn eraser_recovers_from_a_forced_leakage_storm() {
    let storm_round = 3;
    let mut recoveries = 0;
    let trials = 20;
    for seed in 0..trials {
        let (leaked, _plans) = run_storm(1000 + seed, storm_round);
        // The storm is present when injected.
        assert_eq!(leaked[storm_round].len(), 3, "seed {seed}: storm must land");
        // Within five rounds the stormed qubits are clean again: visible
        // leakage randomizes ~half the neighbouring checks per round, so
        // detection within two rounds is overwhelmingly likely, plus a round
        // to schedule and execute — with slack because conservative
        // transport occasionally re-leaks a just-cleaned qubit through a
        // contaminated parity neighbour.
        let last_round = leaked.len() - 1;
        if leaked[last_round.min(storm_round + 5)].is_empty() {
            recoveries += 1;
        }
    }
    assert!(
        recoveries >= trials - 4,
        "storm recovery rate too low: {recoveries}/{trials}"
    );
}

#[test]
fn eraser_targets_the_stormed_region() {
    // The LRCs scheduled right after the storm must be concentrated on the
    // stormed qubits and their immediate neighbourhood.
    let storm_round = 3;
    let mut targeted = 0;
    let trials = 20;
    let code = RotatedCode::new(5);
    let storm = [
        code.data_qubit(2, 2),
        code.data_qubit(2, 3),
        code.data_qubit(3, 2),
    ];
    for seed in 0..trials {
        let (_leaked, plans) = run_storm(2000 + seed, storm_round);
        let scheduled: std::collections::HashSet<usize> = plans
            [storm_round + 1..(storm_round + 3).min(plans.len())]
            .iter()
            .flatten()
            .copied()
            .collect();
        if storm.iter().filter(|q| scheduled.contains(q)).count() >= 2 {
            targeted += 1;
        }
    }
    assert!(
        targeted >= trials - 4,
        "ERASER must aim at the storm: {targeted}/{trials}"
    );
}
