//! Failure injection through the facade: a [`LeakageProfile`] burst leaks
//! every data qubit mid-run, and the per-round LPR trace must show the
//! ERASER pipeline detecting and removing the leakage within a few rounds —
//! the end-to-end version of the paper's "real-time leakage suppression"
//! claim, plus the adaptive controller's escalate-then-recover telemetry.
//!
//! These tests run whatever `ERASER_STRIPE` / `ERASER_THREADS` the CI
//! matrix sets: the assertions are on physics the stripe width and thread
//! count must not change.

use eraser_repro::eraser_core::runtime::MemoryRunResult;
use eraser_repro::eraser_core::{ControlLawKind, Experiment, LeakageProfile, PolicyKind};
use eraser_repro::qec_core::NoiseParams;

const STORM_ROUND: usize = 3;
const ROUNDS: usize = 12;

/// One burst scenario: a quiet background with every data qubit leaking
/// with p = 0.5 at round 3.
fn run_storm(policy: PolicyKind) -> MemoryRunResult {
    Experiment::builder()
        .distance(5)
        .noise(NoiseParams::standard(1e-4))
        .rounds(ROUNDS)
        .policy(policy)
        .shots(200)
        .seed(1000)
        .leakage_profile(LeakageProfile::Burst {
            start: STORM_ROUND,
            len: 1,
            period: 0,
            rate: 0.5,
        })
        .build()
        .expect("a valid storm experiment")
        .run()
}

#[test]
fn eraser_recovers_from_a_leakage_burst() {
    let eraser = run_storm(PolicyKind::eraser());
    // The storm lands: about half the data qubits leak at the burst round.
    assert!(
        eraser.lpr_data[STORM_ROUND] > 0.3,
        "storm must land: LPR {} at round {STORM_ROUND}",
        eraser.lpr_data[STORM_ROUND]
    );
    // ERASER speculates the leaked qubits from their randomized parity
    // checks and its LRCs reset them: by the final round the leaked
    // fraction is back within a few percent of the quiet background.
    assert!(
        eraser.lpr_data[ROUNDS - 1] < 0.1,
        "ERASER must drain the storm: final LPR {}",
        eraser.lpr_data[ROUNDS - 1]
    );
}

#[test]
fn leakage_persists_without_lrcs() {
    // The control arm: seepage is far slower than the round clock, so with
    // no LRCs the burst never drains — that persistence is exactly what
    // makes the recovery assertions above meaningful.
    let no_lrc = run_storm(PolicyKind::NoLrc);
    assert!(
        no_lrc.lpr_data[STORM_ROUND] > 0.3,
        "storm must land: LPR {}",
        no_lrc.lpr_data[STORM_ROUND]
    );
    assert!(
        no_lrc.lpr_data[ROUNDS - 1] > 0.4,
        "without LRCs the storm must persist: final LPR {}",
        no_lrc.lpr_data[ROUNDS - 1]
    );
}

#[test]
fn adaptive_controller_escalates_on_the_burst_and_recovers() {
    let adaptive = run_storm(PolicyKind::adaptive(ControlLawKind::Ewma));
    // Suppression: the controller's escalated mode clears the storm as
    // fast as the static pipeline.
    assert!(
        adaptive.lpr_data[ROUNDS - 1] < 0.1,
        "adaptive must drain the storm: final LPR {}",
        adaptive.lpr_data[ROUNDS - 1]
    );
    // Telemetry: every shot sees the burst, so every shot escalates at
    // least once; the estimate decays afterwards, so base-mode rounds
    // remain on both sides of the storm.
    let ctrl = &adaptive.controller;
    assert!(ctrl.is_active(), "adaptive runs must report telemetry");
    assert_eq!(ctrl.rounds(), 200 * ROUNDS as u64);
    assert!(
        ctrl.escalations >= 200,
        "every shot must escalate on the burst: {} escalations",
        ctrl.escalations
    );
    assert!(
        ctrl.rounds_escalated > 0 && ctrl.rounds_base > 0,
        "the run must spend time in both modes: {} escalated / {} base",
        ctrl.rounds_escalated,
        ctrl.rounds_base
    );
    // The quiet rounds before the storm keep the duty cycle well below 1.
    assert!(
        ctrl.escalated_fraction() < 0.9,
        "the controller must recover to base: duty {}",
        ctrl.escalated_fraction()
    );
    assert!(
        ctrl.peak_estimate() > ctrl.mean_estimate(),
        "the storm must dominate the estimator's peak"
    );
}

#[test]
fn storm_recovery_is_stripe_invariant() {
    // The same storm, scalar vs 64-lane striped, must agree bit for bit —
    // LPR trace, logical errors, and controller telemetry alike.
    let run = |policy: PolicyKind, stripe: usize| {
        Experiment::builder()
            .distance(5)
            .noise(NoiseParams::standard(1e-4))
            .rounds(ROUNDS)
            .policy(policy)
            .shots(100)
            .seed(2000)
            .stripe_width(stripe)
            .leakage_profile(LeakageProfile::Burst {
                start: STORM_ROUND,
                len: 1,
                period: 0,
                rate: 0.5,
            })
            .build()
            .expect("a valid storm experiment")
            .run()
    };
    for policy in [
        PolicyKind::eraser(),
        PolicyKind::adaptive(ControlLawKind::Ewma),
    ] {
        let scalar = run(policy.clone(), 1);
        let striped = run(policy.clone(), 64);
        assert_eq!(
            scalar.logical_errors, striped.logical_errors,
            "{policy}: logical errors"
        );
        assert_eq!(scalar.lpr_data, striped.lpr_data, "{policy}: LPR trace");
        assert_eq!(scalar.total_lrcs, striped.total_lrcs, "{policy}: LRCs");
        assert_eq!(
            scalar.controller, striped.controller,
            "{policy}: controller stats"
        );
    }
}
