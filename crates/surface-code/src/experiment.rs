//! Memory-experiment specification: measurement-record layout, detectors, and
//! the logical observable.
//!
//! A memory-Z experiment (the paper's state-preservation workload, §5.3)
//! initializes every data qubit in |0⟩, runs `R` syndrome-extraction rounds,
//! and finally measures every data qubit in the Z basis. The decoder sees:
//!
//! * one detector per Z stabilizer in round 0 (its first outcome is
//!   deterministic),
//! * one detector per stabilizer (either basis) comparing consecutive rounds,
//! * one final detector per Z stabilizer comparing its last round against the
//!   parity reconstructed from the transversal data readout,
//!
//! and one logical observable: the parity of the top data-qubit row (the
//! support of logical Z).

use crate::circuits::{LrcAssignment, RoundBuilder};
use crate::layout::{RotatedCode, StabKind};
use qec_core::circuit::DetectorBasis;
use qec_core::{Circuit, DetectorInfo, MeasKey, NoiseParams, Op};

/// Measurement-record layout for an `R`-round memory experiment.
///
/// Round `r`'s stabilizer outcomes occupy keys `r·S .. (r+1)·S` (where `S` is
/// the stabilizer count) regardless of which physical qubit produced them;
/// the final transversal data readout occupies the last `d²` keys.
///
/// # Example
///
/// ```
/// use surface_code::KeyLayout;
///
/// let keys = KeyLayout::new(3, 8, 9);
/// assert_eq!(keys.stab_key(2, 5), 21);
/// assert_eq!(keys.final_key(0), 24);
/// assert_eq!(keys.total(), 33);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyLayout {
    rounds: usize,
    num_stabs: usize,
    num_data: usize,
}

impl KeyLayout {
    /// Creates a layout for `rounds` rounds over `num_stabs` stabilizers and
    /// `num_data` data qubits.
    pub fn new(rounds: usize, num_stabs: usize, num_data: usize) -> KeyLayout {
        KeyLayout {
            rounds,
            num_stabs,
            num_data,
        }
    }

    /// Number of syndrome-extraction rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Key of stabilizer `stab`'s outcome in round `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round` or `stab` is out of range.
    pub fn stab_key(&self, round: usize, stab: usize) -> MeasKey {
        assert!(round < self.rounds && stab < self.num_stabs);
        round * self.num_stabs + stab
    }

    /// Key of data qubit `data`'s final transversal readout.
    ///
    /// # Panics
    ///
    /// Panics if `data` is out of range.
    pub fn final_key(&self, data: usize) -> MeasKey {
        assert!(data < self.num_data);
        self.rounds * self.num_stabs + data
    }

    /// Total number of measurement keys.
    pub fn total(&self) -> usize {
        self.rounds * self.num_stabs + self.num_data
    }

    /// Inverts a key into `(round, stab)` if it is a stabilizer key.
    pub fn key_to_round_stab(&self, key: MeasKey) -> Option<(usize, usize)> {
        (key < self.rounds * self.num_stabs).then(|| (key / self.num_stabs, key % self.num_stabs))
    }
}

/// Which logical state a memory experiment preserves.
///
/// A memory-Z experiment prepares |0…0⟩, tracks logical Z (flipped by X
/// errors, detected by Z stabilizers); a memory-X experiment prepares |+…+⟩
/// and tracks logical X (flipped by Z errors, detected by X stabilizers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemoryBasis {
    /// Preserve logical Z (the paper's workload).
    #[default]
    Z,
    /// Preserve logical X.
    X,
}

impl MemoryBasis {
    /// The stabilizer kind whose round-0 outcomes are deterministic and
    /// whose detectors are decoded.
    pub fn stab_kind(self) -> StabKind {
        match self {
            MemoryBasis::Z => StabKind::Z,
            MemoryBasis::X => StabKind::X,
        }
    }
}

/// A memory experiment over a rotated surface code (memory-Z by default, the
/// paper's workload; memory-X via [`MemoryExperiment::new_with_basis`]).
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use surface_code::{MemoryExperiment, RotatedCode};
///
/// let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 3);
/// assert_eq!(exp.rounds(), 3);
/// assert_eq!(exp.observable_keys().len(), 3); // logical-Z support = d qubits
/// let circuit = exp.base_circuit();
/// assert_eq!(circuit.num_keys(), exp.keys().total());
/// ```
#[derive(Debug, Clone)]
pub struct MemoryExperiment {
    code: RotatedCode,
    noise: NoiseParams,
    rounds: usize,
    keys: KeyLayout,
    basis: MemoryBasis,
}

impl MemoryExperiment {
    /// Creates an `rounds`-round memory-Z experiment.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(code: RotatedCode, noise: NoiseParams, rounds: usize) -> MemoryExperiment {
        MemoryExperiment::new_with_basis(code, noise, rounds, MemoryBasis::Z)
    }

    /// Creates a memory experiment preserving the given logical basis.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new_with_basis(
        code: RotatedCode,
        noise: NoiseParams,
        rounds: usize,
        basis: MemoryBasis,
    ) -> MemoryExperiment {
        assert!(rounds >= 1, "memory experiment needs at least one round");
        let keys = KeyLayout::new(rounds, code.num_stabs(), code.num_data());
        MemoryExperiment {
            code,
            noise,
            rounds,
            keys,
            basis,
        }
    }

    /// The preserved logical basis.
    pub fn basis(&self) -> MemoryBasis {
        self.basis
    }

    /// The underlying code.
    pub fn code(&self) -> &RotatedCode {
        &self.code
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    /// Number of syndrome-extraction rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The measurement-record layout.
    pub fn keys(&self) -> &KeyLayout {
        &self.keys
    }

    /// A round builder bound to this experiment's code and noise model.
    pub fn round_builder(&self) -> RoundBuilder<'_> {
        RoundBuilder::new(&self.code, self.noise)
    }

    /// Initialization segment: reset every qubit, apply init errors (§5.2.1:
    /// "initialization errors on qubits after a reset"), and — for memory-X —
    /// rotate the data qubits into |+⟩ with noisy Hadamards.
    pub fn init_segment(&self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(2 * self.code.num_qubits());
        for q in 0..self.code.num_qubits() {
            ops.push(Op::Reset(q));
            ops.push(Op::XError {
                qubit: q,
                p: self.noise.p,
            });
        }
        if self.basis == MemoryBasis::X {
            for q in 0..self.code.num_data() {
                ops.push(Op::H(q));
                ops.push(Op::Depolarize1 {
                    qubit: q,
                    p: self.noise.p,
                });
            }
        }
        ops
    }

    /// Final segment: transversal readout of every data qubit in the memory
    /// basis (memory-X rotates back with noisy Hadamards first).
    pub fn final_segment(&self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(2 * self.code.num_data());
        if self.basis == MemoryBasis::X {
            for q in 0..self.code.num_data() {
                ops.push(Op::H(q));
                ops.push(Op::Depolarize1 {
                    qubit: q,
                    p: self.noise.p,
                });
            }
        }
        for q in 0..self.code.num_data() {
            ops.push(Op::XError {
                qubit: q,
                p: self.noise.p,
            });
            ops.push(Op::Measure {
                qubit: q,
                key: self.keys.final_key(q),
            });
        }
        ops
    }

    /// All detector definitions: round-0 detectors for the memory basis
    /// (those stabilizers start deterministic), consecutive-round pairs of
    /// both bases, and final reconstruction detectors from the transversal
    /// readout.
    pub fn detectors(&self) -> Vec<DetectorInfo> {
        let mut out = Vec::new();
        let det_kind = self.basis.stab_kind();
        let det_basis = match det_kind {
            StabKind::Z => DetectorBasis::Z,
            StabKind::X => DetectorBasis::X,
        };
        let det_ids = self.code.stab_ids(det_kind);
        // Round 0: the memory-basis stabilizers start deterministic (|0…0⟩ /
        // |+…+⟩ are +1 eigenstates); the other basis is random in round 0 and
        // only becomes comparable from round 1.
        for &s in &det_ids {
            out.push(DetectorInfo {
                keys: vec![self.keys.stab_key(0, s)],
                basis: det_basis,
                stabilizer: s,
                round: 0,
            });
        }
        for r in 1..self.rounds {
            for (s, stab) in self.code.stabilizers().iter().enumerate() {
                let basis = match stab.kind {
                    StabKind::X => DetectorBasis::X,
                    StabKind::Z => DetectorBasis::Z,
                };
                out.push(DetectorInfo {
                    keys: vec![self.keys.stab_key(r, s), self.keys.stab_key(r - 1, s)],
                    basis,
                    stabilizer: s,
                    round: r,
                });
            }
        }
        // Final detectors: each memory-basis stabilizer's last readout
        // against the parity of its support in the transversal readout.
        for &s in &det_ids {
            let mut keys: Vec<MeasKey> = self.code.stabilizers()[s]
                .support()
                .map(|q| self.keys.final_key(q))
                .collect();
            keys.push(self.keys.stab_key(self.rounds - 1, s));
            out.push(DetectorInfo {
                keys,
                basis: det_basis,
                stabilizer: s,
                round: self.rounds,
            });
        }
        out
    }

    /// Keys whose parity is the preserved logical observable (final readout
    /// of the logical-Z row or logical-X column).
    pub fn observable_keys(&self) -> Vec<MeasKey> {
        let support = match self.basis {
            MemoryBasis::Z => self.code.logical_z_support(),
            MemoryBasis::X => self.code.logical_x_support(),
        };
        support
            .into_iter()
            .map(|q| self.keys.final_key(q))
            .collect()
    }

    /// The full static circuit with **no LRCs**: init, `R` plain rounds, final
    /// readout. This is the circuit the decoder's error model is built from
    /// (the decoder is leakage- and LRC-unaware, per the paper's premise) and
    /// the circuit used by the tableau-based verification tests.
    pub fn base_circuit(&self) -> Circuit {
        let mut circuit = Circuit::new(self.code.num_qubits());
        circuit.alloc_keys(self.keys.total());
        circuit.extend(self.init_segment());
        let builder = self.round_builder();
        for r in 0..self.rounds {
            let round = builder.round(r, &[], &self.keys);
            circuit.extend(round.pre);
            circuit.extend(round.measure);
            circuit.extend(round.mr_reset);
            debug_assert!(round.lrc_post.is_empty() && round.post.is_empty());
        }
        circuit.extend(self.final_segment());
        circuit
    }

    /// Like [`MemoryExperiment::base_circuit`] but with fixed LRC assignments
    /// applied on alternating rounds — the static Always-LRC circuit, useful
    /// for inspection and tests.
    pub fn always_lrc_circuit(&self, schedule: &[Vec<LrcAssignment>]) -> Circuit {
        let mut circuit = Circuit::new(self.code.num_qubits());
        circuit.alloc_keys(self.keys.total());
        circuit.extend(self.init_segment());
        let builder = self.round_builder();
        for r in 0..self.rounds {
            let lrcs: &[LrcAssignment] = schedule
                .get(r % schedule.len().max(1))
                .map(|v| v.as_slice())
                .unwrap_or(&[]);
            let round = builder.round(r, lrcs, &self.keys);
            circuit.extend(round.pre);
            circuit.extend(round.measure);
            circuit.extend(round.mr_reset);
            for tail in round.lrc_post {
                circuit.extend(tail.swap_back);
            }
            circuit.extend(round.post);
        }
        circuit.extend(self.final_segment());
        circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp(d: usize, rounds: usize) -> MemoryExperiment {
        MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds)
    }

    #[test]
    fn key_layout_round_trips() {
        let keys = KeyLayout::new(5, 24, 25);
        for r in 0..5 {
            for s in 0..24 {
                let k = keys.stab_key(r, s);
                assert_eq!(keys.key_to_round_stab(k), Some((r, s)));
            }
        }
        assert_eq!(keys.key_to_round_stab(keys.final_key(0)), None);
        assert_eq!(keys.total(), 5 * 24 + 25);
    }

    #[test]
    fn detector_census() {
        for (d, rounds) in [(3usize, 3usize), (5, 5), (3, 1)] {
            let e = exp(d, rounds);
            let n_half = (d * d - 1) / 2;
            let expected = n_half                      // round-0 Z
                + (rounds - 1) * (d * d - 1)           // bulk, both bases
                + n_half; // final Z
            assert_eq!(e.detectors().len(), expected, "d={d} rounds={rounds}");
        }
    }

    #[test]
    fn detector_keys_are_in_range() {
        let e = exp(3, 4);
        let total = e.keys().total();
        for det in e.detectors() {
            assert!(!det.keys.is_empty());
            for k in det.keys {
                assert!(k < total);
            }
        }
    }

    #[test]
    fn observable_is_logical_z_row() {
        let e = exp(5, 2);
        let obs = e.observable_keys();
        assert_eq!(obs.len(), 5);
        // Keys must be final-readout keys of the top data row.
        for (c, key) in obs.iter().enumerate() {
            assert_eq!(*key, e.keys().final_key(e.code().data_qubit(0, c)));
        }
    }

    #[test]
    fn base_circuit_measures_every_key_once() {
        let e = exp(3, 3);
        let circuit = e.base_circuit();
        let mut seen = vec![0usize; circuit.num_keys()];
        for op in circuit.ops() {
            if let Op::Measure { key, .. } = op {
                seen[*key] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each key measured exactly once"
        );
    }

    #[test]
    fn base_circuit_op_budget_scales() {
        let small = exp(3, 2).base_circuit().ops().len();
        let large = exp(5, 2).base_circuit().ops().len();
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        exp(3, 0);
    }

    #[test]
    fn final_detectors_cover_all_z_stabs() {
        let e = exp(5, 3);
        let finals: Vec<_> = e
            .detectors()
            .into_iter()
            .filter(|det| det.round == 3)
            .collect();
        assert_eq!(finals.len(), 12);
        for det in &finals {
            // weight-2 or weight-4 support plus the last stabilizer readout.
            assert!(det.keys.len() == 3 || det.keys.len() == 5);
        }
    }

    #[test]
    fn memory_x_experiment_mirrors_memory_z() {
        let code = RotatedCode::new(5);
        let noise = NoiseParams::standard(1e-3);
        let z = MemoryExperiment::new(code.clone(), noise, 3);
        let x = MemoryExperiment::new_with_basis(code.clone(), noise, 3, MemoryBasis::X);
        assert_eq!(z.basis(), MemoryBasis::Z);
        assert_eq!(x.basis(), MemoryBasis::X);
        // Same key layout and detector count, mirrored bases.
        assert_eq!(z.detectors().len(), x.detectors().len());
        let count_basis =
            |exp: &MemoryExperiment, b| exp.detectors().iter().filter(|d| d.basis == b).count();
        use qec_core::circuit::DetectorBasis;
        assert_eq!(
            count_basis(&z, DetectorBasis::Z),
            count_basis(&x, DetectorBasis::X)
        );
        // X init/readout adds two noisy Hadamard layers on data qubits.
        let h_count = |ops: &[Op]| ops.iter().filter(|o| matches!(o, Op::H(_))).count();
        assert_eq!(h_count(&x.init_segment()), code.num_data());
        assert_eq!(h_count(&x.final_segment()), code.num_data());
        assert_eq!(h_count(&z.init_segment()), 0);
        // Observables differ: row vs column.
        assert_ne!(z.observable_keys(), x.observable_keys());
        assert_eq!(x.observable_keys().len(), 5);
    }

    #[test]
    fn memory_x_round0_detectors_are_x_basis() {
        use qec_core::circuit::DetectorBasis;
        let e = MemoryExperiment::new_with_basis(
            RotatedCode::new(3),
            NoiseParams::standard(1e-3),
            2,
            MemoryBasis::X,
        );
        for det in e.detectors().iter().filter(|d| d.round == 0) {
            assert_eq!(det.basis, DetectorBasis::X);
        }
    }

    #[test]
    fn always_lrc_circuit_has_more_cnots() {
        let e = exp(3, 4);
        let base = e.base_circuit();
        // Alternate rounds: odd rounds apply one LRC on data 4.
        let stab = e.code().adjacent_stabs(4)[0];
        let schedule = vec![vec![], vec![LrcAssignment { data: 4, stab }]];
        let with = e.always_lrc_circuit(&schedule);
        let count =
            |c: &Circuit| c.count(|o| matches!(o, Op::Cnot { .. } | Op::CnotNoTransport { .. }));
        assert_eq!(count(&with), count(&base) + 2 * 5);
    }
}
