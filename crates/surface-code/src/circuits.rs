//! Syndrome-extraction round synthesis, with and without leakage-reduction
//! circuits.
//!
//! A plain round (Fig 4(a)) is: round-start noise, H on X-ancillas, four CNOT
//! dance layers, H, measure + reset of every parity qubit.
//!
//! A SWAP-LRC on a pair `(D, P)` (Fig 4(b)) extends P's round with five extra
//! CNOTs:
//!
//! 1. after the dance, `SWAP(D, P)` as three CNOTs — D now holds the
//!    stabilizer readout state, P holds D's (possibly leaked) state;
//! 2. D is measured in place of P (the outcome is recorded under the *same*
//!    measurement key, so detectors are unchanged) and reset — this is the
//!    step that removes leakage from D, because a leaked state does not move
//!    through the computational-basis SWAP and gets destroyed by D's reset;
//! 3. two CNOTs `CX(P,D); CX(D,P)` move P's held state back onto the reset D,
//!    leaving P in |0⟩.
//!
//! The parity qubit therefore participates in 4 + 3 + 2 = 9 CNOTs, four of
//! which interact with D before D's reset — exactly the operation counts
//! behind the paper's Eq. (1) and Eq. (2).
//!
//! The DQLR protocol (Appendix A.2, Fig 19) instead appends, after the normal
//! measure+reset, a `LeakageISWAP(D, P)` followed by a second reset of P.

use crate::experiment::KeyLayout;
use crate::layout::{RotatedCode, StabKind};
use qec_core::{MeasKey, NoiseParams, Op, QubitId};

/// A scheduled leakage-reduction circuit: data qubit `data` swaps with the
/// parity qubit of stabilizer `stab`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LrcAssignment {
    /// The data qubit whose leakage should be removed.
    pub data: QubitId,
    /// Index of the stabilizer whose parity qubit is borrowed for the SWAP.
    pub stab: usize,
}

/// The post-measurement tail of one SWAP-LRC, kept separate so an adaptive
/// controller (ERASER+M, §4.6.2) can branch on the data qubit's readout label.
#[derive(Debug, Clone, PartialEq)]
pub struct LrcPost {
    /// Data qubit of the pair.
    pub data: QubitId,
    /// Parity qubit of the pair.
    pub parity: QubitId,
    /// Measurement key holding the data qubit's readout this round.
    pub data_key: MeasKey,
    /// Normal path: two CNOTs returning P's held state onto the reset D.
    pub swap_back: Vec<Op>,
    /// ERASER+M path when the readout is |L⟩: the swap-back is squashed and P
    /// is reset instead (its content is meaningless after a failed SWAP).
    pub leak_path: Vec<Op>,
}

/// One fully-synthesized syndrome-extraction round, split into segments so the
/// runtime can probe leakage population between them and branch on readout.
///
/// Execution order: `pre` → `measure` → `mr_reset` → each `lrc_post` →
/// `post`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SyndromeRound {
    /// Round-start noise, Hadamards, dance CNOTs, LRC swap-ins.
    pub pre: Vec<Op>,
    /// Measurement flips and measurements (parity qubits, or data qubits for
    /// LRC'd stabilizers).
    pub measure: Vec<Op>,
    /// Resets (and init errors) of every qubit measured this round.
    pub mr_reset: Vec<Op>,
    /// Per-LRC swap-back segments.
    pub lrc_post: Vec<LrcPost>,
    /// Trailing segment (DQLR leakage-removal operations).
    pub post: Vec<Op>,
    /// The LRC assignments this round was built with (for metrics).
    pub lrcs: Vec<LrcAssignment>,
}

impl SyndromeRound {
    /// Total CNOT count across all segments (counting both branches of an LRC
    /// tail once, via the normal path).
    pub fn cnot_count(&self) -> usize {
        let count = |ops: &[Op]| {
            ops.iter()
                .filter(|o| matches!(o, Op::Cnot { .. } | Op::CnotNoTransport { .. }))
                .count()
        };
        count(&self.pre)
            + count(&self.measure)
            + count(&self.mr_reset)
            + count(&self.post)
            + self
                .lrc_post
                .iter()
                .map(|l| count(&l.swap_back))
                .sum::<usize>()
    }
}

/// Builds syndrome-extraction rounds for a given code and noise model.
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use surface_code::{KeyLayout, LrcAssignment, RotatedCode, RoundBuilder};
///
/// let code = RotatedCode::new(3);
/// let keys = KeyLayout::new(2, code.num_stabs(), code.num_data());
/// let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
///
/// let plain = builder.round(0, &[], &keys);
/// let stab = code.adjacent_stabs(4)[0];
/// let with_lrc = builder.round(1, &[LrcAssignment { data: 4, stab }], &keys);
/// assert_eq!(with_lrc.cnot_count(), plain.cnot_count() + 5);
/// ```
#[derive(Debug, Clone)]
pub struct RoundBuilder<'a> {
    code: &'a RotatedCode,
    noise: NoiseParams,
}

impl<'a> RoundBuilder<'a> {
    /// Creates a builder for `code` under `noise`.
    pub fn new(code: &'a RotatedCode, noise: NoiseParams) -> RoundBuilder<'a> {
        RoundBuilder { code, noise }
    }

    /// The code this builder targets.
    pub fn code(&self) -> &RotatedCode {
        self.code
    }

    /// The noise model this builder synthesizes with.
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    fn push_cnot(&self, ops: &mut Vec<Op>, control: QubitId, target: QubitId) {
        self.push_cnot_op(ops, Op::Cnot { control, target });
    }

    /// Swap-back CNOTs: the data qubit was just reset to |0⟩, so the
    /// |11⟩↔|02⟩ transport pathway is closed (Eq. (2): "the other two CNOTs
    /// … are unlikely to cause leakage transport").
    fn push_cnot_no_transport(&self, ops: &mut Vec<Op>, control: QubitId, target: QubitId) {
        self.push_cnot_op(ops, Op::CnotNoTransport { control, target });
    }

    fn push_cnot_op(&self, ops: &mut Vec<Op>, gate: Op) {
        let (control, target) = match gate {
            Op::Cnot { control, target } | Op::CnotNoTransport { control, target } => {
                (control, target)
            }
            _ => unreachable!("push_cnot_op only takes CNOT variants"),
        };
        ops.push(gate);
        ops.push(Op::Depolarize2 {
            a: control,
            b: target,
            p: self.noise.p,
        });
        let leak = self.noise.leak_p();
        if leak > 0.0 {
            ops.push(Op::LeakInject {
                qubit: control,
                p: leak,
            });
            ops.push(Op::LeakInject {
                qubit: target,
                p: leak,
            });
        }
    }

    fn push_h(&self, ops: &mut Vec<Op>, q: QubitId) {
        ops.push(Op::H(q));
        ops.push(Op::Depolarize1 {
            qubit: q,
            p: self.noise.p,
        });
    }

    fn validate_lrcs(&self, lrcs: &[LrcAssignment]) {
        let mut stab_used = vec![false; self.code.num_stabs()];
        let mut data_used = vec![false; self.code.num_data()];
        for lrc in lrcs {
            assert!(
                self.code.adjacent_stabs(lrc.data).contains(&lrc.stab),
                "LRC pairs data {} with non-adjacent stabilizer {}",
                lrc.data,
                lrc.stab
            );
            assert!(
                !stab_used[lrc.stab],
                "stabilizer {} used by two LRCs",
                lrc.stab
            );
            assert!(!data_used[lrc.data], "data {} used by two LRCs", lrc.data);
            stab_used[lrc.stab] = true;
            data_used[lrc.data] = true;
        }
    }

    /// Synthesizes round `round` with the given SWAP-LRC assignments.
    ///
    /// # Panics
    ///
    /// Panics if an assignment pairs a data qubit with a non-adjacent
    /// stabilizer, or if two assignments share a data or parity qubit.
    pub fn round(&self, round: usize, lrcs: &[LrcAssignment], keys: &KeyLayout) -> SyndromeRound {
        self.validate_lrcs(lrcs);
        let code = self.code;
        let noise = &self.noise;
        let mut lrc_on_stab: Vec<Option<QubitId>> = vec![None; code.num_stabs()];
        for lrc in lrcs {
            lrc_on_stab[lrc.stab] = Some(lrc.data);
        }

        let mut pre = Vec::new();
        // Round-start channels: seepage everywhere, depolarizing + leakage
        // injection on data qubits (§5.2.1–5.2.2).
        let seep = noise.seep_p();
        if seep > 0.0 {
            for q in 0..code.num_qubits() {
                pre.push(Op::Seep { qubit: q, p: seep });
            }
        }
        for q in 0..code.num_data() {
            pre.push(Op::Depolarize1 {
                qubit: q,
                p: noise.p,
            });
            let leak = noise.leak_p();
            if leak > 0.0 {
                pre.push(Op::LeakInject { qubit: q, p: leak });
            }
        }
        // Opening Hadamards on X ancillas.
        for s in code.stab_ids(StabKind::X) {
            self.push_h(&mut pre, code.parity_qubit(s));
        }
        // Four dance layers.
        for layer in 0..4 {
            for stab in code.stabilizers() {
                if let Some(dq) = stab.data[layer] {
                    match stab.kind {
                        StabKind::Z => self.push_cnot(&mut pre, dq, stab.parity),
                        StabKind::X => self.push_cnot(&mut pre, stab.parity, dq),
                    }
                }
            }
            pre.push(Op::Tick);
        }
        // Closing Hadamards.
        for s in code.stab_ids(StabKind::X) {
            self.push_h(&mut pre, code.parity_qubit(s));
        }
        // LRC swap-in: SWAP(D, P) as three CNOTs.
        for lrc in lrcs {
            let p = code.parity_qubit(lrc.stab);
            let d = lrc.data;
            self.push_cnot(&mut pre, d, p);
            self.push_cnot(&mut pre, p, d);
            self.push_cnot(&mut pre, d, p);
        }

        // Measurement layer: the LRC'd stabilizers read out from the data
        // qubit (which now holds the ancilla state), everything else from the
        // parity qubit. Keys are identical either way.
        let mut measure = Vec::new();
        let mut mr_reset = Vec::new();
        for (s, _) in code.stabilizers().iter().enumerate() {
            let key = keys.stab_key(round, s);
            let target = match lrc_on_stab[s] {
                Some(d) => d,
                None => code.parity_qubit(s),
            };
            measure.push(Op::XError {
                qubit: target,
                p: noise.p,
            });
            measure.push(Op::Measure { qubit: target, key });
            mr_reset.push(Op::Reset(target));
            mr_reset.push(Op::XError {
                qubit: target,
                p: noise.p,
            });
        }

        // LRC swap-back tails.
        let mut lrc_post = Vec::new();
        for lrc in lrcs {
            let p = code.parity_qubit(lrc.stab);
            let d = lrc.data;
            let mut swap_back = Vec::new();
            self.push_cnot_no_transport(&mut swap_back, p, d);
            self.push_cnot_no_transport(&mut swap_back, d, p);
            let leak_path = vec![
                Op::Reset(p),
                Op::XError {
                    qubit: p,
                    p: noise.p,
                },
            ];
            lrc_post.push(LrcPost {
                data: d,
                parity: p,
                data_key: keys.stab_key(round, lrc.stab),
                swap_back,
                leak_path,
            });
        }

        SyndromeRound {
            pre,
            measure,
            mr_reset,
            lrc_post,
            post: Vec::new(),
            lrcs: lrcs.to_vec(),
        }
    }

    /// Synthesizes a round that removes leakage with the DQLR protocol
    /// (Appendix A.2) on the given pairs: normal extraction and parity MR,
    /// then `LeakageISWAP(D, P)` with CX-grade noise, then a second reset of
    /// P.
    ///
    /// # Panics
    ///
    /// Same conditions as [`RoundBuilder::round`].
    pub fn dqlr_round(
        &self,
        round: usize,
        pairs: &[LrcAssignment],
        keys: &KeyLayout,
    ) -> SyndromeRound {
        self.validate_lrcs(pairs);
        // The extraction body is a plain round.
        let mut r = self.round(round, &[], keys);
        let noise = &self.noise;
        for pair in pairs {
            let p = self.code.parity_qubit(pair.stab);
            let d = pair.data;
            r.post.push(Op::LeakIswap { data: d, parity: p });
            r.post.push(Op::Depolarize2 {
                a: d,
                b: p,
                p: noise.p,
            });
            let leak = noise.leak_p();
            if leak > 0.0 {
                r.post.push(Op::LeakInject { qubit: d, p: leak });
                r.post.push(Op::LeakInject { qubit: p, p: leak });
            }
            r.post.push(Op::Reset(p));
            r.post.push(Op::XError {
                qubit: p,
                p: noise.p,
            });
        }
        r.lrcs = pairs.to_vec();
        SyndromeRound { ..r }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(d: usize) -> (RotatedCode, KeyLayout) {
        let code = RotatedCode::new(d);
        let keys = KeyLayout::new(4, code.num_stabs(), code.num_data());
        (code, keys)
    }

    #[test]
    fn plain_round_cnot_count() {
        for d in [3usize, 5, 7] {
            let (code, keys) = setup(d);
            let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
            let round = builder.round(0, &[], &keys);
            let expected = 4 * (d - 1) * (d - 1) + 4 * (d - 1);
            assert_eq!(round.cnot_count(), expected, "d={d}");
        }
    }

    #[test]
    fn lrc_adds_five_cnots() {
        let (code, keys) = setup(3);
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        let plain = builder.round(0, &[], &keys);
        let lrc = LrcAssignment {
            data: 4,
            stab: code.adjacent_stabs(4)[0],
        };
        let with = builder.round(0, &[lrc], &keys);
        assert_eq!(with.cnot_count(), plain.cnot_count() + 5);
    }

    #[test]
    fn lrc_parity_touches_nine_cnots() {
        // The Eq. (2) premise: an LRC'd parity qubit of an interior (weight-4)
        // stabilizer participates in 9 CNOTs.
        let (code, keys) = setup(5);
        let interior = (0..code.num_stabs())
            .find(|&s| code.stabilizers()[s].weight() == 4)
            .unwrap();
        let data = code.stabilizers()[interior].support().next().unwrap();
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        let round = builder.round(
            0,
            &[LrcAssignment {
                data,
                stab: interior,
            }],
            &keys,
        );
        let parity = code.parity_qubit(interior);
        let touches = |ops: &[Op]| {
            ops.iter()
                .filter(|o| matches!(o, Op::Cnot { control, target } | Op::CnotNoTransport { control, target } if *control == parity || *target == parity))
                .count()
        };
        let total = touches(&round.pre) + touches(&round.lrc_post[0].swap_back);
        assert_eq!(total, 9);
    }

    #[test]
    fn lrc_measures_data_qubit_under_stab_key() {
        let (code, keys) = setup(3);
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        let stab = code.adjacent_stabs(0)[0];
        let round = builder.round(2, &[LrcAssignment { data: 0, stab }], &keys);
        let expect_key = keys.stab_key(2, stab);
        let found = round.measure.iter().any(
            |op| matches!(op, Op::Measure { qubit, key } if *qubit == 0 && *key == expect_key),
        );
        assert!(
            found,
            "data qubit must be measured under the stabilizer key"
        );
        // The parity qubit is NOT measured nor reset this round.
        let parity = code.parity_qubit(stab);
        assert!(!round
            .measure
            .iter()
            .any(|op| matches!(op, Op::Measure { qubit, .. } if *qubit == parity)));
        assert!(!round
            .mr_reset
            .iter()
            .any(|op| matches!(op, Op::Reset(q) if *q == parity)));
    }

    #[test]
    fn every_stab_measured_exactly_once() {
        let (code, keys) = setup(5);
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        let lrcs = [
            LrcAssignment {
                data: 6,
                stab: code.adjacent_stabs(6)[0],
            },
            LrcAssignment {
                data: 12,
                stab: code.adjacent_stabs(12)[1],
            },
        ];
        let round = builder.round(1, &lrcs, &keys);
        let mut seen = std::collections::HashSet::new();
        for op in &round.measure {
            if let Op::Measure { key, .. } = op {
                assert!(seen.insert(*key), "duplicate key {key}");
            }
        }
        assert_eq!(seen.len(), code.num_stabs());
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn non_adjacent_lrc_rejected() {
        let (code, keys) = setup(3);
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        // Data 0 is at the corner; find a stabilizer not adjacent to it.
        let bad = (0..code.num_stabs())
            .find(|s| !code.adjacent_stabs(0).contains(s))
            .unwrap();
        builder.round(0, &[LrcAssignment { data: 0, stab: bad }], &keys);
    }

    #[test]
    #[should_panic(expected = "used by two")]
    fn conflicting_lrcs_rejected() {
        let (code, keys) = setup(3);
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        // Two data qubits claiming the same stabilizer.
        let stab = code
            .stabilizers()
            .iter()
            .position(|s| s.weight() == 4)
            .unwrap();
        let mut sup = code.stabilizers()[stab].support();
        let (d1, d2) = (sup.next().unwrap(), sup.next().unwrap());
        builder.round(
            0,
            &[
                LrcAssignment { data: d1, stab },
                LrcAssignment { data: d2, stab },
            ],
            &keys,
        );
    }

    #[test]
    fn no_leakage_model_emits_no_leak_ops() {
        let (code, keys) = setup(3);
        let builder = RoundBuilder::new(&code, NoiseParams::without_leakage(1e-3));
        let round = builder.round(0, &[], &keys);
        assert!(!round
            .pre
            .iter()
            .any(|op| matches!(op, Op::LeakInject { .. } | Op::Seep { .. })));
    }

    #[test]
    fn dqlr_round_contains_leakage_iswap_and_double_reset() {
        let (code, keys) = setup(3);
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        let stab = code.adjacent_stabs(4)[0];
        let round = builder.dqlr_round(0, &[LrcAssignment { data: 4, stab }], &keys);
        let parity = code.parity_qubit(stab);
        assert!(round
            .post
            .iter()
            .any(|op| matches!(op, Op::LeakIswap { data: 4, parity: p } if *p == parity)));
        // The parity qubit is reset twice: once in mr_reset, once after the
        // LeakageISWAP.
        let resets = round
            .mr_reset
            .iter()
            .chain(&round.post)
            .filter(|op| matches!(op, Op::Reset(q) if *q == parity))
            .count();
        assert_eq!(resets, 2);
        assert!(round.lrc_post.is_empty());
    }

    #[test]
    fn eraser_m_leak_path_resets_parity_only() {
        let (code, keys) = setup(3);
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        let stab = code.adjacent_stabs(4)[0];
        let round = builder.round(0, &[LrcAssignment { data: 4, stab }], &keys);
        let tail = &round.lrc_post[0];
        assert_eq!(tail.data, 4);
        assert_eq!(tail.parity, code.parity_qubit(stab));
        assert!(matches!(tail.leak_path[0], Op::Reset(q) if q == tail.parity));
        assert_eq!(
            tail.swap_back
                .iter()
                .filter(|o| matches!(o, Op::CnotNoTransport { .. }))
                .count(),
            2,
            "swap-back uses transport-suppressed CNOTs"
        );
    }
}
