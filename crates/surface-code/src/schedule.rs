//! Static round schedules with LRC *slots*, for the word-parallel runtime.
//!
//! The scalar runtime re-synthesizes every round's circuit per shot because
//! the LRC plan is dynamic. The striped (64-shots-per-word) runtime cannot
//! afford that; instead it executes one *static* schedule of
//! [`MaskedOp`]s per round, in which every op that depends on the plan is
//! gated on an [`OpCond`] referencing an LRC **slot** — one of the
//! enumerable legal assignments of a data qubit to an adjacent stabilizer's
//! parity qubit ([`SlotTable`]). Each round, the policy layer resolves to
//! one lane-mask word per slot; executing the schedule under those masks
//! reproduces, lane by lane, exactly the dynamic circuit
//! [`RoundBuilder::round`] would synthesize for that lane's plan (asserted
//! structurally by this module's tests and behaviourally by the stripe
//! equivalence suite).
//!
//! Slot order is canonical — sorted by `(data, stab)` — and the runtime
//! sorts every plan the same way before use, so the per-lane restriction of
//! the static schedule and the dynamically built round agree op for op.
//!
//! `Measure` keys are emitted for round 0; the executor adds the round's
//! key offset (`round · num_stabs` — see `KeyLayout::stab_key`).

use crate::circuits::{LrcAssignment, RoundBuilder};
use crate::experiment::KeyLayout;
use crate::layout::RotatedCode;
use qec_core::{MaskedOp, Op, OpCond, QubitId};

/// The enumerable LRC slots of a code: every adjacent (data, stabilizer)
/// pair, in canonical `(data, stab)` order.
#[derive(Debug, Clone)]
pub struct SlotTable {
    slots: Vec<LrcAssignment>,
    /// Dense lookup `data * num_stabs + stab -> slot id`.
    index: Vec<Option<usize>>,
    /// Slot ids borrowing each stabilizer's parity qubit.
    by_stab: Vec<Vec<usize>>,
    num_stabs: usize,
}

impl SlotTable {
    /// Enumerates the slots of `code`.
    pub fn new(code: &RotatedCode) -> SlotTable {
        let num_stabs = code.num_stabs();
        let mut slots = Vec::new();
        for data in 0..code.num_data() {
            let mut stabs: Vec<usize> = code.adjacent_stabs(data).to_vec();
            stabs.sort_unstable();
            for stab in stabs {
                slots.push(LrcAssignment { data, stab });
            }
        }
        let mut index = vec![None; code.num_data() * num_stabs];
        let mut by_stab = vec![Vec::new(); num_stabs];
        for (i, slot) in slots.iter().enumerate() {
            index[slot.data * num_stabs + slot.stab] = Some(i);
            by_stab[slot.stab].push(i);
        }
        SlotTable {
            slots,
            index,
            by_stab,
            num_stabs,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty (never true for a valid code).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// All slots, in canonical order.
    pub fn slots(&self) -> &[LrcAssignment] {
        &self.slots
    }

    /// The assignment of slot `id`.
    pub fn slot(&self, id: usize) -> LrcAssignment {
        self.slots[id]
    }

    /// Resolves an assignment to its slot id (`None` if the pair is not
    /// adjacent).
    pub fn slot_of(&self, data: QubitId, stab: usize) -> Option<usize> {
        self.index[data * self.num_stabs + stab]
    }

    /// Slot ids borrowing stabilizer `stab`'s parity qubit.
    pub fn slots_on_stab(&self, stab: usize) -> &[usize] {
        &self.by_stab[stab]
    }
}

/// One static round schedule, segmented exactly like the dynamic
/// `SyndromeRound` so the runtime can probe leakage population between the
/// entangling layers and the measurement layer and branch per lane on
/// readout labels.
///
/// Execution order: `pre` → (LPR probe) → `measure` → `mr_reset` → `tails`
/// → `post`.
#[derive(Debug, Clone, Default)]
pub struct MaskedRound {
    /// Round-start noise, Hadamards, dance CNOTs (all-lane) plus the
    /// slot-gated LRC swap-ins.
    pub pre: Vec<MaskedOp>,
    /// Measurement layer: per stabilizer, a parity-qubit arm gated on
    /// [`OpCond::StabFree`] and one data-qubit arm per slot.
    pub measure: Vec<MaskedOp>,
    /// Reset layer, with the same arm structure as `measure`.
    pub mr_reset: Vec<MaskedOp>,
    /// Per-slot LRC tails: the |L⟩ branch ([`OpCond::SlotLabelLeaked`] —
    /// parity reset, swap-back squashed, §4.6.2) followed by the normal
    /// swap-back branch ([`OpCond::SlotLabelClean`]).
    pub tails: Vec<MaskedOp>,
    /// Trailing slot-gated segment (the DQLR protocol's LeakageISWAP +
    /// second reset).
    pub post: Vec<MaskedOp>,
}

impl RoundBuilder<'_> {
    fn emit_cnot(&self, ops: &mut Vec<MaskedOp>, cond: OpCond, gate: Op) {
        let (control, target) = match gate {
            Op::Cnot { control, target } | Op::CnotNoTransport { control, target } => {
                (control, target)
            }
            _ => unreachable!("emit_cnot only takes CNOT variants"),
        };
        let noise = self.noise();
        ops.push(MaskedOp { op: gate, cond });
        ops.push(MaskedOp {
            op: Op::Depolarize2 {
                a: control,
                b: target,
                p: noise.p,
            },
            cond,
        });
        let leak = noise.leak_p();
        if leak > 0.0 {
            ops.push(MaskedOp {
                op: Op::LeakInject {
                    qubit: control,
                    p: leak,
                },
                cond,
            });
            ops.push(MaskedOp {
                op: Op::LeakInject {
                    qubit: target,
                    p: leak,
                },
                cond,
            });
        }
    }

    /// Emits the static SWAP-protocol round schedule over `table`'s slots
    /// (keys for round 0; the executor adds the round offset).
    pub fn masked_round(&self, table: &SlotTable, keys: &KeyLayout) -> MaskedRound {
        let code = self.code();
        let noise = *self.noise();

        // The all-lane round body is exactly the plain (no-LRC) round.
        let plain = self.round(0, &[], keys);
        let mut pre: Vec<MaskedOp> = plain.pre.into_iter().map(MaskedOp::always).collect();
        // LRC swap-in: SWAP(D, P) as three CNOTs, gated per slot, in
        // canonical slot order (matching the runtime's sorted plans).
        for (i, slot) in table.slots().iter().enumerate() {
            let p = code.parity_qubit(slot.stab);
            let d = slot.data;
            let cond = OpCond::Slot(i);
            self.emit_cnot(
                &mut pre,
                cond,
                Op::Cnot {
                    control: d,
                    target: p,
                },
            );
            self.emit_cnot(
                &mut pre,
                cond,
                Op::Cnot {
                    control: p,
                    target: d,
                },
            );
            self.emit_cnot(
                &mut pre,
                cond,
                Op::Cnot {
                    control: d,
                    target: p,
                },
            );
        }

        // Measurement + reset layers: per stabilizer, the parity-qubit arm
        // runs in lanes with no slot on this stabilizer; each slot's
        // data-qubit arm runs in its scheduled lanes. Keys are identical
        // across arms (detectors never change).
        let mut measure = Vec::new();
        let mut mr_reset = Vec::new();
        for s in 0..code.num_stabs() {
            let key = keys.stab_key(0, s);
            let mut arms: Vec<(OpCond, QubitId)> =
                vec![(OpCond::StabFree(s), code.parity_qubit(s))];
            for &i in table.slots_on_stab(s) {
                arms.push((OpCond::Slot(i), table.slot(i).data));
            }
            for &(cond, target) in &arms {
                measure.push(MaskedOp {
                    op: Op::XError {
                        qubit: target,
                        p: noise.p,
                    },
                    cond,
                });
                measure.push(MaskedOp {
                    op: Op::Measure { qubit: target, key },
                    cond,
                });
            }
            for &(cond, target) in &arms {
                mr_reset.push(MaskedOp {
                    op: Op::Reset(target),
                    cond,
                });
                mr_reset.push(MaskedOp {
                    op: Op::XError {
                        qubit: target,
                        p: noise.p,
                    },
                    cond,
                });
            }
        }

        // LRC tails, per slot: the |L⟩ branch (reset P, squash the
        // swap-back) then the normal swap-back (transport-suppressed
        // CNOTs). Exactly one branch fires per scheduled lane.
        let mut tails = Vec::new();
        for (i, slot) in table.slots().iter().enumerate() {
            let p = code.parity_qubit(slot.stab);
            let d = slot.data;
            let leaked = OpCond::SlotLabelLeaked(i);
            tails.push(MaskedOp {
                op: Op::Reset(p),
                cond: leaked,
            });
            tails.push(MaskedOp {
                op: Op::XError {
                    qubit: p,
                    p: noise.p,
                },
                cond: leaked,
            });
            let clean = OpCond::SlotLabelClean(i);
            self.emit_cnot(
                &mut tails,
                clean,
                Op::CnotNoTransport {
                    control: p,
                    target: d,
                },
            );
            self.emit_cnot(
                &mut tails,
                clean,
                Op::CnotNoTransport {
                    control: d,
                    target: p,
                },
            );
        }

        MaskedRound {
            pre,
            measure,
            mr_reset,
            tails,
            post: Vec::new(),
        }
    }

    /// Emits the static DQLR-protocol round schedule: a plain extraction
    /// body plus the slot-gated LeakageISWAP + second reset tail.
    pub fn masked_dqlr_round(&self, table: &SlotTable, keys: &KeyLayout) -> MaskedRound {
        let code = self.code();
        let noise = *self.noise();
        let plain = self.round(0, &[], keys);
        let mut post = Vec::new();
        for (i, slot) in table.slots().iter().enumerate() {
            let p = code.parity_qubit(slot.stab);
            let d = slot.data;
            let cond = OpCond::Slot(i);
            post.push(MaskedOp {
                op: Op::LeakIswap { data: d, parity: p },
                cond,
            });
            post.push(MaskedOp {
                op: Op::Depolarize2 {
                    a: d,
                    b: p,
                    p: noise.p,
                },
                cond,
            });
            let leak = noise.leak_p();
            if leak > 0.0 {
                post.push(MaskedOp {
                    op: Op::LeakInject { qubit: d, p: leak },
                    cond,
                });
                post.push(MaskedOp {
                    op: Op::LeakInject { qubit: p, p: leak },
                    cond,
                });
            }
            post.push(MaskedOp {
                op: Op::Reset(p),
                cond,
            });
            post.push(MaskedOp {
                op: Op::XError {
                    qubit: p,
                    p: noise.p,
                },
                cond,
            });
        }
        MaskedRound {
            pre: plain.pre.into_iter().map(MaskedOp::always).collect(),
            measure: plain.measure.into_iter().map(MaskedOp::always).collect(),
            mr_reset: plain.mr_reset.into_iter().map(MaskedOp::always).collect(),
            tails: Vec::new(),
            post,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_core::NoiseParams;

    /// Filters a masked segment down to the ops one lane executes, given
    /// its plan (scheduled slot set) and — for the tails — which branch the
    /// lane takes per slot.
    fn lane_ops(
        segment: &[MaskedOp],
        table: &SlotTable,
        plan: &[LrcAssignment],
        label_leaked: impl Fn(usize) -> bool,
    ) -> Vec<Op> {
        let scheduled: Vec<usize> = plan
            .iter()
            .map(|l| table.slot_of(l.data, l.stab).expect("adjacent pair"))
            .collect();
        let stab_busy: Vec<usize> = plan.iter().map(|l| l.stab).collect();
        segment
            .iter()
            .filter(|mop| match mop.cond {
                OpCond::Always => true,
                OpCond::Slot(i) => scheduled.contains(&i),
                OpCond::StabFree(s) => !stab_busy.contains(&s),
                OpCond::SlotLabelLeaked(i) => scheduled.contains(&i) && label_leaked(i),
                OpCond::SlotLabelClean(i) => scheduled.contains(&i) && !label_leaked(i),
            })
            .map(|mop| mop.op)
            .collect()
    }

    /// Random valid plans, sorted canonically like the runtime sorts them.
    fn random_plan(code: &RotatedCode, rng: &mut qec_core::Rng) -> Vec<LrcAssignment> {
        let mut stab_used = vec![false; code.num_stabs()];
        let mut plan = Vec::new();
        for data in 0..code.num_data() {
            if rng.bernoulli(0.4) {
                let adj = code.adjacent_stabs(data);
                let stab = adj[rng.below(adj.len() as u64) as usize];
                if !stab_used[stab] {
                    stab_used[stab] = true;
                    plan.push(LrcAssignment { data, stab });
                }
            }
        }
        plan.sort_unstable_by_key(|l| (l.data, l.stab));
        plan
    }

    #[test]
    fn slot_table_is_canonical_and_invertible() {
        let code = RotatedCode::new(5);
        let table = SlotTable::new(&code);
        assert!(!table.is_empty());
        // Canonical (data, stab) order.
        let pairs: Vec<(usize, usize)> = table.slots().iter().map(|l| (l.data, l.stab)).collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted);
        // Every adjacency appears exactly once and round-trips.
        let expected: usize = (0..code.num_data())
            .map(|q| code.adjacent_stabs(q).len())
            .sum();
        assert_eq!(table.len(), expected);
        for (i, slot) in table.slots().iter().enumerate() {
            assert_eq!(table.slot_of(slot.data, slot.stab), Some(i));
            assert!(table.slots_on_stab(slot.stab).contains(&i));
        }
        assert_eq!(table.slot_of(0, code.num_stabs() - 1), None);
    }

    #[test]
    fn masked_round_restricts_to_every_dynamic_round() {
        // The load-bearing structural property: for any plan, the lane
        // restriction of the static schedule is op-for-op the dynamic round
        // the scalar path builds.
        for noise in [
            NoiseParams::standard(1e-3),
            NoiseParams::without_leakage(1e-3),
        ] {
            let code = RotatedCode::new(5);
            let keys = KeyLayout::new(3, code.num_stabs(), code.num_data());
            let builder = RoundBuilder::new(&code, noise);
            let table = SlotTable::new(&code);
            let masked = builder.masked_round(&table, &keys);
            let mut rng = qec_core::Rng::new(2024);
            for trial in 0..40 {
                let plan = random_plan(&code, &mut rng);
                let dynamic = builder.round(0, &plan, &keys);
                assert_eq!(
                    lane_ops(&masked.pre, &table, &plan, |_| false),
                    dynamic.pre,
                    "pre mismatch, trial {trial}"
                );
                assert_eq!(
                    lane_ops(&masked.measure, &table, &plan, |_| false),
                    dynamic.measure,
                    "measure mismatch, trial {trial}"
                );
                assert_eq!(
                    lane_ops(&masked.mr_reset, &table, &plan, |_| false),
                    dynamic.mr_reset,
                    "mr_reset mismatch, trial {trial}"
                );
                // Tails: the clean branch must be the concatenated
                // swap-backs, the |L⟩ branch the concatenated leak paths —
                // in plan order.
                let clean: Vec<Op> = dynamic
                    .lrc_post
                    .iter()
                    .flat_map(|t| t.swap_back.iter().copied())
                    .collect();
                assert_eq!(
                    lane_ops(&masked.tails, &table, &plan, |_| false),
                    clean,
                    "clean tails mismatch, trial {trial}"
                );
                let leaked: Vec<Op> = dynamic
                    .lrc_post
                    .iter()
                    .flat_map(|t| t.leak_path.iter().copied())
                    .collect();
                assert_eq!(
                    lane_ops(&masked.tails, &table, &plan, |_| true),
                    leaked,
                    "leak tails mismatch, trial {trial}"
                );
                assert!(masked.post.is_empty());
            }
        }
    }

    #[test]
    fn masked_dqlr_round_restricts_to_every_dynamic_round() {
        let code = RotatedCode::new(3);
        let keys = KeyLayout::new(2, code.num_stabs(), code.num_data());
        let noise = NoiseParams::standard(1e-3);
        let builder = RoundBuilder::new(&code, noise);
        let table = SlotTable::new(&code);
        let masked = builder.masked_dqlr_round(&table, &keys);
        let mut rng = qec_core::Rng::new(77);
        for trial in 0..25 {
            let plan = random_plan(&code, &mut rng);
            let dynamic = builder.dqlr_round(0, &plan, &keys);
            assert_eq!(
                lane_ops(&masked.pre, &table, &plan, |_| false),
                dynamic.pre,
                "pre, trial {trial}"
            );
            assert_eq!(
                lane_ops(&masked.measure, &table, &plan, |_| false),
                dynamic.measure,
                "measure, trial {trial}"
            );
            assert_eq!(
                lane_ops(&masked.post, &table, &plan, |_| false),
                dynamic.post,
                "post, trial {trial}"
            );
            assert!(masked.tails.is_empty() && dynamic.lrc_post.is_empty());
        }
    }
}
