//! Rotated surface code: lattice geometry, syndrome-extraction schedules, and
//! leakage-reduction-circuit (LRC) synthesis.
//!
//! This crate builds everything the ERASER paper's experiments execute:
//!
//! * [`RotatedCode`] — the distance-`d` rotated surface code (`d²` data qubits,
//!   `d² − 1` parity qubits, §2.1 / Fig 2(a)) with the standard four-layer
//!   CNOT "dance" schedule.
//! * [`RoundBuilder`] — synthesizes one syndrome-extraction round as explicit
//!   [`qec_core::Op`]s, with optional SWAP-LRCs (Fig 1(b): five extra CNOTs,
//!   the parity qubit participates in nine CNOTs, matching Eq. 2) or the DQLR
//!   protocol of Appendix A.2.
//! * [`MemoryExperiment`] — a memory-Z experiment specification: measurement
//!   key layout, detector definitions, logical observable, and the static
//!   no-LRC circuit used to build the decoder's error model.
//!
//! # Example
//!
//! ```
//! use qec_core::NoiseParams;
//! use surface_code::{MemoryExperiment, RotatedCode};
//!
//! let code = RotatedCode::new(3);
//! assert_eq!(code.num_data(), 9);
//! assert_eq!(code.num_stabs(), 8);
//!
//! let exp = MemoryExperiment::new(code, NoiseParams::standard(1e-3), 3);
//! let detectors = exp.detectors();
//! assert!(!detectors.is_empty());
//! ```

pub mod circuits;
pub mod experiment;
pub mod layout;
pub mod schedule;

pub use circuits::{LrcAssignment, LrcPost, RoundBuilder, SyndromeRound};
pub use experiment::{KeyLayout, MemoryBasis, MemoryExperiment};
pub use layout::{RotatedCode, StabKind, Stabilizer};
pub use schedule::{MaskedRound, SlotTable};
