//! Rotated surface code lattice geometry.
//!
//! A distance-`d` rotated surface code (Fig 2(a) of the paper) places `d²`
//! data qubits on a `d × d` grid and `d² − 1` parity (ancilla) qubits on the
//! plaquette corners of that grid. Plaquettes alternate between X- and Z-type
//! in a checkerboard; boundary plaquettes have weight 2, with X-type
//! plaquettes on the top/bottom boundary and Z-type on the left/right.
//!
//! Qubit numbering: data qubits are `0..d²` (row-major), parity qubits are
//! `d² + s` where `s` is the stabilizer index.

use qec_core::QubitId;

/// Stabilizer basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabKind {
    /// X-type stabilizer (detects Z errors).
    X,
    /// Z-type stabilizer (detects X errors).
    Z,
}

/// One stabilizer of the code: its basis, lattice position, parity qubit, and
/// data-qubit neighbours in CNOT-dance order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stabilizer {
    /// X or Z.
    pub kind: StabKind,
    /// Plaquette corner `(i, j)` with `0 ≤ i, j ≤ d`.
    pub corner: (usize, usize),
    /// Its ancilla qubit.
    pub parity: QubitId,
    /// Data-qubit neighbours indexed by dance layer (0..4); `None` means the
    /// stabilizer idles in that layer (weight-2 boundary stabilizers).
    pub data: [Option<QubitId>; 4],
}

impl Stabilizer {
    /// The data qubits in this stabilizer's support (2 or 4 of them).
    pub fn support(&self) -> impl Iterator<Item = QubitId> + '_ {
        self.data.iter().filter_map(|d| *d)
    }

    /// Number of data qubits in the support.
    pub fn weight(&self) -> usize {
        self.data.iter().filter(|d| d.is_some()).count()
    }
}

/// A distance-`d` rotated surface code.
///
/// # Example
///
/// ```
/// use surface_code::{RotatedCode, StabKind};
///
/// let code = RotatedCode::new(5);
/// assert_eq!(code.num_data(), 25);
/// assert_eq!(code.num_stabs(), 24);
/// assert_eq!(code.num_qubits(), 49); // 2d² − 1
/// let z_count = code
///     .stabilizers()
///     .iter()
///     .filter(|s| s.kind == StabKind::Z)
///     .count();
/// assert_eq!(z_count, 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatedCode {
    d: usize,
    stabs: Vec<Stabilizer>,
    /// data qubit -> indices of adjacent stabilizers.
    data_adj: Vec<Vec<usize>>,
}

impl RotatedCode {
    /// Builds the distance-`d` rotated surface code.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or smaller than 3 (rotated codes need odd
    /// distance).
    pub fn new(d: usize) -> RotatedCode {
        assert!(
            d >= 3 && d % 2 == 1,
            "distance must be odd and >= 3, got {d}"
        );
        let num_data = d * d;
        let mut stabs = Vec::new();
        for i in 0..=d {
            for j in 0..=d {
                let is_z = (i + j) % 2 == 0;
                let top_bottom = i == 0 || i == d;
                let left_right = j == 0 || j == d;
                // Boundary rule: top/bottom rows host only X-type weight-2
                // plaquettes, left/right columns only Z-type. Corners never
                // qualify.
                if top_bottom && left_right {
                    continue;
                }
                if top_bottom && is_z {
                    continue;
                }
                if left_right && !is_z {
                    continue;
                }
                let data_at = |r: isize, c: isize| -> Option<QubitId> {
                    if r >= 0 && c >= 0 && (r as usize) < d && (c as usize) < d {
                        Some(r as usize * d + c as usize)
                    } else {
                        None
                    }
                };
                let (ii, jj) = (i as isize, j as isize);
                let nw = data_at(ii - 1, jj - 1);
                let ne = data_at(ii - 1, jj);
                let sw = data_at(ii, jj - 1);
                let se = data_at(ii, jj);
                if [nw, ne, sw, se].iter().flatten().count() < 2 {
                    continue;
                }
                // Dance orders chosen so no data qubit is used twice in one
                // layer (verified by `schedule_is_conflict_free`): X uses a
                // "Z"-shaped sweep, Z uses the transposed "N"-shaped sweep.
                let (kind, data) = if is_z {
                    (StabKind::Z, [nw, sw, ne, se])
                } else {
                    (StabKind::X, [nw, ne, sw, se])
                };
                let parity = num_data + stabs.len();
                stabs.push(Stabilizer {
                    kind,
                    corner: (i, j),
                    parity,
                    data,
                });
            }
        }
        assert_eq!(
            stabs.len(),
            num_data - 1,
            "rotated code must have d²−1 stabilizers"
        );

        let mut data_adj = vec![Vec::new(); num_data];
        for (s, stab) in stabs.iter().enumerate() {
            for q in stab.support() {
                data_adj[q].push(s);
            }
        }
        RotatedCode { d, stabs, data_adj }
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.d
    }

    /// Number of data qubits (`d²`).
    pub fn num_data(&self) -> usize {
        self.d * self.d
    }

    /// Number of stabilizers / parity qubits (`d² − 1`).
    pub fn num_stabs(&self) -> usize {
        self.stabs.len()
    }

    /// Total physical qubits (`2d² − 1`).
    pub fn num_qubits(&self) -> usize {
        self.num_data() + self.num_stabs()
    }

    /// The data qubit at grid position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the `d × d` grid.
    pub fn data_qubit(&self, row: usize, col: usize) -> QubitId {
        assert!(
            row < self.d && col < self.d,
            "({row},{col}) outside d={}",
            self.d
        );
        row * self.d + col
    }

    /// Grid position of a data qubit.
    pub fn data_coords(&self, q: QubitId) -> (usize, usize) {
        assert!(q < self.num_data(), "{q} is not a data qubit");
        (q / self.d, q % self.d)
    }

    /// Whether `q` is a data qubit (as opposed to a parity qubit).
    pub fn is_data(&self, q: QubitId) -> bool {
        q < self.num_data()
    }

    /// All stabilizers, indexed by stabilizer id.
    pub fn stabilizers(&self) -> &[Stabilizer] {
        &self.stabs
    }

    /// The parity qubit of stabilizer `s`.
    pub fn parity_qubit(&self, s: usize) -> QubitId {
        self.stabs[s].parity
    }

    /// The stabilizer owning parity qubit `q`, if `q` is a parity qubit.
    pub fn stab_of_parity(&self, q: QubitId) -> Option<usize> {
        (q >= self.num_data() && q < self.num_qubits()).then(|| q - self.num_data())
    }

    /// Indices of the stabilizers adjacent to data qubit `q` (2 to 4 of them).
    pub fn adjacent_stabs(&self, q: QubitId) -> &[usize] {
        &self.data_adj[q]
    }

    /// Stabilizer indices of a given kind.
    pub fn stab_ids(&self, kind: StabKind) -> Vec<usize> {
        (0..self.stabs.len())
            .filter(|&s| self.stabs[s].kind == kind)
            .collect()
    }

    /// Support of the logical Z operator: the top row of data qubits.
    ///
    /// Logical Z commutes with every stabilizer and anticommutes with
    /// [`RotatedCode::logical_x_support`] (checked in the test suite).
    pub fn logical_z_support(&self) -> Vec<QubitId> {
        (0..self.d).map(|c| self.data_qubit(0, c)).collect()
    }

    /// Support of the logical X operator: the left column of data qubits.
    pub fn logical_x_support(&self) -> Vec<QubitId> {
        (0..self.d).map(|r| self.data_qubit(r, 0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DISTANCES: [usize; 5] = [3, 5, 7, 9, 11];

    #[test]
    fn counts_match_rotated_layout() {
        for d in DISTANCES {
            let code = RotatedCode::new(d);
            assert_eq!(code.num_data(), d * d);
            assert_eq!(code.num_stabs(), d * d - 1);
            assert_eq!(code.num_qubits(), 2 * d * d - 1);
            let x = code.stab_ids(StabKind::X).len();
            let z = code.stab_ids(StabKind::Z).len();
            assert_eq!(x, (d * d - 1) / 2, "d={d}");
            assert_eq!(z, (d * d - 1) / 2, "d={d}");
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_rejected() {
        RotatedCode::new(4);
    }

    #[test]
    fn stabilizer_weights() {
        for d in DISTANCES {
            let code = RotatedCode::new(d);
            let weight2 = code
                .stabilizers()
                .iter()
                .filter(|s| s.weight() == 2)
                .count();
            let weight4 = code
                .stabilizers()
                .iter()
                .filter(|s| s.weight() == 4)
                .count();
            assert_eq!(weight2, 2 * (d - 1), "d={d}");
            assert_eq!(weight4, (d - 1) * (d - 1), "d={d}");
            assert_eq!(weight2 + weight4, code.num_stabs());
        }
    }

    #[test]
    fn data_adjacency_is_consistent() {
        for d in DISTANCES {
            let code = RotatedCode::new(d);
            for q in 0..code.num_data() {
                let adj = code.adjacent_stabs(q);
                assert!(
                    (2..=4).contains(&adj.len()),
                    "data {q} has {} neighbours at d={d}",
                    adj.len()
                );
                for &s in adj {
                    assert!(code.stabilizers()[s].support().any(|dq| dq == q));
                }
            }
            // Every data qubit touches at least one stabilizer of each kind.
            for q in 0..code.num_data() {
                let kinds: std::collections::HashSet<_> = code
                    .adjacent_stabs(q)
                    .iter()
                    .map(|&s| code.stabilizers()[s].kind)
                    .collect();
                assert_eq!(kinds.len(), 2, "data {q} at d={d} misses a basis");
            }
        }
    }

    #[test]
    fn schedule_is_conflict_free() {
        for d in DISTANCES {
            let code = RotatedCode::new(d);
            for layer in 0..4 {
                let mut used = vec![false; code.num_data()];
                for stab in code.stabilizers() {
                    if let Some(q) = stab.data[layer] {
                        assert!(!used[q], "data {q} doubly used in layer {layer} at d={d}");
                        used[q] = true;
                    }
                }
            }
        }
    }

    fn overlap(a: &[QubitId], b: impl Iterator<Item = QubitId>) -> usize {
        let set: std::collections::HashSet<_> = a.iter().copied().collect();
        b.filter(|q| set.contains(q)).count()
    }

    #[test]
    fn logical_operators_commute_with_stabilizers() {
        for d in DISTANCES {
            let code = RotatedCode::new(d);
            let zl = code.logical_z_support();
            let xl = code.logical_x_support();
            assert_eq!(zl.len(), d);
            assert_eq!(xl.len(), d);
            for stab in code.stabilizers() {
                match stab.kind {
                    // Z_L anticommutes only with X operators overlapping oddly.
                    StabKind::X => {
                        assert_eq!(
                            overlap(&zl, stab.support()) % 2,
                            0,
                            "Z_L anticommutes with X stab at {:?}, d={d}",
                            stab.corner
                        );
                    }
                    StabKind::Z => {
                        assert_eq!(
                            overlap(&xl, stab.support()) % 2,
                            0,
                            "X_L anticommutes with Z stab at {:?}, d={d}",
                            stab.corner
                        );
                    }
                }
            }
            // The logical pair anticommutes (single overlap at the corner).
            assert_eq!(overlap(&zl, xl.iter().copied()) % 2, 1);
        }
    }

    #[test]
    fn parity_qubit_mapping_round_trips() {
        let code = RotatedCode::new(5);
        for s in 0..code.num_stabs() {
            let p = code.parity_qubit(s);
            assert_eq!(code.stab_of_parity(p), Some(s));
            assert!(!code.is_data(p));
        }
        assert_eq!(code.stab_of_parity(0), None);
        assert_eq!(code.stab_of_parity(code.num_qubits()), None);
    }

    #[test]
    fn data_coords_round_trip() {
        let code = RotatedCode::new(7);
        for q in 0..code.num_data() {
            let (r, c) = code.data_coords(q);
            assert_eq!(code.data_qubit(r, c), q);
        }
    }

    #[test]
    fn boundary_types_follow_paper_orientation() {
        // Top/bottom boundary plaquettes are X-type; left/right are Z-type,
        // matching a horizontal logical-Z string (top data row).
        for d in DISTANCES {
            let code = RotatedCode::new(d);
            for stab in code.stabilizers() {
                let (i, j) = stab.corner;
                if i == 0 || i == d {
                    assert_eq!(stab.kind, StabKind::X, "corner {:?} d={d}", stab.corner);
                }
                if j == 0 || j == d {
                    assert_eq!(stab.kind, StabKind::Z, "corner {:?} d={d}", stab.corner);
                }
            }
        }
    }
}
