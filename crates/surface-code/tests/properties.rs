//! Property-based tests of the lattice and round synthesis invariants.

use proptest::prelude::*;
use qec_core::{NoiseParams, Op};
use surface_code::{KeyLayout, LrcAssignment, RotatedCode, RoundBuilder};

fn any_distance() -> impl Strategy<Value = usize> {
    prop_oneof![Just(3usize), Just(5), Just(7), Just(9), Just(11)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stabilizer_supports_partition_consistently(d in any_distance()) {
        let code = RotatedCode::new(d);
        // Sum of stabilizer weights = sum of data adjacency degrees.
        let weight_sum: usize = code.stabilizers().iter().map(|s| s.weight()).sum();
        let degree_sum: usize = (0..code.num_data())
            .map(|q| code.adjacent_stabs(q).len())
            .sum();
        prop_assert_eq!(weight_sum, degree_sum);
    }

    #[test]
    fn every_data_qubit_sees_both_bases(d in any_distance(), q_sel in 0usize..121) {
        let code = RotatedCode::new(d);
        let q = q_sel % code.num_data();
        let kinds: std::collections::HashSet<_> = code
            .adjacent_stabs(q)
            .iter()
            .map(|&s| code.stabilizers()[s].kind)
            .collect();
        prop_assert_eq!(kinds.len(), 2);
    }

    #[test]
    fn random_valid_lrc_sets_build_consistent_rounds(
        d in prop_oneof![Just(3usize), Just(5)],
        picks in proptest::collection::vec(0usize..25, 0..6),
        seed in any::<u64>(),
    ) {
        let code = RotatedCode::new(d);
        let keys = KeyLayout::new(2, code.num_stabs(), code.num_data());
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        // Build a conflict-free LRC set from the random picks.
        let mut rng = qec_core::Rng::new(seed);
        let mut stab_used = vec![false; code.num_stabs()];
        let mut data_used = vec![false; code.num_data()];
        let mut lrcs = Vec::new();
        for pick in picks {
            let data = pick % code.num_data();
            if data_used[data] {
                continue;
            }
            let adj = code.adjacent_stabs(data);
            let start = rng.below(adj.len() as u64) as usize;
            if let Some(&stab) = adj
                .iter()
                .cycle()
                .skip(start)
                .take(adj.len())
                .find(|&&s| !stab_used[s])
            {
                stab_used[stab] = true;
                data_used[data] = true;
                lrcs.push(LrcAssignment { data, stab });
            }
        }

        let base = builder.round(0, &[], &keys);
        let round = builder.round(0, &lrcs, &keys);
        // Invariant: 5 extra CNOTs per LRC.
        prop_assert_eq!(round.cnot_count(), base.cnot_count() + 5 * lrcs.len());
        // Invariant: every stabilizer key measured exactly once.
        let mut seen = std::collections::HashSet::new();
        for op in &round.measure {
            if let Op::Measure { key, .. } = op {
                prop_assert!(seen.insert(*key));
            }
        }
        prop_assert_eq!(seen.len(), code.num_stabs());
        // Invariant: one swap-back tail per LRC, targeting the right pair.
        prop_assert_eq!(round.lrc_post.len(), lrcs.len());
        for (tail, lrc) in round.lrc_post.iter().zip(&lrcs) {
            prop_assert_eq!(tail.data, lrc.data);
            prop_assert_eq!(tail.parity, code.parity_qubit(lrc.stab));
        }
    }

    #[test]
    fn key_layout_is_a_bijection(rounds in 1usize..12, d in prop_oneof![Just(3usize), Just(5)]) {
        let code = RotatedCode::new(d);
        let keys = KeyLayout::new(rounds, code.num_stabs(), code.num_data());
        let mut seen = std::collections::HashSet::new();
        for r in 0..rounds {
            for s in 0..code.num_stabs() {
                prop_assert!(seen.insert(keys.stab_key(r, s)));
            }
        }
        for q in 0..code.num_data() {
            prop_assert!(seen.insert(keys.final_key(q)));
        }
        prop_assert_eq!(seen.len(), keys.total());
    }
}
