//! Property-based tests of the lattice and round synthesis invariants,
//! driven by the in-repo [`qec_core::Rng`] generator (no external proptest
//! dependency).

use qec_core::{NoiseParams, Op, Rng};
use surface_code::{KeyLayout, LrcAssignment, RotatedCode, RoundBuilder};

const DISTANCES: [usize; 5] = [3, 5, 7, 9, 11];

#[test]
fn stabilizer_supports_partition_consistently() {
    for d in DISTANCES {
        let code = RotatedCode::new(d);
        // Sum of stabilizer weights = sum of data adjacency degrees.
        let weight_sum: usize = code.stabilizers().iter().map(|s| s.weight()).sum();
        let degree_sum: usize = (0..code.num_data())
            .map(|q| code.adjacent_stabs(q).len())
            .sum();
        assert_eq!(weight_sum, degree_sum, "d={d}");
    }
}

#[test]
fn every_data_qubit_sees_both_bases() {
    for d in DISTANCES {
        let code = RotatedCode::new(d);
        for q in 0..code.num_data() {
            let kinds: std::collections::HashSet<_> = code
                .adjacent_stabs(q)
                .iter()
                .map(|&s| code.stabilizers()[s].kind)
                .collect();
            assert_eq!(kinds.len(), 2, "d={d} q={q}");
        }
    }
}

#[test]
fn random_valid_lrc_sets_build_consistent_rounds() {
    let mut gen = Rng::new(0x1_4C5);
    for case in 0..24 {
        let d = [3usize, 5][gen.below(2) as usize];
        let code = RotatedCode::new(d);
        let keys = KeyLayout::new(2, code.num_stabs(), code.num_data());
        let builder = RoundBuilder::new(&code, NoiseParams::standard(1e-3));
        // Build a conflict-free LRC set from random picks.
        let mut rng = Rng::new(gen.next_u64());
        let n_picks = gen.below(6) as usize;
        let mut stab_used = vec![false; code.num_stabs()];
        let mut data_used = vec![false; code.num_data()];
        let mut lrcs = Vec::new();
        for _ in 0..n_picks {
            let data = gen.below(25) as usize % code.num_data();
            if data_used[data] {
                continue;
            }
            let adj = code.adjacent_stabs(data);
            let start = rng.below(adj.len() as u64) as usize;
            if let Some(&stab) = adj
                .iter()
                .cycle()
                .skip(start)
                .take(adj.len())
                .find(|&&s| !stab_used[s])
            {
                stab_used[stab] = true;
                data_used[data] = true;
                lrcs.push(LrcAssignment { data, stab });
            }
        }

        let base = builder.round(0, &[], &keys);
        let round = builder.round(0, &lrcs, &keys);
        // Invariant: 5 extra CNOTs per LRC.
        assert_eq!(
            round.cnot_count(),
            base.cnot_count() + 5 * lrcs.len(),
            "case {case} d={d}"
        );
        // Invariant: every stabilizer key measured exactly once.
        let mut seen = std::collections::HashSet::new();
        for op in &round.measure {
            if let Op::Measure { key, .. } = op {
                assert!(seen.insert(*key), "case {case}: duplicate key");
            }
        }
        assert_eq!(seen.len(), code.num_stabs());
        // Invariant: one swap-back tail per LRC, targeting the right pair.
        assert_eq!(round.lrc_post.len(), lrcs.len());
        for (tail, lrc) in round.lrc_post.iter().zip(&lrcs) {
            assert_eq!(tail.data, lrc.data);
            assert_eq!(tail.parity, code.parity_qubit(lrc.stab));
        }
    }
}

#[test]
fn key_layout_is_a_bijection() {
    let mut gen = Rng::new(0xB1_1EC);
    for _ in 0..24 {
        let rounds = 1 + gen.below(11) as usize;
        let d = [3usize, 5][gen.below(2) as usize];
        let code = RotatedCode::new(d);
        let keys = KeyLayout::new(rounds, code.num_stabs(), code.num_data());
        let mut seen = std::collections::HashSet::new();
        for r in 0..rounds {
            for s in 0..code.num_stabs() {
                assert!(seen.insert(keys.stab_key(r, s)));
            }
        }
        for q in 0..code.num_data() {
            assert!(seen.insert(keys.final_key(q)));
        }
        assert_eq!(seen.len(), keys.total());
    }
}
