//! Reference values from the paper, printed beside measured results so
//! paper-vs-measured comparison is immediate (EXPERIMENTS.md collects them).

/// Table 2: probability (%) of a leaked data qubit staying invisible for
/// 0..=3 rounds.
pub const TABLE2_PCT: [(u32, f64); 4] = [(0, 93.8), (1, 5.90), (2, 0.36), (3, 0.02)];

/// Table 3: (distance, LUT %, FF %) from Vivado on xcku3p.
pub const TABLE3: [(usize, f64, f64); 5] = [
    (3, 0.04, 0.02),
    (5, 0.12, 0.05),
    (7, 0.26, 0.10),
    (9, 0.42, 0.18),
    (11, 0.76, 0.26),
];

/// Table 4: (distance, Always-LRCs, ERASER, ERASER+M, Optimal) average LRCs
/// per round.
pub const TABLE4: [(usize, f64, f64, f64, f64); 5] = [
    (3, 4.2, 0.27, 0.26, 0.005),
    (5, 12.0, 0.81, 0.79, 0.015),
    (7, 24.0, 1.52, 1.50, 0.034),
    (9, 40.0, 2.40, 2.38, 0.058),
    (11, 60.0, 3.45, 3.41, 0.089),
];

/// §3.1 headline constants: Eq. (1) ≈ 10%, Eq. (2) ≈ 34%.
pub const EQ1_PCT: f64 = 10.0;
pub const EQ2_PCT: f64 = 34.0;

/// §6.1 headline factors over Always-LRCs at p = 1e-3.
pub const ERASER_LER_IMPROVEMENT_AVG: f64 = 3.3;
pub const ERASER_LER_IMPROVEMENT_BEST: f64 = 4.3;
pub const ERASER_M_LER_IMPROVEMENT_AVG: f64 = 8.6;
pub const ERASER_M_LER_IMPROVEMENT_BEST: f64 = 26.0;

/// §6.4: speculation accuracy ≈97% for ERASER/ERASER+M vs ≈50% for
/// Always-LRCs; FPR 3% vs 50%; FNR ≈50% (ERASER) vs ≈40% (ERASER+M).
pub const SPEC_ACCURACY_ERASER_PCT: f64 = 97.0;
pub const SPEC_ACCURACY_ALWAYS_PCT: f64 = 50.0;
pub const FPR_ERASER_PCT: f64 = 3.0;
pub const FNR_ERASER_PCT: f64 = 50.0;
pub const FNR_ERASER_M_PCT: f64 = 40.0;

/// Fig 2(c): leakage multiplies the d=7 LER by ≈27× after one cycle and
/// ≈467× after five.
pub const FIG2C_RATIO_CYCLE1: f64 = 27.0;
pub const FIG2C_RATIO_CYCLE5: f64 = 467.0;
