//! Tiny dependency-free command-line parsing.

use eraser_core::DecoderKind;
use std::path::PathBuf;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Opts {
    pub shots: u64,
    pub seed: u64,
    pub threads: usize,
    pub p: f64,
    /// Per-figure distance override (0 = use the paper's default).
    pub d: usize,
    pub dmax: usize,
    pub cycles: usize,
    pub decoder: DecoderKind,
    /// Sliding-window decode configuration `(window_rounds, window_stride)`
    /// applied to every figure; (0, 0) = monolithic (or `ERASER_WINDOW`).
    pub window: (usize, usize),
    pub out: PathBuf,
    pub quick: bool,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            shots: 1000,
            seed: 2023,
            threads: 0,
            p: 1e-3,
            d: 0,
            dmax: 11,
            cycles: 10,
            decoder: DecoderKind::Auto,
            window: (0, 0),
            out: PathBuf::from("results"),
            quick: false,
        }
    }
}

impl Opts {
    /// Effective shot budget (the `--quick` smoke budget wins).
    pub fn effective_shots(&self) -> u64 {
        if self.quick {
            100
        } else {
            self.shots
        }
    }
}

/// Parses `<command> [--key value | --flag]...`.
pub fn parse(args: &[String]) -> Result<(String, Opts), String> {
    let mut opts = Opts::default();
    let mut command = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(key) = arg.strip_prefix("--") {
            let value = |i: &mut usize| -> Result<String, String> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| format!("--{key} needs a value"))
            };
            match key {
                "shots" => {
                    opts.shots = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--shots: {e}"))?
                }
                "seed" => opts.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
                "threads" => {
                    opts.threads = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "p" => opts.p = value(&mut i)?.parse().map_err(|e| format!("--p: {e}"))?,
                "d" => opts.d = value(&mut i)?.parse().map_err(|e| format!("--d: {e}"))?,
                "dmax" => opts.dmax = value(&mut i)?.parse().map_err(|e| format!("--dmax: {e}"))?,
                "cycles" => {
                    opts.cycles = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--cycles: {e}"))?
                }
                "decoder" => {
                    opts.decoder = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--decoder: {e}"))?
                }
                "window" => {
                    let spec = value(&mut i)?;
                    let mut parts = spec.splitn(2, ':');
                    let window: usize = parts
                        .next()
                        .unwrap_or_default()
                        .parse()
                        .map_err(|e| format!("--window: {e}"))?;
                    let stride: usize = match parts.next() {
                        Some(s) => s.parse().map_err(|e| format!("--window stride: {e}"))?,
                        None => 0,
                    };
                    if stride > window {
                        return Err(format!("--window: stride {stride} exceeds window {window}"));
                    }
                    opts.window = (window, stride);
                }
                "out" => opts.out = PathBuf::from(value(&mut i)?),
                "quick" => opts.quick = true,
                other => return Err(format!("unknown option `--{other}`")),
            }
        } else if command.is_none() {
            command = Some(arg.clone());
        } else {
            return Err(format!("unexpected argument `{arg}`"));
        }
        i += 1;
    }
    Ok((command.unwrap_or_else(|| "help".to_string()), opts))
}
