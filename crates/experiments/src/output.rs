//! Table printing and CSV export.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple result table that prints aligned to stdout and exports CSV.
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, columns: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        self.print_every(1);
    }

    /// Prints the header plus every `step`-th row (long per-round tables are
    /// subsampled on stdout; their CSV export holds every row).
    pub fn print_every(&self, step: usize) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        let step = step.max(1);
        for (i, row) in self.rows.iter().enumerate() {
            if i % step != 0 && i != self.rows.len() - 1 {
                continue;
            }
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }
        if step > 1 {
            println!("  (showing every {step}th round; full data in the CSV)");
        }
    }

    /// Writes the table as `<dir>/<name>.csv`.
    pub fn write_csv(&self, dir: &Path, name: &str) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir:?}: {e}"))?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path).map_err(|e| format!("create {path:?}: {e}"))?;
        let mut emit = |cells: &[String]| -> Result<(), String> {
            let line = cells
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect::<Vec<_>>()
                .join(",");
            writeln!(f, "{line}").map_err(|e| format!("write {path:?}: {e}"))
        };
        emit(&self.columns)?;
        for row in &self.rows {
            emit(row)?;
        }
        println!("  -> wrote {}", path.display());
        Ok(())
    }
}

/// Scientific notation with three significant digits.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x:.2e}")
    }
}

/// Fixed-point with `n` decimals.
pub fn fixed(x: f64, n: usize) -> String {
    format!("{x:.n$}")
}

/// A ratio like "4.3x"; `inf` guarded.
pub fn ratio(num: f64, den: f64) -> String {
    if den <= 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.1}x", num / den)
    }
}
