//! Experiment harness reproducing every table and figure of the ERASER paper.
//!
//! ```text
//! eraser-experiments <command> [options]
//!
//! commands:
//!   analytic   Eq. (1)/(2) transport analysis (§3.1, Table 1)
//!   table2     invisible-leakage probabilities (Eq. 3)
//!   fig1c      LER: No-LRC vs Always-LRC vs Optimal over QEC cycles
//!   fig2c      LER with vs without leakage over QEC cycles
//!   fig5       LPR per round under Always-LRC (total/data/parity)
//!   fig6       LPR + LER: Always-LRC vs Optimal
//!   fig8       density-matrix leakage-spread study (single Z stabilizer)
//!   fig14      LER vs distance for the four policies
//!   fig15      LPR per round at d=11 for the four policies
//!   fig16      speculation accuracy, FPR/FNR
//!   table3     RTL generation + FPGA resource model
//!   table4     average LRCs per round
//!   fig17      LER vs distance, exchange-transport model (App A.1)
//!   fig18      LPR at d=11, exchange-transport model (App A.1)
//!   fig20      LER vs distance with the DQLR protocol (App A.2)
//!   fig21      LPR at d=11 with the DQLR protocol (App A.2)
//!   ablation   LSB threshold / PUTT / backup / decoder ablations
//!   postselect offline post-selection vs real-time suppression (§7.1)
//!   memx       memory-X vs memory-Z symmetry check (extension)
//!   erasure    ERASER+M ± erasure-aware decoding across (d, p) (extension)
//!   longmem    windowed vs monolithic decoding at R in {d,10d,100d} (extension)
//!   latency    per-shot decode latency vs fusion_threads, all backends (extension)
//!   predecode  tiered fast-path hit rates and decode cost, all backends (extension)
//!   adaptive   feedback-controlled LRC density vs static policies (extension)
//!   all        run everything
//!
//! options:
//!   --shots N      Monte-Carlo shots per configuration (default 1000)
//!   --seed N       root RNG seed (default 2023)
//!   --threads N    worker threads (default: all cores)
//!   --p F          physical error rate (default 1e-3)
//!   --d N          override the figure's code distance
//!   --dmax N       cap the distance sweep (default 11)
//!   --cycles N     QEC cycles (default 10; each cycle is d rounds)
//!   --decoder K    mwpm | uf | greedy | auto (default auto)
//!   --window W[:S] sliding-window decoding: W rounds per window, S committed
//!                  per step (S defaults to W - d; 0/unset = monolithic)
//!   --out DIR      CSV output directory (default results/)
//!   --quick        tiny-budget smoke run (overrides --shots)
//! ```

mod cli;
mod figures;
mod output;
mod paper;

use cli::Opts;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, opts) = match cli::parse(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with `help` for usage");
            std::process::exit(2);
        }
    };
    if let Err(e) = dispatch(&command, &opts) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn dispatch(command: &str, opts: &Opts) -> Result<(), String> {
    match command {
        "analytic" => figures::analytic(opts),
        "table2" => figures::table2(opts),
        "fig1c" => figures::fig1c(opts),
        "fig2c" => figures::fig2c(opts),
        "fig5" => figures::fig5(opts),
        "fig6" => figures::fig6(opts),
        "fig8" => figures::fig8(opts),
        "fig14" => figures::fig14(opts),
        "fig15" => figures::fig15(opts),
        "fig16" => figures::fig16(opts),
        "table3" => figures::table3(opts),
        "table4" => figures::table4(opts),
        "fig17" => figures::fig17(opts),
        "fig18" => figures::fig18(opts),
        "fig20" => figures::fig20(opts),
        "fig21" => figures::fig21(opts),
        "ablation" => figures::ablation(opts),
        "postselect" => figures::postselect(opts),
        "memx" => figures::memx(opts),
        "erasure" => figures::erasure(opts),
        "longmem" => figures::longmem(opts),
        "latency" => figures::latency(opts),
        "predecode" => figures::predecode(opts),
        "adaptive" => figures::adaptive(opts),
        "all" => {
            for cmd in [
                "analytic",
                "table2",
                "fig8",
                "table3",
                "fig1c",
                "fig2c",
                "fig5",
                "fig6",
                "fig14",
                "fig15",
                "fig16",
                "table4",
                "fig17",
                "fig18",
                "fig20",
                "fig21",
                "ablation",
                "erasure",
                "longmem",
                "latency",
                "predecode",
                "adaptive",
            ] {
                dispatch(cmd, opts)?;
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("see module docs in crates/experiments/src/main.rs for usage");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
