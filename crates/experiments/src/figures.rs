//! One function per paper table/figure. Each prints a result table (with the
//! paper's reference numbers where they exist) and writes a CSV.

use crate::cli::Opts;
use crate::output::{fixed, ratio, sci, Table};
use crate::paper;
use eraser_core::{
    analysis, resource, rtl, AlwaysLrcPolicy, DecoderKind, EraserOptions, EraserPolicy,
    LrcPolicy, LrcProtocol, MemoryRunResult, MemoryRunner, NoLrcPolicy, OptimalPolicy,
    RunConfig,
};
use qec_core::NoiseParams;
use surface_code::RotatedCode;

/// Policy selector used across the sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    NoLrc,
    Always,
    /// Every-round variant (the DQLR baseline).
    AlwaysEvery,
    Eraser,
    EraserM,
    Optimal,
}

impl PolicyKind {
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::NoLrc => "no-lrc",
            PolicyKind::Always => "always-lrc",
            PolicyKind::AlwaysEvery => "dqlr-every-round",
            PolicyKind::Eraser => "eraser",
            PolicyKind::EraserM => "eraser+m",
            PolicyKind::Optimal => "optimal",
        }
    }

    fn build(self, code: &RotatedCode) -> Box<dyn LrcPolicy> {
        match self {
            PolicyKind::NoLrc => Box::new(NoLrcPolicy::new()),
            PolicyKind::Always => Box::new(AlwaysLrcPolicy::new(code)),
            PolicyKind::AlwaysEvery => Box::new(AlwaysLrcPolicy::every_round(code)),
            PolicyKind::Eraser => Box::new(EraserPolicy::new(code)),
            PolicyKind::EraserM => Box::new(EraserPolicy::with_multilevel(code)),
            PolicyKind::Optimal => Box::new(OptimalPolicy::new(code)),
        }
    }
}

fn run_policy(
    runner: &MemoryRunner,
    kind: PolicyKind,
    opts: &Opts,
    protocol: LrcProtocol,
    decode: bool,
) -> MemoryRunResult {
    let config = RunConfig {
        shots: opts.effective_shots(),
        seed: opts.seed,
        threads: opts.threads,
        decoder: opts.decoder,
        protocol,
        decode,
    };
    runner.run(&move |code| kind.build(code), &config)
}

fn distances(opts: &Opts) -> Vec<usize> {
    [3usize, 5, 7, 9, 11]
        .into_iter()
        .filter(|&d| d <= opts.dmax)
        .collect()
}

fn figure_d(opts: &Opts, paper_default: usize) -> usize {
    if opts.d != 0 {
        opts.d
    } else {
        paper_default.min(opts.dmax)
    }
}

// ---------------------------------------------------------------------------
// Analytical results
// ---------------------------------------------------------------------------

/// §3.1 / Table 1: Eq. (1) and Eq. (2).
pub fn analytic(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Eq.(1)/(2): leakage-transport analysis (paper: ~10% / ~34%, ratio ~3x)",
        &["quantity", "model", "paper"],
    );
    let e1 = analysis::p_data_leak_given_parity_leak(
        analysis::P_LEAK_DEFAULT,
        analysis::P_TRANSPORT_DEFAULT,
    );
    let e2 = analysis::p_parity_leak_given_data_leak(
        analysis::P_LEAK_DEFAULT,
        analysis::P_TRANSPORT_DEFAULT,
    );
    t.row(vec![
        "P(L_data | L_parity) %".into(),
        fixed(e1 * 100.0, 2),
        fixed(paper::EQ1_PCT, 1),
    ]);
    t.row(vec![
        "P(L_parity | L_data) %".into(),
        fixed(e2 * 100.0, 2),
        fixed(paper::EQ2_PCT, 1),
    ]);
    t.row(vec![
        "amplification ratio".into(),
        fixed(analysis::transport_amplification_ratio(), 2),
        "~3".into(),
    ]);
    t.print();
    t.write_csv(&opts.out, "analytic")
}

/// Table 2: invisible-leakage probability.
pub fn table2(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Table 2: P(leaked data qubit invisible for r rounds)",
        &["rounds", "model %", "paper %"],
    );
    for (r, paper_pct) in paper::TABLE2_PCT {
        t.row(vec![
            r.to_string(),
            fixed(analysis::p_invisible(r) * 100.0, 2),
            fixed(paper_pct, 2),
        ]);
    }
    t.print();
    t.write_csv(&opts.out, "table2")
}

// ---------------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------------

/// Fig 1(c): LER over QEC cycles for No-LRC, Always-LRC, Optimal.
pub fn fig1c(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let noise = NoiseParams::standard(opts.p);
    let mut t = Table::new(
        &format!("Fig 1(c): LER over QEC cycles, d={d}, p={:.0e} (paper: Always ~4x, Optimal ~10x better than No-LRC at d=7)", opts.p),
        &["cycle", "no-lrc", "always-lrc", "optimal"],
    );
    for cycle in 1..=opts.cycles {
        let runner = MemoryRunner::new(d, noise, d * cycle);
        let cells: Vec<String> = [PolicyKind::NoLrc, PolicyKind::Always, PolicyKind::Optimal]
            .iter()
            .map(|&k| sci(run_policy(&runner, k, opts, LrcProtocol::Swap, true).ler()))
            .collect();
        t.row(vec![cycle.to_string(), cells[0].clone(), cells[1].clone(), cells[2].clone()]);
    }
    t.print();
    t.write_csv(&opts.out, "fig1c")
}

/// Fig 2(c): LER with vs without leakage over QEC cycles.
pub fn fig2c(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let mut t = Table::new(
        &format!(
            "Fig 2(c): leakage impact on LER, d={d}, p={:.0e} (paper d=7: 27x after 1 cycle, 467x after 5)",
            opts.p
        ),
        &["cycle", "no leakage", "with leakage", "ratio"],
    );
    for cycle in 1..=opts.cycles {
        let rounds = d * cycle;
        let clean = MemoryRunner::new(d, NoiseParams::without_leakage(opts.p), rounds);
        let leaky = MemoryRunner::new(d, NoiseParams::standard(opts.p), rounds);
        let ler_clean =
            run_policy(&clean, PolicyKind::NoLrc, opts, LrcProtocol::Swap, true).ler();
        let ler_leaky =
            run_policy(&leaky, PolicyKind::NoLrc, opts, LrcProtocol::Swap, true).ler();
        t.row(vec![
            cycle.to_string(),
            sci(ler_clean),
            sci(ler_leaky),
            ratio(ler_leaky, ler_clean),
        ]);
    }
    t.print();
    println!(
        "(paper reference ratios: {}x at cycle 1, {}x at cycle 5; absolute ratios depend on\n shot budget — cells with zero observed errors print n/a)",
        paper::FIG2C_RATIO_CYCLE1,
        paper::FIG2C_RATIO_CYCLE5
    );
    t.write_csv(&opts.out, "fig2c")
}

/// Fig 5: LPR per round under Always-LRC, split into data/parity.
pub fn fig5(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let rounds = d * opts.cycles;
    let runner = MemoryRunner::new(d, NoiseParams::standard(opts.p), rounds);
    let result = run_policy(&runner, PolicyKind::Always, opts, LrcProtocol::Swap, false);
    let mut t = Table::new(
        &format!("Fig 5: LPR (x1e-4) per round, Always-LRC, d={d} (paper: rises over time, spikes on LRC rounds)"),
        &["round", "total", "data", "parity"],
    );
    for r in 0..rounds {
        t.row(vec![
            r.to_string(),
            fixed(result.lpr_total[r] * 1e4, 2),
            fixed(result.lpr_data[r] * 1e4, 2),
            fixed(result.lpr_parity[r] * 1e4, 2),
        ]);
    }
    print_subsampled(&t, rounds);
    t.write_csv(&opts.out, "fig5")
}

/// Fig 6: LPR per round and LER per cycle, Always-LRC vs Optimal.
pub fn fig6(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let rounds = d * opts.cycles;
    let runner = MemoryRunner::new(d, NoiseParams::standard(opts.p), rounds);
    let always = run_policy(&runner, PolicyKind::Always, opts, LrcProtocol::Swap, false);
    let optimal = run_policy(&runner, PolicyKind::Optimal, opts, LrcProtocol::Swap, false);
    let mut lpr = Table::new(
        &format!("Fig 6 (top): LPR (x1e-4) per round, d={d} (paper: Always keeps rising, Optimal stays low)"),
        &["round", "always-lrc", "optimal"],
    );
    for r in 0..rounds {
        lpr.row(vec![
            r.to_string(),
            fixed(always.lpr_total[r] * 1e4, 2),
            fixed(optimal.lpr_total[r] * 1e4, 2),
        ]);
    }
    print_subsampled(&lpr, rounds);
    lpr.write_csv(&opts.out, "fig6_lpr")?;

    let mut ler = Table::new(
        &format!("Fig 6 (bottom): LER per QEC cycle, d={d} (paper: ~10x gap at 10 cycles)"),
        &["cycle", "always-lrc", "optimal", "gap"],
    );
    for cycle in 1..=opts.cycles {
        let r = MemoryRunner::new(d, NoiseParams::standard(opts.p), d * cycle);
        let a = run_policy(&r, PolicyKind::Always, opts, LrcProtocol::Swap, true).ler();
        let o = run_policy(&r, PolicyKind::Optimal, opts, LrcProtocol::Swap, true).ler();
        ler.row(vec![cycle.to_string(), sci(a), sci(o), ratio(a, o)]);
    }
    ler.print();
    ler.write_csv(&opts.out, "fig6_ler")
}

/// Fig 8: density-matrix leakage-spread study over one Z stabilizer.
pub fn fig8(opts: &Opts) -> Result<(), String> {
    let records = density_sim::StabilizerLeakageStudy::default().run();
    let mut t = Table::new(
        "Fig 8: single-stabilizer leakage spread (density matrix, ququarts)",
        &["step", "q0", "q1", "q2", "q3", "P", "P(correct readout)"],
    );
    for rec in &records {
        t.row(vec![
            rec.label.clone(),
            fixed(rec.leak[0], 4),
            fixed(rec.leak[1], 4),
            fixed(rec.leak[2], 4),
            fixed(rec.leak[3], 4),
            fixed(rec.leak[4], 4),
            fixed(rec.p_correct, 4),
        ]);
    }
    t.print();
    println!("(paper: point A shows P significantly leaked after the LRC swap-in;\n point C shows readout only slightly better than random)");
    t.write_csv(&opts.out, "fig8")
}

// ---------------------------------------------------------------------------
// Main results
// ---------------------------------------------------------------------------

fn ler_sweep(
    opts: &Opts,
    noise_for: &dyn Fn(f64) -> NoiseParams,
    protocol: LrcProtocol,
    policies: &[PolicyKind],
    title: &str,
    csv: &str,
) -> Result<(), String> {
    let mut columns: Vec<&str> = vec!["d"];
    columns.extend(policies.iter().map(|p| p.label()));
    columns.push("eraser gain");
    columns.push("eraser+m gain");
    let mut t = Table::new(title, &columns);
    for d in distances(opts) {
        let runner = MemoryRunner::new(d, noise_for(opts.p), d * opts.cycles);
        let results: Vec<MemoryRunResult> = policies
            .iter()
            .map(|&k| run_policy(&runner, k, opts, protocol, true))
            .collect();
        let baseline = results[0].ler();
        let find = |kind: PolicyKind| -> Option<f64> {
            policies
                .iter()
                .position(|&k| k == kind)
                .map(|i| results[i].ler())
        };
        let mut row = vec![d.to_string()];
        row.extend(results.iter().map(|r| sci(r.ler())));
        row.push(
            find(PolicyKind::Eraser)
                .map(|l| ratio(baseline, l))
                .unwrap_or_default(),
        );
        row.push(
            find(PolicyKind::EraserM)
                .map(|l| ratio(baseline, l))
                .unwrap_or_default(),
        );
        t.row(row);
    }
    t.print();
    t.write_csv(&opts.out, csv)
}

/// Fig 14: LER vs distance for the four policies.
pub fn fig14(opts: &Opts) -> Result<(), String> {
    let title = format!(
        "Fig 14: LER vs distance, p={:.0e}, {} cycles (paper p=1e-3: ERASER avg {}x / best {}x, ERASER+M avg {}x / best {}x over Always)",
        opts.p,
        opts.cycles,
        paper::ERASER_LER_IMPROVEMENT_AVG,
        paper::ERASER_LER_IMPROVEMENT_BEST,
        paper::ERASER_M_LER_IMPROVEMENT_AVG,
        paper::ERASER_M_LER_IMPROVEMENT_BEST,
    );
    ler_sweep(
        opts,
        &NoiseParams::standard,
        LrcProtocol::Swap,
        &[
            PolicyKind::Always,
            PolicyKind::Eraser,
            PolicyKind::EraserM,
            PolicyKind::Optimal,
        ],
        &title,
        "fig14",
    )
}

fn lpr_four_policies(
    opts: &Opts,
    noise: NoiseParams,
    protocol: LrcProtocol,
    baseline: PolicyKind,
    title: &str,
    csv: &str,
) -> Result<(), String> {
    let d = figure_d(opts, 11);
    let rounds = d * opts.cycles;
    let runner = MemoryRunner::new(d, noise, rounds);
    let policies = [
        baseline,
        PolicyKind::Eraser,
        PolicyKind::EraserM,
        PolicyKind::Optimal,
    ];
    let results: Vec<MemoryRunResult> = policies
        .iter()
        .map(|&k| run_policy(&runner, k, opts, protocol, false))
        .collect();
    let mut columns = vec!["round".to_string()];
    columns.extend(policies.iter().map(|p| p.label().to_string()));
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&format!("{title} (d={d}, LPR x1e-4)"), &col_refs);
    for r in 0..rounds {
        let mut row = vec![r.to_string()];
        row.extend(results.iter().map(|res| fixed(res.lpr_total[r] * 1e4, 2)));
        t.row(row);
    }
    print_subsampled(&t, rounds);
    t.write_csv(&opts.out, csv)
}

/// Fig 15: LPR per round at d=11 for the four policies.
pub fn fig15(opts: &Opts) -> Result<(), String> {
    lpr_four_policies(
        opts,
        NoiseParams::standard(opts.p),
        LrcProtocol::Swap,
        PolicyKind::Always,
        "Fig 15: LPR per round (paper: ERASER ~1.5x lower than Always, ERASER+M ~2.2x lower than ERASER)",
        "fig15",
    )
}

/// Fig 16: speculation accuracy per distance; FPR/FNR at the largest d.
pub fn fig16(opts: &Opts) -> Result<(), String> {
    let mut acc = Table::new(
        &format!(
            "Fig 16 (top): speculation accuracy %, {} cycles (paper: Always ~{}%, ERASER/ERASER+M ~{}%, Optimal 100%)",
            opts.cycles,
            paper::SPEC_ACCURACY_ALWAYS_PCT,
            paper::SPEC_ACCURACY_ERASER_PCT
        ),
        &["d", "always-lrc", "eraser", "eraser+m", "optimal"],
    );
    let policies = [
        PolicyKind::Always,
        PolicyKind::Eraser,
        PolicyKind::EraserM,
        PolicyKind::Optimal,
    ];
    let mut last_results: Vec<MemoryRunResult> = Vec::new();
    let mut last_d = 0;
    for d in distances(opts) {
        let runner = MemoryRunner::new(d, NoiseParams::standard(opts.p), d * opts.cycles);
        let results: Vec<MemoryRunResult> = policies
            .iter()
            .map(|&k| run_policy(&runner, k, opts, LrcProtocol::Swap, false))
            .collect();
        let mut row = vec![d.to_string()];
        row.extend(
            results
                .iter()
                .map(|r| fixed(r.speculation.accuracy() * 100.0, 1)),
        );
        acc.row(row);
        last_results = results;
        last_d = d;
    }
    acc.print();
    acc.write_csv(&opts.out, "fig16_accuracy")?;

    let mut rates = Table::new(
        &format!(
            "Fig 16 (bottom): FPR/FNR % at d={last_d} (paper d=11: FPR {}% vs 50%; FNR ~{}% ERASER, ~{}% ERASER+M)",
            paper::FPR_ERASER_PCT,
            paper::FNR_ERASER_PCT,
            paper::FNR_ERASER_M_PCT
        ),
        &["policy", "FPR %", "FNR %"],
    );
    for (kind, res) in policies.iter().zip(&last_results) {
        rates.row(vec![
            kind.label().to_string(),
            fixed(res.speculation.false_positive_rate() * 100.0, 2),
            fixed(res.speculation.false_negative_rate() * 100.0, 2),
        ]);
    }
    rates.print();
    rates.write_csv(&opts.out, "fig16_rates")
}

/// Table 3: RTL generation + FPGA resource model.
pub fn table3(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Table 3: FPGA resources on xcku3p (model vs paper's Vivado synthesis; latency target 5 ns)",
        &["d", "LUT % (model)", "LUT % (paper)", "FF % (model)", "FF % (paper)", "latency ns"],
    );
    std::fs::create_dir_all(&opts.out).map_err(|e| format!("mkdir: {e}"))?;
    for (d, lut_paper, ff_paper) in paper::TABLE3 {
        if d > opts.dmax {
            continue;
        }
        let code = RotatedCode::new(d);
        let est = resource::estimate(&code, resource::XCKU3P);
        t.row(vec![
            d.to_string(),
            fixed(est.lut_pct, 3),
            fixed(lut_paper, 2),
            fixed(est.ff_pct, 3),
            fixed(ff_paper, 2),
            fixed(est.latency_ns, 2),
        ]);
        let sv = rtl::generate(&code);
        let path = opts.out.join(format!("eraser_d{d}.sv"));
        std::fs::write(&path, sv).map_err(|e| format!("write {path:?}: {e}"))?;
        println!("  -> wrote {}", path.display());
    }
    t.print();
    t.write_csv(&opts.out, "table3")
}

/// Table 4: average LRCs per round per policy.
pub fn table4(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Table 4: average LRCs per round (paper values in parentheses columns)",
        &[
            "d",
            "always",
            "always(paper)",
            "eraser",
            "eraser(paper)",
            "eraser+m",
            "eraser+m(paper)",
            "optimal",
            "optimal(paper)",
        ],
    );
    for (d, p_always, p_eraser, p_eraser_m, p_optimal) in paper::TABLE4 {
        if d > opts.dmax {
            continue;
        }
        let runner = MemoryRunner::new(d, NoiseParams::standard(opts.p), d * opts.cycles);
        let get = |k: PolicyKind| {
            run_policy(&runner, k, opts, LrcProtocol::Swap, false).lrcs_per_round()
        };
        t.row(vec![
            d.to_string(),
            fixed(get(PolicyKind::Always), 2),
            fixed(p_always, 2),
            fixed(get(PolicyKind::Eraser), 2),
            fixed(p_eraser, 2),
            fixed(get(PolicyKind::EraserM), 2),
            fixed(p_eraser_m, 2),
            fixed(get(PolicyKind::Optimal), 3),
            fixed(p_optimal, 3),
        ]);
    }
    t.print();
    t.write_csv(&opts.out, "table4")
}

// ---------------------------------------------------------------------------
// Appendix experiments
// ---------------------------------------------------------------------------

/// Fig 17: LER vs distance under the exchange-transport model (App A.1).
pub fn fig17(opts: &Opts) -> Result<(), String> {
    let title = format!(
        "Fig 17 (App A.1): LER vs distance, exchange transport, p={:.0e} (paper: ERASER avg 6.5x / best 13.4x, ERASER+M avg 8.8x / best 24.1x)",
        opts.p
    );
    ler_sweep(
        opts,
        &NoiseParams::exchange_transport,
        LrcProtocol::Swap,
        &[
            PolicyKind::Always,
            PolicyKind::Eraser,
            PolicyKind::EraserM,
            PolicyKind::Optimal,
        ],
        &title,
        "fig17",
    )
}

/// Fig 18: LPR at d=11 under the exchange-transport model.
pub fn fig18(opts: &Opts) -> Result<(), String> {
    lpr_four_policies(
        opts,
        NoiseParams::exchange_transport(opts.p),
        LrcProtocol::Swap,
        PolicyKind::Always,
        "Fig 18 (App A.1): LPR per round, exchange transport (paper: all policies stabilize except Always)",
        "fig18",
    )
}

/// Fig 20: LER vs distance with the DQLR protocol (App A.2; exchange model).
pub fn fig20(opts: &Opts) -> Result<(), String> {
    let title = format!(
        "Fig 20 (App A.2): LER vs distance with DQLR, p={:.0e} (paper: ERASER 1.8x avg, ERASER+M 2x avg over every-round DQLR)",
        opts.p
    );
    ler_sweep(
        opts,
        &NoiseParams::exchange_transport,
        LrcProtocol::Dqlr,
        &[
            PolicyKind::AlwaysEvery,
            PolicyKind::Eraser,
            PolicyKind::EraserM,
            PolicyKind::Optimal,
        ],
        &title,
        "fig20",
    )
}

/// Fig 21: LPR at d=11 with the DQLR protocol.
pub fn fig21(opts: &Opts) -> Result<(), String> {
    lpr_four_policies(
        opts,
        NoiseParams::exchange_transport(opts.p),
        LrcProtocol::Dqlr,
        PolicyKind::AlwaysEvery,
        "Fig 21 (App A.2): LPR per round with DQLR (paper: DQLR stabilizes LPR quickly; ERASER ~1.4x lower)",
        "fig21",
    )
}

/// Memory-basis comparison (extension): ERASER protects logical X exactly as
/// it protects logical Z — leakage is basis-agnostic, so the speculation
/// pipeline carries over unchanged.
pub fn memx(opts: &Opts) -> Result<(), String> {
    use surface_code::MemoryBasis;
    let d = figure_d(opts, 5);
    let rounds = d * opts.cycles;
    let mut t = Table::new(
        &format!("Memory-Z vs memory-X under ERASER, d={d}, p={:.0e}", opts.p),
        &["basis", "policy", "ler", "lrcs/round", "accuracy %"],
    );
    for (label, basis) in [("Z", MemoryBasis::Z), ("X", MemoryBasis::X)] {
        let runner = MemoryRunner::new_with_basis(d, NoiseParams::standard(opts.p), rounds, basis);
        for kind in [PolicyKind::Always, PolicyKind::Eraser] {
            let res = run_policy(&runner, kind, opts, LrcProtocol::Swap, true);
            t.row(vec![
                label.to_string(),
                kind.label().to_string(),
                sci(res.ler()),
                fixed(res.lrcs_per_round(), 2),
                fixed(res.speculation.accuracy() * 100.0, 1),
            ]);
        }
    }
    t.print();
    println!("(both bases show the same ERASER-over-Always improvement; the CSS code and\n the leakage model are basis-symmetric)");
    t.write_csv(&opts.out, "memx")
}

/// Post-selection study (§2.4/§7.1 prior-work comparison): offline filtering
/// of leakage-suspect shots vs real-time suppression.
pub fn postselect(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 5);
    let mut t = Table::new(
        &format!(
            "Post-selection vs real-time suppression, d={d}, p={:.0e} (paper §7.1: post-selection \
             cannot run during computation and its keep-rate collapses with duration)",
            opts.p
        ),
        &["cycles", "raw LER", "postsel LER", "keep %", "eraser LER"],
    );
    for cycle in 1..=opts.cycles {
        let runner = MemoryRunner::new(d, NoiseParams::standard(opts.p), d * cycle);
        let raw = run_policy(&runner, PolicyKind::NoLrc, opts, LrcProtocol::Swap, true);
        let eraser = run_policy(&runner, PolicyKind::Eraser, opts, LrcProtocol::Swap, true);
        let ps = raw.postselection;
        t.row(vec![
            cycle.to_string(),
            sci(raw.ler()),
            sci(ps.ler_postselected(raw.shots)),
            fixed(ps.keep_fraction(raw.shots) * 100.0, 1),
            sci(eraser.ler()),
        ]);
    }
    t.print();
    println!("(post-selection trades an exponentially shrinking keep-rate for accuracy;\n ERASER keeps every shot)");
    t.write_csv(&opts.out, "postselect")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §8)
// ---------------------------------------------------------------------------

/// Ablation studies over ERASER's design knobs and the decoder choice.
pub fn ablation(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 5);
    let rounds = d * opts.cycles;
    let runner = MemoryRunner::new(d, NoiseParams::standard(opts.p), rounds);
    let run_opts = |options: EraserOptions| -> MemoryRunResult {
        let config = RunConfig {
            shots: opts.effective_shots(),
            seed: opts.seed,
            threads: opts.threads,
            decoder: opts.decoder,
            protocol: LrcProtocol::Swap,
            decode: true,
        };
        runner.run(
            &move |code| Box::new(EraserPolicy::with_options(code, options)) as Box<dyn LrcPolicy>,
            &config,
        )
    };

    // (1) LSB threshold sweep — the paper's Insight #2 "sweet spot".
    let mut thr = Table::new(
        &format!("Ablation: LSB flip threshold, d={d} (paper design point: >=2; 1 over-schedules, 3 under-detects)"),
        &["threshold", "ler", "lrcs/round", "accuracy %", "fnr %"],
    );
    for threshold in [1usize, 2, 3, 4] {
        let res = run_opts(EraserOptions {
            threshold_override: threshold,
            ..EraserOptions::default()
        });
        thr.row(vec![
            threshold.to_string(),
            sci(res.ler()),
            fixed(res.lrcs_per_round(), 2),
            fixed(res.speculation.accuracy() * 100.0, 2),
            fixed(res.speculation.false_negative_rate() * 100.0, 1),
        ]);
    }
    thr.print();
    thr.write_csv(&opts.out, "ablation_threshold")?;

    // (2) PUTT and backup-column toggles.
    let mut knobs = Table::new(
        &format!("Ablation: DLI structures, d={d}"),
        &["variant", "ler", "lrcs/round", "mean LPR x1e-4"],
    );
    let variants: [(&str, EraserOptions); 4] = [
        ("full design", EraserOptions::default()),
        (
            "no PUTT",
            EraserOptions { use_putt: false, ..EraserOptions::default() },
        ),
        (
            "no backup",
            EraserOptions { use_backup: false, ..EraserOptions::default() },
        ),
        (
            "no PUTT, no backup",
            EraserOptions { use_putt: false, use_backup: false, ..EraserOptions::default() },
        ),
    ];
    for (label, options) in variants {
        let res = run_opts(options);
        knobs.row(vec![
            label.to_string(),
            sci(res.ler()),
            fixed(res.lrcs_per_round(), 2),
            fixed(res.mean_lpr() * 1e4, 2),
        ]);
    }
    knobs.print();
    knobs.write_csv(&opts.out, "ablation_dli")?;

    // (3) Decoder comparison on the same workload (ERASER policy).
    let mut dec = Table::new(
        &format!("Ablation: decoder choice, d={d} (MWPM is the paper's gold standard)"),
        &["decoder", "ler"],
    );
    for kind in [DecoderKind::Mwpm, DecoderKind::UnionFind, DecoderKind::Greedy] {
        let config = RunConfig {
            shots: opts.effective_shots(),
            seed: opts.seed,
            threads: opts.threads,
            decoder: kind,
            protocol: LrcProtocol::Swap,
            decode: true,
        };
        let res = runner.run(&|code| Box::new(EraserPolicy::new(code)), &config);
        dec.row(vec![res.decoder.clone(), sci(res.ler())]);
    }
    dec.print();
    dec.write_csv(&opts.out, "ablation_decoder")
}

/// Prints only ~12 evenly spaced rows of long per-round tables (the CSV holds
/// every round).
fn print_subsampled(t: &Table, rounds: usize) {
    if rounds <= 16 {
        t.print();
        return;
    }
    // Build a reduced copy for display.
    t.print_every(rounds.div_ceil(12));
}
