//! One function per paper table/figure. Each prints a result table (with the
//! paper's reference numbers where they exist) and writes a CSV.
//!
//! Every figure goes through the [`Experiment`] facade; the distance sweeps
//! (Fig 14/16/17/20, Table 4) run on the [`Sweep`] engine, which caches
//! runner construction and streams points in grid order.

use crate::cli::Opts;
use crate::output::{fixed, ratio, sci, Table};
use crate::paper;
use eraser_core::{
    analysis, resource, rtl, ControlLawKind, DecoderKind, EraserOptions, Experiment,
    LeakageProfile, LrcProtocol, MemoryRunResult, NoiseModel, PolicyKind, Sweep, SweepPoint,
    TierCounters,
};
use qec_core::NoiseParams;
use surface_code::RotatedCode;

/// Builds the figure's experiment from the harness options.
fn experiment(
    opts: &Opts,
    d: usize,
    noise: NoiseParams,
    rounds: usize,
    protocol: LrcProtocol,
    decode: bool,
) -> Result<Experiment, String> {
    Experiment::builder()
        .distance(d)
        .noise(noise)
        .rounds(rounds)
        .shots(opts.effective_shots())
        .seed(opts.seed)
        .threads(opts.threads)
        .decoder(opts.decoder)
        .window_rounds(opts.window.0)
        .window_stride(opts.window.1)
        .protocol(protocol)
        .decode(decode)
        .build()
        .map_err(|e| e.to_string())
}

/// Builds a distance sweep (one error rate, the figure's policy set) from the
/// harness options.
fn sweep(
    opts: &Opts,
    distances: Vec<usize>,
    noise: NoiseModel,
    protocol: LrcProtocol,
    policies: &[PolicyKind],
    decode: bool,
) -> Result<Sweep, String> {
    Sweep::builder()
        .distances(distances)
        .error_rates([opts.p])
        .policies(policies.iter().cloned())
        .noise_model(noise)
        .cycles(opts.cycles)
        .shots(opts.effective_shots())
        .seed(opts.seed)
        .threads(opts.threads)
        .decoder(opts.decoder)
        .window_rounds(opts.window.0)
        .window_stride(opts.window.1)
        .protocol(protocol)
        .decode(decode)
        .build()
        .map_err(|e| e.to_string())
}

fn distances(opts: &Opts) -> Vec<usize> {
    [3usize, 5, 7, 9, 11]
        .into_iter()
        .filter(|&d| d <= opts.dmax)
        .collect()
}

fn figure_d(opts: &Opts, paper_default: usize) -> usize {
    if opts.d != 0 {
        opts.d
    } else {
        paper_default.min(opts.dmax)
    }
}

// ---------------------------------------------------------------------------
// Analytical results
// ---------------------------------------------------------------------------

/// §3.1 / Table 1: Eq. (1) and Eq. (2).
pub fn analytic(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Eq.(1)/(2): leakage-transport analysis (paper: ~10% / ~34%, ratio ~3x)",
        &["quantity", "model", "paper"],
    );
    let e1 = analysis::p_data_leak_given_parity_leak(
        analysis::P_LEAK_DEFAULT,
        analysis::P_TRANSPORT_DEFAULT,
    );
    let e2 = analysis::p_parity_leak_given_data_leak(
        analysis::P_LEAK_DEFAULT,
        analysis::P_TRANSPORT_DEFAULT,
    );
    t.row(vec![
        "P(L_data | L_parity) %".into(),
        fixed(e1 * 100.0, 2),
        fixed(paper::EQ1_PCT, 1),
    ]);
    t.row(vec![
        "P(L_parity | L_data) %".into(),
        fixed(e2 * 100.0, 2),
        fixed(paper::EQ2_PCT, 1),
    ]);
    t.row(vec![
        "amplification ratio".into(),
        fixed(analysis::transport_amplification_ratio(), 2),
        "~3".into(),
    ]);
    t.print();
    t.write_csv(&opts.out, "analytic")
}

/// Table 2: invisible-leakage probability.
pub fn table2(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Table 2: P(leaked data qubit invisible for r rounds)",
        &["rounds", "model %", "paper %"],
    );
    for (r, paper_pct) in paper::TABLE2_PCT {
        t.row(vec![
            r.to_string(),
            fixed(analysis::p_invisible(r) * 100.0, 2),
            fixed(paper_pct, 2),
        ]);
    }
    t.print();
    t.write_csv(&opts.out, "table2")
}

// ---------------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------------

/// Fig 1(c): LER over QEC cycles for No-LRC, Always-LRC, Optimal.
pub fn fig1c(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let noise = NoiseParams::standard(opts.p);
    let mut t = Table::new(
        &format!("Fig 1(c): LER over QEC cycles, d={d}, p={:.0e} (paper: Always ~4x, Optimal ~10x better than No-LRC at d=7)", opts.p),
        &["cycle", "no-lrc", "always-lrc", "optimal"],
    );
    for cycle in 1..=opts.cycles {
        let exp = experiment(opts, d, noise, d * cycle, LrcProtocol::Swap, true)?;
        let cells: Vec<String> = [
            PolicyKind::NoLrc,
            PolicyKind::AlwaysLrc,
            PolicyKind::Optimal,
        ]
        .iter()
        .map(|k| sci(exp.run_policy(k).ler()))
        .collect();
        t.row(vec![
            cycle.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out, "fig1c")
}

/// Fig 2(c): LER with vs without leakage over QEC cycles.
pub fn fig2c(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let mut t = Table::new(
        &format!(
            "Fig 2(c): leakage impact on LER, d={d}, p={:.0e} (paper d=7: 27x after 1 cycle, 467x after 5)",
            opts.p
        ),
        &["cycle", "no leakage", "with leakage", "ratio"],
    );
    for cycle in 1..=opts.cycles {
        let rounds = d * cycle;
        let clean = experiment(
            opts,
            d,
            NoiseParams::without_leakage(opts.p),
            rounds,
            LrcProtocol::Swap,
            true,
        )?;
        let leaky = experiment(
            opts,
            d,
            NoiseParams::standard(opts.p),
            rounds,
            LrcProtocol::Swap,
            true,
        )?;
        let ler_clean = clean.run_policy(&PolicyKind::NoLrc).ler();
        let ler_leaky = leaky.run_policy(&PolicyKind::NoLrc).ler();
        t.row(vec![
            cycle.to_string(),
            sci(ler_clean),
            sci(ler_leaky),
            ratio(ler_leaky, ler_clean),
        ]);
    }
    t.print();
    println!(
        "(paper reference ratios: {}x at cycle 1, {}x at cycle 5; absolute ratios depend on\n shot budget — cells with zero observed errors print n/a)",
        paper::FIG2C_RATIO_CYCLE1,
        paper::FIG2C_RATIO_CYCLE5
    );
    t.write_csv(&opts.out, "fig2c")
}

/// Fig 5: LPR per round under Always-LRC, split into data/parity.
pub fn fig5(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let rounds = d * opts.cycles;
    let exp = experiment(
        opts,
        d,
        NoiseParams::standard(opts.p),
        rounds,
        LrcProtocol::Swap,
        false,
    )?;
    let result = exp.run_policy(&PolicyKind::AlwaysLrc);
    let mut t = Table::new(
        &format!("Fig 5: LPR (x1e-4) per round, Always-LRC, d={d} (paper: rises over time, spikes on LRC rounds)"),
        &["round", "total", "data", "parity"],
    );
    for r in 0..rounds {
        t.row(vec![
            r.to_string(),
            fixed(result.lpr_total[r] * 1e4, 2),
            fixed(result.lpr_data[r] * 1e4, 2),
            fixed(result.lpr_parity[r] * 1e4, 2),
        ]);
    }
    print_subsampled(&t, rounds);
    t.write_csv(&opts.out, "fig5")
}

/// Fig 6: LPR per round and LER per cycle, Always-LRC vs Optimal.
pub fn fig6(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 7);
    let rounds = d * opts.cycles;
    let exp = experiment(
        opts,
        d,
        NoiseParams::standard(opts.p),
        rounds,
        LrcProtocol::Swap,
        false,
    )?;
    let always = exp.run_policy(&PolicyKind::AlwaysLrc);
    let optimal = exp.run_policy(&PolicyKind::Optimal);
    let mut lpr = Table::new(
        &format!("Fig 6 (top): LPR (x1e-4) per round, d={d} (paper: Always keeps rising, Optimal stays low)"),
        &["round", "always-lrc", "optimal"],
    );
    for r in 0..rounds {
        lpr.row(vec![
            r.to_string(),
            fixed(always.lpr_total[r] * 1e4, 2),
            fixed(optimal.lpr_total[r] * 1e4, 2),
        ]);
    }
    print_subsampled(&lpr, rounds);
    lpr.write_csv(&opts.out, "fig6_lpr")?;

    let mut ler = Table::new(
        &format!("Fig 6 (bottom): LER per QEC cycle, d={d} (paper: ~10x gap at 10 cycles)"),
        &["cycle", "always-lrc", "optimal", "gap"],
    );
    for cycle in 1..=opts.cycles {
        let exp = experiment(
            opts,
            d,
            NoiseParams::standard(opts.p),
            d * cycle,
            LrcProtocol::Swap,
            true,
        )?;
        let a = exp.run_policy(&PolicyKind::AlwaysLrc).ler();
        let o = exp.run_policy(&PolicyKind::Optimal).ler();
        ler.row(vec![cycle.to_string(), sci(a), sci(o), ratio(a, o)]);
    }
    ler.print();
    ler.write_csv(&opts.out, "fig6_ler")
}

/// Fig 8: density-matrix leakage-spread study over one Z stabilizer.
pub fn fig8(opts: &Opts) -> Result<(), String> {
    let records = density_sim::StabilizerLeakageStudy::default().run();
    let mut t = Table::new(
        "Fig 8: single-stabilizer leakage spread (density matrix, ququarts)",
        &["step", "q0", "q1", "q2", "q3", "P", "P(correct readout)"],
    );
    for rec in &records {
        t.row(vec![
            rec.label.clone(),
            fixed(rec.leak[0], 4),
            fixed(rec.leak[1], 4),
            fixed(rec.leak[2], 4),
            fixed(rec.leak[3], 4),
            fixed(rec.leak[4], 4),
            fixed(rec.p_correct, 4),
        ]);
    }
    t.print();
    println!("(paper: point A shows P significantly leaked after the LRC swap-in;\n point C shows readout only slightly better than random)");
    t.write_csv(&opts.out, "fig8")
}

// ---------------------------------------------------------------------------
// Main results
// ---------------------------------------------------------------------------

/// Groups streamed sweep points into one group per (distance, error rate),
/// in execution order. Grouping is by the coordinates each [`SweepPoint`]
/// carries, not by positional arithmetic, so it stays correct for any grid
/// shape.
fn group_by_code(points: Vec<SweepPoint>) -> Vec<Vec<SweepPoint>> {
    let mut groups: Vec<Vec<SweepPoint>> = Vec::new();
    for pt in points {
        match groups.last_mut() {
            Some(group) if group[0].distance == pt.distance && group[0].p == pt.p => group.push(pt),
            _ => groups.push(vec![pt]),
        }
    }
    groups
}

/// The point for `kind` within one (distance, error rate) group.
fn point_for<'a>(group: &'a [SweepPoint], kind: &PolicyKind) -> Option<&'a SweepPoint> {
    group.iter().find(|pt| pt.policy == kind.label())
}

/// Runs a distance sweep and groups the points per distance. An empty
/// distance list (e.g. `--dmax 2`) yields an empty result instead of an
/// error, so those figures print an empty table as they always have.
fn grouped_sweep(
    opts: &Opts,
    distances: Vec<usize>,
    noise: NoiseModel,
    protocol: LrcProtocol,
    policies: &[PolicyKind],
    decode: bool,
) -> Result<Vec<Vec<SweepPoint>>, String> {
    if distances.is_empty() {
        return Ok(Vec::new());
    }
    let grid = sweep(opts, distances, noise, protocol, policies, decode)?;
    Ok(group_by_code(grid.run()))
}

fn ler_sweep(
    opts: &Opts,
    noise: NoiseModel,
    protocol: LrcProtocol,
    policies: &[PolicyKind],
    title: &str,
    csv: &str,
) -> Result<(), String> {
    let mut columns: Vec<&str> = vec!["d"];
    columns.extend(policies.iter().map(|p| p.label()));
    columns.push("eraser gain");
    columns.push("eraser+m gain");
    let mut t = Table::new(title, &columns);
    for group in grouped_sweep(opts, distances(opts), noise, protocol, policies, true)? {
        let baseline = group[0].result.ler();
        let find = |kind: &PolicyKind| -> Option<f64> {
            point_for(&group, kind).map(|pt| pt.result.ler())
        };
        let mut row = vec![group[0].distance.to_string()];
        row.extend(group.iter().map(|pt| sci(pt.result.ler())));
        row.push(
            find(&PolicyKind::eraser())
                .map(|l| ratio(baseline, l))
                .unwrap_or_default(),
        );
        row.push(
            find(&PolicyKind::eraser_m())
                .map(|l| ratio(baseline, l))
                .unwrap_or_default(),
        );
        t.row(row);
    }
    t.print();
    t.write_csv(&opts.out, csv)
}

/// Fig 14: LER vs distance for the four policies.
pub fn fig14(opts: &Opts) -> Result<(), String> {
    let title = format!(
        "Fig 14: LER vs distance, p={:.0e}, {} cycles (paper p=1e-3: ERASER avg {}x / best {}x, ERASER+M avg {}x / best {}x over Always)",
        opts.p,
        opts.cycles,
        paper::ERASER_LER_IMPROVEMENT_AVG,
        paper::ERASER_LER_IMPROVEMENT_BEST,
        paper::ERASER_M_LER_IMPROVEMENT_AVG,
        paper::ERASER_M_LER_IMPROVEMENT_BEST,
    );
    ler_sweep(
        opts,
        NoiseModel::Standard,
        LrcProtocol::Swap,
        &[
            PolicyKind::AlwaysLrc,
            PolicyKind::eraser(),
            PolicyKind::eraser_m(),
            PolicyKind::Optimal,
        ],
        &title,
        "fig14",
    )
}

fn lpr_four_policies(
    opts: &Opts,
    noise: NoiseParams,
    protocol: LrcProtocol,
    baseline: PolicyKind,
    title: &str,
    csv: &str,
) -> Result<(), String> {
    let d = figure_d(opts, 11);
    let rounds = d * opts.cycles;
    let exp = experiment(opts, d, noise, rounds, protocol, false)?;
    let policies = [
        baseline,
        PolicyKind::eraser(),
        PolicyKind::eraser_m(),
        PolicyKind::Optimal,
    ];
    let results: Vec<MemoryRunResult> = policies.iter().map(|k| exp.run_policy(k)).collect();
    let mut columns = vec!["round".to_string()];
    columns.extend(policies.iter().map(|p| p.label().to_string()));
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&format!("{title} (d={d}, LPR x1e-4)"), &col_refs);
    for r in 0..rounds {
        let mut row = vec![r.to_string()];
        row.extend(results.iter().map(|res| fixed(res.lpr_total[r] * 1e4, 2)));
        t.row(row);
    }
    print_subsampled(&t, rounds);
    t.write_csv(&opts.out, csv)
}

/// Fig 15: LPR per round at d=11 for the four policies.
pub fn fig15(opts: &Opts) -> Result<(), String> {
    lpr_four_policies(
        opts,
        NoiseParams::standard(opts.p),
        LrcProtocol::Swap,
        PolicyKind::AlwaysLrc,
        "Fig 15: LPR per round (paper: ERASER ~1.5x lower than Always, ERASER+M ~2.2x lower than ERASER)",
        "fig15",
    )
}

/// Fig 16: speculation accuracy per distance; FPR/FNR at the largest d.
pub fn fig16(opts: &Opts) -> Result<(), String> {
    let mut acc = Table::new(
        &format!(
            "Fig 16 (top): speculation accuracy %, {} cycles (paper: Always ~{}%, ERASER/ERASER+M ~{}%, Optimal 100%)",
            opts.cycles,
            paper::SPEC_ACCURACY_ALWAYS_PCT,
            paper::SPEC_ACCURACY_ERASER_PCT
        ),
        &["d", "always-lrc", "eraser", "eraser+m", "optimal"],
    );
    let policies = [
        PolicyKind::AlwaysLrc,
        PolicyKind::eraser(),
        PolicyKind::eraser_m(),
        PolicyKind::Optimal,
    ];
    let groups = grouped_sweep(
        opts,
        distances(opts),
        NoiseModel::Standard,
        LrcProtocol::Swap,
        &policies,
        false,
    )?;
    for group in &groups {
        let mut row = vec![group[0].distance.to_string()];
        row.extend(
            group
                .iter()
                .map(|pt| fixed(pt.result.speculation.accuracy() * 100.0, 1)),
        );
        acc.row(row);
    }
    acc.print();
    acc.write_csv(&opts.out, "fig16_accuracy")?;

    let last_group: &[SweepPoint] = groups.last().map(Vec::as_slice).unwrap_or(&[]);
    let last_d = last_group.first().map(|pt| pt.distance).unwrap_or(0);
    let mut rates = Table::new(
        &format!(
            "Fig 16 (bottom): FPR/FNR % at d={last_d} (paper d=11: FPR {}% vs 50%; FNR ~{}% ERASER, ~{}% ERASER+M)",
            paper::FPR_ERASER_PCT,
            paper::FNR_ERASER_PCT,
            paper::FNR_ERASER_M_PCT
        ),
        &["policy", "FPR %", "FNR %"],
    );
    for kind in &policies {
        let Some(pt) = point_for(last_group, kind) else {
            continue;
        };
        rates.row(vec![
            kind.label().to_string(),
            fixed(pt.result.speculation.false_positive_rate() * 100.0, 2),
            fixed(pt.result.speculation.false_negative_rate() * 100.0, 2),
        ]);
    }
    rates.print();
    rates.write_csv(&opts.out, "fig16_rates")
}

/// Table 3: RTL generation + FPGA resource model.
pub fn table3(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Table 3: FPGA resources on xcku3p (model vs paper's Vivado synthesis; latency target 5 ns)",
        &["d", "LUT % (model)", "LUT % (paper)", "FF % (model)", "FF % (paper)", "latency ns"],
    );
    std::fs::create_dir_all(&opts.out).map_err(|e| format!("mkdir: {e}"))?;
    for (d, lut_paper, ff_paper) in paper::TABLE3 {
        if d > opts.dmax {
            continue;
        }
        let code = RotatedCode::new(d);
        let est = resource::estimate(&code, resource::XCKU3P);
        t.row(vec![
            d.to_string(),
            fixed(est.lut_pct, 3),
            fixed(lut_paper, 2),
            fixed(est.ff_pct, 3),
            fixed(ff_paper, 2),
            fixed(est.latency_ns, 2),
        ]);
        let sv = rtl::generate(&code);
        let path = opts.out.join(format!("eraser_d{d}.sv"));
        std::fs::write(&path, sv).map_err(|e| format!("write {path:?}: {e}"))?;
        println!("  -> wrote {}", path.display());
    }
    t.print();
    t.write_csv(&opts.out, "table3")
}

/// Table 4: average LRCs per round per policy.
pub fn table4(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        "Table 4: average LRCs per round (paper values in parentheses columns)",
        &[
            "d",
            "always",
            "always(paper)",
            "eraser",
            "eraser(paper)",
            "eraser+m",
            "eraser+m(paper)",
            "optimal",
            "optimal(paper)",
        ],
    );
    let rows: Vec<(usize, f64, f64, f64, f64)> = paper::TABLE4
        .into_iter()
        .filter(|&(d, ..)| d <= opts.dmax)
        .collect();
    let policies = [
        PolicyKind::AlwaysLrc,
        PolicyKind::eraser(),
        PolicyKind::eraser_m(),
        PolicyKind::Optimal,
    ];
    for group in grouped_sweep(
        opts,
        rows.iter().map(|&(d, ..)| d).collect(),
        NoiseModel::Standard,
        LrcProtocol::Swap,
        &policies,
        false,
    )? {
        let d = group[0].distance;
        let Some(&(_, p_always, p_eraser, p_eraser_m, p_optimal)) =
            rows.iter().find(|&&(row_d, ..)| row_d == d)
        else {
            continue;
        };
        let lrcs = |kind: &PolicyKind| {
            point_for(&group, kind).map_or(f64::NAN, |pt| pt.result.lrcs_per_round())
        };
        t.row(vec![
            d.to_string(),
            fixed(lrcs(&PolicyKind::AlwaysLrc), 2),
            fixed(p_always, 2),
            fixed(lrcs(&PolicyKind::eraser()), 2),
            fixed(p_eraser, 2),
            fixed(lrcs(&PolicyKind::eraser_m()), 2),
            fixed(p_eraser_m, 2),
            fixed(lrcs(&PolicyKind::Optimal), 3),
            fixed(p_optimal, 3),
        ]);
    }
    t.print();
    t.write_csv(&opts.out, "table4")
}

// ---------------------------------------------------------------------------
// Appendix experiments
// ---------------------------------------------------------------------------

/// Fig 17: LER vs distance under the exchange-transport model (App A.1).
pub fn fig17(opts: &Opts) -> Result<(), String> {
    let title = format!(
        "Fig 17 (App A.1): LER vs distance, exchange transport, p={:.0e} (paper: ERASER avg 6.5x / best 13.4x, ERASER+M avg 8.8x / best 24.1x)",
        opts.p
    );
    ler_sweep(
        opts,
        NoiseModel::ExchangeTransport,
        LrcProtocol::Swap,
        &[
            PolicyKind::AlwaysLrc,
            PolicyKind::eraser(),
            PolicyKind::eraser_m(),
            PolicyKind::Optimal,
        ],
        &title,
        "fig17",
    )
}

/// Fig 18: LPR at d=11 under the exchange-transport model.
pub fn fig18(opts: &Opts) -> Result<(), String> {
    lpr_four_policies(
        opts,
        NoiseParams::exchange_transport(opts.p),
        LrcProtocol::Swap,
        PolicyKind::AlwaysLrc,
        "Fig 18 (App A.1): LPR per round, exchange transport (paper: all policies stabilize except Always)",
        "fig18",
    )
}

/// Fig 20: LER vs distance with the DQLR protocol (App A.2; exchange model).
pub fn fig20(opts: &Opts) -> Result<(), String> {
    let title = format!(
        "Fig 20 (App A.2): LER vs distance with DQLR, p={:.0e} (paper: ERASER 1.8x avg, ERASER+M 2x avg over every-round DQLR)",
        opts.p
    );
    ler_sweep(
        opts,
        NoiseModel::ExchangeTransport,
        LrcProtocol::Dqlr,
        &[
            PolicyKind::AlwaysEveryRound,
            PolicyKind::eraser(),
            PolicyKind::eraser_m(),
            PolicyKind::Optimal,
        ],
        &title,
        "fig20",
    )
}

/// Fig 21: LPR at d=11 with the DQLR protocol.
pub fn fig21(opts: &Opts) -> Result<(), String> {
    lpr_four_policies(
        opts,
        NoiseParams::exchange_transport(opts.p),
        LrcProtocol::Dqlr,
        PolicyKind::AlwaysEveryRound,
        "Fig 21 (App A.2): LPR per round with DQLR (paper: DQLR stabilizes LPR quickly; ERASER ~1.4x lower)",
        "fig21",
    )
}

/// Memory-basis comparison (extension): ERASER protects logical X exactly as
/// it protects logical Z — leakage is basis-agnostic, so the speculation
/// pipeline carries over unchanged.
pub fn memx(opts: &Opts) -> Result<(), String> {
    use surface_code::MemoryBasis;
    let d = figure_d(opts, 5);
    let rounds = d * opts.cycles;
    let mut t = Table::new(
        &format!("Memory-Z vs memory-X under ERASER, d={d}, p={:.0e}", opts.p),
        &["basis", "policy", "ler", "lrcs/round", "accuracy %"],
    );
    for (label, basis) in [("Z", MemoryBasis::Z), ("X", MemoryBasis::X)] {
        let exp = Experiment::builder()
            .distance(d)
            .noise(NoiseParams::standard(opts.p))
            .rounds(rounds)
            .basis(basis)
            .shots(opts.effective_shots())
            .seed(opts.seed)
            .threads(opts.threads)
            .decoder(opts.decoder)
            .build()
            .map_err(|e| e.to_string())?;
        for kind in [PolicyKind::AlwaysLrc, PolicyKind::eraser()] {
            let res = exp.run_policy(&kind);
            t.row(vec![
                label.to_string(),
                kind.label().to_string(),
                sci(res.ler()),
                fixed(res.lrcs_per_round(), 2),
                fixed(res.speculation.accuracy() * 100.0, 1),
            ]);
        }
    }
    t.print();
    println!("(both bases show the same ERASER-over-Always improvement; the CSS code and\n the leakage model are basis-symmetric)");
    t.write_csv(&opts.out, "memx")
}

/// Post-selection study (§2.4/§7.1 prior-work comparison): offline filtering
/// of leakage-suspect shots vs real-time suppression.
pub fn postselect(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 5);
    let mut t = Table::new(
        &format!(
            "Post-selection vs real-time suppression, d={d}, p={:.0e} (paper §7.1: post-selection \
             cannot run during computation and its keep-rate collapses with duration)",
            opts.p
        ),
        &["cycles", "raw LER", "postsel LER", "keep %", "eraser LER"],
    );
    for cycle in 1..=opts.cycles {
        let exp = experiment(
            opts,
            d,
            NoiseParams::standard(opts.p),
            d * cycle,
            LrcProtocol::Swap,
            true,
        )?;
        let raw = exp.run_policy(&PolicyKind::NoLrc);
        let eraser = exp.run_policy(&PolicyKind::eraser());
        let ps = raw.postselection;
        t.row(vec![
            cycle.to_string(),
            sci(raw.ler()),
            sci(ps.ler_postselected(raw.shots)),
            fixed(ps.keep_fraction(raw.shots) * 100.0, 1),
            sci(eraser.ler()),
        ]);
    }
    t.print();
    println!("(post-selection trades an exponentially shrinking keep-rate for accuracy;\n ERASER keeps every shot)");
    t.write_csv(&opts.out, "postselect")
}

/// Erasure decoding (extension): ERASER+M's multi-level |L⟩ labels are
/// genuine erasure checks; threading them into the decoder as dynamically
/// reweighted (erased) edges lowers the LER at identical physical shots.
pub fn erasure(opts: &Opts) -> Result<(), String> {
    let mut t = Table::new(
        &format!(
            "Erasure decoding: ERASER+M ± leakage-aware MWPM across (d, p), seed {} \
             (paired shots: blind and aware decode identical error realizations)",
            opts.seed
        ),
        &[
            "d",
            "p",
            "shots",
            "blind LER",
            "aware LER",
            "gain",
            "erasures/shot",
        ],
    );
    // Smaller distances get proportionally more shots so every cell resolves
    // a comparable error count.
    let budget = |d: usize| opts.effective_shots() * [4, 2, 1][(d - 3) / 2];
    for d in [3usize, 5, 7] {
        if d > opts.dmax {
            continue;
        }
        for p in [opts.p * 3.0, opts.p * 5.0] {
            let shots = budget(d);
            let mut exp = Experiment::builder()
                .distance(d)
                .noise(NoiseParams::standard(p))
                .rounds((d * 3).max(15))
                .shots(shots)
                .seed(opts.seed)
                .threads(opts.threads)
                .decoder(DecoderKind::Mwpm)
                .build()
                .map_err(|e| e.to_string())?;
            let blind = exp.run_policy(&PolicyKind::eraser_m());
            exp.set_leakage_aware(true);
            let aware = exp.run_policy(&PolicyKind::eraser_m());
            t.row(vec![
                d.to_string(),
                format!("{p:.0e}"),
                shots.to_string(),
                sci(blind.ler()),
                sci(aware.ler()),
                ratio(blind.ler(), aware.ler()),
                fixed(aware.total_erasures as f64 / shots as f64, 2),
            ]);
        }
    }
    t.print();
    println!(
        "(two-level ERASER exposes no erasure-grade herald — its speculative flags are\n \
         precise enough to schedule LRCs but reweighting the decoder with them raises\n \
         the LER — so its aware run is bit-identical to blind; ERASER+M's |L> labels\n \
         are hardware erasure checks in the sense of Chang et al. 2024)"
    );
    t.write_csv(&opts.out, "erasure")
}

/// Long-memory streaming study (extension): sliding-window decoding vs
/// monolithic at R ∈ {d, 10d, 100d}. The windowed LER must track monolithic
/// within the binomial error bars while peak decoder memory stays flat in R
/// (the monolithic MWPM table is O((d²·R)²) and prices out entirely beyond a
/// few thousand nodes).
pub fn longmem(opts: &Opts) -> Result<(), String> {
    use eraser_core::DecodeLatencyStats;
    use qec_decoder::{WindowBackend, WindowPlan};

    let mut t = Table::new(
        &format!(
            "Long memory: windowed (w=3d, stride 2d) vs monolithic decoding, seed {} \
             (paired shots: identical error realizations, only the decode path differs)",
            opts.seed
        ),
        &[
            "d",
            "R",
            "p",
            "shots",
            "mono LER",
            "win LER",
            "|dLER|/sigma",
            "mono dec MB",
            "win dec MB",
            "win shapes",
            "win p50 ns/rd",
            "win p99 ns/rd",
        ],
    );
    let quantiles =
        |stats: &DecodeLatencyStats| (stats.p50_ns_per_round(), stats.p99_ns_per_round());
    for d in [3usize, 5, 7] {
        if d > opts.dmax {
            continue;
        }
        for mult in [1usize, 10, 100] {
            let rounds = d * mult;
            // Long cells get proportionally fewer shots (each shot is R
            // rounds of simulation); the error bars widen accordingly.
            let shots = (opts.effective_shots() / [1u64, 2, 8][mult.ilog10() as usize]).max(25);
            let window = 3 * d;
            // The decoder-memory report depends only on (d, R, resolved
            // decoder), so compute it once per cell pair, not per p.
            let mut memory_report: Option<(usize, usize, usize)> = None;
            for p in [opts.p, 3.0 * opts.p] {
                let mut exp = Experiment::builder()
                    .distance(d)
                    .noise(NoiseParams::standard(p))
                    .rounds(rounds)
                    .shots(shots)
                    .seed(opts.seed)
                    .threads(opts.threads)
                    .decoder(opts.decoder)
                    .policy(PolicyKind::eraser())
                    .build()
                    .map_err(|e| e.to_string())?;
                // Pin the decoder both paths resolve to on the *monolithic*
                // graph, so the comparison isolates windowing itself (Auto
                // would hand the windowed path MWPM even where the
                // monolithic graph is union-find territory — a perk, but a
                // confound here).
                let resolved = exp.resolved_decoder();
                exp.set_decoder(resolved);
                // `rounds + 1` pins monolithic decoding independent of any
                // ERASER_WINDOW in the environment.
                exp.set_window(rounds + 1, 0);
                let mono = exp.run();
                // At R = d the window exceeds the round count and the
                // runtime auto-selects monolithic — that row documents the
                // degenerate case (identical runs).
                exp.set_window(window, 0);
                let win = exp.run();
                let sigma = (mono.ler_stderr().powi(2) + win.ler_stderr().powi(2))
                    .sqrt()
                    .max(1.0 / shots as f64);
                let z = (mono.ler() - win.ler()).abs() / sigma;
                let (mono_bytes, win_bytes, shapes) = *memory_report.get_or_insert_with(|| {
                    let graph = exp.runner().graph();
                    let mono_bytes = match resolved {
                        DecoderKind::UnionFind => graph.edges().len() * 4,
                        _ => (graph.num_nodes() + 1).pow(2) * 9,
                    };
                    if window < rounds + 1 {
                        let backend = match resolved {
                            DecoderKind::UnionFind => WindowBackend::UnionFind,
                            DecoderKind::Greedy => WindowBackend::Greedy,
                            _ => WindowBackend::Mwpm,
                        };
                        let plan = WindowPlan::new(graph, window, window - d, backend);
                        (mono_bytes, plan.approx_decoder_bytes(), plan.num_shapes())
                    } else {
                        (mono_bytes, mono_bytes, 1)
                    }
                });
                let (p50, p99) = quantiles(&win.decode_latency);
                t.row(vec![
                    d.to_string(),
                    rounds.to_string(),
                    format!("{p:.0e}"),
                    shots.to_string(),
                    sci(mono.ler()),
                    sci(win.ler()),
                    fixed(z, 2),
                    fixed(mono_bytes as f64 / 1e6, 2),
                    fixed(win_bytes as f64 / 1e6, 2),
                    shapes.to_string(),
                    fixed(p50, 0),
                    fixed(p99, 0),
                ]);
            }
        }
    }
    t.print();
    println!(
        "(windowed LER tracks monolithic within the binomial error bars; windowed decode\n \
         state is O(window^2) per shape + O(R) position maps — flat where the monolithic\n \
         MWPM table grows O(R^2) and prices out beyond a few thousand nodes)"
    );
    t.write_csv(&opts.out, "longmem")
}

/// Intra-shot fusion latency study (extension): p50/p99 per-round decode
/// latency at fixed (d, R) across fusion_threads ∈ {1, 2, 4, 8} for all
/// four backends. The fused output is bit-identical to sequential at every
/// thread count, so the sweep isolates wall-clock alone; whether parallel
/// rows actually beat sequential depends on the host's core count, which
/// the table records.
pub fn latency(opts: &Opts) -> Result<(), String> {
    let d = if opts.d > 0 { opts.d } else { 7 };
    // Fixed long-memory span matching the `decode_fusion_shot/d7_r110`
    // bench fixture; --quick shrinks it to keep the smoke cheap.
    let rounds = if opts.quick { 5 * d } else { 110 };
    let window = 3 * d;
    let shots = (opts.effective_shots() / 5).max(20);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t = Table::new(
        &format!(
            "Decode latency: fusion_threads sweep at d={d}, R={rounds}, w={window} \
             (stride w-d), {shots} shots, 1 worker thread, host cores {cores}, seed {} \
             (sequential rows sample per window, fused rows per shot; both are ns per \
             committed round, so the columns compare directly)",
            opts.seed
        ),
        &[
            "backend",
            "fusion",
            "shots",
            "p50 ns/rd",
            "p99 ns/rd",
            "mean ns/rd",
            "p50 vs seq",
        ],
    );
    for decoder in [
        DecoderKind::Mwpm,
        DecoderKind::SparseMwpm,
        DecoderKind::UnionFind,
        DecoderKind::Greedy,
    ] {
        let mut seq_p50 = 0.0f64;
        for fusion in [1usize, 2, 4, 8] {
            let exp = Experiment::builder()
                .distance(d)
                .noise(NoiseParams::standard(opts.p))
                .rounds(rounds)
                .shots(shots)
                .seed(opts.seed)
                // One worker: the per-shot latency number must not be
                // polluted by shot-level workers contending with the
                // intra-shot fusion pool for the same cores.
                .threads(1)
                .decoder(decoder)
                .window_rounds(window)
                .fusion_threads(fusion)
                .policy(PolicyKind::eraser())
                .build()
                .map_err(|e| e.to_string())?;
            let run = exp.run();
            let p50 = run.decode_latency.p50_ns_per_round();
            let p99 = run.decode_latency.p99_ns_per_round();
            if fusion == 1 {
                seq_p50 = p50;
            }
            t.row(vec![
                run.decoder.clone(),
                fusion.to_string(),
                shots.to_string(),
                fixed(p50, 0),
                fixed(p99, 0),
                fixed(run.decode_latency.mean_ns_per_round(), 0),
                format!("{:.2}x", if p50 > 0.0 { seq_p50 / p50 } else { 0.0 }),
            ]);
        }
    }
    t.print();
    println!(
        "(fused decoding is bit-identical to sequential windowed at every thread count;\n \
         the speedup column is honest wall-clock on this host — parallel rows only beat\n \
         1.00x when the host has cores for the fusion pool to use)"
    );
    t.write_csv(&opts.out, "latency")
}

/// Mean recorded latency of one tier's windows, in nanoseconds.
fn mean_tier_ns(tiers: &TierCounters, tier: usize) -> f64 {
    if tiers.hits[tier] == 0 {
        0.0
    } else {
        tiers.nanos[tier] as f64 / tiers.hits[tier] as f64
    }
}

/// Extension: tiered sparse-syndrome fast-path decoding (the predecoder).
///
/// Runs the windowed memory experiment twice per (d, p, backend) cell —
/// predecode on vs off, same seed — and reports per-tier hit rates plus
/// ns per committed round for both paths. The two runs are bit-identical
/// by construction (the tier ladder emits the full decoder's corrections),
/// which the figure re-checks via the logical-error counts.
pub fn predecode(opts: &Opts) -> Result<(), String> {
    let ds: Vec<usize> = [3usize, 5, 7]
        .into_iter()
        .filter(|&d| d <= opts.dmax)
        .collect();
    let ps: Vec<f64> = if opts.quick {
        vec![opts.p]
    } else {
        vec![5e-4, 1e-3, 2e-3, 5e-3]
    };
    let shots = (opts.effective_shots() / 5).max(20);
    let window_label = if opts.window.0 > 0 {
        format!("w={}:{}", opts.window.0, opts.window.1)
    } else {
        "w=d+1, stride 1".to_string()
    };
    let mut t = Table::new(
        &format!(
            "Tiered predecode: hit rates and decode cost, windowed ({window_label}), \
             R=10d, {shots} shots, 1 worker thread, seed {} (ns/rd = total decode \
             nanos / total committed rounds; both paths emit identical corrections)",
            opts.seed
        ),
        &[
            "d",
            "p",
            "backend",
            "tier0 %",
            "tier1 %",
            "tier2 %",
            "t1 ns/win",
            "t2 ns/win",
            "ns/rd tiered",
            "ns/rd full",
            "speedup",
        ],
    );
    for &d in &ds {
        let rounds = if opts.quick { 2 * d } else { 10 * d };
        // Short windows keep per-window syndromes sparse, which is the
        // regime the tier ladder targets (sub-threshold p, streaming
        // round-by-round commits); --window overrides for exploration.
        let (window, stride) = if opts.window.0 > 0 {
            opts.window
        } else {
            (d + 1, 1)
        };
        for &p in &ps {
            for decoder in [
                DecoderKind::Mwpm,
                DecoderKind::SparseMwpm,
                DecoderKind::UnionFind,
                DecoderKind::Greedy,
            ] {
                let run = |on: bool, timing_shots: u64| -> Result<MemoryRunResult, String> {
                    Ok(Experiment::builder()
                        .distance(d)
                        .noise(NoiseParams::standard(p))
                        .rounds(rounds)
                        .shots(timing_shots)
                        .seed(opts.seed)
                        // One worker, like the latency figure: the ns/rd
                        // columns are wall-clock and must not be polluted
                        // by workers contending for cores.
                        .threads(1)
                        .decoder(decoder)
                        .window_rounds(window)
                        .window_stride(stride)
                        .predecode(on)
                        .policy(PolicyKind::eraser())
                        .build()
                        .map_err(|e| e.to_string())?
                        .run())
                };
                // Untimed warm-up so allocator and cache cold-start costs
                // land on neither timed run.
                run(false, shots.min(4))?;
                let tiered = run(true, shots)?;
                let full = run(false, shots)?;
                if tiered.logical_errors != full.logical_errors
                    || tiered.total_lrcs != full.total_lrcs
                {
                    return Err(format!(
                        "tiered decode diverged from full at d={d} p={p} {}",
                        full.decoder
                    ));
                }
                let true_rounds = (shots as u128 * rounds as u128) as f64;
                let ns_tiered = tiered.decode_latency.total_nanos() as f64 / true_rounds;
                let ns_full = full.decode_latency.total_nanos() as f64 / true_rounds;
                t.row(vec![
                    d.to_string(),
                    sci(p),
                    full.decoder.clone(),
                    fixed(tiered.predecode.hit_rate(0) * 100.0, 1),
                    fixed(tiered.predecode.hit_rate(1) * 100.0, 1),
                    fixed(tiered.predecode.hit_rate(2) * 100.0, 1),
                    fixed(mean_tier_ns(&tiered.predecode, 1), 0),
                    fixed(mean_tier_ns(&tiered.predecode, 2), 0),
                    fixed(ns_tiered, 0),
                    fixed(ns_full, 0),
                    format!(
                        "{:.2}x",
                        if ns_tiered > 0.0 {
                            ns_full / ns_tiered
                        } else {
                            0.0
                        }
                    ),
                ]);
            }
        }
    }
    t.print();
    println!(
        "(tier 0 = window skipped outright, tier 1 = 1-2 defects resolved in closed\n \
         form, tier 2 = full backend decode; ERASER_PREDECODE=off or .predecode(false)\n \
         disables the ladder without changing any decoded output)"
    );
    t.write_csv(&opts.out, "predecode")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §8)
// ---------------------------------------------------------------------------

/// Ablation studies over ERASER's design knobs and the decoder choice.
pub fn ablation(opts: &Opts) -> Result<(), String> {
    let d = figure_d(opts, 5);
    let rounds = d * opts.cycles;
    let mut exp = experiment(
        opts,
        d,
        NoiseParams::standard(opts.p),
        rounds,
        LrcProtocol::Swap,
        true,
    )?;

    // (1) LSB threshold sweep — the paper's Insight #2 "sweet spot".
    let mut thr = Table::new(
        &format!("Ablation: LSB flip threshold, d={d} (paper design point: >=2; 1 over-schedules, 3 under-detects)"),
        &["threshold", "ler", "lrcs/round", "accuracy %", "fnr %"],
    );
    for threshold in [1usize, 2, 3, 4] {
        let res = exp.run_policy(&PolicyKind::Eraser(EraserOptions {
            threshold_override: threshold,
            ..EraserOptions::default()
        }));
        thr.row(vec![
            threshold.to_string(),
            sci(res.ler()),
            fixed(res.lrcs_per_round(), 2),
            fixed(res.speculation.accuracy() * 100.0, 2),
            fixed(res.speculation.false_negative_rate() * 100.0, 1),
        ]);
    }
    thr.print();
    thr.write_csv(&opts.out, "ablation_threshold")?;

    // (2) PUTT and backup-column toggles.
    let mut knobs = Table::new(
        &format!("Ablation: DLI structures, d={d}"),
        &["variant", "ler", "lrcs/round", "mean LPR x1e-4"],
    );
    let variants: [(&str, EraserOptions); 4] = [
        ("full design", EraserOptions::default()),
        (
            "no PUTT",
            EraserOptions {
                use_putt: false,
                ..EraserOptions::default()
            },
        ),
        (
            "no backup",
            EraserOptions {
                use_backup: false,
                ..EraserOptions::default()
            },
        ),
        (
            "no PUTT, no backup",
            EraserOptions {
                use_putt: false,
                use_backup: false,
                ..EraserOptions::default()
            },
        ),
    ];
    for (label, options) in variants {
        let res = exp.run_policy(&PolicyKind::Eraser(options));
        knobs.row(vec![
            label.to_string(),
            sci(res.ler()),
            fixed(res.lrcs_per_round(), 2),
            fixed(res.mean_lpr() * 1e4, 2),
        ]);
    }
    knobs.print();
    knobs.write_csv(&opts.out, "ablation_dli")?;

    // (3) Decoder comparison on the same workload (ERASER policy).
    let mut dec = Table::new(
        &format!("Ablation: decoder choice, d={d} (MWPM is the paper's gold standard)"),
        &["decoder", "ler"],
    );
    for kind in [
        DecoderKind::Mwpm,
        DecoderKind::UnionFind,
        DecoderKind::Greedy,
    ] {
        exp.set_decoder(kind);
        let res = exp.run_policy(&PolicyKind::eraser());
        dec.row(vec![res.decoder.clone(), sci(res.ler())]);
    }
    dec.print();
    dec.write_csv(&opts.out, "ablation_decoder")
}

/// Adaptive control (extension): the feedback controller against every
/// static policy on a time-varying-leakage workload, plus a stationary
/// parity check against its base policy.
///
/// The background is leakage-quiet (`leak_fraction = 0`): the declarative
/// burst schedule supplies all the leakage, so every LRC spent in a quiet
/// stretch is pure circuit-noise overhead. Static LRC policies pay that
/// overhead in all 30 rounds; the controller pays it only while its online
/// leakage estimate is elevated — it must win on LER *and* spend no more
/// LRCs. On the stationary leg the same controller should never leave its
/// base policy, so its LER must agree with the base within error bars.
pub fn adaptive(opts: &Opts) -> Result<(), String> {
    use eraser_core::ControllerConfig;
    let d = figure_d(opts, 3);
    let rounds = 90;
    let noise = NoiseParams {
        leak_fraction: 0.0,
        ..NoiseParams::standard(2.0 * opts.p)
    };
    let storm = LeakageProfile::Burst {
        start: 10,
        len: 1,
        period: 45,
        rate: 0.02,
    };
    // Figure-tuned thresholds. The EWMA (shift 1, i.e. half old / half new)
    // acts as a persistence filter over two kinds of evidence:
    //   - an |L⟩ label carries the direct-evidence weight (4 events), so a
    //     single labelled readout — instantaneous rate 4/8 at d=3 — jumps
    //     the smoothed estimate to 0.25 ≥ up in one round;
    //   - a leaked data qubit with no label yet fires ~2 of 8 checks every
    //     round (rate 0.25), which the EWMA compounds past `up` within
    //     three rounds — while a one-off Pauli coincidence of the same size
    //     peaks at 0.125 and decays, keeping the stationary leg quiet.
    let tuned = ControllerConfig {
        up: 0.17,
        down: 0.12,
        ewma_shift: 1,
        min_dwell: 1,
        ..ControllerConfig::ewma()
    };
    let policies = [
        PolicyKind::NoLrc,
        PolicyKind::AlwaysLrc,
        PolicyKind::AlwaysEveryRound,
        PolicyKind::eraser(),
        PolicyKind::eraser_m(),
        PolicyKind::Adaptive(tuned),
        PolicyKind::Adaptive(ControllerConfig {
            law: ControlLawKind::Budget,
            budget: 40,
            ..tuned
        }),
    ];
    let mut t = Table::new(
        &format!(
            "Adaptive control: LER under bursty vs stationary leakage, d={d}, {rounds} rounds \
             (the controller must beat every static policy on the bursty workload at no \
             higher LRC budget, and match its base policy on the stationary one)"
        ),
        &[
            "workload",
            "policy",
            "ler",
            "stderr",
            "lrcs/round",
            "esc/shot",
            "duty",
            "est mean",
            "est peak",
        ],
    );
    let mut summary: Vec<String> = Vec::new();
    for (workload, profile) in [
        ("bursty", storm),
        ("stationary", LeakageProfile::Stationary),
    ] {
        let exp = Experiment::builder()
            .distance(d)
            .noise(noise)
            .rounds(rounds)
            .shots(opts.effective_shots())
            .seed(opts.seed)
            .threads(opts.threads)
            .decoder(opts.decoder)
            .window_rounds(opts.window.0)
            .window_stride(opts.window.1)
            .leakage_profile(profile)
            .build()
            .map_err(|e| e.to_string())?;
        let mut results: Vec<(PolicyKind, MemoryRunResult)> = Vec::new();
        for kind in &policies {
            let r = exp.run_policy(kind);
            let ctrl = r.controller;
            let dash = || "-".to_string();
            t.row(vec![
                workload.to_string(),
                kind.label().to_string(),
                sci(r.ler()),
                sci(r.ler_stderr()),
                fixed(r.lrcs_per_round(), 3),
                if ctrl.is_active() {
                    fixed(ctrl.escalations as f64 / r.shots as f64, 2)
                } else {
                    dash()
                },
                if ctrl.is_active() {
                    fixed(ctrl.escalated_fraction(), 3)
                } else {
                    dash()
                },
                if ctrl.is_active() {
                    fixed(ctrl.mean_estimate(), 4)
                } else {
                    dash()
                },
                if ctrl.is_active() {
                    fixed(ctrl.peak_estimate(), 4)
                } else {
                    dash()
                },
            ]);
            results.push((kind.clone(), r));
        }
        // Console-only acceptance summary (the CSV stays pure data).
        let adaptives: Vec<&(PolicyKind, MemoryRunResult)> = results
            .iter()
            .filter(|(_, r)| r.controller.is_active())
            .collect();
        let statics: Vec<&(PolicyKind, MemoryRunResult)> = results
            .iter()
            .filter(|(_, r)| !r.controller.is_active())
            .collect();
        if workload == "bursty" {
            for (kind, r) in &adaptives {
                let beaten = statics.iter().filter(|(_, s)| r.ler() < s.ler()).count();
                summary.push(format!(
                    "bursty: {} beats {beaten}/{} static policies (LER {}, {:.3} LRCs/round)",
                    kind.label(),
                    statics.len(),
                    sci(r.ler()),
                    r.lrcs_per_round(),
                ));
            }
        } else {
            // The controllers' base policy is no-lrc; parity is statistical.
            let base = &statics[0].1;
            for (kind, r) in &adaptives {
                let sigma = (r.ler_stderr().powi(2) + base.ler_stderr().powi(2))
                    .sqrt()
                    .max(1.0 / r.shots as f64);
                let z = (r.ler() - base.ler()).abs() / sigma;
                summary.push(format!(
                    "stationary: {} vs no-lrc |dLER|/sigma = {z:.2} (parity wants < 2)",
                    kind.label(),
                ));
            }
        }
    }
    t.print();
    for line in &summary {
        println!("  {line}");
    }
    t.write_csv(&opts.out, "adaptive")
}

/// Prints only ~12 evenly spaced rows of long per-round tables (the CSV holds
/// every round).
fn print_subsampled(t: &Table, rounds: usize) {
    if rounds <= 16 {
        t.print();
        return;
    }
    // Build a reduced copy for display.
    t.print_every(rounds.div_ceil(12));
}
