//! Timing side of the DESIGN.md ablations: how the LSB threshold, the PUTT,
//! the backup column, and the transport model affect pipeline cost. (The
//! accuracy side lives in `eraser-experiments ablation`.)

use eraser_bench::Harness;
use eraser_core::{EraserOptions, EraserPolicy, Experiment, LrcPolicy, PolicyKind, RoundContext};
use qec_core::{NoiseParams, Rng};
use std::hint::black_box;
use surface_code::RotatedCode;

fn main() {
    let h = Harness::from_args();

    // LSB threshold variants on a d=11 lattice.
    {
        let code = RotatedCode::new(11);
        let mut rng = Rng::new(17);
        let events: Vec<bool> = (0..code.num_stabs()).map(|_| rng.bernoulli(0.1)).collect();
        let labels = vec![false; code.num_stabs()];
        let oracle = vec![false; code.num_data()];
        for threshold in [1usize, 2, 3] {
            let mut policy = EraserPolicy::with_options(
                &code,
                EraserOptions {
                    threshold_override: threshold,
                    ..EraserOptions::default()
                },
            );
            h.bench(
                &format!("ablation_threshold_d11/threshold_{threshold}"),
                || {
                    policy.reset_shot();
                    policy.plan_round(black_box(&RoundContext {
                        round: 1,
                        events: &events,
                        leaked_readouts: &labels,
                        oracle_leaked_data: &oracle,
                        last_lrcs: &[],
                    }))
                },
            );
        }
    }

    // DLI structure variants on a d=11 lattice.
    {
        let code = RotatedCode::new(11);
        let mut rng = Rng::new(18);
        let events: Vec<bool> = (0..code.num_stabs()).map(|_| rng.bernoulli(0.2)).collect();
        let labels = vec![false; code.num_stabs()];
        let oracle = vec![false; code.num_data()];
        let variants = [
            ("full", EraserOptions::default()),
            (
                "no_putt",
                EraserOptions {
                    use_putt: false,
                    ..EraserOptions::default()
                },
            ),
            (
                "no_backup",
                EraserOptions {
                    use_backup: false,
                    ..EraserOptions::default()
                },
            ),
        ];
        for (name, options) in variants {
            let mut policy = EraserPolicy::with_options(&code, options);
            h.bench(&format!("ablation_dli_d11/{name}"), || {
                policy.reset_shot();
                policy.plan_round(black_box(&RoundContext {
                    round: 1,
                    events: &events,
                    leaked_readouts: &labels,
                    oracle_leaked_data: &oracle,
                    last_lrcs: &[],
                }))
            });
        }
    }

    // Transport-model cost on the full pipeline.
    for (name, noise) in [
        ("conservative", NoiseParams::standard(1e-3)),
        ("exchange", NoiseParams::exchange_transport(1e-3)),
    ] {
        let exp = Experiment::builder()
            .distance(3)
            .noise(noise)
            .rounds(6)
            .shots(12)
            .seed(2)
            .decode(false)
            .build()
            .expect("valid bench experiment");
        h.bench(&format!("ablation_transport/{name}"), || {
            exp.run_policy(&PolicyKind::NoLrc).mean_lpr()
        });
    }
}
