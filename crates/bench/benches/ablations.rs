//! Timing side of the DESIGN.md ablations: how the LSB threshold, the PUTT,
//! the backup column, and the transport model affect pipeline cost. (The
//! accuracy side lives in `eraser-experiments ablation`.)

use criterion::{criterion_group, criterion_main, Criterion};
use eraser_core::{
    EraserOptions, EraserPolicy, LrcPolicy, MemoryRunner, NoLrcPolicy, RoundContext, RunConfig,
};
use qec_core::{NoiseParams, Rng};
use std::hint::black_box;
use surface_code::RotatedCode;

fn threshold_variants(c: &mut Criterion) {
    let code = RotatedCode::new(11);
    let mut rng = Rng::new(17);
    let events: Vec<bool> = (0..code.num_stabs()).map(|_| rng.bernoulli(0.1)).collect();
    let labels = vec![false; code.num_stabs()];
    let oracle = vec![false; code.num_data()];
    let mut group = c.benchmark_group("ablation_threshold_d11");
    group.sample_size(60);
    for threshold in [1usize, 2, 3] {
        let mut policy = EraserPolicy::with_options(
            &code,
            EraserOptions { threshold_override: threshold, ..EraserOptions::default() },
        );
        group.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter(|| {
                policy.reset_shot();
                policy.plan_round(black_box(&RoundContext {
                    round: 1,
                    events: &events,
                    leaked_readouts: &labels,
                    oracle_leaked_data: &oracle,
                    last_lrcs: &[],
                }))
            })
        });
    }
    group.finish();
}

fn dli_structures(c: &mut Criterion) {
    let code = RotatedCode::new(11);
    let mut rng = Rng::new(18);
    let events: Vec<bool> = (0..code.num_stabs()).map(|_| rng.bernoulli(0.2)).collect();
    let labels = vec![false; code.num_stabs()];
    let oracle = vec![false; code.num_data()];
    let variants = [
        ("full", EraserOptions::default()),
        ("no_putt", EraserOptions { use_putt: false, ..EraserOptions::default() }),
        ("no_backup", EraserOptions { use_backup: false, ..EraserOptions::default() }),
    ];
    let mut group = c.benchmark_group("ablation_dli_d11");
    group.sample_size(60);
    for (name, options) in variants {
        let mut policy = EraserPolicy::with_options(&code, options);
        group.bench_function(name, |b| {
            b.iter(|| {
                policy.reset_shot();
                policy.plan_round(black_box(&RoundContext {
                    round: 1,
                    events: &events,
                    leaked_readouts: &labels,
                    oracle_leaked_data: &oracle,
                    last_lrcs: &[],
                }))
            })
        });
    }
    group.finish();
}

fn transport_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_transport");
    group.sample_size(10);
    for (name, noise) in [
        ("conservative", NoiseParams::standard(1e-3)),
        ("exchange", NoiseParams::exchange_transport(1e-3)),
    ] {
        let runner = MemoryRunner::new(3, noise, 6);
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = RunConfig { shots: 12, seed: 2, decode: false, ..RunConfig::default() };
                runner
                    .run(&|_| Box::new(NoLrcPolicy::new()) as Box<dyn LrcPolicy>, &cfg)
                    .mean_lpr()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, threshold_variants, dli_structures, transport_models);
criterion_main!(benches);
