//! Simulator throughput: leakage-aware frame simulation of syndrome-
//! extraction rounds, tableau verification speed, and density-matrix kernel
//! cost.

use density_sim::{gates, DensityMatrix};
use eraser_bench::{round_ops, Harness};
use leak_sim::{Discriminator, FrameSimulator, TableauSimulator};
use qec_core::{NoiseParams, Rng};
use std::hint::black_box;

fn main() {
    let h = Harness::from_args();

    for d in [3usize, 7, 11] {
        let (code, ops, keys) = round_ops(d);
        let mut sim = FrameSimulator::new(
            code.num_qubits(),
            keys,
            NoiseParams::standard(1e-3),
            Discriminator::TwoLevel,
            Rng::new(1),
        );
        h.bench(&format!("frame_sim_round/d{d}"), || {
            sim.reset_shot();
            sim.run(black_box(&ops));
        });
    }

    for d in [3usize, 5] {
        let (code, ops, _) = round_ops(d);
        h.bench(&format!("tableau_round/d{d}"), || {
            let mut sim = TableauSimulator::new(code.num_qubits(), 7);
            let mut outcomes = Vec::new();
            sim.run_circuit_ops(black_box(&ops), &mut outcomes);
            outcomes
        });
    }

    // Three-ququart register: the same kernels Fig 8 runs on five ququarts.
    {
        let mut rho = DensityMatrix::new_pure(3, &[2, 0, 0]);
        let cx = gates::cnot();
        h.bench("density_sim/cnot_3ququarts", || {
            rho.apply_two(0, 2, black_box(&cx))
        });
    }
    {
        let mut rho = DensityMatrix::new_pure(3, &[2, 0, 0]);
        let ks = gates::leak_transport_kraus(0.1);
        h.bench("density_sim/transport_kraus_3ququarts", || {
            rho.apply_kraus_two(0, 1, black_box(&ks))
        });
    }
}
