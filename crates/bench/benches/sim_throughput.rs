//! Simulator throughput: leakage-aware frame simulation of syndrome-
//! extraction rounds (scalar and 64-shot striped), the d=7 memory
//! benchmark (scalar vs word-parallel stripes — the PR's ≥5× target),
//! tableau verification speed, and density-matrix kernel cost.
//!
//! Baseline numbers are recorded to `results/BENCH_sim.json` via
//! `ERASER_BENCH_JSON=$PWD/results/BENCH_sim.json cargo bench -p eraser-bench --bench sim_throughput`
//! (absolute path: cargo runs benches from the package directory). The
//! `memory_run_512shots/d7/*` pair is the committed throughput baseline:
//! shots/sec = 512 / (ns_per_iter · 10⁻⁹).

use density_sim::{gates, DensityMatrix};
use eraser_bench::{round_ops, Harness};
use eraser_core::{
    AdaptivePolicy, ControlBase, ControllerConfig, EraserPolicy, Experiment, LrcPolicy, PolicyKind,
    RoundContext,
};
use leak_sim::{BatchFrameSimulator, Discriminator, FrameSimulator, TableauSimulator};
use qec_core::{NoiseParams, Rng};
use std::hint::black_box;

fn main() {
    let h = Harness::from_args();

    for d in [3usize, 7, 11] {
        let (code, ops, keys) = round_ops(d);
        let mut sim = FrameSimulator::new(
            code.num_qubits(),
            keys,
            NoiseParams::standard(1e-3),
            Discriminator::TwoLevel,
            Rng::new(1),
        );
        h.bench(&format!("frame_sim_round/d{d}"), || {
            sim.reset_shot();
            sim.run(black_box(&ops));
        });

        // The striped simulator runs 64 shots per iteration: per-shot cost
        // is ns_per_iter / 64.
        let mut batch = BatchFrameSimulator::new(
            code.num_qubits(),
            keys,
            NoiseParams::standard(1e-3),
            Discriminator::TwoLevel,
        );
        let rngs: Vec<Rng> = (0..64).map(Rng::new).collect();
        h.bench(&format!("frame_sim_round_striped64/d{d}"), || {
            batch.begin_stripe(&rngs);
            batch.run_masked(black_box(&ops), !0);
        });
    }

    // The d=7 memory benchmark: full ERASER runs (policy-adaptive rounds,
    // LPR probes, post-selection) through the scalar path vs the
    // word-parallel striped path — same shots, same seeds, bit-identical
    // results. Decoding is benchmarked separately (decoders bench), so it
    // is disabled here to isolate simulation throughput.
    {
        let build = |width: usize| {
            Experiment::builder()
                .distance(7)
                .noise(NoiseParams::standard(1e-3))
                .rounds(21)
                .policy(PolicyKind::eraser())
                .shots(512)
                .seed(7)
                .threads(1)
                .decode(false)
                .stripe_width(width)
                .build()
                .expect("valid benchmark experiment")
        };
        let scalar = build(1);
        h.bench("memory_run_512shots/d7/scalar", || scalar.run().total_lrcs);
        let striped = build(64);
        h.bench("memory_run_512shots/d7/striped64", || {
            striped.run().total_lrcs
        });
    }

    // Per-round planning cost of the adaptive controller in its steady
    // state (quiet syndrome, base mode, base = ERASER) vs the static
    // policy it wraps. The baselines test asserts the controller's
    // bookkeeping — two signal scans plus the law update — stays within
    // 10% of plain ERASER's planning time.
    {
        let (code, _, _) = round_ops(7);
        let quiet_events = vec![false; code.num_stabs()];
        let quiet_labels = vec![false; code.num_stabs()];
        let oracle = vec![false; code.num_data()];
        let ctx = RoundContext {
            round: 1,
            events: &quiet_events,
            leaked_readouts: &quiet_labels,
            oracle_leaked_data: &oracle,
            last_lrcs: &[],
        };
        let mut eraser = EraserPolicy::new(&code);
        h.bench("policy_round/d7/eraser", || {
            black_box(eraser.plan_round(black_box(&ctx)).len())
        });
        let steady = ControllerConfig {
            base: ControlBase::Eraser,
            ..ControllerConfig::ewma()
        };
        let mut ewma = AdaptivePolicy::new(&code, steady);
        h.bench("policy_round/d7/adaptive-ewma", || {
            black_box(ewma.plan_round(black_box(&ctx)).len())
        });
        let mut budget = AdaptivePolicy::new(
            &code,
            ControllerConfig {
                base: ControlBase::Eraser,
                ..ControllerConfig::budget()
            },
        );
        h.bench("policy_round/d7/adaptive-budget", || {
            black_box(budget.plan_round(black_box(&ctx)).len())
        });
    }

    for d in [3usize, 5] {
        let (code, ops, _) = round_ops(d);
        h.bench(&format!("tableau_round/d{d}"), || {
            let mut sim = TableauSimulator::new(code.num_qubits(), 7);
            let mut outcomes = Vec::new();
            sim.run_circuit_ops(black_box(&ops), &mut outcomes);
            outcomes
        });
    }

    // Three-ququart register: the same kernels Fig 8 runs on five ququarts.
    {
        let mut rho = DensityMatrix::new_pure(3, &[2, 0, 0]);
        let cx = gates::cnot();
        h.bench("density_sim/cnot_3ququarts", || {
            rho.apply_two(0, 2, black_box(&cx))
        });
    }
    {
        let mut rho = DensityMatrix::new_pure(3, &[2, 0, 0]);
        let ks = gates::leak_transport_kraus(0.1);
        h.bench("density_sim/transport_kraus_3ququarts", || {
            rho.apply_kraus_two(0, 1, black_box(&ks))
        });
    }
}
