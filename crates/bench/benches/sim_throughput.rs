//! Simulator throughput: leakage-aware frame simulation of syndrome-
//! extraction rounds, tableau verification speed, and density-matrix kernel
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use density_sim::{gates, DensityMatrix};
use eraser_bench::round_ops;
use leak_sim::{Discriminator, FrameSimulator, TableauSimulator};
use qec_core::{NoiseParams, Rng};
use std::hint::black_box;

fn frame_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_sim_round");
    group.sample_size(40);
    for d in [3usize, 7, 11] {
        let (code, ops, keys) = round_ops(d);
        let mut sim = FrameSimulator::new(
            code.num_qubits(),
            keys,
            NoiseParams::standard(1e-3),
            Discriminator::TwoLevel,
            Rng::new(1),
        );
        group.bench_function(format!("d{d}"), |b| {
            b.iter(|| {
                sim.reset_shot();
                sim.run(black_box(&ops));
            })
        });
    }
    group.finish();
}

fn tableau_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_round");
    group.sample_size(20);
    for d in [3usize, 5] {
        let (code, ops, _) = round_ops(d);
        group.bench_function(format!("d{d}"), |b| {
            b.iter(|| {
                let mut sim = TableauSimulator::new(code.num_qubits(), 7);
                let mut outcomes = Vec::new();
                sim.run_circuit_ops(black_box(&ops), &mut outcomes);
                outcomes
            })
        });
    }
    group.finish();
}

fn density_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_sim");
    group.sample_size(20);
    // Three-ququart register: the same kernels Fig 8 runs on five ququarts.
    group.bench_function("cnot_3ququarts", |b| {
        let mut rho = DensityMatrix::new_pure(3, &[2, 0, 0]);
        let cx = gates::cnot();
        b.iter(|| rho.apply_two(0, 2, black_box(&cx)))
    });
    group.bench_function("transport_kraus_3ququarts", |b| {
        let mut rho = DensityMatrix::new_pure(3, &[2, 0, 0]);
        let ks = gates::leak_transport_kraus(0.1);
        b.iter(|| rho.apply_kraus_two(0, 1, black_box(&ks)))
    });
    group.finish();
}

criterion_group!(benches, frame_simulator, tableau_simulator, density_kernels);
criterion_main!(benches);
