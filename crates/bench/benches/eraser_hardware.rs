//! ERASER control-hardware benchmarks: the software analogue of the paper's
//! real-time constraint (the LSB + DLI must decide within ~120 ns, §4.3), RTL
//! generation, and the resource model.

use criterion::{criterion_group, criterion_main, Criterion};
use eraser_core::{resource, rtl, EraserPolicy, LrcPolicy, RoundContext};
use qec_core::Rng;
use std::hint::black_box;
use surface_code::RotatedCode;

fn lsb_dli_speculation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsb_plan_round");
    group.sample_size(60);
    for d in [3usize, 7, 11] {
        let code = RotatedCode::new(d);
        let mut policy = EraserPolicy::new(&code);
        let mut rng = Rng::new(3);
        let events: Vec<bool> = (0..code.num_stabs()).map(|_| rng.bernoulli(0.05)).collect();
        let labels = vec![false; code.num_stabs()];
        let oracle = vec![false; code.num_data()];
        group.bench_function(format!("d{d}"), |b| {
            b.iter(|| {
                policy.reset_shot();
                policy.plan_round(black_box(&RoundContext {
                    round: 1,
                    events: &events,
                    leaked_readouts: &labels,
                    oracle_leaked_data: &oracle,
                    last_lrcs: &[],
                }))
            })
        });
    }
    group.finish();
}

fn rtl_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtl_generate");
    group.sample_size(20);
    for d in [3usize, 11] {
        let code = RotatedCode::new(d);
        group.bench_function(format!("d{d}"), |b| b.iter(|| rtl::generate(black_box(&code))));
    }
    group.finish();
}

fn resource_model(c: &mut Criterion) {
    let codes: Vec<RotatedCode> = [3usize, 5, 7, 9, 11].iter().map(|&d| RotatedCode::new(d)).collect();
    c.bench_function("resource_estimate_all_distances", |b| {
        b.iter(|| {
            codes
                .iter()
                .map(|code| resource::estimate(black_box(code), resource::XCKU3P).luts)
                .sum::<u64>()
        })
    });
}

criterion_group!(benches, lsb_dli_speculation, rtl_generation, resource_model);
criterion_main!(benches);
