//! ERASER control-hardware benchmarks: the software analogue of the paper's
//! real-time constraint (the LSB + DLI must decide within ~120 ns, §4.3), RTL
//! generation, and the resource model.

use eraser_bench::Harness;
use eraser_core::{resource, rtl, EraserPolicy, LrcPolicy, RoundContext};
use qec_core::Rng;
use std::hint::black_box;
use surface_code::RotatedCode;

fn main() {
    let h = Harness::from_args();

    for d in [3usize, 7, 11] {
        let code = RotatedCode::new(d);
        let mut policy = EraserPolicy::new(&code);
        let mut rng = Rng::new(3);
        let events: Vec<bool> = (0..code.num_stabs()).map(|_| rng.bernoulli(0.05)).collect();
        let labels = vec![false; code.num_stabs()];
        let oracle = vec![false; code.num_data()];
        h.bench(&format!("lsb_plan_round/d{d}"), || {
            policy.reset_shot();
            policy.plan_round(black_box(&RoundContext {
                round: 1,
                events: &events,
                leaked_readouts: &labels,
                oracle_leaked_data: &oracle,
                last_lrcs: &[],
            }))
        });
    }

    for d in [3usize, 11] {
        let code = RotatedCode::new(d);
        h.bench(&format!("rtl_generate/d{d}"), || {
            rtl::generate(black_box(&code))
        });
    }

    {
        let codes: Vec<RotatedCode> = [3usize, 5, 7, 9, 11]
            .iter()
            .map(|&d| RotatedCode::new(d))
            .collect();
        h.bench("resource_estimate_all_distances", || {
            codes
                .iter()
                .map(|code| resource::estimate(black_box(code), resource::XCKU3P).luts)
                .sum::<u64>()
        });
    }
}
