//! One smoke benchmark per paper table/figure: each runs a miniature version
//! of the exact pipeline that regenerates the artifact (the full-scale
//! regeneration is `cargo run --release -p eraser-experiments -- <figure>`).
//!
//! Budgets are tiny on purpose — these benches track the cost of the
//! pipelines, and double as a regression net proving every figure's code path
//! stays alive.

use density_sim::StabilizerLeakageStudy;
use eraser_bench::{smoke_experiment, smoke_run, Harness};
use eraser_core::{analysis, resource, rtl, PolicyKind};
use std::hint::black_box;
use surface_code::RotatedCode;

const SHOTS: u64 = 12;

fn main() {
    let h = Harness::from_args();

    // -- Motivation figures -------------------------------------------------
    let decode_r6 = smoke_experiment(3, 6, SHOTS, true);
    let lpr_r9 = smoke_experiment(3, 9, SHOTS, false);
    let lpr_r6 = smoke_experiment(3, 6, SHOTS, false);

    // Fig 1(c): No-LRC vs Always vs Optimal LER.
    h.bench("figure_pipelines/fig1c_smoke", || {
        smoke_run(&decode_r6, &PolicyKind::NoLrc)
            + smoke_run(&decode_r6, &PolicyKind::AlwaysLrc)
            + smoke_run(&decode_r6, &PolicyKind::Optimal)
    });
    // Fig 2(c): leakage on/off (the off case reuses the same pipeline).
    h.bench("figure_pipelines/fig2c_smoke", || {
        smoke_run(&decode_r6, &PolicyKind::NoLrc)
    });
    // Fig 5 / Fig 6 top: LPR traces (no decoding).
    h.bench("figure_pipelines/fig5_smoke", || {
        smoke_run(&lpr_r9, &PolicyKind::AlwaysLrc)
    });
    h.bench("figure_pipelines/fig6_smoke", || {
        smoke_run(&lpr_r9, &PolicyKind::AlwaysLrc) + smoke_run(&lpr_r9, &PolicyKind::Optimal)
    });

    // -- Analysis tables (closed form) --------------------------------------
    h.bench("table1_analytic", || {
        analysis::p_data_leak_given_parity_leak(
            black_box(analysis::P_LEAK_DEFAULT),
            analysis::P_TRANSPORT_DEFAULT,
        ) + analysis::p_parity_leak_given_data_leak(
            analysis::P_LEAK_DEFAULT,
            analysis::P_TRANSPORT_DEFAULT,
        )
    });
    h.bench("table2_analytic", || {
        (0..4)
            .map(|r| analysis::p_invisible(black_box(r)))
            .sum::<f64>()
    });

    // -- Main result figures ------------------------------------------------
    // Fig 14 / Fig 17 / Fig 20: the four-policy LER sweep (one d).
    h.bench("figure_pipelines/fig14_smoke", || {
        smoke_run(&decode_r6, &PolicyKind::AlwaysLrc)
            + smoke_run(&decode_r6, &PolicyKind::eraser())
            + smoke_run(&decode_r6, &PolicyKind::eraser_m())
            + smoke_run(&decode_r6, &PolicyKind::Optimal)
    });
    // Fig 15 / 18 / 21: LPR traces.
    h.bench("figure_pipelines/fig15_smoke", || {
        smoke_run(&lpr_r9, &PolicyKind::eraser())
    });
    // Fig 16: speculation statistics come from the same no-decode pipeline.
    h.bench("figure_pipelines/fig16_smoke", || {
        smoke_run(&lpr_r6, &PolicyKind::eraser()) + smoke_run(&lpr_r6, &PolicyKind::eraser_m())
    });
    // Table 4: LRC counting (no decode).
    h.bench("figure_pipelines/table4_smoke", || {
        smoke_run(&lpr_r6, &PolicyKind::AlwaysLrc)
    });

    // -- Hardware table -----------------------------------------------------
    // Table 3: RTL + resource model.
    h.bench("table3_pipeline", || {
        let code = RotatedCode::new(5);
        let sv = rtl::generate(black_box(&code));
        let est = resource::estimate(&code, resource::XCKU3P);
        sv.len() as f64 + est.lut_pct
    });

    // -- Density-matrix figure ----------------------------------------------
    // Fig 8 runs a 5-ququart density-matrix circuit.
    h.bench("figure_pipelines/fig8_full_study", || {
        StabilizerLeakageStudy::default().run().len()
    });
}
