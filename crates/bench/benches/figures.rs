//! One smoke benchmark per paper table/figure: each runs a miniature version
//! of the exact pipeline that regenerates the artifact (the full-scale
//! regeneration is `cargo run --release -p eraser-experiments -- <figure>`).
//!
//! Budgets are tiny on purpose — these benches track the cost of the
//! pipelines, and double as a regression net proving every figure's code path
//! stays alive.

use criterion::{criterion_group, criterion_main, Criterion, SamplingMode};
use density_sim::StabilizerLeakageStudy;
use eraser_bench::smoke_run;
use eraser_core::{
    analysis, resource, rtl, AlwaysLrcPolicy, EraserPolicy, NoLrcPolicy, OptimalPolicy,
};
use std::hint::black_box;
use std::time::Duration;
use surface_code::RotatedCode;

const SHOTS: u64 = 12;

fn motivation_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipelines");
    group.sample_size(10);
    group.sampling_mode(SamplingMode::Flat);
    group.measurement_time(Duration::from_secs(8));
    // Fig 1(c): No-LRC vs Always vs Optimal LER.
    group.bench_function("fig1c_smoke", |b| {
        b.iter(|| {
            smoke_run(3, 6, SHOTS, true, &|_| Box::new(NoLrcPolicy::new()))
                + smoke_run(3, 6, SHOTS, true, &|c| Box::new(AlwaysLrcPolicy::new(c)))
                + smoke_run(3, 6, SHOTS, true, &|c| Box::new(OptimalPolicy::new(c)))
        })
    });
    // Fig 2(c): leakage on/off (the off case reuses the same pipeline).
    group.bench_function("fig2c_smoke", |b| {
        b.iter(|| smoke_run(3, 6, SHOTS, true, &|_| Box::new(NoLrcPolicy::new())))
    });
    // Fig 5 / Fig 6 top: LPR traces (no decoding).
    group.bench_function("fig5_smoke", |b| {
        b.iter(|| smoke_run(3, 9, SHOTS, false, &|c| Box::new(AlwaysLrcPolicy::new(c))))
    });
    group.bench_function("fig6_smoke", |b| {
        b.iter(|| {
            smoke_run(3, 9, SHOTS, false, &|c| Box::new(AlwaysLrcPolicy::new(c)))
                + smoke_run(3, 9, SHOTS, false, &|c| Box::new(OptimalPolicy::new(c)))
        })
    });
    group.finish();
}

fn analysis_tables(c: &mut Criterion) {
    // Table 1 / Eq (1)-(2) and Table 2 are closed-form.
    c.bench_function("table1_analytic", |b| {
        b.iter(|| {
            analysis::p_data_leak_given_parity_leak(
                black_box(analysis::P_LEAK_DEFAULT),
                analysis::P_TRANSPORT_DEFAULT,
            ) + analysis::p_parity_leak_given_data_leak(
                analysis::P_LEAK_DEFAULT,
                analysis::P_TRANSPORT_DEFAULT,
            )
        })
    });
    c.bench_function("table2_analytic", |b| {
        b.iter(|| (0..4).map(|r| analysis::p_invisible(black_box(r))).sum::<f64>())
    });
}

fn main_result_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_pipelines");
    group.sample_size(10);
    group.sampling_mode(SamplingMode::Flat);
    group.measurement_time(Duration::from_secs(8));
    // Fig 14 / Fig 17 / Fig 20: the four-policy LER sweep (one d).
    group.bench_function("fig14_smoke", |b| {
        b.iter(|| {
            smoke_run(3, 6, SHOTS, true, &|c| Box::new(AlwaysLrcPolicy::new(c)))
                + smoke_run(3, 6, SHOTS, true, &|c| Box::new(EraserPolicy::new(c)))
                + smoke_run(3, 6, SHOTS, true, &|c| Box::new(EraserPolicy::with_multilevel(c)))
                + smoke_run(3, 6, SHOTS, true, &|c| Box::new(OptimalPolicy::new(c)))
        })
    });
    // Fig 15 / 18 / 21: LPR traces.
    group.bench_function("fig15_smoke", |b| {
        b.iter(|| smoke_run(3, 9, SHOTS, false, &|c| Box::new(EraserPolicy::new(c))))
    });
    // Fig 16: speculation statistics come from the same no-decode pipeline.
    group.bench_function("fig16_smoke", |b| {
        b.iter(|| {
            smoke_run(3, 6, SHOTS, false, &|c| Box::new(EraserPolicy::new(c)))
                + smoke_run(3, 6, SHOTS, false, &|c| {
                    Box::new(EraserPolicy::with_multilevel(c))
                })
        })
    });
    // Table 4: LRC counting (no decode).
    group.bench_function("table4_smoke", |b| {
        b.iter(|| smoke_run(3, 6, SHOTS, false, &|c| Box::new(AlwaysLrcPolicy::new(c))))
    });
    group.finish();
}

fn hardware_table(c: &mut Criterion) {
    // Table 3: RTL + resource model.
    c.bench_function("table3_pipeline", |b| {
        b.iter(|| {
            let code = RotatedCode::new(5);
            let sv = rtl::generate(black_box(&code));
            let est = resource::estimate(&code, resource::XCKU3P);
            sv.len() as f64 + est.lut_pct
        })
    });
}

fn density_figure(c: &mut Criterion) {
    // Fig 8 runs a 5-ququart density-matrix circuit (~seconds); bench it with
    // a reduced single-measurement budget.
    let mut group = c.benchmark_group("figure_pipelines");
    group.sample_size(10);
    group.sampling_mode(SamplingMode::Flat);
    group.measurement_time(Duration::from_secs(10));
    group.bench_function("fig8_full_study", |b| {
        b.iter(|| StabilizerLeakageStudy::default().run().len())
    });
    group.finish();
}

criterion_group!(
    benches,
    motivation_figures,
    analysis_tables,
    main_result_figures,
    hardware_table,
    density_figure
);
criterion_main!(benches);
