//! Decoder stack performance: detector-error-model construction, matching
//! decoders, and raw blossom throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use eraser_bench::decode_fixture;
use qec_core::circuit::DetectorBasis;
use qec_core::NoiseParams;
use qec_decoder::{
    build_dem, max_weight_matching, Decoder, DecodingGraph, GreedyDecoder, MwpmDecoder,
    UnionFindDecoder,
};
use std::hint::black_box;
use surface_code::{MemoryExperiment, RotatedCode};

fn dem_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dem_build");
    group.sample_size(10);
    for (d, rounds) in [(3usize, 3usize), (5, 5)] {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let observable = exp.observable_keys();
        let circuit = exp.base_circuit();
        group.bench_function(format!("d{d}_r{rounds}"), |b| {
            b.iter(|| build_dem(black_box(&circuit), &detectors, &observable))
        });
    }
    group.finish();
}

fn graph_projection(c: &mut Criterion) {
    let fixture = decode_fixture(5, 5, 1);
    let exp = MemoryExperiment::new(RotatedCode::new(5), NoiseParams::standard(1e-3), 5);
    let detectors = exp.detectors();
    c.bench_function("graph_from_dem_d5", |b| {
        b.iter(|| DecodingGraph::from_dem(black_box(&fixture.dem), &detectors, DetectorBasis::Z))
    });
}

fn decoder_latency(c: &mut Criterion) {
    let fixture = decode_fixture(5, 10, 32);
    let mwpm = MwpmDecoder::new(&fixture.graph);
    let uf = UnionFindDecoder::new(&fixture.graph);
    let greedy = GreedyDecoder::new(&fixture.graph);
    let mut group = c.benchmark_group("decode_d5_r10");
    group.sample_size(20);
    group.bench_function("mwpm", |b| {
        b.iter(|| {
            fixture
                .syndromes
                .iter()
                .filter(|s| mwpm.decode(black_box(s)))
                .count()
        })
    });
    group.bench_function("union_find", |b| {
        b.iter(|| {
            fixture
                .syndromes
                .iter()
                .filter(|s| uf.decode(black_box(s)))
                .count()
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| {
            fixture
                .syndromes
                .iter()
                .filter(|s| greedy.decode(black_box(s)))
                .count()
        })
    });
    group.finish();
}

fn blossom_throughput(c: &mut Criterion) {
    // Complete graph on 24 vertices with pseudorandom weights: the defect
    // graph size of a typical d=7 shot.
    let mut edges = Vec::new();
    let mut state = 0x12345u64;
    for u in 0..24usize {
        for v in (u + 1)..24 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            edges.push((u, v, (state >> 33) as i64 % 1000));
        }
    }
    c.bench_function("blossom_k24", |b| {
        b.iter(|| max_weight_matching(black_box(&edges), true))
    });
}

criterion_group!(
    benches,
    dem_construction,
    graph_projection,
    decoder_latency,
    blossom_throughput
);
criterion_main!(benches);
