//! Decoder stack performance: detector-error-model construction, the
//! stateful batched decoders, shared precomputation amortization, and raw
//! blossom throughput.
//!
//! Baseline numbers are recorded to `results/BENCH_decoders.json` via
//! `ERASER_BENCH_JSON=$PWD/results/BENCH_decoders.json cargo bench -p eraser-bench --bench decoders`
//! (absolute path: cargo runs benches from the package directory).

use eraser_bench::{decode_fixture, Harness};
use eraser_core::DecoderKind;
use qec_core::circuit::DetectorBasis;
use qec_core::NoiseParams;
use qec_decoder::{
    build_dem, max_weight_matching, DecoderFactory, DecodingGraph, FusionDecoder, FusionPlan,
    FusionPool, MwpmBatchDecoder, MwpmFactory, ShortestPaths, StreamingDecoder, Syndrome,
    SyndromeDecoder, TieredDecoder, WindowBackend, WindowPlan,
};
use std::hint::black_box;
use surface_code::{MemoryExperiment, RotatedCode};

fn main() {
    let h = Harness::from_args();

    for (d, rounds) in [(3usize, 3usize), (5, 5)] {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let observable = exp.observable_keys();
        let circuit = exp.base_circuit();
        h.bench(&format!("dem_build/d{d}_r{rounds}"), || {
            build_dem(black_box(&circuit), &detectors, &observable)
        });
    }

    {
        let fixture = decode_fixture(5, 5, 1);
        let exp = MemoryExperiment::new(RotatedCode::new(5), NoiseParams::standard(1e-3), 5);
        let detectors = exp.detectors();
        h.bench("graph_from_dem_d5", || {
            DecodingGraph::from_dem(black_box(&fixture.dem), &detectors, DetectorBasis::Z)
        });
    }

    // Shared-precomputation amortization: the O(n²) shortest-path table is
    // the cost of ONE factory; every further per-thread instance is a cheap
    // Arc clone plus empty scratch. The gap between these two numbers is
    // what `Arc`-sharing saves per extra worker thread.
    {
        let fixture = decode_fixture(5, 10, 1);
        h.bench("shortest_paths_compute/d5_r10", || {
            ShortestPaths::compute(black_box(&fixture.graph))
        });
        let factory = MwpmFactory::new(&fixture.graph);
        h.bench("mwpm_thread_instance_build/d5_r10", || factory.build());
    }

    // Stateful batch decoding (32 shots per iteration) for all four
    // decoders.
    {
        let fixture = decode_fixture(5, 10, 32);
        let syndromes: Vec<Syndrome> = fixture
            .syndromes
            .iter()
            .map(|s| Syndrome::new(s.clone()))
            .collect();

        for kind in [
            DecoderKind::Mwpm,
            DecoderKind::SparseMwpm,
            DecoderKind::UnionFind,
            DecoderKind::Greedy,
        ] {
            let factory = kind.build_factory(&fixture.graph);
            let mut decoder = factory.build();
            let mut outcomes = Vec::new();
            h.bench(
                &format!("decode_batch_32/d5_r10/{}", factory.name()),
                || {
                    decoder.decode_batch(black_box(&syndromes), &mut outcomes);
                    outcomes.iter().filter(|o| o.flip).count()
                },
            );
        }

        // The tier ladder in front of the same dense backend on the same
        // batch: every fixture shot carries 6 faults, so nearly all of
        // them fall through to tier 2 — this entry documents the guard's
        // overhead on dense work (budget: ≤15%, asserted by
        // `crates/bench/tests/baselines.rs`). The sparse batch below
        // documents the win.
        {
            let factory = DecoderKind::Mwpm.build_factory(&fixture.graph);
            let mut decoder = TieredDecoder::new(factory.build());
            let mut outcomes = Vec::new();
            h.bench("decode_batch_32/d5_r10/tiered-mwpm", || {
                decoder.decode_batch(black_box(&syndromes), &mut outcomes);
                outcomes.iter().filter(|o| o.flip).count()
            });
        }

        // The paper's operating-point shot statistics (p ≈ 1e-3, d=5,
        // R=10): most shots carry 0–2 faults, the tier-0/1 regime. The
        // mwpm/tiered-mwpm gap on this batch is the predecoder's win where
        // it is designed to fire; `baselines.rs` asserts the speedup.
        let mut rng = qec_core::Rng::new(0x1E3);
        let sparse_syndromes: Vec<Syndrome> = (0..32)
            .map(|i| {
                let faults = [0usize, 1, 1, 2][i % 4];
                let mut events = vec![false; fixture.graph.num_nodes()];
                for _ in 0..faults {
                    let mech = &fixture.dem.mechanisms
                        [rng.below(fixture.dem.mechanisms.len() as u64) as usize];
                    for &det in &mech.detectors {
                        if let Some(node) = fixture.graph.node_of_detector(det) {
                            events[node] ^= true;
                        }
                    }
                }
                Syndrome::new(
                    (0..fixture.graph.num_nodes())
                        .filter(|&n| events[n])
                        .collect(),
                )
            })
            .collect();
        for tiered in [false, true] {
            let factory = DecoderKind::Mwpm.build_factory(&fixture.graph);
            let mut decoder: Box<dyn SyndromeDecoder> = if tiered {
                Box::new(TieredDecoder::new(factory.build()))
            } else {
                factory.build()
            };
            let name = if tiered { "tiered-mwpm" } else { "mwpm" };
            let mut outcomes = Vec::new();
            h.bench(&format!("decode_batch_32_sparse/d5_r10/{name}"), || {
                decoder.decode_batch(black_box(&sparse_syndromes), &mut outcomes);
                outcomes.iter().filter(|o| o.flip).count()
            });
        }

        // The same 32-shot batch through the erasure `WeightOverlay`: a
        // quarter of the shots carry the erasure set a leakage flag
        // produces (edges around 1–2 detector nodes). The gap versus the
        // plain `decode_batch_32` case is the overlay's total overhead
        // (budget: ≤10% on MWPM); the steady-state loop stays
        // allocation-free (asserted by `crates/decoder/tests/alloc.rs`).
        let mut rng = qec_core::Rng::new(0xE4A5);
        let erasure_syndromes: Vec<Syndrome> = syndromes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut syndrome = s.clone();
                if i % 4 == 0 {
                    for _ in 0..1 + i % 2 {
                        let node = rng.below(fixture.graph.num_nodes() as u64) as usize;
                        syndrome
                            .erasures
                            .extend_from_slice(fixture.graph.incident(node));
                    }
                    syndrome.erasures.sort_unstable();
                    syndrome.erasures.dedup();
                }
                syndrome
            })
            .collect();
        for kind in [
            DecoderKind::Mwpm,
            DecoderKind::SparseMwpm,
            DecoderKind::UnionFind,
            DecoderKind::Greedy,
        ] {
            let factory = kind.build_factory(&fixture.graph);
            let mut decoder = factory.build();
            let mut outcomes = Vec::new();
            h.bench(
                &format!("decode_batch_32_erasure/d5_r10/{}", factory.name()),
                || {
                    decoder.decode_batch(black_box(&erasure_syndromes), &mut outcomes);
                    outcomes.iter().filter(|o| o.flip).count()
                },
            );
        }
    }

    // Dense vs sparse blossom on a realistic d=7 long-memory batch (32
    // shots, ~1 fault per round). Each iteration is the *cold* per-cell
    // cost a sweep cell or serve job pays on a fresh graph shape: build
    // the factory (dense: the O(n²) all-pairs table — 82 ms at these 864
    // nodes; sparse: one O(E log V) boundary Dijkstra — 92 µs), then
    // decode the batch. Both return the same optimal correction weight
    // (`crates/decoder/tests/equivalence.rs`); the precomputation gap is
    // exactly why `DecoderKind::Auto` flips to sparse above
    // `AUTO_MWPM_NODE_LIMIT` nodes. The committed baseline asserts sparse
    // ≥2× dense end to end (`crates/bench/tests/baselines.rs`).
    if h.matches("decode_batch_32/d7") {
        let (d, rounds) = (7usize, 35usize);
        let fixture = decode_fixture(d, rounds, 1);
        let mut rng = qec_core::Rng::new(0x735);
        let syndromes: Vec<Syndrome> = (0..32)
            .map(|_| {
                let mut events = vec![false; fixture.graph.num_nodes()];
                for _ in 0..rounds {
                    let mech = &fixture.dem.mechanisms
                        [rng.below(fixture.dem.mechanisms.len() as u64) as usize];
                    for &det in &mech.detectors {
                        if let Some(node) = fixture.graph.node_of_detector(det) {
                            events[node] ^= true;
                        }
                    }
                }
                Syndrome::new(
                    (0..fixture.graph.num_nodes())
                        .filter(|&n| events[n])
                        .collect(),
                )
            })
            .collect();
        for kind in [DecoderKind::Mwpm, DecoderKind::SparseMwpm] {
            let name = kind.build_factory(&fixture.graph).name();
            let mut outcomes = Vec::new();
            h.bench(&format!("decode_batch_32/d7_r35_cold/{name}"), || {
                let factory = kind.build_factory(&fixture.graph);
                let mut decoder = factory.build();
                decoder.decode_batch(black_box(&syndromes), &mut outcomes);
                outcomes.iter().filter(|o| o.flip).count()
            });
        }
    }

    // Sliding-window streaming vs monolithic MWPM on the paper's
    // long-memory workload: one full d=7 shot over 110 rounds (realistic
    // ~p=3e-3 defect density). The committed baseline asserts windowed
    // ns/round beats monolithic by ≥3× (`crates/bench/tests/baselines.rs`)
    // — the window caps blossom's O(k³) at the per-window defect count while
    // the monolithic matcher pays the whole shot's. The heavy fixture (DEM +
    // 2665-node APSP) is skipped when the filter excludes these benches.
    if h.matches("decode_window_shot") || h.matches("decode_fusion_shot") {
        let (d, rounds) = (7usize, 110usize);
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        let mut rng = qec_core::Rng::new(0x110);
        let mut events = vec![false; graph.num_nodes()];
        for _ in 0..3 * rounds {
            let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        let defects: Vec<usize> = (0..graph.num_nodes()).filter(|&n| events[n]).collect();
        let mut by_round: Vec<Vec<usize>> = vec![Vec::new(); graph.max_round() + 1];
        for &node in &defects {
            by_round[graph.node_round(node)].push(node);
        }
        let syndrome = Syndrome::build(defects).rounds(rounds).finish();

        let mono_factory = MwpmFactory::new(&graph);
        let mut mono =
            MwpmBatchDecoder::with_paths(&graph, std::sync::Arc::clone(mono_factory.paths()));
        h.bench("decode_window_shot/d7_r110/monolithic_mwpm", || {
            mono.decode_syndrome(black_box(&syndrome)).flip
        });

        let plan = std::sync::Arc::new(WindowPlan::new(&graph, 21, 14, WindowBackend::Mwpm));
        let mut windowed = plan.streaming();
        windowed.set_predecode(false);
        h.bench("decode_window_shot/d7_r110/windowed_mwpm", || {
            windowed.begin_shot();
            for round in black_box(&by_round) {
                windowed.push_round(round, &[]);
            }
            windowed.finish().flip
        });

        // The same windowed chain with the tier ladder enabled (the
        // default). This shot is dense (~3 faults per round), so nearly
        // every window position falls through to tier 2: the gap versus
        // `windowed_mwpm` above is the predecoder's worst-case guard
        // overhead on the streaming path, not its win (see
        // `decode_batch_32_sparse` and `results/predecode.csv` for that).
        let mut windowed_tiered = plan.streaming();
        h.bench("decode_window_shot/d7_r110/windowed_tiered_mwpm", || {
            windowed_tiered.begin_shot();
            for round in black_box(&by_round) {
                windowed_tiered.push_round(round, &[]);
            }
            windowed_tiered.finish().flip
        });

        // Intra-shot fusion over the same window chain: the sequential
        // chain vs a 4-leaf fusion tree on a 4-worker pool, same shot,
        // bit-identical output. On a multi-core host `fusion4` should
        // undercut `seq`; on a single core it measures the pool overhead
        // (the committed baseline records the host's core count alongside).
        let mut seq = plan.streaming();
        h.bench("decode_fusion_shot/d7_r110/seq", || {
            seq.begin_shot();
            for round in black_box(&by_round) {
                seq.push_round(round, &[]);
            }
            seq.finish().flip
        });
        let fplan = FusionPlan::new(std::sync::Arc::clone(&plan), 4);
        let pool = std::sync::Arc::new(FusionPool::new(4));
        let mut fused = FusionDecoder::new(&fplan, pool);
        h.bench("decode_fusion_shot/d7_r110/fusion4", || {
            fused.begin_shot();
            for round in black_box(&by_round) {
                fused.push_round(round, &[]);
            }
            fused.finish().flip
        });
    }

    // Complete graph on 24 vertices with pseudorandom weights: the defect
    // graph size of a typical d=7 shot.
    {
        let mut edges = Vec::new();
        let mut state = 0x12345u64;
        for u in 0..24usize {
            for v in (u + 1)..24 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                edges.push((u, v, (state >> 33) as i64 % 1000));
            }
        }
        h.bench("blossom_k24", || {
            max_weight_matching(black_box(&edges), true)
        });

        // Same problem through a reused context: the per-shot allocation
        // savings of the scratch-reusing matcher core.
        let mut ctx = qec_decoder::MatchingContext::new();
        h.bench("blossom_k24_reused_context", || {
            ctx.solve(black_box(&edges), true).len()
        });
    }
}
