//! Decoder stack performance: detector-error-model construction, matching
//! decoders, and raw blossom throughput.

use eraser_bench::{decode_fixture, Harness};
use qec_core::circuit::DetectorBasis;
use qec_core::NoiseParams;
use qec_decoder::{
    build_dem, max_weight_matching, Decoder, DecodingGraph, GreedyDecoder, MwpmDecoder,
    UnionFindDecoder,
};
use std::hint::black_box;
use surface_code::{MemoryExperiment, RotatedCode};

fn main() {
    let h = Harness::from_args();

    for (d, rounds) in [(3usize, 3usize), (5, 5)] {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let observable = exp.observable_keys();
        let circuit = exp.base_circuit();
        h.bench(&format!("dem_build/d{d}_r{rounds}"), || {
            build_dem(black_box(&circuit), &detectors, &observable)
        });
    }

    {
        let fixture = decode_fixture(5, 5, 1);
        let exp = MemoryExperiment::new(RotatedCode::new(5), NoiseParams::standard(1e-3), 5);
        let detectors = exp.detectors();
        h.bench("graph_from_dem_d5", || {
            DecodingGraph::from_dem(black_box(&fixture.dem), &detectors, DetectorBasis::Z)
        });
    }

    {
        let fixture = decode_fixture(5, 10, 32);
        let mwpm = MwpmDecoder::new(&fixture.graph);
        let uf = UnionFindDecoder::new(&fixture.graph);
        let greedy = GreedyDecoder::new(&fixture.graph);
        h.bench("decode_d5_r10/mwpm", || {
            fixture
                .syndromes
                .iter()
                .filter(|s| mwpm.decode(black_box(s)))
                .count()
        });
        h.bench("decode_d5_r10/union_find", || {
            fixture
                .syndromes
                .iter()
                .filter(|s| uf.decode(black_box(s)))
                .count()
        });
        h.bench("decode_d5_r10/greedy", || {
            fixture
                .syndromes
                .iter()
                .filter(|s| greedy.decode(black_box(s)))
                .count()
        });
    }

    // Complete graph on 24 vertices with pseudorandom weights: the defect
    // graph size of a typical d=7 shot.
    {
        let mut edges = Vec::new();
        let mut state = 0x12345u64;
        for u in 0..24usize {
            for v in (u + 1)..24 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                edges.push((u, v, (state >> 33) as i64 % 1000));
            }
        }
        h.bench("blossom_k24", || {
            max_weight_matching(black_box(&edges), true)
        });
    }
}
