//! A minimal, dependency-free benchmark harness.
//!
//! The workspace builds offline, so the criterion crate is not available;
//! this module provides the small subset the suite needs: named benchmarks,
//! substring filtering from the command line (`cargo bench -- <filter>`),
//! automatic iteration-count calibration, and ns/µs/ms formatting.
//!
//! Set `ERASER_BENCH_QUICK=1` to shrink the measurement budget (useful as a
//! smoke run in CI). Set `ERASER_BENCH_JSON=<path>` to additionally write
//! the measurements as JSON when the harness is dropped (the baseline files
//! under `results/` are produced this way).

use eraser_json::Value;
use std::cell::RefCell;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Per-process benchmark driver. Construct once in `main` with
/// [`Harness::from_args`], then call [`Harness::bench`] per benchmark.
pub struct Harness {
    filter: Option<String>,
    target: Duration,
    quick: bool,
    json: Option<PathBuf>,
    results: RefCell<Vec<(String, f64)>>,
}

impl Harness {
    /// Reads the optional substring filter from the command line (cargo
    /// passes `--bench` and similar flags; everything else is a filter).
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with("--"));
        let quick = std::env::var_os("ERASER_BENCH_QUICK").is_some();
        let target = if quick {
            Duration::from_millis(30)
        } else {
            Duration::from_millis(300)
        };
        let json = std::env::var_os("ERASER_BENCH_JSON").map(PathBuf::from);
        Harness {
            filter,
            target,
            quick,
            json,
            results: RefCell::new(Vec::new()),
        }
    }

    /// Whether `name` passes the command-line filter. Lets a bench target
    /// skip building an expensive fixture whose benches would all be
    /// filtered out anyway.
    pub fn matches(&self, name: &str) -> bool {
        self.filter
            .as_ref()
            .is_none_or(|filter| name.contains(filter.as_str()))
    }

    /// Runs `f` repeatedly for roughly the measurement budget and prints the
    /// mean time per iteration. Skipped (silently) if `name` does not match
    /// the filter.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        if !self.matches(name) {
            return;
        }
        // Warm-up and calibration in one: time a single iteration.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "{name:<44} {:>14}/iter  ({iters} iters)",
            format_ns(per_iter)
        );
        self.results.borrow_mut().push((name.to_string(), per_iter));
    }

    /// Renders the recorded measurements as a JSON document (via the
    /// shared `eraser_json` writer, the same serializer the serve protocol
    /// uses — escaping and number formatting live in one place).
    fn to_json(&self) -> String {
        let benches = self
            .results
            .borrow()
            .iter()
            .map(|(name, ns)| {
                let mut entry = Value::object();
                entry.set("name", name.as_str());
                // Sub-0.1ns resolution is noise; keep baselines diffable.
                entry.set("ns_per_iter", (ns * 10.0).round() / 10.0);
                entry
            })
            .collect();
        let mut root = Value::object();
        // Host parallelism matters to any baseline that measures a
        // multi-threaded path (the fusion benches): a 1-core runner cannot
        // show a parallel speedup, and assertions on the recorded numbers
        // must know what machine produced them.
        root.set(
            "cores",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        );
        root.set("benches", Value::Array(benches));
        root.to_pretty()
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        if let Some(path) = &self.json {
            if let Some(filter) = &self.filter {
                // A filtered run measured only a subset; writing it would
                // silently clobber a full baseline file.
                eprintln!(
                    "not writing bench JSON to {}: filter `{filter}` is active \
                     (re-run without a filter to record a baseline)",
                    path.display()
                );
                return;
            }
            if self.quick {
                // Quick mode shrinks the measurement budget; the numbers are
                // too noisy to serve as a baseline.
                eprintln!(
                    "not writing bench JSON to {}: ERASER_BENCH_QUICK is set \
                     (re-run without it to record a baseline)",
                    path.display()
                );
                return;
            }
            if let Err(err) = std::fs::write(path, self.to_json()) {
                eprintln!("failed to write bench JSON to {}: {err}", path.display());
            } else {
                println!("wrote bench JSON to {}", path.display());
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_harness(filter: Option<&str>) -> Harness {
        Harness {
            filter: filter.map(str::to_string),
            target: Duration::from_micros(50),
            quick: false,
            json: None,
            results: RefCell::new(Vec::new()),
        }
    }

    #[test]
    fn formats_time_scales() {
        assert_eq!(format_ns(250.0), "250 ns");
        assert_eq!(format_ns(2_500.0), "2.50 us");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let h = test_harness(None);
        let mut calls = 0u64;
        h.bench("noop", || calls += 1);
        assert!(calls >= 2, "warm-up plus at least one measured iteration");
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let h = test_harness(Some("decoder"));
        let mut calls = 0u64;
        h.bench("simulator_round", || calls += 1);
        assert_eq!(calls, 0);
        h.bench("decoder_latency", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn json_records_measured_benches() {
        let h = test_harness(None);
        h.bench("alpha", || 1 + 1);
        h.bench("beta", || 2 + 2);
        let json = h.to_json();
        // The document must round-trip through the shared parser with both
        // measurements intact and positive.
        let parsed = Value::parse(&json).unwrap();
        let cores = parsed.get("cores").and_then(|c| c.as_u64()).unwrap();
        assert!(cores >= 1, "host core count is recorded: {cores}");
        let benches = parsed.get("benches").and_then(|b| b.as_array()).unwrap();
        assert_eq!(benches.len(), 2);
        for (entry, name) in benches.iter().zip(["alpha", "beta"]) {
            assert_eq!(entry.get("name").and_then(|n| n.as_str()), Some(name));
            let ns = entry.get("ns_per_iter").and_then(|n| n.as_f64()).unwrap();
            assert!(ns > 0.0, "{name}: {ns}");
        }
    }
}
