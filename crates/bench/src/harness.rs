//! A minimal, dependency-free benchmark harness.
//!
//! The workspace builds offline, so the criterion crate is not available;
//! this module provides the small subset the suite needs: named benchmarks,
//! substring filtering from the command line (`cargo bench -- <filter>`),
//! automatic iteration-count calibration, and ns/µs/ms formatting.
//!
//! Set `ERASER_BENCH_QUICK=1` to shrink the measurement budget (useful as a
//! smoke run in CI).

use std::time::{Duration, Instant};

/// Per-process benchmark driver. Construct once in `main` with
/// [`Harness::from_args`], then call [`Harness::bench`] per benchmark.
pub struct Harness {
    filter: Option<String>,
    target: Duration,
}

impl Harness {
    /// Reads the optional substring filter from the command line (cargo
    /// passes `--bench` and similar flags; everything else is a filter).
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|arg| !arg.starts_with("--"));
        let quick = std::env::var_os("ERASER_BENCH_QUICK").is_some();
        let target = if quick {
            Duration::from_millis(30)
        } else {
            Duration::from_millis(300)
        };
        Harness { filter, target }
    }

    /// Runs `f` repeatedly for roughly the measurement budget and prints the
    /// mean time per iteration. Skipped (silently) if `name` does not match
    /// the filter.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up and calibration in one: time a single iteration.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "{name:<44} {:>14}/iter  ({iters} iters)",
            format_ns(per_iter)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_time_scales() {
        assert_eq!(format_ns(250.0), "250 ns");
        assert_eq!(format_ns(2_500.0), "2.50 us");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let h = Harness {
            filter: None,
            target: Duration::from_micros(50),
        };
        let mut calls = 0u64;
        h.bench("noop", || calls += 1);
        assert!(calls >= 2, "warm-up plus at least one measured iteration");
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let h = Harness {
            filter: Some("decoder".to_string()),
            target: Duration::from_micros(50),
        };
        let mut calls = 0u64;
        h.bench("simulator_round", || calls += 1);
        assert_eq!(calls, 0);
        h.bench("decoder_latency", || calls += 1);
        assert!(calls > 0);
    }
}
