//! Shared fixtures and the harness for the benchmark suite.
//!
//! The benches cover (a) component performance — simulator throughput,
//! detector-error-model construction, decoder latency, LSB speculation
//! latency, RTL generation — and (b) one smoke benchmark per paper
//! table/figure pipeline (tiny shot budgets; the full regeneration lives in
//! the `eraser-experiments` harness).
//!
//! Policy workloads go through the [`eraser_core::Experiment`] facade and
//! select policies by [`eraser_core::PolicyKind`].

pub mod harness;

pub use harness::Harness;

use eraser_core::{Experiment, PolicyKind};
use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Op, Rng};
use qec_decoder::{build_dem, DecodingGraph, DetectorErrorModel};
use surface_code::{MemoryExperiment, RotatedCode};

/// A fully prepared decode fixture: graph plus pre-sampled defect sets.
pub struct DecodeFixture {
    pub graph: DecodingGraph,
    pub dem: DetectorErrorModel,
    pub syndromes: Vec<Vec<usize>>,
}

/// Builds a decoding fixture for a `d`-distance, `rounds`-round experiment
/// with `n_syndromes` random multi-fault syndromes.
pub fn decode_fixture(d: usize, rounds: usize, n_syndromes: usize) -> DecodeFixture {
    let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    let mut rng = Rng::new(99);
    let mut syndromes = Vec::with_capacity(n_syndromes);
    for _ in 0..n_syndromes {
        let mut events = vec![false; graph.num_nodes()];
        for _ in 0..6 {
            let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        syndromes.push((0..graph.num_nodes()).filter(|&n| events[n]).collect());
    }
    DecodeFixture {
        graph,
        dem,
        syndromes,
    }
}

/// The ops of one plain syndrome-extraction round (for simulator throughput).
pub fn round_ops(d: usize) -> (RotatedCode, Vec<Op>, usize) {
    let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), 1);
    let builder = exp.round_builder();
    let round = builder.round(0, &[], exp.keys());
    let mut ops = round.pre;
    ops.extend(round.measure);
    ops.extend(round.mr_reset);
    let total = exp.keys().total();
    (exp.code().clone(), ops, total)
}

/// Builds the tiny-budget experiment shared by the per-figure smoke benches.
pub fn smoke_experiment(d: usize, rounds: usize, shots: u64, decode: bool) -> Experiment {
    Experiment::builder()
        .distance(d)
        .noise(NoiseParams::standard(1e-3))
        .rounds(rounds)
        .shots(shots)
        .seed(5)
        .decode(decode)
        .build()
        .expect("smoke experiment parameters are valid")
}

/// Runs a tiny policy workload on `exp` (shared by the smoke benches).
pub fn smoke_run(exp: &Experiment, policy: &PolicyKind) -> f64 {
    let result = exp.run_policy(policy);
    result.ler() + result.mean_lpr()
}
