//! Committed benchmark baselines must stay well-formed: CI's bench smoke
//! step runs the harnesses for one quick iteration and then relies on
//! these checks to guarantee `results/BENCH_*.json` parse (the harness
//! emits the JSON by hand, so a formatting regression would otherwise
//! surface only when someone's tooling chokes on a baseline).

use eraser_json::Value;
use std::path::PathBuf;

/// Reads and parses a committed baseline with the shared `eraser_json`
/// parser (the same code that wrote it).
fn read_baseline(file: &str) -> Value {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("baseline {} must be committed: {e}", path.display()));
    Value::parse(&text).unwrap_or_else(|e| panic!("{file} must be valid JSON: {e}"))
}

/// Validator for the harness's shape:
/// `{"benches": [{"name": "...", "ns_per_iter": 123.4}, ...]}`.
/// Returns the (name, ns) pairs.
fn parse_baseline(file: &str) -> Vec<(String, f64)> {
    let doc = read_baseline(file);
    let benches = doc
        .get("benches")
        .and_then(|b| b.as_array())
        .unwrap_or_else(|| panic!("{file}: missing benches array"));
    let entries: Vec<(String, f64)> = benches
        .iter()
        .map(|entry| {
            let name = entry
                .get("name")
                .and_then(|n| n.as_str())
                .unwrap_or_else(|| panic!("{file}: entry without a name"))
                .to_string();
            let ns = entry
                .get("ns_per_iter")
                .and_then(|n| n.as_f64())
                .unwrap_or_else(|| panic!("{file}: `{name}` lacks ns_per_iter"));
            assert!(ns.is_finite() && ns > 0.0, "{file}: bad timing for {name}");
            (name, ns)
        })
        .collect();
    assert!(!entries.is_empty(), "{file}: no bench entries");
    entries
}

#[test]
fn bench_sim_baseline_parses_and_records_the_stripe_speedup() {
    let entries = parse_baseline("BENCH_sim.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_sim.json must record `{name}`"))
            .1
    };
    let scalar = find("memory_run_512shots/d7/scalar");
    let striped = find("memory_run_512shots/d7/striped64");
    // The committed baseline must document the word-parallel win: ≥5×
    // shots/sec on the d=7 memory benchmark.
    assert!(
        scalar / striped >= 5.0,
        "committed baseline shows {:.2}× (scalar {scalar} ns vs striped {striped} ns)",
        scalar / striped
    );
}

#[test]
fn bench_sim_baseline_bounds_the_adaptive_controller_overhead() {
    let entries = parse_baseline("BENCH_sim.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_sim.json must record `{name}`"))
            .1
    };
    let eraser = find("policy_round/d7/eraser");
    let ewma = find("policy_round/d7/adaptive-ewma");
    let budget = find("policy_round/d7/adaptive-budget");
    // The adaptive controller's steady-state planning cost (quiet syndrome,
    // base = ERASER) must stay within 10% of the static policy it wraps:
    // the per-round bookkeeping is two signal scans and an integer EWMA.
    assert!(
        ewma / eraser <= 1.10,
        "committed baseline shows {:.1}% EWMA-controller overhead \
         (eraser {eraser} ns vs adaptive-ewma {ewma} ns)",
        (ewma / eraser - 1.0) * 100.0
    );
    // The budget law adds a quota check on top; keep it bounded too.
    assert!(
        budget / eraser <= 1.25,
        "committed baseline shows {:.1}% budget-controller overhead \
         (eraser {eraser} ns vs adaptive-budget {budget} ns)",
        (budget / eraser - 1.0) * 100.0
    );
}

#[test]
fn bench_decoders_baseline_parses() {
    let entries = parse_baseline("BENCH_decoders.json");
    assert!(entries.iter().any(|(n, _)| n.contains("decode_batch")));
}

#[test]
fn bench_decoders_baseline_records_the_windowed_speedup() {
    let entries = parse_baseline("BENCH_decoders.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_decoders.json must record `{name}`"))
            .1
    };
    let mono = find("decode_window_shot/d7_r110/monolithic_mwpm");
    let windowed = find("decode_window_shot/d7_r110/windowed_mwpm");
    // Both benches decode the same d=7, 110-round shot, so the per-shot
    // ratio *is* the ns/round ratio. The committed baseline must document
    // the windowed win: ≥3× on the paper's long-memory workload (blossom's
    // O(k³) is paid per window-sized defect set, not per shot-sized one).
    assert!(
        mono / windowed >= 3.0,
        "committed baseline shows {:.2}× (monolithic {mono} ns vs windowed {windowed} ns)",
        mono / windowed
    );
}

#[test]
fn bench_decoders_baseline_records_the_fusion_tradeoff() {
    let doc = read_baseline("BENCH_decoders.json");
    let cores = doc
        .get("cores")
        .and_then(|c| c.as_u64())
        .unwrap_or_else(|| panic!("BENCH_decoders.json must record the host `cores` count"));
    assert!(cores >= 1, "recorded core count must be positive: {cores}");

    let entries = parse_baseline("BENCH_decoders.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_decoders.json must record `{name}`"))
            .1
    };
    let seq = find("decode_fusion_shot/d7_r110/seq");
    let fusion4 = find("decode_fusion_shot/d7_r110/fusion4");
    if cores >= 4 {
        // On a host that can actually run the 4 leaf workers in parallel,
        // the committed baseline must document the fusion win: ≥2× faster
        // per shot than the sequential window chain (the leaves decode
        // concurrently and the merge re-decodes only boundary windows).
        assert!(
            seq / fusion4 >= 2.0,
            "committed baseline shows {:.2}× (seq {seq} ns vs fusion4 {fusion4} ns) on {cores} cores",
            seq / fusion4
        );
    } else {
        // A baseline recorded on a 1–3 core host cannot show a parallel
        // speedup; what it documents instead is that the fusion machinery
        // (pool handoff + boundary re-decode) stays within a bounded
        // constant factor of the sequential chain, so the parallel path is
        // never a pathological choice even when oversubscribed.
        assert!(
            fusion4 / seq <= 8.0,
            "committed baseline shows {:.2}× fusion overhead on {cores} core(s) \
             (seq {seq} ns vs fusion4 {fusion4} ns)",
            fusion4 / seq
        );
    }
}

#[test]
fn bench_decoders_baseline_records_the_sparse_blossom_speedup() {
    let entries = parse_baseline("BENCH_decoders.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_decoders.json must record `{name}`"))
            .1
    };
    let dense = find("decode_batch_32/d7_r35_cold/mwpm");
    let sparse = find("decode_batch_32/d7_r35_cold/sparse-mwpm");
    // Both benches decode the same realistic 32-shot d=7 batch end to end
    // (factory precomputation + decode) at identical optimal correction
    // weight. The committed baseline must document the sparse-blossom win:
    // ≥2× per cold cell, driven by the O(V) boundary index replacing the
    // dense O(V²) all-pairs table — the gap that makes MWPM-accuracy
    // decoding viable past `DecoderKind::AUTO_MWPM_NODE_LIMIT`.
    assert!(
        dense / sparse >= 2.0,
        "committed baseline shows {:.2}× (dense {dense} ns vs sparse {sparse} ns)",
        dense / sparse
    );
}

#[test]
fn bench_decoders_baseline_records_the_tiered_predecode_tradeoff() {
    let entries = parse_baseline("BENCH_decoders.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_decoders.json must record `{name}`"))
            .1
    };

    // On the sparse batch (the paper's p ≈ 1e-3 operating point: 0–2 faults
    // per shot, the tier-0/1 regime) the committed baseline must document
    // the predecoder's win: the closed-form tier-1 match replaces a full
    // blossom solve on most shots. Measured ~1.9× on the reference host;
    // assert a conservative ≥1.3×.
    let sparse_full = find("decode_batch_32_sparse/d5_r10/mwpm");
    let sparse_tiered = find("decode_batch_32_sparse/d5_r10/tiered-mwpm");
    assert!(
        sparse_full / sparse_tiered >= 1.3,
        "committed baseline shows {:.2}× (full {sparse_full} ns vs tiered {sparse_tiered} ns)",
        sparse_full / sparse_tiered
    );

    // On the dense batch (6 faults per shot, nearly all tier-2) the ladder
    // is pure guard overhead; it must stay within 15% of the bare backend
    // so `ERASER_PREDECODE=on` is safe to leave as the default.
    let dense_full = find("decode_batch_32/d5_r10/mwpm");
    let dense_tiered = find("decode_batch_32/d5_r10/tiered-mwpm");
    assert!(
        dense_tiered / dense_full <= 1.15,
        "committed baseline shows {:.1}% tier-guard overhead on dense work \
         (full {dense_full} ns vs tiered {dense_tiered} ns)",
        (dense_tiered / dense_full - 1.0) * 100.0
    );

    // Same bound on the streaming path: the dense d=7 long-memory shot
    // falls through to tier 2 at nearly every window position.
    let win_full = find("decode_window_shot/d7_r110/windowed_mwpm");
    let win_tiered = find("decode_window_shot/d7_r110/windowed_tiered_mwpm");
    assert!(
        win_tiered / win_full <= 1.15,
        "committed baseline shows {:.1}% tier-guard overhead on the windowed path \
         (full {win_full} ns vs tiered {win_tiered} ns)",
        (win_tiered / win_full - 1.0) * 100.0
    );
}

#[test]
fn bench_serve_baseline_records_the_artifact_cache_win() {
    // `eraser-serve loadgen --json` writes this one (see crates/serve); the
    // shape differs from the harness files, so it gets its own validator.
    let doc = read_baseline("BENCH_serve.json");
    let serve = doc
        .get("serve")
        .unwrap_or_else(|| panic!("BENCH_serve.json: missing `serve` object"));
    let get = |key: &str| {
        serve
            .get(key)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("BENCH_serve.json: missing numeric `{key}`"))
    };

    // The committed baseline must document the tentpole claim: a warm
    // server answers the d=7 reference job at least 2× faster than a cold
    // one, because the artifact cache absorbs the DEM + APSP builds.
    let speedup = get("warm_speedup");
    assert!(
        speedup >= 2.0,
        "committed baseline shows only {speedup:.2}× warm-over-cold"
    );
    let cold = get("cold_job_micros");
    let warm = get("warm_job_micros");
    assert!(
        cold > warm && warm > 0.0,
        "cold {cold} µs vs warm {warm} µs"
    );

    // Sanity on the throughput phase.
    assert!(get("jobs_per_sec") > 0.0);
    assert!(get("p99_job_micros") >= get("p50_job_micros"));
    let hit_rate = get("cache_hit_rate");
    assert!(
        hit_rate > 0.0 && hit_rate <= 1.0,
        "steady-state hit rate {hit_rate} should be in (0, 1]"
    );
    assert_eq!(
        serve.get("quick").and_then(|v| v.as_bool()),
        Some(false),
        "baselines must come from a full (non --quick) loadgen run"
    );
}
