//! Committed benchmark baselines must stay well-formed: CI's bench smoke
//! step runs the harnesses for one quick iteration and then relies on
//! these checks to guarantee `results/BENCH_*.json` parse (the harness
//! emits the JSON by hand, so a formatting regression would otherwise
//! surface only when someone's tooling chokes on a baseline).

use std::path::PathBuf;

/// Minimal validator for the harness's JSON shape:
/// `{"benches": [{"name": "...", "ns_per_iter": 123.4}, ...]}`.
/// Returns the parsed (name, ns) pairs.
fn parse_baseline(file: &str) -> Vec<(String, f64)> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("baseline {} must be committed: {e}", path.display()));
    assert!(text.contains("\"benches\""), "{file}: missing benches key");
    let mut entries = Vec::new();
    for line in text.lines() {
        let Some(name_start) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[name_start + 9..];
        let name = rest[..rest.find('"').expect("unterminated name")].to_string();
        let ns_key = "\"ns_per_iter\": ";
        let ns_start = line.find(ns_key).expect("entry without ns_per_iter") + ns_key.len();
        let ns_text: String = line[ns_start..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        let ns: f64 = ns_text.parse().unwrap_or_else(|e| {
            panic!("{file}: ns_per_iter of `{name}` must parse: {e}");
        });
        assert!(ns.is_finite() && ns > 0.0, "{file}: bad timing for {name}");
        entries.push((name, ns));
    }
    assert!(!entries.is_empty(), "{file}: no bench entries");
    entries
}

#[test]
fn bench_sim_baseline_parses_and_records_the_stripe_speedup() {
    let entries = parse_baseline("BENCH_sim.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_sim.json must record `{name}`"))
            .1
    };
    let scalar = find("memory_run_512shots/d7/scalar");
    let striped = find("memory_run_512shots/d7/striped64");
    // The committed baseline must document the word-parallel win: ≥5×
    // shots/sec on the d=7 memory benchmark.
    assert!(
        scalar / striped >= 5.0,
        "committed baseline shows {:.2}× (scalar {scalar} ns vs striped {striped} ns)",
        scalar / striped
    );
}

#[test]
fn bench_decoders_baseline_parses() {
    let entries = parse_baseline("BENCH_decoders.json");
    assert!(entries.iter().any(|(n, _)| n.contains("decode_batch")));
}

#[test]
fn bench_decoders_baseline_records_the_windowed_speedup() {
    let entries = parse_baseline("BENCH_decoders.json");
    let find = |name: &str| {
        entries
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("BENCH_decoders.json must record `{name}`"))
            .1
    };
    let mono = find("decode_window_shot/d7_r110/monolithic_mwpm");
    let windowed = find("decode_window_shot/d7_r110/windowed_mwpm");
    // Both benches decode the same d=7, 110-round shot, so the per-shot
    // ratio *is* the ns/round ratio. The committed baseline must document
    // the windowed win: ≥3× on the paper's long-memory workload (blossom's
    // O(k³) is paid per window-sized defect set, not per shot-sized one).
    assert!(
        mono / windowed >= 3.0,
        "committed baseline shows {:.2}× (monolithic {mono} ns vs windowed {windowed} ns)",
        mono / windowed
    );
}
