//! The paper's analytical leakage models (§3.1 and §4.1.1).
//!
//! These closed forms motivate ERASER: Eq. (2) being ≈3× Eq. (1) is the
//! evidence that LRCs *facilitate* leakage transport, and Eq. (3) is the
//! insight that almost all leakage becomes visible within two rounds.

/// Default CNOT leakage-error probability used in §3.1 (`0.1 p` at
/// `p = 10⁻³`).
pub const P_LEAK_DEFAULT: f64 = 1e-4;

/// Default CNOT leakage-transport probability (§3.1, Table 1).
pub const P_TRANSPORT_DEFAULT: f64 = 0.1;

/// Eq. (1): probability that a data qubit ends a round leaked, given its
/// parity qubit started the round leaked (no LRC).
///
/// The data qubit can leak through (a) the transport term of its CNOT with
/// the leaked parity qubit, or (b) an operation-induced leakage error in any
/// of its four dance CNOTs.
///
/// # Example
///
/// ```
/// use eraser_core::analysis::{p_data_leak_given_parity_leak, P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT};
///
/// let p = p_data_leak_given_parity_leak(P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT);
/// assert!((p - 0.10).abs() < 0.01, "paper estimates ≈10%");
/// ```
pub fn p_data_leak_given_parity_leak(p_leak: f64, p_transport: f64) -> f64 {
    let op_term: f64 = (1..=4).map(|k| (1.0 - p_leak).powi(k - 1) * p_leak).sum();
    p_transport + op_term
}

/// Eq. (2): probability that the parity qubit ends a round leaked, given its
/// LRC partner data qubit started the round leaked.
///
/// Under an LRC the parity qubit participates in nine CNOTs (four dance +
/// five SWAP CNOTs), four of which interact with the still-leaked data qubit
/// before its reset and can transport leakage.
///
/// # Example
///
/// ```
/// use eraser_core::analysis::{p_parity_leak_given_data_leak, P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT};
///
/// let p = p_parity_leak_given_data_leak(P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT);
/// assert!((p - 0.34).abs() < 0.01, "paper estimates ≈34%");
/// ```
pub fn p_parity_leak_given_data_leak(p_leak: f64, p_transport: f64) -> f64 {
    let op_term: f64 = (1..=9).map(|k| (1.0 - p_leak).powi(k - 1) * p_leak).sum();
    let transport_term: f64 = (1..=4)
        .map(|k| (1.0 - p_transport).powi(k - 1) * p_transport)
        .sum();
    op_term + transport_term
}

/// Eq. (3): probability that a leaked data qubit stays *invisible* to
/// syndrome extraction for exactly `rounds` rounds.
///
/// A leaked data qubit randomizes each of its (up to four) neighbouring
/// parity measurements with probability ½, so it escapes notice in one round
/// with probability (½)⁴ = 1/16.
///
/// # Example
///
/// ```
/// use eraser_core::analysis::p_invisible;
///
/// // Table 2 of the paper.
/// assert!((p_invisible(0) - 0.938).abs() < 0.001);
/// assert!((p_invisible(1) - 0.0590).abs() < 0.001);
/// assert!((p_invisible(2) - 0.0036).abs() < 0.0002);
/// ```
pub fn p_invisible(rounds: u32) -> f64 {
    (15.0 / 16.0) * (1.0f64 / 16.0).powi(rounds as i32)
}

/// The ratio Eq.(2)/Eq.(1) at the paper's constants — the "LRCs facilitate
/// leakage transport" headline factor (≈3×, §3.1.3).
pub fn transport_amplification_ratio() -> f64 {
    p_parity_leak_given_data_leak(P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT)
        / p_data_leak_given_parity_leak(P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT)
}

/// First-order birth–death prediction of the steady-state **data-qubit**
/// leakage population ratio under Always-LRC scheduling.
///
/// Balance argument: a data qubit leaks at rate
/// `λ = p_leak · (1 + c̄)` per round (one environment-induced chance at round
/// start plus `c̄` CNOT-induced chances, where `c̄ ≈ 4` dance CNOTs plus the
/// amortized `5/2` LRC CNOTs), stays leaked for `T̄` rounds on average until
/// its next LRC (`T̄ ≈ 1.5` when every qubit is swapped every other round),
/// and each LRC on a leaked qubit re-seeds the lattice through the parity
/// qubit with probability Eq. (2) — a multiplicative factor `1 + P(L_p|L_d)`.
///
/// The Monte-Carlo LPR (Fig 5) equilibrates near this value; the paper's
/// curves are still rising at round 70 toward a higher level, a
/// leakage-model difference documented in EXPERIMENTS.md. The test-suite
/// checks simulation-vs-model agreement within a factor of two.
pub fn predicted_always_lrc_data_lpr(p: f64, leak_fraction: f64, p_transport: f64) -> f64 {
    let p_leak = leak_fraction * p;
    let cnots_per_round = 4.0 + 5.0 / 2.0;
    let injection = p_leak * (1.0 + cnots_per_round);
    let mean_residence = 1.5;
    let reseed = 1.0 + p_parity_leak_given_data_leak(p_leak, p_transport);
    injection * mean_residence * reseed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_matches_paper_estimate() {
        let p = p_data_leak_given_parity_leak(P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT);
        assert!((p - 0.1004).abs() < 1e-3, "got {p}");
    }

    #[test]
    fn equation_2_matches_paper_estimate() {
        let p = p_parity_leak_given_data_leak(P_LEAK_DEFAULT, P_TRANSPORT_DEFAULT);
        assert!((p - 0.3448).abs() < 1e-2, "got {p}");
    }

    #[test]
    fn transport_amplification_is_about_three() {
        let r = transport_amplification_ratio();
        assert!((2.9..3.9).contains(&r), "got {r}");
    }

    #[test]
    fn invisibility_table_2() {
        // Paper Table 2: 93.8%, 5.90%, 0.36%, 0.02%.
        assert!((p_invisible(0) * 100.0 - 93.8).abs() < 0.1);
        assert!((p_invisible(1) * 100.0 - 5.90).abs() < 0.05);
        assert!((p_invisible(2) * 100.0 - 0.36).abs() < 0.02);
        assert!((p_invisible(3) * 100.0 - 0.02).abs() < 0.01);
    }

    #[test]
    fn invisibility_probabilities_sum_to_one() {
        let total: f64 = (0..40).map(p_invisible).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_than_99_percent_visible_within_two_rounds() {
        let within_two: f64 = (0..=1).map(p_invisible).sum();
        assert!(within_two > 0.99, "ERASER insight #1");
    }

    #[test]
    fn equilibrium_model_matches_simulation_within_2x() {
        use crate::policy::AlwaysLrcPolicy;
        use crate::runtime::{MemoryRunner, RunConfig};
        use qec_core::NoiseParams;

        let noise = NoiseParams::standard(1e-3);
        let runner = MemoryRunner::new(5, noise, 40);
        let cfg = RunConfig {
            shots: 300,
            seed: 8,
            decode: false,
            ..RunConfig::default()
        };
        let result = runner.run(&|c| Box::new(AlwaysLrcPolicy::new(c)), &cfg);
        // Late-round (equilibrated) data LPR.
        let tail: f64 = result.lpr_data[30..].iter().sum::<f64>() / 10.0;
        let model = predicted_always_lrc_data_lpr(1e-3, 0.1, 0.1);
        let ratio = tail / model;
        assert!(
            (0.5..2.0).contains(&ratio),
            "sim {tail:.2e} vs model {model:.2e} (ratio {ratio:.2})"
        );
    }
}
