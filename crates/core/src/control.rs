//! Online adaptive leakage control (the paper's titular "adaptive" claim,
//! §6 discussion): a per-shot feedback controller that estimates the live
//! leakage rate from signals the policies already see — syndrome detection
//! events and ERASER+M's |L⟩ readout labels — and retunes the LRC density
//! mid-run.
//!
//! The subsystem is three small layers:
//!
//! * [`LeakageEstimator`] — turns per-round [`ControlSignals`] into a
//!   leakage-rate estimate. [`EwmaEstimator`] is the reference
//!   implementation: an exponentially-weighted moving average kept in Q16
//!   fixed point (65536 = rate 1.0) so every statistic the runner merges
//!   stays integer-valued and bit-identical across thread counts and
//!   stripe widths.
//! * [`ControlLaw`] — maps the estimate to a [`ControlMode`].
//!   [`EwmaThresholdLaw`] is a hysteresis escalator (quiet steady state →
//!   ERASER+M during detected storms); [`FixedBudgetLaw`] additionally
//!   spends a per-shot LRC quota where the estimator says leakage lives.
//! * [`AdaptivePolicy`] — an [`LrcPolicy`] that runs a cheap base policy
//!   in `Base` mode and a full ERASER+M instance in `Escalated` mode,
//!   switching per round on the law's decision. In the 64-lane striped
//!   runtime each lane carries its own controller; decisions surface as
//!   per-lane masks over the static `SlotTable` schedule, so the
//!   bit-packed path never leaves its masked-op IR.
//!
//! [`LeakageProfile`] generalizes the leakage-storm test scenario into a
//! first-class noise schedule (stationary, bursts, ramps) injected by the
//! runner, giving the controller a time-varying workload to adapt to.

use crate::policy::{LeakageDetections, LrcPolicy, RoundContext};
use crate::runtime::EnvOverrideError;
use surface_code::{LrcAssignment, RotatedCode};

/// One unit in the controller's Q16 fixed-point rate representation.
pub const Q16_ONE: u32 = 1 << 16;

// ---------------------------------------------------------------------------
// Leakage profiles (time-varying injected leakage)
// ---------------------------------------------------------------------------

/// A deterministic schedule of *extra* per-round leakage injected on every
/// data qubit, on top of whatever the noise model already produces. This is
/// the `leakage_storm_recovery` scenario promoted to a first-class knob:
/// the runner applies `LeakInject` with the profile's rate at the top of
/// each round, identically in the scalar and striped paths.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum LeakageProfile {
    /// No injected leakage beyond the noise model (the default).
    #[default]
    Stationary,
    /// Leakage storms: starting at round `start`, each data qubit leaks
    /// with probability `rate` per round for `len` consecutive rounds,
    /// repeating every `period` rounds (`period == 0` = a single burst).
    Burst {
        /// First storm round.
        start: usize,
        /// Storm length in rounds.
        len: usize,
        /// Storm repetition period (0 = one-shot).
        period: usize,
        /// Per-qubit per-round leak probability during a storm.
        rate: f64,
    },
    /// A linear ramp: zero before `start`, rising to `peak` over `len`
    /// rounds, then holding at `peak`.
    Ramp {
        /// First ramping round.
        start: usize,
        /// Rounds taken to reach the peak.
        len: usize,
        /// Final per-qubit per-round leak probability.
        peak: f64,
    },
}

impl LeakageProfile {
    /// The extra per-qubit leak probability injected at round `round`.
    pub fn extra_leak_p(&self, round: usize) -> f64 {
        match *self {
            LeakageProfile::Stationary => 0.0,
            LeakageProfile::Burst {
                start,
                len,
                period,
                rate,
            } => {
                if round < start {
                    return 0.0;
                }
                let phase = if period == 0 {
                    round - start
                } else {
                    (round - start) % period
                };
                if phase < len {
                    rate
                } else {
                    0.0
                }
            }
            LeakageProfile::Ramp { start, len, peak } => {
                if round < start {
                    0.0
                } else if round - start < len {
                    peak * (round - start + 1) as f64 / len as f64
                } else {
                    peak
                }
            }
        }
    }

    /// True when the profile never injects anything.
    pub fn is_stationary(&self) -> bool {
        *self == LeakageProfile::Stationary
    }

    /// Validates the profile's knobs.
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            LeakageProfile::Stationary => Ok(()),
            LeakageProfile::Burst {
                len, period, rate, ..
            } => {
                if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                    Err("burst rate must be a probability in [0, 1]")
                } else if len == 0 {
                    Err("burst length must be at least one round")
                } else if period != 0 && period < len {
                    Err("burst period must cover the burst length")
                } else {
                    Ok(())
                }
            }
            LeakageProfile::Ramp { len, peak, .. } => {
                if !(peak.is_finite() && (0.0..=1.0).contains(&peak)) {
                    Err("ramp peak must be a probability in [0, 1]")
                } else if len == 0 {
                    Err("ramp length must be at least one round")
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Parses a profile spec: `stationary`,
    /// `burst:start=S,len=L,period=P,rate=R` (period optional), or
    /// `ramp:start=S,len=L,peak=R`. Used by the serve protocol.
    pub fn parse_spec(raw: &str) -> Result<LeakageProfile, &'static str> {
        let raw = raw.trim();
        let (head, tail) = match raw.split_once(':') {
            Some((h, t)) => (h.trim(), Some(t)),
            None => (raw, None),
        };
        let profile = match head {
            "stationary" => {
                if tail.is_some() {
                    return Err("stationary takes no knobs");
                }
                LeakageProfile::Stationary
            }
            "burst" => {
                let mut start = 0usize;
                let mut len = 0usize;
                let mut period = 0usize;
                let mut rate = f64::NAN;
                for (key, value) in parse_knobs(tail.unwrap_or(""))? {
                    match key {
                        "start" => start = parse_usize(value)?,
                        "len" => len = parse_usize(value)?,
                        "period" => period = parse_usize(value)?,
                        "rate" => rate = parse_f64(value)?,
                        _ => return Err("unknown burst knob (expected start/len/period/rate)"),
                    }
                }
                LeakageProfile::Burst {
                    start,
                    len,
                    period,
                    rate,
                }
            }
            "ramp" => {
                let mut start = 0usize;
                let mut len = 0usize;
                let mut peak = f64::NAN;
                for (key, value) in parse_knobs(tail.unwrap_or(""))? {
                    match key {
                        "start" => start = parse_usize(value)?,
                        "len" => len = parse_usize(value)?,
                        "peak" => peak = parse_f64(value)?,
                        _ => return Err("unknown ramp knob (expected start/len/peak)"),
                    }
                }
                LeakageProfile::Ramp { start, len, peak }
            }
            _ => return Err("unknown profile (expected \"stationary\", \"burst\", or \"ramp\")"),
        };
        profile.validate()?;
        Ok(profile)
    }
}

// ---------------------------------------------------------------------------
// Estimators
// ---------------------------------------------------------------------------

/// The per-round observables a controller can see without any oracle
/// access: syndrome detection-event counts and (under multi-level readout)
/// the number of parity readouts labeled |L⟩.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlSignals {
    /// Detection events fired this round.
    pub fired: u32,
    /// Parity-qubit readouts labeled |L⟩ this round (ERASER+M only;
    /// zero under two-level readout).
    pub leaked_labels: u32,
    /// Total stabilizer readouts this round (the normalizer).
    pub num_stabs: u32,
}

impl ControlSignals {
    /// Weight of one |L⟩ label relative to one detection event in
    /// [`ControlSignals::rate_q16`]. A label is *direct* evidence of
    /// leakage (the multi-level discriminator saw the |L⟩ state itself),
    /// where an event is circumstantial — ordinary Pauli noise fires
    /// checks all the time. The high weight lets a threshold sit above
    /// the multi-event Pauli noise floor yet still trip on a single
    /// labelled readout, which matters at small distances where one
    /// stabilizer is a coarse fraction of the code.
    pub const LABEL_WEIGHT: u32 = 4;

    /// The round's raw leakage-activity rate in Q16 (|L⟩ labels count
    /// [`ControlSignals::LABEL_WEIGHT`]×: direct evidence rather than a
    /// parity side effect).
    pub fn rate_q16(&self) -> u32 {
        if self.num_stabs == 0 {
            return 0;
        }
        let weighted =
            u64::from(self.fired) + u64::from(Self::LABEL_WEIGHT) * u64::from(self.leaked_labels);
        ((weighted * u64::from(Q16_ONE)) / u64::from(self.num_stabs)).min(u64::from(Q16_ONE)) as u32
    }
}

/// Online estimator of the instantaneous leakage rate.
pub trait LeakageEstimator {
    /// Folds one round of signals into the estimate.
    fn observe(&mut self, signals: &ControlSignals);
    /// Current estimate in Q16 fixed point (65536 = rate 1.0).
    fn estimate_q16(&self) -> u32;
    /// Resets the estimator for a fresh shot.
    fn reset(&mut self);
}

/// Exponentially-weighted moving average with weight `2^-shift`, kept in
/// integer Q16 so merged telemetry is exact: `state += (input - state) >> shift`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EwmaEstimator {
    state_q16: u32,
    shift: u32,
}

impl EwmaEstimator {
    /// Creates an EWMA with smoothing weight `2^-shift` (shift 0 tracks
    /// the raw per-round rate; larger shifts smooth harder).
    pub fn new(shift: u32) -> EwmaEstimator {
        EwmaEstimator {
            state_q16: 0,
            shift: shift.min(15),
        }
    }
}

impl LeakageEstimator for EwmaEstimator {
    fn observe(&mut self, signals: &ControlSignals) {
        let input = i64::from(signals.rate_q16());
        let state = i64::from(self.state_q16);
        let next = if self.shift == 0 {
            input
        } else {
            state + ((input - state) >> self.shift)
        };
        self.state_q16 = next.clamp(0, i64::from(Q16_ONE)) as u32;
    }

    fn estimate_q16(&self) -> u32 {
        self.state_q16
    }

    fn reset(&mut self) {
        self.state_q16 = 0;
    }
}

// ---------------------------------------------------------------------------
// Control laws
// ---------------------------------------------------------------------------

/// The controller's operating point for a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// Cheap steady state (the configured base policy).
    Base,
    /// Full ERASER+M suppression during a detected storm.
    Escalated,
}

/// Maps the estimator's output (and the shot's LRC spend so far) to an
/// operating mode.
pub trait ControlLaw {
    /// Decides the mode for the coming round.
    fn decide(&mut self, estimate_q16: u32, spent_lrcs: u64) -> ControlMode;
    /// Current mode without advancing the law.
    fn mode(&self) -> ControlMode;
    /// Resets the law for a fresh shot.
    fn reset(&mut self);
}

/// Threshold escalator with hysteresis: escalate when the estimate crosses
/// `up`, de-escalate only when it falls below `down < up`, and never switch
/// before `min_dwell` rounds have been spent in the current mode — so
/// boundary noise cannot make the controller flap.
#[derive(Debug, Clone, Copy)]
pub struct EwmaThresholdLaw {
    up_q16: u32,
    down_q16: u32,
    min_dwell: u32,
    dwell: u32,
    mode: ControlMode,
}

impl EwmaThresholdLaw {
    /// Creates the law from Q16 thresholds (`down <= up`).
    pub fn new(up_q16: u32, down_q16: u32, min_dwell: u32) -> EwmaThresholdLaw {
        EwmaThresholdLaw {
            up_q16,
            down_q16: down_q16.min(up_q16),
            min_dwell,
            // A fresh shot is free to escalate immediately.
            dwell: min_dwell,
            mode: ControlMode::Base,
        }
    }
}

impl ControlLaw for EwmaThresholdLaw {
    fn decide(&mut self, estimate_q16: u32, _spent_lrcs: u64) -> ControlMode {
        let can_switch = self.dwell >= self.min_dwell;
        let next = match self.mode {
            ControlMode::Base if can_switch && estimate_q16 >= self.up_q16 => {
                ControlMode::Escalated
            }
            ControlMode::Escalated if can_switch && estimate_q16 <= self.down_q16 => {
                ControlMode::Base
            }
            mode => mode,
        };
        if next != self.mode {
            self.mode = next;
            self.dwell = 0;
        } else {
            self.dwell = self.dwell.saturating_add(1);
        }
        self.mode
    }

    fn mode(&self) -> ControlMode {
        self.mode
    }

    fn reset(&mut self) {
        self.mode = ControlMode::Base;
        self.dwell = self.min_dwell;
    }
}

/// Budgeted escalator: same hysteresis thresholds, but escalation stops for
/// the rest of the shot once `quota` LRCs have been spent — the controller
/// concentrates a fixed budget where the estimator says leakage lives.
#[derive(Debug, Clone, Copy)]
pub struct FixedBudgetLaw {
    inner: EwmaThresholdLaw,
    quota: u64,
}

impl FixedBudgetLaw {
    /// Creates the law with a per-shot LRC `quota`.
    pub fn new(up_q16: u32, down_q16: u32, min_dwell: u32, quota: u64) -> FixedBudgetLaw {
        FixedBudgetLaw {
            inner: EwmaThresholdLaw::new(up_q16, down_q16, min_dwell),
            quota,
        }
    }
}

impl ControlLaw for FixedBudgetLaw {
    fn decide(&mut self, estimate_q16: u32, spent_lrcs: u64) -> ControlMode {
        if spent_lrcs >= self.quota {
            // Quota exhausted: force base mode (the dwell guard does not
            // apply — the budget is a hard cap).
            self.inner.mode = ControlMode::Base;
            self.inner.dwell = self.inner.dwell.saturating_add(1);
            return ControlMode::Base;
        }
        self.inner.decide(estimate_q16, spent_lrcs)
    }

    fn mode(&self) -> ControlMode {
        self.inner.mode()
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Which [`ControlLaw`] the adaptive policy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlLawKind {
    /// [`EwmaThresholdLaw`].
    Ewma,
    /// [`FixedBudgetLaw`].
    Budget,
}

/// The steady-state policy run while the controller sees no storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlBase {
    /// No LRCs at all in steady state (maximum savings).
    NoLrc,
    /// Two-level ERASER in steady state (escalation only upgrades the
    /// readout to multi-level).
    Eraser,
}

/// Validated knobs for [`AdaptivePolicy`]. Constructed via
/// [`ControllerConfig::ewma`] / [`ControllerConfig::budget`] and overridden
/// per run through `RunConfig::controller` or the `ERASER_CONTROL`
/// environment variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// The control law.
    pub law: ControlLawKind,
    /// The steady-state base policy.
    pub base: ControlBase,
    /// Escalation threshold on the estimated leakage-activity rate.
    pub up: f64,
    /// De-escalation threshold (`down <= up`; the hysteresis band).
    pub down: f64,
    /// EWMA smoothing weight exponent (weight `2^-shift`).
    pub ewma_shift: u32,
    /// Minimum rounds in a mode before the law may switch again.
    pub min_dwell: u32,
    /// Per-shot LRC quota (budget law only).
    pub budget: u64,
}

impl ControllerConfig {
    /// Default EWMA-threshold escalator: no-LRC steady state, ERASER+M
    /// during storms. Shift 0 (raw tracking) makes the law escalate in the
    /// *same* round the first |L⟩ labels appear — the smoothed variants
    /// trade one round of reaction lag per storm for noise immunity, and
    /// with double-weighted labels plus the dwell-time hysteresis the raw
    /// signal is already stable enough at the default thresholds.
    pub fn ewma() -> ControllerConfig {
        ControllerConfig {
            law: ControlLawKind::Ewma,
            base: ControlBase::NoLrc,
            up: 0.12,
            down: 0.04,
            ewma_shift: 0,
            min_dwell: 2,
            budget: 0,
        }
    }

    /// Default fixed-budget scheduler: as [`ControllerConfig::ewma`] but
    /// with a per-shot quota of 40 LRCs.
    pub fn budget() -> ControllerConfig {
        ControllerConfig {
            law: ControlLawKind::Budget,
            budget: 40,
            ..ControllerConfig::ewma()
        }
    }

    /// The policy name the config resolves to.
    pub fn law_name(&self) -> &'static str {
        match self.law {
            ControlLawKind::Ewma => "adaptive-ewma",
            ControlLawKind::Budget => "adaptive-budget",
        }
    }

    /// Validates threshold ranges and law-specific knobs.
    pub fn validate(&self) -> Result<(), &'static str> {
        let in_range = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
        if !in_range(self.up) || !in_range(self.down) || self.down > self.up {
            return Err("thresholds must satisfy 0 <= down <= up <= 1");
        }
        if self.ewma_shift > 15 {
            return Err("ewma shift must be at most 15");
        }
        if self.law == ControlLawKind::Budget && self.budget == 0 {
            return Err("budget law needs a positive quota");
        }
        Ok(())
    }

    /// Parses a controller spec: `ewma` or `budget`, optionally followed by
    /// `:key=value,...` with keys `up`, `down`, `shift`, `dwell`, `quota`,
    /// `base` (`no-lrc` | `eraser`). Shared by `ERASER_CONTROL` and the
    /// serve protocol.
    pub fn parse_spec(raw: &str) -> Result<ControllerConfig, &'static str> {
        let raw = raw.trim();
        let (head, tail) = match raw.split_once(':') {
            Some((h, t)) => (h.trim(), t),
            None => (raw, ""),
        };
        let mut config = match head {
            "ewma" => ControllerConfig::ewma(),
            "budget" => ControllerConfig::budget(),
            _ => return Err("unknown control law (expected \"ewma\" or \"budget\")"),
        };
        for (key, value) in parse_knobs(tail)? {
            match key {
                "up" => config.up = parse_f64(value)?,
                "down" => config.down = parse_f64(value)?,
                "shift" => config.ewma_shift = parse_usize(value)? as u32,
                "dwell" => config.min_dwell = parse_usize(value)? as u32,
                "quota" => config.budget = parse_usize(value)? as u64,
                "base" => {
                    config.base = match value {
                        "no-lrc" | "nolrc" | "none" => ControlBase::NoLrc,
                        "eraser" => ControlBase::Eraser,
                        _ => return Err("unknown base policy (expected \"no-lrc\" or \"eraser\")"),
                    }
                }
                _ => return Err("unknown control knob (expected up/down/shift/dwell/quota/base)"),
            }
        }
        config.validate()?;
        Ok(config)
    }

    fn up_q16(&self) -> u32 {
        (self.up * f64::from(Q16_ONE)) as u32
    }

    fn down_q16(&self) -> u32 {
        (self.down * f64::from(Q16_ONE)) as u32
    }
}

/// `key=value,...` knob splitter shared by the spec parsers.
fn parse_knobs(tail: &str) -> Result<Vec<(&str, &str)>, &'static str> {
    let mut knobs = Vec::new();
    for part in tail.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or("knobs must be key=value pairs")?;
        knobs.push((key.trim(), value.trim()));
    }
    Ok(knobs)
}

fn parse_usize(value: &str) -> Result<usize, &'static str> {
    value.parse().map_err(|_| "knob value is not an integer")
}

fn parse_f64(value: &str) -> Result<f64, &'static str> {
    value.parse().map_err(|_| "knob value is not a number")
}

/// Strict `ERASER_CONTROL` parser: empty/whitespace means unset, anything
/// else must be a valid controller spec.
pub fn parse_control_env(raw: &str) -> Result<Option<ControllerConfig>, EnvOverrideError> {
    crate::runtime::parse_env_override("ERASER_CONTROL", raw, ControllerConfig::parse_spec)
}

// ---------------------------------------------------------------------------
// Controller telemetry
// ---------------------------------------------------------------------------

/// Per-run controller telemetry. Every field is integer-valued and merges
/// by addition or max, so cross-thread / cross-stripe aggregation is exact
/// regardless of merge order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Base → Escalated transitions.
    pub escalations: u64,
    /// Rounds spent escalated.
    pub rounds_escalated: u64,
    /// Rounds spent in the base mode.
    pub rounds_base: u64,
    /// Sum of the per-round Q16 estimates (for the mean).
    pub estimate_sum_q16: u64,
    /// Largest per-round Q16 estimate seen.
    pub estimate_peak_q16: u32,
}

impl ControllerStats {
    /// Total controlled rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds_escalated + self.rounds_base
    }

    /// Fraction of rounds spent escalated.
    pub fn escalated_fraction(&self) -> f64 {
        if self.rounds() == 0 {
            0.0
        } else {
            self.rounds_escalated as f64 / self.rounds() as f64
        }
    }

    /// Mean leakage-rate estimate over all controlled rounds.
    pub fn mean_estimate(&self) -> f64 {
        if self.rounds() == 0 {
            0.0
        } else {
            self.estimate_sum_q16 as f64 / (self.rounds() as f64 * f64::from(Q16_ONE))
        }
    }

    /// Peak leakage-rate estimate.
    pub fn peak_estimate(&self) -> f64 {
        f64::from(self.estimate_peak_q16) / f64::from(Q16_ONE)
    }

    /// True when any controller ran (an all-zero value means the run had
    /// no adaptive policy).
    pub fn is_active(&self) -> bool {
        self.rounds() > 0
    }

    /// Exact order-independent merge (sums and maxes).
    pub fn merge(&mut self, other: &ControllerStats) {
        self.escalations += other.escalations;
        self.rounds_escalated += other.rounds_escalated;
        self.rounds_base += other.rounds_base;
        self.estimate_sum_q16 += other.estimate_sum_q16;
        self.estimate_peak_q16 = self.estimate_peak_q16.max(other.estimate_peak_q16);
    }

    fn observe_round(&mut self, mode: ControlMode, estimate_q16: u32) {
        match mode {
            ControlMode::Base => self.rounds_base += 1,
            ControlMode::Escalated => self.rounds_escalated += 1,
        }
        self.estimate_sum_q16 += u64::from(estimate_q16);
        self.estimate_peak_q16 = self.estimate_peak_q16.max(estimate_q16);
    }
}

// ---------------------------------------------------------------------------
// The adaptive policy
// ---------------------------------------------------------------------------

enum LawState {
    Ewma(EwmaThresholdLaw),
    Budget(FixedBudgetLaw),
}

impl LawState {
    fn as_law(&mut self) -> &mut dyn ControlLaw {
        match self {
            LawState::Ewma(law) => law,
            LawState::Budget(law) => law,
        }
    }

    fn mode(&self) -> ControlMode {
        match self {
            LawState::Ewma(law) => law.mode(),
            LawState::Budget(law) => law.mode(),
        }
    }
}

/// Feedback-controlled LRC policy: a cheap base policy in steady state,
/// a full ERASER+M instance during detected leakage storms.
///
/// The policy always reports multi-level readout so the run-level
/// measurement discriminator (chosen once per run) is constant — the
/// estimator needs the |L⟩ labels even while the base policy idles.
pub struct AdaptivePolicy {
    base: Box<dyn LrcPolicy>,
    escalated: crate::policy::EraserPolicy,
    estimator: EwmaEstimator,
    law: LawState,
    spent_lrcs: u64,
    stats: ControllerStats,
    name: &'static str,
}

impl AdaptivePolicy {
    /// Builds the controller for a code. Panics on an invalid config (the
    /// facade validates first).
    pub fn new(code: &RotatedCode, config: ControllerConfig) -> AdaptivePolicy {
        config.validate().expect("invalid controller config");
        let base: Box<dyn LrcPolicy> = match config.base {
            ControlBase::NoLrc => Box::new(crate::policy::NoLrcPolicy::new()),
            ControlBase::Eraser => Box::new(crate::policy::EraserPolicy::new(code)),
        };
        let (up, down, dwell) = (config.up_q16(), config.down_q16(), config.min_dwell);
        let law = match config.law {
            ControlLawKind::Ewma => LawState::Ewma(EwmaThresholdLaw::new(up, down, dwell)),
            ControlLawKind::Budget => {
                LawState::Budget(FixedBudgetLaw::new(up, down, dwell, config.budget))
            }
        };
        AdaptivePolicy {
            base,
            escalated: crate::policy::EraserPolicy::with_multilevel(code),
            estimator: EwmaEstimator::new(config.ewma_shift),
            law,
            spent_lrcs: 0,
            stats: ControllerStats::default(),
            name: config.law_name(),
        }
    }

    /// The run-so-far telemetry (accumulates across shots; the runner
    /// harvests it once per worker / lane).
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }
}

impl LrcPolicy for AdaptivePolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn reset_shot(&mut self) {
        self.base.reset_shot();
        self.escalated.reset_shot();
        self.estimator.reset();
        self.law.as_law().reset();
        self.spent_lrcs = 0;
        // `stats` intentionally persists: it is run-level telemetry.
    }

    fn plan_round(&mut self, ctx: &RoundContext<'_>) -> Vec<LrcAssignment> {
        let fired = ctx.events.iter().filter(|&&e| e).count() as u32;
        let leaked = ctx.leaked_readouts.iter().filter(|&&l| l).count() as u32;
        self.estimator.observe(&ControlSignals {
            fired,
            leaked_labels: leaked,
            num_stabs: ctx.events.len() as u32,
        });
        let estimate = self.estimator.estimate_q16();
        let was = self.law.mode();
        let mode = self.law.as_law().decide(estimate, self.spent_lrcs);
        if mode != was {
            // The newly-activated policy starts a fresh speculation window.
            match mode {
                ControlMode::Escalated => {
                    self.stats.escalations += 1;
                    self.escalated.reset_shot();
                }
                ControlMode::Base => self.base.reset_shot(),
            }
        }
        self.stats.observe_round(mode, estimate);
        let plan = match mode {
            ControlMode::Base => self.base.plan_round(ctx),
            ControlMode::Escalated => self.escalated.plan_round(ctx),
        };
        self.spent_lrcs += plan.len() as u64;
        plan
    }

    fn uses_multilevel(&self) -> bool {
        true
    }

    fn leakage_detections(&self) -> Option<LeakageDetections<'_>> {
        match self.law.mode() {
            ControlMode::Base => self.base.leakage_detections(),
            ControlMode::Escalated => self.escalated.leakage_detections(),
        }
    }

    fn controller(&self) -> Option<&ControllerStats> {
        Some(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(fired: u32, leaked: u32) -> ControlSignals {
        ControlSignals {
            fired,
            leaked_labels: leaked,
            num_stabs: 16,
        }
    }

    #[test]
    fn profile_schedules() {
        let burst = LeakageProfile::Burst {
            start: 5,
            len: 2,
            period: 10,
            rate: 0.5,
        };
        let expect: Vec<(usize, f64)> = vec![
            (0, 0.0),
            (4, 0.0),
            (5, 0.5),
            (6, 0.5),
            (7, 0.0),
            (14, 0.0),
            (15, 0.5),
            (16, 0.5),
            (17, 0.0),
        ];
        for (round, p) in expect {
            assert_eq!(burst.extra_leak_p(round), p, "burst round {round}");
        }
        let one_shot = LeakageProfile::Burst {
            start: 3,
            len: 2,
            period: 0,
            rate: 0.25,
        };
        assert_eq!(one_shot.extra_leak_p(3), 0.25);
        assert_eq!(one_shot.extra_leak_p(4), 0.25);
        assert_eq!(one_shot.extra_leak_p(13), 0.0, "one-shot does not repeat");
        let ramp = LeakageProfile::Ramp {
            start: 2,
            len: 4,
            peak: 0.4,
        };
        assert_eq!(ramp.extra_leak_p(1), 0.0);
        assert!((ramp.extra_leak_p(2) - 0.1).abs() < 1e-12);
        assert!((ramp.extra_leak_p(5) - 0.4).abs() < 1e-12);
        assert!((ramp.extra_leak_p(50) - 0.4).abs() < 1e-12);
        assert_eq!(LeakageProfile::Stationary.extra_leak_p(7), 0.0);
    }

    #[test]
    fn profile_specs_parse_and_validate() {
        assert_eq!(
            LeakageProfile::parse_spec("stationary"),
            Ok(LeakageProfile::Stationary)
        );
        assert_eq!(
            LeakageProfile::parse_spec("burst:start=5,len=2,period=10,rate=0.02"),
            Ok(LeakageProfile::Burst {
                start: 5,
                len: 2,
                period: 10,
                rate: 0.02
            })
        );
        assert_eq!(
            LeakageProfile::parse_spec(" ramp:start=1, len=3 ,peak=0.1 "),
            Ok(LeakageProfile::Ramp {
                start: 1,
                len: 3,
                peak: 0.1
            })
        );
        for bad in [
            "storm",
            "burst:rate=2.0,len=1",
            "burst:len=0,rate=0.1",
            "burst:start=0,len=5,period=3,rate=0.1",
            "ramp:len=2,peak=nan",
            "ramp:peak=0.1,len=0",
            "burst:wat=1",
            "burst:rate",
            "stationary:x=1",
        ] {
            assert!(LeakageProfile::parse_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn ewma_estimator_tracks_and_smooths() {
        let mut e = EwmaEstimator::new(1);
        assert_eq!(e.estimate_q16(), 0);
        // A constant input converges to the input.
        for _ in 0..32 {
            e.observe(&signals(8, 0)); // rate 0.5
        }
        let half = Q16_ONE / 2;
        assert!(e.estimate_q16().abs_diff(half) <= 2, "{}", e.estimate_q16());
        // Silence decays back toward zero.
        for _ in 0..32 {
            e.observe(&signals(0, 0));
        }
        assert!(e.estimate_q16() <= 2, "{}", e.estimate_q16());
        // |L⟩ labels carry the direct-evidence weight.
        let one_fired = signals(1, 0).rate_q16();
        let one_label = signals(0, 1).rate_q16();
        assert_eq!(one_label, ControlSignals::LABEL_WEIGHT * one_fired);
        // The rate saturates at 1.0.
        assert_eq!(signals(16, 16).rate_q16(), Q16_ONE);
    }

    #[test]
    fn threshold_law_escalates_and_recovers() {
        let up = Q16_ONE / 8;
        let down = Q16_ONE / 32;
        let mut law = EwmaThresholdLaw::new(up, down, 0);
        assert_eq!(law.mode(), ControlMode::Base);
        assert_eq!(law.decide(up, 0), ControlMode::Escalated);
        // Inside the hysteresis band: stays escalated.
        assert_eq!(law.decide(down + 1, 0), ControlMode::Escalated);
        assert_eq!(law.decide(down, 0), ControlMode::Base);
        // Inside the band from below: stays base.
        assert_eq!(law.decide(up - 1, 0), ControlMode::Base);
    }

    /// The anti-flapping property: noise oscillating across the `up`
    /// boundary cannot toggle the mode faster than the dwell time.
    #[test]
    fn hysteresis_prevents_escalation_flapping() {
        let up = Q16_ONE / 8;
        let down = Q16_ONE / 32;
        let mut law = EwmaThresholdLaw::new(up, down, 3);
        let mut switches = 0u32;
        let mut last = law.mode();
        // Worst-case boundary noise: alternate just-above-up / just-below-down.
        for round in 0..60 {
            let estimate = if round % 2 == 0 {
                up + 1
            } else {
                down.saturating_sub(1)
            };
            let mode = law.decide(estimate, 0);
            if mode != last {
                switches += 1;
                last = mode;
            }
        }
        // With min_dwell = 3 a switch is possible at most every 4 rounds.
        assert!(switches <= 60 / 4 + 1, "flapped {switches} times");

        // And with estimates inside the hysteresis band, no switches at all.
        let mut law = EwmaThresholdLaw::new(up, down, 3);
        law.decide(up, 0); // escalate once
        for round in 0..40 {
            let estimate = if round % 2 == 0 { up - 1 } else { down + 1 };
            assert_eq!(law.decide(estimate, 0), ControlMode::Escalated);
        }
    }

    #[test]
    fn dwell_time_blocks_immediate_switchback() {
        let up = Q16_ONE / 8;
        let mut law = EwmaThresholdLaw::new(up, up / 4, 3);
        assert_eq!(law.decide(up, 0), ControlMode::Escalated);
        // Even a zero estimate cannot de-escalate during the dwell window.
        assert_eq!(law.decide(0, 0), ControlMode::Escalated);
        assert_eq!(law.decide(0, 0), ControlMode::Escalated);
        assert_eq!(law.decide(0, 0), ControlMode::Escalated);
        // Dwell satisfied: the switch goes through.
        assert_eq!(law.decide(0, 0), ControlMode::Base);
    }

    #[test]
    fn budget_law_stops_spending_at_quota() {
        let up = Q16_ONE / 8;
        let mut law = FixedBudgetLaw::new(up, up / 4, 0, 10);
        assert_eq!(law.decide(up, 0), ControlMode::Escalated);
        assert_eq!(law.decide(up, 9), ControlMode::Escalated);
        // Quota reached: base mode for the rest of the shot, regardless of
        // the estimate.
        assert_eq!(law.decide(Q16_ONE, 10), ControlMode::Base);
        assert_eq!(law.decide(Q16_ONE, 10), ControlMode::Base);
        law.reset();
        assert_eq!(
            law.decide(up, 0),
            ControlMode::Escalated,
            "reset restores the quota"
        );
    }

    #[test]
    fn control_specs_parse_and_validate() {
        assert_eq!(
            ControllerConfig::parse_spec("ewma"),
            Ok(ControllerConfig::ewma())
        );
        assert_eq!(
            ControllerConfig::parse_spec("budget"),
            Ok(ControllerConfig::budget())
        );
        let custom = ControllerConfig::parse_spec(
            "budget:up=0.2,down=0.05,shift=3,dwell=4,quota=99,base=eraser",
        )
        .expect("valid spec");
        assert_eq!(custom.law, ControlLawKind::Budget);
        assert_eq!(custom.base, ControlBase::Eraser);
        assert_eq!(custom.up, 0.2);
        assert_eq!(custom.down, 0.05);
        assert_eq!(custom.ewma_shift, 3);
        assert_eq!(custom.min_dwell, 4);
        assert_eq!(custom.budget, 99);
        for bad in [
            "pid",
            "ewma:up=0.01,down=0.5",
            "ewma:up=2.0",
            "ewma:down=-1",
            "ewma:shift=99",
            "budget:quota=0",
            "ewma:base=optimal",
            "ewma:wat=1",
            "ewma:up",
        ] {
            assert!(ControllerConfig::parse_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn controller_stats_merge_is_exact() {
        let mut a = ControllerStats {
            escalations: 2,
            rounds_escalated: 10,
            rounds_base: 30,
            estimate_sum_q16: 1000,
            estimate_peak_q16: 500,
        };
        let b = ControllerStats {
            escalations: 1,
            rounds_escalated: 5,
            rounds_base: 15,
            estimate_sum_q16: 400,
            estimate_peak_q16: 900,
        };
        a.merge(&b);
        assert_eq!(a.escalations, 3);
        assert_eq!(a.rounds(), 60);
        assert_eq!(a.estimate_sum_q16, 1400);
        assert_eq!(a.estimate_peak_q16, 900);
        assert!(a.is_active());
        assert!((a.escalated_fraction() - 0.25).abs() < 1e-12);
        assert!(!ControllerStats::default().is_active());
    }

    #[test]
    fn adaptive_policy_escalates_on_a_storm_and_recovers() {
        let code = RotatedCode::new(3);
        let mut config = ControllerConfig::ewma();
        config.min_dwell = 1;
        let mut policy = AdaptivePolicy::new(&code, config);
        assert!(policy.uses_multilevel());
        assert_eq!(policy.name(), "adaptive-ewma");
        policy.reset_shot();
        let num_stabs = code.num_stabs();
        let quiet_events = vec![false; num_stabs];
        let quiet_labels = vec![false; num_stabs];
        let oracle = vec![false; code.num_data()];
        // Quiet rounds: base (no-lrc) mode, no LRCs planned.
        for round in 0..4 {
            let plan = policy.plan_round(&RoundContext {
                round,
                events: &quiet_events,
                leaked_readouts: &quiet_labels,
                oracle_leaked_data: &oracle,
                last_lrcs: &[],
            });
            assert!(plan.is_empty(), "quiet round {round} planned LRCs");
        }
        assert_eq!(policy.stats().escalations, 0);
        // Storm rounds: every stabilizer fires and half read |L⟩.
        let storm_events = vec![true; num_stabs];
        let mut storm_labels = vec![false; num_stabs];
        for l in storm_labels.iter_mut().step_by(2) {
            *l = true;
        }
        let mut planned = 0usize;
        let mut last: Vec<LrcAssignment> = Vec::new();
        for round in 4..10 {
            let plan = policy.plan_round(&RoundContext {
                round,
                events: &storm_events,
                leaked_readouts: &storm_labels,
                oracle_leaked_data: &oracle,
                last_lrcs: &last,
            });
            planned += plan.len();
            last = plan;
        }
        assert_eq!(policy.stats().escalations, 1, "one escalation per storm");
        assert!(planned > 0, "escalated mode must schedule LRCs");
        assert!(policy.stats().rounds_escalated > 0);
        // Quiet again: the controller de-escalates.
        for round in 10..30 {
            let plan = policy.plan_round(&RoundContext {
                round,
                events: &quiet_events,
                leaked_readouts: &quiet_labels,
                oracle_leaked_data: &oracle,
                last_lrcs: &last,
            });
            last = plan;
        }
        assert!(
            policy.stats().rounds_base > policy.stats().rounds_escalated,
            "controller must return to base mode"
        );
        // Telemetry survives reset_shot (it is run-level).
        let before = *policy.stats();
        policy.reset_shot();
        assert_eq!(*policy.stats(), before);
        assert_eq!(policy.controller(), Some(&before));
    }
}
