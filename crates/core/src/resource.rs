//! Analytical FPGA resource and latency model (Table 3 substitute).
//!
//! The paper synthesizes the generated RTL with Vivado on a Kintex
//! UltraScale+ `xcku3p-ffvd900-3-e` and reports <1% LUT/FF utilization and a
//! worst-case latency of 5 ns. Vivado is unavailable here, so Table 3 is
//! reproduced with a structural counting model over the same design:
//!
//! * **FFs** — previous-syndrome register (S), PUTT (S), LTT (D), had-LRC
//!   register (D), registered grant outputs (valid + backup-select + routing,
//!   ≈3 per data qubit), and a small control block;
//! * **LUTs** — per data qubit: the ≥2-of-N comparator (≤2 six-input LUTs),
//!   LTT update logic, and the primary/backup allocation gates (≈7 total);
//!   per parity qubit: PUTT masking (≈2);
//! * **latency** — LUT levels of the speculation comparator plus the
//!   allocation chain (which synthesizes like a carry chain, giving a
//!   log-depth critical path after restructuring).
//!
//! The model is calibrated to reproduce Table 3's O(d²) scaling and absolute
//! order of magnitude; see EXPERIMENTS.md for paper-vs-model numbers.

use surface_code::RotatedCode;

/// An FPGA part with its LUT/FF capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaPart {
    /// Marketing name.
    pub name: &'static str,
    /// Available 6-input LUTs.
    pub luts: u64,
    /// Available flip-flops.
    pub ffs: u64,
}

/// The part used in the paper's Table 3: Kintex UltraScale+ KU3P
/// (`xcku3p-ffvd900-3-e`).
pub const XCKU3P: FpgaPart = FpgaPart {
    name: "xcku3p-ffvd900-3-e",
    luts: 162_720,
    ffs: 325_440,
};

/// Estimated resource usage of the ERASER block for one code distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Code distance.
    pub distance: usize,
    /// Estimated LUT count.
    pub luts: u64,
    /// Estimated flip-flop count.
    pub ffs: u64,
    /// LUT utilization (%) on the target part.
    pub lut_pct: f64,
    /// FF utilization (%) on the target part.
    pub ff_pct: f64,
    /// Estimated worst-case speculation+insertion latency in nanoseconds.
    pub latency_ns: f64,
}

/// Estimates the ERASER block's footprint on `part` for `code`.
///
/// # Example
///
/// ```
/// use eraser_core::resource::{estimate, XCKU3P};
/// use surface_code::RotatedCode;
///
/// let est = estimate(&RotatedCode::new(11), XCKU3P);
/// assert!(est.lut_pct < 1.0, "paper: <1% logic up to d=11");
/// assert!(est.latency_ns <= 5.0, "paper: 5 ns worst case");
/// ```
pub fn estimate(code: &RotatedCode, part: FpgaPart) -> ResourceEstimate {
    let s = code.num_stabs() as u64;
    let d2 = code.num_data() as u64;
    let ffs = 2 * s + 4 * d2 + 16;
    let luts = 7 * d2 + 2 * s;
    // Speculation: XOR + 2 LUT levels for the ≥2-of-4 comparator; the
    // allocation chain restructures to log depth.
    let levels = 3 + (d2 as f64).log2().ceil() as u64;
    let latency_ns = 0.38 * levels as f64 + 0.9;
    ResourceEstimate {
        distance: code.distance(),
        luts,
        ffs,
        lut_pct: 100.0 * luts as f64 / part.luts as f64,
        ff_pct: 100.0 * ffs as f64 / part.ffs as f64,
        latency_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 3 reference values (LUT%, FF%).
    const TABLE3: [(usize, f64, f64); 5] = [
        (3, 0.04, 0.02),
        (5, 0.12, 0.05),
        (7, 0.26, 0.10),
        (9, 0.42, 0.18),
        (11, 0.76, 0.26),
    ];

    #[test]
    fn utilization_stays_under_one_percent() {
        for (d, _, _) in TABLE3 {
            let est = estimate(&RotatedCode::new(d), XCKU3P);
            assert!(est.lut_pct < 1.0, "d={d}: {}", est.lut_pct);
            assert!(est.ff_pct < 1.0, "d={d}: {}", est.ff_pct);
        }
    }

    #[test]
    fn model_tracks_table3_within_2x() {
        for (d, lut_ref, ff_ref) in TABLE3 {
            let est = estimate(&RotatedCode::new(d), XCKU3P);
            let lut_ratio = est.lut_pct / lut_ref;
            let ff_ratio = est.ff_pct / ff_ref;
            assert!(
                (0.5..2.0).contains(&lut_ratio),
                "d={d}: LUT model {} vs paper {lut_ref}",
                est.lut_pct
            );
            assert!(
                (0.5..2.0).contains(&ff_ratio),
                "d={d}: FF model {} vs paper {ff_ref}",
                est.ff_pct
            );
        }
    }

    #[test]
    fn scaling_is_quadratic_in_distance() {
        let e3 = estimate(&RotatedCode::new(3), XCKU3P);
        let e11 = estimate(&RotatedCode::new(11), XCKU3P);
        let ratio = e11.luts as f64 / e3.luts as f64;
        // (121 data + 120 stabs) / (9 data + 8 stabs) ≈ 13.3.
        assert!((10.0..16.0).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn latency_within_papers_5ns() {
        for d in [3usize, 5, 7, 9, 11] {
            let est = estimate(&RotatedCode::new(d), XCKU3P);
            assert!(est.latency_ns <= 5.0, "d={d}: {} ns", est.latency_ns);
            assert!(est.latency_ns > 1.0);
        }
    }

    #[test]
    fn latency_grows_with_distance() {
        let e3 = estimate(&RotatedCode::new(3), XCKU3P);
        let e11 = estimate(&RotatedCode::new(11), XCKU3P);
        assert!(e11.latency_ns > e3.latency_ns);
    }
}
