//! Process-wide keyed artifact cache.
//!
//! Every sweep cell pays three expensive, *purely content-determined*
//! builds before the first shot runs: the detector error model + decoding
//! graph (inside [`MemoryRunner::new`]), the MWPM/greedy all-pairs
//! shortest-path table, and either the union-find capacity table or the
//! sliding-window [`WindowPlan`] shapes. Two cells that differ only in
//! policy — or two jobs from different `eraser-serve` clients — rebuild
//! identical artifacts from scratch.
//!
//! [`ArtifactCache`] generalizes the `Sweep` engine's old per-call runner
//! map into a shared, size-bounded LRU keyed by *content*: the
//! [`ExperimentKey`] (distance, rounds, basis, exact noise-parameter bits)
//! plus an [`ArtifactKind`] discriminant. Values are `Arc`-shared, so an
//! entry being evicted never invalidates an artifact a running job still
//! holds. All builds are deterministic functions of the key, which is what
//! makes sharing sound: a cache hit is bit-identical to a rebuild, so
//! cached and cold runs produce identical results.
//!
//! Concurrency: the map sits behind one `Mutex`, but the lock is *released
//! while building* a missing artifact. Two threads racing on the same cold
//! key may both build; the first insert wins and the loser adopts it. That
//! duplicated work is bounded by one build and keeps slow builds (APSP on
//! a d=11 long-memory graph takes tens of ms) from serializing unrelated
//! lookups.
//!
//! [`MemoryRunner::new`]: crate::runtime::MemoryRunner::new
//! [`WindowPlan`]: qec_decoder::WindowPlan

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use qec_core::{NoiseParams, TransportModel};
use qec_decoder::WindowBackend;
use surface_code::MemoryBasis;

/// Default capacity of the process-wide cache: generous for every sweep in
/// the repo (a d=11, R=121 APSP table is ~58 MB) while bounding a
/// long-running server that sees many tenants' grids.
const GLOBAL_CAPACITY_BYTES: usize = 256 << 20;

/// Content identity of a memory experiment: everything that determines the
/// circuit, detector error model, and decoding graph. Runs sharing a key
/// share every decode artifact bit-for-bit.
///
/// Noise parameters are keyed by their exact `f64` bit patterns — two
/// grids are "the same" only when their physics is, with no epsilon.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExperimentKey {
    /// Code distance.
    pub d: usize,
    /// Syndrome-extraction rounds per shot.
    pub rounds: usize,
    /// Memory basis being preserved.
    pub basis: MemoryBasis,
    /// Bit patterns of `(p, leak_fraction, seep_fraction, p_transport,
    /// multilevel_error_factor)`.
    pub noise_bits: [u64; 5],
    /// Transport model of the noise parameters.
    pub transport: TransportModel,
    /// Whether leakage physics is enabled at all.
    pub leakage_enabled: bool,
}

impl ExperimentKey {
    /// Builds the key for a distance-`d`, `rounds`-round memory experiment
    /// under `noise`.
    pub fn new(d: usize, rounds: usize, basis: MemoryBasis, noise: &NoiseParams) -> ExperimentKey {
        ExperimentKey {
            d,
            rounds,
            basis,
            noise_bits: [
                noise.p.to_bits(),
                noise.leak_fraction.to_bits(),
                noise.seep_fraction.to_bits(),
                noise.p_transport.to_bits(),
                noise.multilevel_error_factor.to_bits(),
            ],
            transport: noise.transport,
            leakage_enabled: noise.leakage_enabled,
        }
    }
}

/// Which artifact a cache entry holds. Together with [`ExperimentKey`]
/// this fully determines the artifact's content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A full [`MemoryRunner`](crate::runtime::MemoryRunner): DEM, decoding
    /// graph, round schedules, provenance buckets.
    Runner,
    /// The all-pairs shortest-path table over the monolithic decoding graph
    /// (shared by the MWPM and greedy decoders).
    Apsp,
    /// The union-find edge-capacity quantization of the monolithic graph.
    UfCapacities,
    /// The sparse-MWPM boundary index (per-node boundary distance, parity,
    /// and predecessor) over the monolithic decoding graph.
    SparseIndex,
    /// A sliding-window decode plan, additionally keyed by its resolved
    /// window geometry and per-window backend.
    WindowPlan {
        window: usize,
        stride: usize,
        backend: WindowBackend,
    },
    /// An intra-shot fusion partition over a window plan, keyed by the
    /// underlying window geometry plus the fusion thread count (the leaf
    /// partition is a pure function of `(positions, threads)`). The entry
    /// holds only the partition — the `WindowPlan` it wraps is priced by
    /// its own [`ArtifactKind::WindowPlan`] entry.
    FusionPlan {
        window: usize,
        stride: usize,
        backend: WindowBackend,
        threads: usize,
    },
}

/// Full cache key: experiment content identity × artifact kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub experiment: ExperimentKey,
    pub kind: ArtifactKind,
}

/// A point-in-time snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Approximate bytes held by live entries.
    pub bytes: usize,
}

struct Entry {
    value: Arc<dyn Any + Send + Sync>,
    bytes: usize,
    /// Logical timestamp of last use; smallest is evicted first.
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A keyed, size-bounded, `Arc`-sharing LRU cache over decode artifacts.
///
/// See the [module docs](self) for the design; the one non-obvious
/// guarantee is that eviction only drops the cache's *reference* — any
/// job still holding the `Arc` keeps its artifact alive and valid.
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ArtifactCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("stats", &stats)
            .finish()
    }
}

impl ArtifactCache {
    /// Creates a cache bounded to approximately `capacity_bytes` of
    /// artifact payload.
    pub fn new(capacity_bytes: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(Inner::default()),
            capacity_bytes,
        }
    }

    /// The process-wide cache every [`Sweep`](crate::Sweep) and
    /// [`Experiment`](crate::Experiment) run routes through by default.
    pub fn global() -> &'static ArtifactCache {
        static GLOBAL: OnceLock<ArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ArtifactCache::new(GLOBAL_CAPACITY_BYTES))
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Looks up `key`, building (and inserting) the artifact on a miss.
    ///
    /// `size` prices a freshly built artifact for the byte budget; `build`
    /// runs *outside* the cache lock. If two threads race on the same cold
    /// key, both build and the first insert wins (see module docs).
    pub fn get_or_build<T: Send + Sync + 'static>(
        &self,
        key: &CacheKey,
        size: impl FnOnce(&T) -> usize,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.map.get_mut(key) {
                // A kind/type mismatch would mean two artifact types share
                // a key — a programming error upstream; treat it as a miss
                // and overwrite below.
                if let Ok(value) = Arc::downcast::<T>(Arc::clone(&entry.value)) {
                    entry.stamp = clock;
                    inner.hits += 1;
                    return value;
                }
            }
            inner.misses += 1;
        }

        let built = Arc::new(build());
        let bytes = size(&built);

        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(entry) = inner.map.get_mut(key) {
            // Lost the build race: adopt the winner so every concurrent
            // caller shares one allocation.
            if let Ok(value) = Arc::downcast::<T>(Arc::clone(&entry.value)) {
                entry.stamp = clock;
                return value;
            }
        }
        let evicted = inner.map.insert(
            key.clone(),
            Entry {
                value: built.clone(),
                bytes,
                stamp: clock,
            },
        );
        inner.bytes += bytes;
        if let Some(old) = evicted {
            inner.bytes -= old.bytes;
        }
        // Evict least-recently-used entries until back under budget. The
        // just-inserted entry carries the freshest stamp, so it is only
        // dropped when it alone exceeds the whole budget — in which case
        // callers still hold the Arc and simply get no reuse.
        while inner.bytes > self.capacity_bytes && !inner.map.is_empty() {
            let key = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("map is non-empty");
            let entry = inner.map.remove(&key).expect("key just observed");
            inner.bytes -= entry.bytes;
            inner.evictions += 1;
        }
        built
    }

    /// Snapshot of the effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(d: usize, kind: ArtifactKind) -> CacheKey {
        CacheKey {
            experiment: ExperimentKey::new(d, 2 * d, MemoryBasis::Z, &NoiseParams::standard(1e-3)),
            kind,
        }
    }

    #[test]
    fn hit_returns_same_arc() {
        let cache = ArtifactCache::new(1 << 20);
        let a = cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 100, || vec![1u8, 2, 3]);
        let b = cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 100, || vec![9u8]);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 100);
    }

    #[test]
    fn distinct_kinds_do_not_collide() {
        let cache = ArtifactCache::new(1 << 20);
        let a = cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 1, || 1u32);
        let b = cache.get_or_build(&key(3, ArtifactKind::UfCapacities), |_| 1, || 2u32);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let cache = ArtifactCache::new(250);
        cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 100, || 3u32);
        cache.get_or_build(&key(5, ArtifactKind::Apsp), |_| 100, || 5u32);
        // Touch d=3 so d=5 becomes the LRU victim.
        cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 100, || 0u32);
        cache.get_or_build(&key(7, ArtifactKind::Apsp), |_| 100, || 7u32);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 250);
        // d=5 was evicted; d=3 survives.
        cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 100, || 99u32);
        assert_eq!(cache.stats().hits, 2);
        let rebuilt = cache.get_or_build(&key(5, ArtifactKind::Apsp), |_| 100, || 55u32);
        assert_eq!(*rebuilt, 55, "evicted entry rebuilds");
    }

    #[test]
    fn oversized_entry_still_served() {
        let cache = ArtifactCache::new(10);
        let a = cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 1000, || 1u32);
        assert_eq!(*a, 1, "caller gets the artifact even when uncacheable");
        // The oversized entry was evicted immediately (it exceeds the whole
        // budget), so the next lookup rebuilds.
        let b = cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 1000, || 2u32);
        assert_eq!(*b, 2);
        assert!(cache.stats().bytes <= 1000);
    }

    #[test]
    fn concurrent_cold_lookups_converge() {
        let cache = Arc::new(ArtifactCache::new(1 << 20));
        let arcs: Vec<Arc<u64>> = std::thread::scope(|scope| {
            (0..8)
                .map(|i| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || {
                        cache.get_or_build(&key(9, ArtifactKind::Apsp), |_| 8, move || i as u64)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Losers of the build race adopt an already-inserted value, so at
        // most transiently-held duplicates exist; the cache itself holds
        // exactly one entry.
        assert_eq!(cache.stats().entries, 1);
        let canonical = cache.get_or_build(&key(9, ArtifactKind::Apsp), |_| 8, || 999u64);
        assert!(*canonical < 8, "cached value came from one of the racers");
        // Every racer that adopted must agree with the canonical entry,
        // and the canonical entry is one of the racers' builds.
        let distinct: std::collections::HashSet<u64> = arcs.iter().map(|a| **a).collect();
        assert!(distinct.contains(&canonical));
    }

    #[test]
    fn clear_preserves_counters() {
        let cache = ArtifactCache::new(1 << 20);
        cache.get_or_build(&key(3, ArtifactKind::Apsp), |_| 10, || 1u32);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.misses, 1);
    }
}
