//! SystemVerilog generator for the ERASER hardware (LSB + DLI).
//!
//! Mirrors the paper artifact's `eraser_rtl_gen`: given a code distance it
//! emits a synthesizable module containing
//!
//! * the previous-syndrome register and event XOR,
//! * one ≥2-of-N flip comparator per data qubit (the LSB rule),
//! * the Leakage Tracking Table and Parity Usage Tracking Table registers,
//! * the primary/backup allocation chain of the Dynamic LRC Insertion block,
//!
//! with the lattice adjacency and SWAP-lookup constants baked in. The module
//! asserts `lrc_valid[q]` (and `lrc_use_backup[q]`) for every data qubit that
//! should receive an LRC in the next round.
//!
//! We cannot run Vivado in this environment; Table 3 is reproduced through
//! the analytical [`crate::resource`] model, and this generator provides the
//! RTL a user would feed to their own synthesis flow.

use crate::swap_table::SwapLookupTable;
use std::fmt::Write as _;
use surface_code::RotatedCode;

/// Generates the SystemVerilog source for a distance-`d` ERASER block.
///
/// # Example
///
/// ```
/// use eraser_core::rtl::generate;
/// use surface_code::RotatedCode;
///
/// let sv = generate(&RotatedCode::new(3));
/// assert!(sv.contains("module eraser_d3"));
/// assert!(sv.contains("ltt"));
/// ```
pub fn generate(code: &RotatedCode) -> String {
    let d = code.distance();
    let s = code.num_stabs();
    let n = code.num_data();
    let table = SwapLookupTable::new(code);
    let mut out = String::new();

    let _ = writeln!(
        out,
        "// ERASER leakage-speculation + dynamic-LRC-insertion block"
    );
    let _ = writeln!(
        out,
        "// Auto-generated for a distance-{d} rotated surface code."
    );
    let _ = writeln!(out, "// {s} stabilizers (parity qubits), {n} data qubits.");
    let _ = writeln!(out, "module eraser_d{d} (");
    let _ = writeln!(out, "    input  logic          clk,");
    let _ = writeln!(out, "    input  logic          rst,");
    let _ = writeln!(out, "    // Syndrome bits of the round just measured.");
    let _ = writeln!(out, "    input  logic [{}:0]  syndrome,", s - 1);
    let _ = writeln!(out, "    input  logic          syndrome_valid,");
    let _ = writeln!(out, "    // LRC grants for the upcoming round.");
    let _ = writeln!(out, "    output logic [{}:0]  lrc_valid,", n - 1);
    let _ = writeln!(out, "    output logic [{}:0]  lrc_use_backup", n - 1);
    let _ = writeln!(out, ");");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  // ------------------------------------------------------------------"
    );
    let _ = writeln!(
        out,
        "  // Leakage Speculation Block: detection events and >=2-flip rule."
    );
    let _ = writeln!(out, "  logic [{}:0] prev_syndrome;", s - 1);
    let _ = writeln!(out, "  logic [{}:0] events;", s - 1);
    let _ = writeln!(out, "  assign events = syndrome ^ prev_syndrome;");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  // Per-data-qubit speculation: at least two neighbouring flips."
    );
    let _ = writeln!(out, "  logic [{}:0] speculate;", n - 1);
    for q in 0..n {
        let adj = code.adjacent_stabs(q);
        let terms: Vec<String> = adj.iter().map(|&a| format!("events[{a}]")).collect();
        // Sum-of-products for "at least two of k" with k in 2..=4.
        let mut pairs = Vec::new();
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                pairs.push(format!("({} & {})", terms[i], terms[j]));
            }
        }
        let _ = writeln!(out, "  assign speculate[{q}] = {};", pairs.join(" | "));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  // Leakage Tracking Table: set by speculation, cleared by a grant"
    );
    let _ = writeln!(out, "  // or by having had an LRC in the previous round.");
    let _ = writeln!(out, "  logic [{}:0] ltt;", n - 1);
    let _ = writeln!(out, "  logic [{}:0] had_lrc_last;", n - 1);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  // Parity Usage Tracking Table: parity qubits that served an LRC"
    );
    let _ = writeln!(
        out,
        "  // last round missed their measure+reset and are unavailable."
    );
    let _ = writeln!(out, "  logic [{}:0] putt;", s - 1);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  // ------------------------------------------------------------------"
    );
    let _ = writeln!(
        out,
        "  // Dynamic LRC Insertion: primary/backup allocation chain."
    );
    let _ = writeln!(out, "  logic [{}:0] want;", n - 1);
    let _ = writeln!(out, "  assign want = (ltt | speculate) & ~had_lrc_last;");
    for q in 0..=n {
        if q == 0 {
            let _ = writeln!(out, "  logic [{}:0] used_0;", s - 1);
            let _ = writeln!(out, "  assign used_0 = putt;");
            continue;
        }
        let idx = q - 1;
        let primary = table.primary(idx);
        let backup = table.backup(idx);
        match (primary, backup) {
            (Some(p), Some(b)) => {
                let _ = writeln!(out, "  logic grant_p_{idx}, grant_b_{idx};");
                let _ = writeln!(
                    out,
                    "  assign grant_p_{idx} = want[{idx}] & ~used_{}[{p}];",
                    q - 1
                );
                let _ = writeln!(
                    out,
                    "  assign grant_b_{idx} = want[{idx}] & ~grant_p_{idx} & ~used_{}[{b}];",
                    q - 1
                );
                let _ = writeln!(out, "  logic [{}:0] used_{q};", s - 1);
                let _ = writeln!(
                    out,
                    "  assign used_{q} = used_{} | ({}'(grant_p_{idx}) << {p}) | ({}'(grant_b_{idx}) << {b});",
                    q - 1,
                    s,
                    s
                );
            }
            (None, Some(b)) => {
                let _ = writeln!(out, "  logic grant_p_{idx}, grant_b_{idx};");
                let _ = writeln!(
                    out,
                    "  assign grant_p_{idx} = 1'b0; // no primary (d^2-1 parities)"
                );
                let _ = writeln!(
                    out,
                    "  assign grant_b_{idx} = want[{idx}] & ~used_{}[{b}];",
                    q - 1
                );
                let _ = writeln!(out, "  logic [{}:0] used_{q};", s - 1);
                let _ = writeln!(
                    out,
                    "  assign used_{q} = used_{} | ({}'(grant_b_{idx}) << {b});",
                    q - 1,
                    s
                );
            }
            _ => unreachable!("every data qubit has a backup"),
        }
        let _ = writeln!(
            out,
            "  assign lrc_valid[{idx}] = grant_p_{idx} | grant_b_{idx};"
        );
        let _ = writeln!(out, "  assign lrc_use_backup[{idx}] = grant_b_{idx};");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  // ------------------------------------------------------------------"
    );
    let _ = writeln!(out, "  // State update.");
    let _ = writeln!(out, "  always_ff @(posedge clk) begin");
    let _ = writeln!(out, "    if (rst) begin");
    let _ = writeln!(out, "      prev_syndrome <= '0;");
    let _ = writeln!(out, "      ltt           <= '0;");
    let _ = writeln!(out, "      had_lrc_last  <= '0;");
    let _ = writeln!(out, "      putt          <= '0;");
    let _ = writeln!(out, "    end else if (syndrome_valid) begin");
    let _ = writeln!(out, "      prev_syndrome <= syndrome;");
    let _ = writeln!(out, "      ltt           <= want & ~lrc_valid;");
    let _ = writeln!(out, "      had_lrc_last  <= lrc_valid;");
    let _ = writeln!(out, "      putt          <= used_{n} & ~putt;");
    let _ = writeln!(out, "    end");
    let _ = writeln!(out, "  end");
    let _ = writeln!(out);
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_valid_looking_module() {
        for d in [3usize, 5, 7] {
            let code = RotatedCode::new(d);
            let sv = generate(&code);
            assert!(sv.contains(&format!("module eraser_d{d}")));
            assert!(sv.contains("endmodule"));
            assert!(sv.contains("always_ff"));
            // One speculate assign per data qubit.
            let count = sv.matches("assign speculate[").count();
            assert_eq!(count, code.num_data());
            // Allocation chain covers every data qubit.
            let grants = sv.matches("assign lrc_valid[").count();
            assert_eq!(grants, code.num_data());
        }
    }

    #[test]
    fn rtl_grows_quadratically_with_distance() {
        let s3 = generate(&RotatedCode::new(3)).lines().count();
        let s7 = generate(&RotatedCode::new(7)).lines().count();
        let s11 = generate(&RotatedCode::new(11)).lines().count();
        assert!(s7 > 3 * s3);
        assert!(s11 > 2 * s7);
    }

    #[test]
    fn unmatched_qubit_has_no_primary_grant() {
        let code = RotatedCode::new(3);
        let table = SwapLookupTable::new(&code);
        let q = table.unmatched_data().unwrap();
        let sv = generate(&code);
        assert!(sv.contains(&format!("assign grant_p_{q} = 1'b0;")));
    }

    #[test]
    fn balanced_module_delimiters() {
        let sv = generate(&RotatedCode::new(5));
        assert_eq!(sv.matches("endmodule").count(), 1);
        // Three `begin`s (always_ff, reset branch, update branch) and their
        // three closing `end`s, plus the `end` inside `endmodule`.
        let begins = sv.matches("begin").count();
        let ends = sv.matches("end").count() - sv.matches("endmodule").count();
        assert_eq!(begins, ends, "begin/end imbalance");
    }
}
