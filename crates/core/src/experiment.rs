//! The unified experiment facade: one front door for every consumer of the
//! ERASER runtime.
//!
//! Three pieces replace the old ad-hoc `MemoryRunner::new` + `RunConfig` +
//! closure-factory call pattern:
//!
//! * [`Experiment`] / [`ExperimentBuilder`] — a validating builder that owns
//!   the runner, the run configuration, and the policy selection:
//!
//!   ```
//!   use eraser_core::{DecoderKind, Experiment, PolicyKind};
//!   use qec_core::NoiseParams;
//!
//!   let exp = Experiment::builder()
//!       .distance(3)
//!       .noise(NoiseParams::standard(1e-3))
//!       .rounds(3)
//!       .policy(PolicyKind::eraser())
//!       .decoder(DecoderKind::Mwpm)
//!       .shots(20)
//!       .build()
//!       .expect("valid experiment");
//!   assert_eq!(exp.run().shots, 20);
//!   ```
//!
//! * [`PolicyKind`] — a by-value policy registry with [`std::str::FromStr`] /
//!   [`std::fmt::Display`], so CLIs, benches, and figures select policies
//!   without passing `dyn Fn(&RotatedCode) -> Box<dyn LrcPolicy>` closures
//!   around. The closure form remains available through
//!   [`PolicyKind::custom`].
//!
//! * [`Sweep`] — a grid engine (distances × physical error rates × policies)
//!   that caches runner construction per (distance, noise, rounds) key,
//!   resolves the thread-pool partitioning once for the whole grid, and
//!   streams [`SweepPoint`]s to a sink as they complete.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::cache::{ArtifactCache, ArtifactKind, CacheKey, ExperimentKey};
use crate::control::{AdaptivePolicy, ControlLawKind, ControllerConfig, LeakageProfile};
use crate::policy::{
    AlwaysLrcPolicy, EraserOptions, EraserPolicy, LrcPolicy, NoLrcPolicy, OptimalPolicy,
};
use crate::runtime::{
    DecoderKind, EnvOverrideError, ErasureDetection, LrcProtocol, MemoryRunResult, MemoryRunner,
    RunConfig,
};
use qec_core::NoiseParams;
use surface_code::{MemoryBasis, RotatedCode};

/// The escape hatch: a thread-safe factory producing one policy instance per
/// worker thread (the shape `MemoryRunner::run` consumes).
pub type PolicyFactory = Arc<dyn Fn(&RotatedCode) -> Box<dyn LrcPolicy> + Send + Sync>;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Validation and parse errors of the experiment facade. The builder returns
/// these instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// `distance` was never set on the builder.
    MissingDistance,
    /// The rotated surface code needs an odd distance ≥ 3.
    InvalidDistance(usize),
    /// Neither `rounds` nor `cycles` was set on the builder.
    MissingRounds,
    /// `rounds(0)` / `cycles(0)`: a run needs at least one round.
    ZeroRounds,
    /// `shots(0)`: a run needs at least one shot.
    ZeroShots,
    /// A sweep error rate was outside [0, 1] or non-finite.
    InvalidErrorRate(f64),
    /// A sweep axis (distances, error rates, or policies) was empty.
    EmptyGridAxis(&'static str),
    /// An erasure-detection false-positive/negative rate was outside [0, 1]
    /// or non-finite.
    InvalidDetectionRate(f64),
    /// A stripe width above the 64-lane word size (0 means auto).
    InvalidStripeWidth(usize),
    /// A sliding-window stride exceeding the window length (window 0 means
    /// monolithic decoding; stride 0 derives the `window − d` default).
    InvalidWindow {
        /// Configured `window_rounds`.
        window: usize,
        /// Configured `window_stride`.
        stride: usize,
    },
    /// An adaptive-controller configuration failed validation (thresholds,
    /// smoothing shift, or quota out of range).
    InvalidController(&'static str),
    /// A leakage-profile schedule failed validation (rate out of range or
    /// a degenerate burst/ramp shape).
    InvalidProfile(&'static str),
    /// `PolicyKind::from_str` did not recognize the name.
    UnknownPolicy(String),
    /// `DecoderKind::from_str` did not recognize the name.
    UnknownDecoder(String),
    /// A malformed `ERASER_*` environment override the configuration would
    /// consult at run time. Checked at build time so the error surfaces
    /// here, as a `Result`, instead of deep inside a worker thread.
    EnvOverride(EnvOverrideError),
}

impl From<EnvOverrideError> for ExperimentError {
    fn from(err: EnvOverrideError) -> ExperimentError {
        ExperimentError::EnvOverride(err)
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::MissingDistance => write!(f, "experiment needs a code distance"),
            ExperimentError::InvalidDistance(d) => {
                write!(f, "code distance must be odd and >= 3, got {d}")
            }
            ExperimentError::MissingRounds => {
                write!(f, "experiment needs a round count (`rounds` or `cycles`)")
            }
            ExperimentError::ZeroRounds => write!(f, "a run needs at least one round"),
            ExperimentError::ZeroShots => write!(f, "a run needs at least one shot"),
            ExperimentError::InvalidErrorRate(p) => {
                write!(
                    f,
                    "physical error rate must be finite and within [0, 1], got {p}"
                )
            }
            ExperimentError::EmptyGridAxis(axis) => {
                write!(f, "sweep axis `{axis}` must not be empty")
            }
            ExperimentError::InvalidDetectionRate(p) => {
                write!(
                    f,
                    "erasure-detection rate must be finite and within [0, 1], got {p}"
                )
            }
            ExperimentError::InvalidStripeWidth(w) => {
                write!(f, "stripe width must be 0 (auto) or 1..=64, got {w}")
            }
            ExperimentError::InvalidWindow { window, stride } => {
                write!(
                    f,
                    "window stride must not exceed the window length, got stride {stride} over window {window}"
                )
            }
            ExperimentError::InvalidController(reason) => {
                write!(f, "invalid controller configuration: {reason}")
            }
            ExperimentError::InvalidProfile(reason) => {
                write!(f, "invalid leakage profile: {reason}")
            }
            ExperimentError::UnknownPolicy(s) => write!(f, "unknown policy `{s}`"),
            ExperimentError::UnknownDecoder(s) => write!(f, "unknown decoder `{s}`"),
            ExperimentError::EnvOverride(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// The rotated surface code needs an odd distance ≥ 3. Shared by the
/// experiment and sweep builders so the two front doors accept the same
/// geometries.
fn validate_distance(d: usize) -> Result<(), ExperimentError> {
    if d < 3 || d.is_multiple_of(2) {
        Err(ExperimentError::InvalidDistance(d))
    } else {
        Ok(())
    }
}

/// A run needs at least one shot (shared by both builders).
fn validate_shots(shots: u64) -> Result<(), ExperimentError> {
    if shots == 0 {
        Err(ExperimentError::ZeroShots)
    } else {
        Ok(())
    }
}

/// A stripe packs at most 64 shots into one machine word; 0 defers the
/// resolution to the runtime (shared by both builders).
fn validate_stripe_width(width: usize) -> Result<(), ExperimentError> {
    if width > 64 {
        Err(ExperimentError::InvalidStripeWidth(width))
    } else {
        Ok(())
    }
}

/// A sliding-window stride must fit inside its window; window 0 selects
/// monolithic decoding and stride 0 the `window − d` default (shared by
/// both builders). The buffer ≥ d guarantee is enforced by that default —
/// explicit strides may trade buffer for speed.
fn validate_window(window: usize, stride: usize) -> Result<(), ExperimentError> {
    if stride > window {
        Err(ExperimentError::InvalidWindow { window, stride })
    } else {
        Ok(())
    }
}

/// Erasure-detection FP/FN rates are probabilities (shared by both
/// builders).
fn validate_erasure(erasure: &ErasureDetection) -> Result<(), ExperimentError> {
    for rate in [erasure.false_positive, erasure.false_negative] {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(ExperimentError::InvalidDetectionRate(rate));
        }
    }
    Ok(())
}

/// Controller knobs must validate — both a `RunConfig::controller` override
/// and the knobs embedded in a selected [`PolicyKind::Adaptive`] (shared by
/// both builders).
fn validate_controller(
    controller: &Option<ControllerConfig>,
    policy: Option<&PolicyKind>,
) -> Result<(), ExperimentError> {
    if let Some(config) = controller {
        config
            .validate()
            .map_err(ExperimentError::InvalidController)?;
    }
    if let Some(PolicyKind::Adaptive(config)) = policy {
        config
            .validate()
            .map_err(ExperimentError::InvalidController)?;
    }
    Ok(())
}

/// Leakage-profile schedules must validate (shared by both builders).
fn validate_profile(profile: &LeakageProfile) -> Result<(), ExperimentError> {
    profile.validate().map_err(ExperimentError::InvalidProfile)
}

// ---------------------------------------------------------------------------
// PolicyKind registry
// ---------------------------------------------------------------------------

/// By-value selection of an LRC scheduling policy.
///
/// Every standard policy of the paper is a variant; [`PolicyKind::Custom`]
/// wraps an arbitrary factory for policies defined outside this crate.
#[derive(Clone)]
pub enum PolicyKind {
    /// Never schedule an LRC (the "No LRC" baseline).
    NoLrc,
    /// Alternate-round blanket scheduling (the paper's state-of-the-art
    /// baseline).
    AlwaysLrc,
    /// Blanket scheduling every round (the DQLR baseline of Appendix A.2).
    AlwaysEveryRound,
    /// ERASER with the given design knobs (§4.2–§4.4).
    Eraser(EraserOptions),
    /// ERASER+M: multi-level readout integration (§4.6).
    EraserM(EraserOptions),
    /// The idealized oracle scheduler (§3.2).
    Optimal,
    /// The feedback-controlled adaptive policy: a [`crate::control`]
    /// estimator + control law retuning the LRC density mid-run. The
    /// embedded knobs are defaults — `RunConfig::controller` or the
    /// `ERASER_CONTROL` environment variable override them per run (see
    /// [`PolicyKind::resolved`]).
    Adaptive(ControllerConfig),
    /// A user-supplied policy factory (the closure escape hatch).
    Custom {
        /// Display label for tables and CSV columns.
        name: String,
        /// Per-thread policy constructor.
        factory: PolicyFactory,
    },
}

impl PolicyKind {
    /// ERASER at the paper's design point.
    pub fn eraser() -> PolicyKind {
        PolicyKind::Eraser(EraserOptions::default())
    }

    /// ERASER+M at the paper's design point.
    pub fn eraser_m() -> PolicyKind {
        PolicyKind::EraserM(EraserOptions::default())
    }

    /// The adaptive controller running `law` at its default design point
    /// ([`ControllerConfig::ewma`] / [`ControllerConfig::budget`]).
    /// Construct [`PolicyKind::Adaptive`] directly for custom knobs.
    pub fn adaptive(law: ControlLawKind) -> PolicyKind {
        PolicyKind::Adaptive(match law {
            ControlLawKind::Ewma => ControllerConfig::ewma(),
            ControlLawKind::Budget => ControllerConfig::budget(),
        })
    }

    /// Wraps an arbitrary policy factory.
    pub fn custom(
        name: impl Into<String>,
        factory: impl Fn(&RotatedCode) -> Box<dyn LrcPolicy> + Send + Sync + 'static,
    ) -> PolicyKind {
        PolicyKind::Custom {
            name: name.into(),
            factory: Arc::new(factory),
        }
    }

    /// All six standard policies at their default design points, in the
    /// canonical evaluation order.
    pub fn all_standard() -> [PolicyKind; 6] {
        [
            PolicyKind::NoLrc,
            PolicyKind::AlwaysLrc,
            PolicyKind::AlwaysEveryRound,
            PolicyKind::eraser(),
            PolicyKind::eraser_m(),
            PolicyKind::Optimal,
        ]
    }

    /// Display label (stable CLI / CSV name). Note that for
    /// [`PolicyKind::AlwaysEveryRound`] this is the figure-harness label
    /// `dqlr-every-round`, while the constructed policy reports its runtime
    /// name `always-every-round` in [`MemoryRunResult::policy`].
    pub fn label(&self) -> &str {
        match self {
            PolicyKind::NoLrc => "no-lrc",
            PolicyKind::AlwaysLrc => "always-lrc",
            PolicyKind::AlwaysEveryRound => "dqlr-every-round",
            PolicyKind::Eraser(_) => "eraser",
            PolicyKind::EraserM(_) => "eraser+m",
            PolicyKind::Optimal => "optimal",
            PolicyKind::Adaptive(config) => config.law_name(),
            PolicyKind::Custom { name, .. } => name,
        }
    }

    /// The policy this kind resolves to under `config`: for
    /// [`PolicyKind::Adaptive`] the run-level controller override
    /// (`RunConfig::controller`, else `ERASER_CONTROL`) replaces the
    /// variant's embedded knobs; every other kind is returned unchanged.
    pub fn resolved(&self, config: &RunConfig) -> Result<PolicyKind, EnvOverrideError> {
        match self {
            PolicyKind::Adaptive(own) => {
                let effective = config.resolved_controller()?.unwrap_or(*own);
                Ok(PolicyKind::Adaptive(effective))
            }
            other => Ok(other.clone()),
        }
    }

    /// Instantiates the policy for a code (one instance per worker thread).
    pub fn build(&self, code: &RotatedCode) -> Box<dyn LrcPolicy> {
        match self {
            PolicyKind::NoLrc => Box::new(NoLrcPolicy::new()),
            PolicyKind::AlwaysLrc => Box::new(AlwaysLrcPolicy::new(code)),
            PolicyKind::AlwaysEveryRound => Box::new(AlwaysLrcPolicy::every_round(code)),
            PolicyKind::Eraser(options) => Box::new(EraserPolicy::with_options(code, *options)),
            PolicyKind::EraserM(options) => {
                Box::new(EraserPolicy::with_multilevel_options(code, *options))
            }
            PolicyKind::Optimal => Box::new(OptimalPolicy::new(code)),
            PolicyKind::Adaptive(config) => Box::new(AdaptivePolicy::new(code, *config)),
            PolicyKind::Custom { factory, .. } => factory(code),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl fmt::Debug for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Eraser(options) => f.debug_tuple("Eraser").field(options).finish(),
            PolicyKind::EraserM(options) => f.debug_tuple("EraserM").field(options).finish(),
            PolicyKind::Adaptive(config) => f.debug_tuple("Adaptive").field(config).finish(),
            PolicyKind::Custom { name, .. } => f
                .debug_struct("Custom")
                .field("name", name)
                .finish_non_exhaustive(),
            other => f.write_str(other.label()),
        }
    }
}

impl PartialEq for PolicyKind {
    fn eq(&self, other: &PolicyKind) -> bool {
        match (self, other) {
            (PolicyKind::NoLrc, PolicyKind::NoLrc)
            | (PolicyKind::AlwaysLrc, PolicyKind::AlwaysLrc)
            | (PolicyKind::AlwaysEveryRound, PolicyKind::AlwaysEveryRound)
            | (PolicyKind::Optimal, PolicyKind::Optimal) => true,
            (PolicyKind::Eraser(a), PolicyKind::Eraser(b))
            | (PolicyKind::EraserM(a), PolicyKind::EraserM(b)) => a == b,
            (PolicyKind::Adaptive(a), PolicyKind::Adaptive(b)) => a == b,
            (
                PolicyKind::Custom {
                    name: a,
                    factory: fa,
                },
                PolicyKind::Custom {
                    name: b,
                    factory: fb,
                },
            ) => a == b && Arc::ptr_eq(fa, fb),
            _ => false,
        }
    }
}

impl FromStr for PolicyKind {
    type Err = ExperimentError;

    fn from_str(s: &str) -> Result<PolicyKind, ExperimentError> {
        match s.to_ascii_lowercase().as_str() {
            "no-lrc" | "nolrc" | "none" => Ok(PolicyKind::NoLrc),
            "always-lrc" | "always" => Ok(PolicyKind::AlwaysLrc),
            "dqlr-every-round" | "always-every-round" | "every-round" | "dqlr" => {
                Ok(PolicyKind::AlwaysEveryRound)
            }
            "eraser" => Ok(PolicyKind::eraser()),
            "eraser+m" | "eraser-m" | "eraserm" => Ok(PolicyKind::eraser_m()),
            "optimal" | "oracle" => Ok(PolicyKind::Optimal),
            "adaptive" | "adaptive-ewma" => Ok(PolicyKind::adaptive(ControlLawKind::Ewma)),
            "adaptive-budget" => Ok(PolicyKind::adaptive(ControlLawKind::Budget)),
            _ => Err(ExperimentError::UnknownPolicy(s.to_string())),
        }
    }
}

impl fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DecoderKind::Auto => "auto",
            DecoderKind::Mwpm => "mwpm",
            DecoderKind::SparseMwpm => "sparse-mwpm",
            DecoderKind::UnionFind => "union-find",
            DecoderKind::Greedy => "greedy",
        })
    }
}

impl FromStr for DecoderKind {
    type Err = ExperimentError;

    fn from_str(s: &str) -> Result<DecoderKind, ExperimentError> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(DecoderKind::Auto),
            "mwpm" => Ok(DecoderKind::Mwpm),
            "sparse-mwpm" | "sparse" | "sparse-blossom" => Ok(DecoderKind::SparseMwpm),
            "union-find" | "unionfind" | "uf" => Ok(DecoderKind::UnionFind),
            "greedy" => Ok(DecoderKind::Greedy),
            _ => Err(ExperimentError::UnknownDecoder(s.to_string())),
        }
    }
}

// ---------------------------------------------------------------------------
// Experiment + builder
// ---------------------------------------------------------------------------

/// Round-count specification: either a fixed round count or QEC cycles
/// (each cycle is `d` rounds, the paper's convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundsSpec {
    Fixed(usize),
    Cycles(usize),
}

impl RoundsSpec {
    fn resolve(self, d: usize) -> usize {
        match self {
            RoundsSpec::Fixed(rounds) => rounds,
            RoundsSpec::Cycles(cycles) => d * cycles,
        }
    }

    fn validate(self) -> Result<(), ExperimentError> {
        let n = match self {
            RoundsSpec::Fixed(n) | RoundsSpec::Cycles(n) => n,
        };
        if n == 0 {
            Err(ExperimentError::ZeroRounds)
        } else {
            Ok(())
        }
    }
}

/// A fully validated memory experiment: the runner (code, detectors, decoding
/// graph), the run configuration, and the selected policy.
///
/// Build with [`Experiment::builder`]; execute with [`Experiment::run`] or
/// [`Experiment::run_policy`] (which reuses the expensive runner across
/// policies).
#[derive(Debug)]
pub struct Experiment {
    runner: MemoryRunner,
    config: RunConfig,
    policy: PolicyKind,
}

impl Experiment {
    /// Starts a builder with the paper's defaults (noise `standard(1e-3)`,
    /// memory-Z, 1000 shots, seed `0x2023`, auto decoder, SWAP protocol,
    /// decoding enabled, `no-lrc` policy). `distance` and `rounds`/`cycles`
    /// must be set explicitly.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::new()
    }

    /// The code distance.
    pub fn distance(&self) -> usize {
        self.runner.experiment().code().distance()
    }

    /// Rounds per shot.
    pub fn rounds(&self) -> usize {
        self.runner.experiment().rounds()
    }

    /// The memory basis being preserved.
    pub fn basis(&self) -> MemoryBasis {
        self.runner.experiment().basis()
    }

    /// The noise model.
    pub fn noise(&self) -> &NoiseParams {
        self.runner.experiment().noise()
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The selected policy.
    pub fn policy(&self) -> &PolicyKind {
        &self.policy
    }

    /// The underlying runner (low-level escape hatch).
    pub fn runner(&self) -> &MemoryRunner {
        &self.runner
    }

    /// Swaps the decoder without rebuilding the runner (the decoding graph is
    /// decoder-independent).
    pub fn set_decoder(&mut self, decoder: DecoderKind) {
        self.config.decoder = decoder;
    }

    /// The decoder the configured [`DecoderKind`] resolves to for this
    /// experiment's decoding graph. Goes through
    /// [`RunConfig::resolved_decoder`] (the `ERASER_DECODER` hook, already
    /// validated at build time) and then [`DecoderKind::resolve`] — the same
    /// single-source rule `MemoryRunner::run` applies — so on decode-enabled
    /// runs `Auto` reports exactly what will decode (runs built with
    /// `.decode(false)` decode nothing and report `"none"`). Never returns
    /// [`DecoderKind::Auto`].
    pub fn resolved_decoder(&self) -> DecoderKind {
        self.config
            .resolved_decoder()
            .unwrap_or(self.config.decoder)
            .resolve(self.runner.graph())
    }

    /// Swaps the LRC protocol without rebuilding the runner.
    pub fn set_protocol(&mut self, protocol: LrcProtocol) {
        self.config.protocol = protocol;
    }

    /// Toggles leakage-aware (erasure) decoding without rebuilding the
    /// runner: the cheap way to compare leakage-blind and erasure-aware
    /// decoding on identical physical shots.
    pub fn set_leakage_aware(&mut self, enabled: bool) {
        self.config.erasure.enabled = enabled;
    }

    /// Swaps the sliding-window configuration without rebuilding the runner:
    /// the cheap way to compare streaming and monolithic decoding on
    /// identical physical shots (see [`ExperimentBuilder::window_rounds`]).
    ///
    /// # Panics
    ///
    /// Panics if `stride > window` (the builder-validated invariant).
    pub fn set_window(&mut self, window_rounds: usize, window_stride: usize) {
        assert!(
            window_stride <= window_rounds,
            "window stride {window_stride} exceeds window {window_rounds}"
        );
        self.config.window_rounds = window_rounds;
        self.config.window_stride = window_stride;
    }

    /// Runs the experiment under the configured policy.
    pub fn run(&self) -> MemoryRunResult {
        self.run_policy(&self.policy)
    }

    /// Runs the experiment under `kind`, reusing this experiment's runner and
    /// configuration. This is the cheap way to compare policies on one code.
    ///
    /// Decode artifacts (APSP tables, union-find capacities, window plans)
    /// resolve through the process-wide [`ArtifactCache`], so repeated runs
    /// over the same physics — across policies, experiments, or server
    /// jobs — pay the build once. Artifacts are deterministic functions of
    /// the physics, so results are bit-identical to a cache-free run.
    pub fn run_policy(&self, kind: &PolicyKind) -> MemoryRunResult {
        // Adaptive kinds resolve the run-level controller override
        // (`RunConfig::controller`, else `ERASER_CONTROL`) here, the one
        // place every facade run passes through.
        let kind = kind
            .resolved(&self.config)
            .unwrap_or_else(|e| panic!("{e}"));
        let artifacts = self
            .runner
            .decode_artifacts(&self.config, Some(ArtifactCache::global()))
            .unwrap_or_else(|e| panic!("{e}"));
        self.runner
            .run_with_artifacts(&|code| kind.build(code), &self.config, &artifacts)
    }
}

/// Builder for [`Experiment`]. Invalid combinations surface as
/// [`ExperimentError`]s from [`ExperimentBuilder::build`] instead of panics.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder {
    distance: Option<usize>,
    noise: NoiseParams,
    rounds: Option<RoundsSpec>,
    basis: MemoryBasis,
    policy: PolicyKind,
    shots: u64,
    seed: u64,
    threads: usize,
    decoder: DecoderKind,
    protocol: LrcProtocol,
    decode: bool,
    erasure: ErasureDetection,
    stripe_width: usize,
    window_rounds: usize,
    window_stride: usize,
    fusion_threads: usize,
    controller: Option<ControllerConfig>,
    profile: LeakageProfile,
    predecode: Option<bool>,
}

impl Default for ExperimentBuilder {
    fn default() -> ExperimentBuilder {
        let config = RunConfig::default();
        ExperimentBuilder {
            distance: None,
            noise: NoiseParams::default(),
            rounds: None,
            basis: MemoryBasis::Z,
            policy: PolicyKind::NoLrc,
            shots: config.shots,
            seed: config.seed,
            threads: config.threads,
            decoder: config.decoder,
            protocol: config.protocol,
            decode: config.decode,
            erasure: config.erasure,
            stripe_width: config.stripe_width,
            window_rounds: config.window_rounds,
            window_stride: config.window_stride,
            fusion_threads: config.fusion_threads,
            controller: config.controller,
            profile: config.profile,
            predecode: config.predecode,
        }
    }
}

impl ExperimentBuilder {
    /// Starts from the defaults documented on [`Experiment::builder`].
    pub fn new() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Code distance (odd, ≥ 3). Required.
    pub fn distance(mut self, d: usize) -> Self {
        self.distance = Some(d);
        self
    }

    /// Noise model (default: the paper's `NoiseParams::standard(1e-3)`).
    pub fn noise(mut self, noise: NoiseParams) -> Self {
        self.noise = noise;
        self
    }

    /// Fixed number of syndrome-extraction rounds. Required unless
    /// [`ExperimentBuilder::cycles`] is used; the later call wins.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = Some(RoundsSpec::Fixed(rounds));
        self
    }

    /// QEC cycles; resolves to `d × cycles` rounds at build time.
    pub fn cycles(mut self, cycles: usize) -> Self {
        self.rounds = Some(RoundsSpec::Cycles(cycles));
        self
    }

    /// Memory basis to preserve (default Z, the paper's workload).
    pub fn basis(mut self, basis: MemoryBasis) -> Self {
        self.basis = basis;
        self
    }

    /// Policy to run under (default [`PolicyKind::NoLrc`]).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Monte-Carlo shots (default 1000).
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Root RNG seed (default `0x2023`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads; 0 means all available cores (default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Decoder selection (default [`DecoderKind::Auto`]).
    pub fn decoder(mut self, decoder: DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }

    /// Leakage-removal protocol (default [`LrcProtocol::Swap`]).
    pub fn protocol(mut self, protocol: LrcProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Whether to decode at all; LPR-only studies disable this (default on).
    pub fn decode(mut self, decode: bool) -> Self {
        self.decode = decode;
        self
    }

    /// Leakage-aware (erasure) decoding: thread the policy's per-round
    /// leakage-detection flags into the decoder as dynamically reweighted
    /// (erased) edges. Default off — the paper's leakage-blind decoder.
    pub fn leakage_aware_decoding(mut self, enabled: bool) -> Self {
        self.erasure.enabled = enabled;
        self
    }

    /// Imperfect-erasure-check rates (Chang et al. 2024): the probability a
    /// clean qubit is spuriously flagged per round, and the probability a
    /// real flag is dropped. Implies nothing about `leakage_aware_decoding`;
    /// rates are validated at build time.
    pub fn erasure_detection(mut self, false_positive: f64, false_negative: f64) -> Self {
        self.erasure.false_positive = false_positive;
        self.erasure.false_negative = false_negative;
        self
    }

    /// Shots simulated per word-parallel stripe (1..=64). The default 0
    /// resolves at run time: the `ERASER_STRIPE` environment variable if
    /// set, else the full 64-lane stripe. Width 1 selects the scalar
    /// reference path; results are bit-identical for every width.
    pub fn stripe_width(mut self, width: usize) -> Self {
        self.stripe_width = width;
        self
    }

    /// Sliding-window length in rounds for streaming decoding. The default
    /// 0 resolves at run time: the `ERASER_WINDOW` environment variable if
    /// set, else monolithic whole-shot decoding (a window larger than the
    /// round count also auto-selects monolithic). Windows bound peak decoder
    /// memory at O(window²) regardless of the round count.
    pub fn window_rounds(mut self, window: usize) -> Self {
        self.window_rounds = window;
        self
    }

    /// Rounds committed (and advanced) per window; 0 derives `window − d`
    /// (min 1), which keeps the re-decoded buffer at d rounds. Validated at
    /// build time: the stride must not exceed the window.
    pub fn window_stride(mut self, stride: usize) -> Self {
        self.window_stride = stride;
        self
    }

    /// Intra-shot fusion threads: each shot's window chain is partitioned
    /// into that many leaf blocks, decoded concurrently, and fused up a
    /// balanced merge tree — bit-identical to the sequential windowed path
    /// at every count. The default 0 resolves at run time: the
    /// `ERASER_FUSION` environment variable if set, else 1 (sequential).
    /// Values > 1 imply windowed decoding; when no window is configured,
    /// `min(3d, rounds)` with the default stride is derived.
    pub fn fusion_threads(mut self, threads: usize) -> Self {
        self.fusion_threads = threads;
        self
    }

    /// Run-level controller override for adaptive policies: replaces the
    /// knobs embedded in the selected [`PolicyKind::Adaptive`] (and beats
    /// the `ERASER_CONTROL` environment hook). Validated at build time;
    /// static policies ignore it.
    pub fn controller(mut self, config: ControllerConfig) -> Self {
        self.controller = Some(config);
        self
    }

    /// Time-varying injected-leakage schedule (default
    /// [`LeakageProfile::Stationary`]: nothing injected). Validated at
    /// build time; applied identically on the scalar and striped paths.
    pub fn leakage_profile(mut self, profile: LeakageProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Tiered sparse-syndrome fast path in front of every decode (tier 0
    /// skips empty syndromes/windows, tier 1 resolves 1–2 defects in
    /// closed form) — bit-identical either way. An explicit setting beats
    /// the `ERASER_PREDECODE` environment hook; unset defaults to on.
    pub fn predecode(mut self, on: bool) -> Self {
        self.predecode = Some(on);
        self
    }

    fn validated(&self) -> Result<(usize, usize), ExperimentError> {
        let d = self.distance.ok_or(ExperimentError::MissingDistance)?;
        validate_distance(d)?;
        let spec = self.rounds.ok_or(ExperimentError::MissingRounds)?;
        spec.validate()?;
        validate_shots(self.shots)?;
        validate_erasure(&self.erasure)?;
        validate_stripe_width(self.stripe_width)?;
        validate_window(self.window_rounds, self.window_stride)?;
        validate_controller(&self.controller, Some(&self.policy))?;
        validate_profile(&self.profile)?;
        Ok((d, spec.resolve(d)))
    }

    /// Validates and constructs the experiment (building the detector list
    /// and the decoding graph once).
    pub fn build(self) -> Result<Experiment, ExperimentError> {
        let (d, rounds) = self.validated()?;
        let config = RunConfig {
            shots: self.shots,
            seed: self.seed,
            threads: self.threads,
            decoder: self.decoder,
            protocol: self.protocol,
            decode: self.decode,
            erasure: self.erasure,
            stripe_width: self.stripe_width,
            window_rounds: self.window_rounds,
            window_stride: self.window_stride,
            fusion_threads: self.fusion_threads,
            controller: self.controller,
            profile: self.profile,
            predecode: self.predecode,
        };
        config.validate_env()?;
        let runner = MemoryRunner::new_with_basis(d, self.noise, rounds, self.basis);
        Ok(Experiment {
            runner,
            config,
            policy: self.policy,
        })
    }
}

// ---------------------------------------------------------------------------
// Sweep engine
// ---------------------------------------------------------------------------

/// The noise family a sweep derives per-point [`NoiseParams`] from.
#[derive(Clone, Default)]
pub enum NoiseModel {
    /// `NoiseParams::standard(p)` — the paper's main-text model.
    #[default]
    Standard,
    /// `NoiseParams::without_leakage(p)` — Pauli noise only.
    WithoutLeakage,
    /// `NoiseParams::exchange_transport(p)` — Appendix A.1.
    ExchangeTransport,
    /// Arbitrary mapping from physical error rate to noise parameters.
    Custom(Arc<dyn Fn(f64) -> NoiseParams + Send + Sync>),
}

impl NoiseModel {
    /// The noise parameters at physical error rate `p`.
    pub fn params(&self, p: f64) -> NoiseParams {
        match self {
            NoiseModel::Standard => NoiseParams::standard(p),
            NoiseModel::WithoutLeakage => NoiseParams::without_leakage(p),
            NoiseModel::ExchangeTransport => NoiseParams::exchange_transport(p),
            NoiseModel::Custom(f) => f(p),
        }
    }
}

impl fmt::Debug for NoiseModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NoiseModel::Standard => "Standard",
            NoiseModel::WithoutLeakage => "WithoutLeakage",
            NoiseModel::ExchangeTransport => "ExchangeTransport",
            NoiseModel::Custom(_) => "Custom(..)",
        })
    }
}

/// One completed grid point, streamed to the sweep's sink.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Code distance of this point.
    pub distance: usize,
    /// Physical error rate of this point.
    pub p: f64,
    /// Rounds per shot at this point.
    pub rounds: usize,
    /// Label of the policy that ran ([`PolicyKind::label`]).
    pub policy: String,
    /// The full run result.
    pub result: MemoryRunResult,
}

/// A validated experiment grid: distances × physical error rates × policies,
/// under one noise family, rounds specification, and run configuration.
///
/// Points are executed in deterministic order (distance-major, then error
/// rate, then policy) and are bit-identical to running each point through
/// [`Experiment`] separately with the same seed.
#[derive(Debug, Clone)]
pub struct Sweep {
    distances: Vec<usize>,
    error_rates: Vec<f64>,
    policies: Vec<PolicyKind>,
    noise: NoiseModel,
    rounds: RoundsSpec,
    basis: MemoryBasis,
    shots: u64,
    seed: u64,
    threads: usize,
    decoder: DecoderKind,
    protocol: LrcProtocol,
    decode: bool,
    erasure: ErasureDetection,
    stripe_width: usize,
    window_rounds: usize,
    window_stride: usize,
    fusion_threads: usize,
    controller: Option<ControllerConfig>,
    profile: LeakageProfile,
    predecode: Option<bool>,
}

impl Sweep {
    /// Starts a sweep builder with the same defaults as
    /// [`Experiment::builder`].
    pub fn builder() -> SweepBuilder {
        SweepBuilder::new()
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.distances.len() * self.error_rates.len() * self.policies.len()
    }

    /// Whether the grid is empty (never true for a built sweep).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The policy axis, in execution order.
    pub fn policies(&self) -> &[PolicyKind] {
        &self.policies
    }

    /// Executes the whole grid, streaming each completed point to `sink`.
    ///
    /// Routes through the process-wide [`ArtifactCache`]: runners are
    /// shared per content key (distance, rounds, basis, noise) — so two
    /// cells differing only in policy share one DEM build — and the decode
    /// artifacts (APSP table / union-find capacities / window plan) are
    /// resolved once per cell and shared with every other run of the same
    /// physics, including other sweeps and `eraser-serve` jobs in this
    /// process. The worker-thread partitioning is resolved once up front.
    /// (Results are bit-identical for any thread count and any cache state
    /// — shots own their RNG streams and artifacts are deterministic — so
    /// both only pin wall-clock behaviour.)
    pub fn for_each(&self, mut sink: impl FnMut(SweepPoint)) {
        self.try_for_each_cached(ArtifactCache::global(), |point| {
            sink(point);
            true
        });
    }

    /// [`Sweep::for_each`] against an explicit cache — the `eraser-serve`
    /// hook, whose server owns a cache sized by its own `--cache-mb`.
    ///
    /// The sink returns whether to continue: `false` abandons the rest of
    /// the grid (a disconnected client), completed points stay delivered.
    /// Returns `true` iff the whole grid ran.
    pub fn try_for_each_cached(
        &self,
        cache: &ArtifactCache,
        mut sink: impl FnMut(SweepPoint) -> bool,
    ) -> bool {
        let mut config = RunConfig {
            shots: self.shots,
            seed: self.seed,
            threads: self.threads,
            decoder: self.decoder,
            protocol: self.protocol,
            decode: self.decode,
            erasure: self.erasure,
            stripe_width: self.stripe_width,
            window_rounds: self.window_rounds,
            window_stride: self.window_stride,
            fusion_threads: self.fusion_threads,
            controller: self.controller,
            profile: self.profile,
            predecode: self.predecode,
        };
        // The builder validated the environment, but it can have changed
        // since; the panic here is the documented low-level behaviour.
        config.threads = config.resolved_threads().unwrap_or_else(|e| panic!("{e}"));
        // Adaptive kinds resolve the run-level controller override once for
        // the whole grid (every cell shares one configuration).
        let policies: Vec<PolicyKind> = self
            .policies
            .iter()
            .map(|kind| kind.resolved(&config).unwrap_or_else(|e| panic!("{e}")))
            .collect();
        for &d in &self.distances {
            let rounds = self.rounds.resolve(d);
            for &p in &self.error_rates {
                let noise = self.noise.params(p);
                let runner = cache.get_or_build(
                    &CacheKey {
                        experiment: ExperimentKey::new(d, rounds, self.basis, &noise),
                        kind: ArtifactKind::Runner,
                    },
                    MemoryRunner::approx_bytes,
                    || MemoryRunner::new_with_basis(d, noise, rounds, self.basis),
                );
                let artifacts = runner
                    .decode_artifacts(&config, Some(cache))
                    .unwrap_or_else(|e| panic!("{e}"));
                for kind in &policies {
                    let result =
                        runner.run_with_artifacts(&|code| kind.build(code), &config, &artifacts);
                    let proceed = sink(SweepPoint {
                        distance: d,
                        p,
                        rounds,
                        policy: kind.label().to_string(),
                        result,
                    });
                    if !proceed {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Executes the whole grid and collects the points in execution order.
    pub fn run(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        self.for_each(|point| points.push(point));
        points
    }
}

/// Builder for [`Sweep`].
#[derive(Debug, Clone)]
pub struct SweepBuilder {
    distances: Vec<usize>,
    error_rates: Vec<f64>,
    policies: Vec<PolicyKind>,
    noise: NoiseModel,
    rounds: Option<RoundsSpec>,
    basis: MemoryBasis,
    shots: u64,
    seed: u64,
    threads: usize,
    decoder: DecoderKind,
    protocol: LrcProtocol,
    decode: bool,
    erasure: ErasureDetection,
    stripe_width: usize,
    window_rounds: usize,
    window_stride: usize,
    fusion_threads: usize,
    controller: Option<ControllerConfig>,
    profile: LeakageProfile,
    predecode: Option<bool>,
}

impl Default for SweepBuilder {
    fn default() -> SweepBuilder {
        let config = RunConfig::default();
        SweepBuilder {
            distances: Vec::new(),
            error_rates: Vec::new(),
            policies: Vec::new(),
            noise: NoiseModel::Standard,
            rounds: None,
            basis: MemoryBasis::Z,
            shots: config.shots,
            seed: config.seed,
            threads: config.threads,
            decoder: config.decoder,
            protocol: config.protocol,
            decode: config.decode,
            erasure: config.erasure,
            stripe_width: config.stripe_width,
            window_rounds: config.window_rounds,
            window_stride: config.window_stride,
            fusion_threads: config.fusion_threads,
            controller: config.controller,
            profile: config.profile,
            predecode: config.predecode,
        }
    }
}

impl SweepBuilder {
    /// Starts an empty grid with default run parameters.
    pub fn new() -> SweepBuilder {
        SweepBuilder::default()
    }

    /// Sets the distance axis.
    pub fn distances(mut self, distances: impl IntoIterator<Item = usize>) -> Self {
        self.distances = distances.into_iter().collect();
        self
    }

    /// Sets the physical-error-rate axis.
    pub fn error_rates(mut self, rates: impl IntoIterator<Item = f64>) -> Self {
        self.error_rates = rates.into_iter().collect();
        self
    }

    /// Sets the policy axis.
    pub fn policies(mut self, policies: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Appends one policy to the policy axis.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policies.push(policy);
        self
    }

    /// Noise family the per-point parameters derive from (default
    /// [`NoiseModel::Standard`]).
    pub fn noise_model(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Fixed rounds per shot for every distance.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = Some(RoundsSpec::Fixed(rounds));
        self
    }

    /// QEC cycles; each distance runs `d × cycles` rounds.
    pub fn cycles(mut self, cycles: usize) -> Self {
        self.rounds = Some(RoundsSpec::Cycles(cycles));
        self
    }

    /// Memory basis (default Z).
    pub fn basis(mut self, basis: MemoryBasis) -> Self {
        self.basis = basis;
        self
    }

    /// Monte-Carlo shots per grid point (default 1000).
    pub fn shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Root RNG seed, shared by every point (default `0x2023`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads; 0 resolves to all cores once per sweep (default).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Decoder selection (default auto).
    pub fn decoder(mut self, decoder: DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }

    /// LRC protocol (default SWAP).
    pub fn protocol(mut self, protocol: LrcProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Whether points decode (default on).
    pub fn decode(mut self, decode: bool) -> Self {
        self.decode = decode;
        self
    }

    /// Leakage-aware (erasure) decoding for every grid point (default off).
    pub fn leakage_aware_decoding(mut self, enabled: bool) -> Self {
        self.erasure.enabled = enabled;
        self
    }

    /// Imperfect-erasure-check FP/FN rates for every grid point (validated
    /// at build time).
    pub fn erasure_detection(mut self, false_positive: f64, false_negative: f64) -> Self {
        self.erasure.false_positive = false_positive;
        self.erasure.false_negative = false_negative;
        self
    }

    /// Shots simulated per word-parallel stripe for every grid point
    /// (1..=64; 0 resolves at run time).
    pub fn stripe_width(mut self, width: usize) -> Self {
        self.stripe_width = width;
        self
    }

    /// Sliding-window length in rounds for streaming decoding on every grid
    /// point (0 = monolithic / `ERASER_WINDOW` resolution, as on
    /// [`ExperimentBuilder::window_rounds`]).
    pub fn window_rounds(mut self, window: usize) -> Self {
        self.window_rounds = window;
        self
    }

    /// Rounds committed per window on every grid point (0 derives the
    /// `window − d` default; validated at build time).
    pub fn window_stride(mut self, stride: usize) -> Self {
        self.window_stride = stride;
        self
    }

    /// Intra-shot fusion threads on every grid point (0 = `ERASER_FUSION`
    /// resolution, else sequential — as on
    /// [`ExperimentBuilder::fusion_threads`]).
    pub fn fusion_threads(mut self, threads: usize) -> Self {
        self.fusion_threads = threads;
        self
    }

    /// Run-level controller override for adaptive policies on every grid
    /// point (validated at build time; static policies ignore it).
    pub fn controller(mut self, config: ControllerConfig) -> Self {
        self.controller = Some(config);
        self
    }

    /// Time-varying injected-leakage schedule applied to every grid point
    /// (default [`LeakageProfile::Stationary`]; validated at build time).
    pub fn leakage_profile(mut self, profile: LeakageProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Tiered predecoder on every grid point (bit-identical either way;
    /// beats the `ERASER_PREDECODE` environment hook, unset defaults to
    /// on — as on [`ExperimentBuilder::predecode`]).
    pub fn predecode(mut self, on: bool) -> Self {
        self.predecode = Some(on);
        self
    }

    /// Validates the grid and run parameters.
    pub fn build(self) -> Result<Sweep, ExperimentError> {
        if self.distances.is_empty() {
            return Err(ExperimentError::EmptyGridAxis("distances"));
        }
        if self.error_rates.is_empty() {
            return Err(ExperimentError::EmptyGridAxis("error_rates"));
        }
        if self.policies.is_empty() {
            return Err(ExperimentError::EmptyGridAxis("policies"));
        }
        for &d in &self.distances {
            validate_distance(d)?;
        }
        for &p in &self.error_rates {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ExperimentError::InvalidErrorRate(p));
            }
        }
        let rounds = self.rounds.ok_or(ExperimentError::MissingRounds)?;
        rounds.validate()?;
        validate_shots(self.shots)?;
        validate_erasure(&self.erasure)?;
        validate_stripe_width(self.stripe_width)?;
        validate_window(self.window_rounds, self.window_stride)?;
        for kind in &self.policies {
            validate_controller(&self.controller, Some(kind))?;
        }
        validate_profile(&self.profile)?;
        RunConfig {
            threads: self.threads,
            stripe_width: self.stripe_width,
            window_rounds: self.window_rounds,
            window_stride: self.window_stride,
            fusion_threads: self.fusion_threads,
            ..RunConfig::default()
        }
        .validate_env()?;
        Ok(Sweep {
            distances: self.distances,
            error_rates: self.error_rates,
            policies: self.policies,
            noise: self.noise,
            rounds,
            basis: self.basis,
            shots: self.shots,
            seed: self.seed,
            threads: self.threads,
            decoder: self.decoder,
            protocol: self.protocol,
            decode: self.decode,
            erasure: self.erasure,
            stripe_width: self.stripe_width,
            window_rounds: self.window_rounds,
            window_stride: self.window_stride,
            fusion_threads: self.fusion_threads,
            controller: self.controller,
            profile: self.profile,
            predecode: self.predecode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ExperimentBuilder {
        Experiment::builder()
            .distance(3)
            .rounds(2)
            .shots(10)
            .seed(1)
    }

    #[test]
    fn builder_requires_distance_and_rounds() {
        let err = Experiment::builder().rounds(2).build().unwrap_err();
        assert_eq!(err, ExperimentError::MissingDistance);
        let err = Experiment::builder().distance(3).build().unwrap_err();
        assert_eq!(err, ExperimentError::MissingRounds);
    }

    #[test]
    fn builder_rejects_invalid_parameters() {
        assert_eq!(
            base().distance(4).build().unwrap_err(),
            ExperimentError::InvalidDistance(4)
        );
        assert_eq!(
            base().distance(1).build().unwrap_err(),
            ExperimentError::InvalidDistance(1)
        );
        assert_eq!(
            base().rounds(0).build().unwrap_err(),
            ExperimentError::ZeroRounds
        );
        assert_eq!(
            base().cycles(0).build().unwrap_err(),
            ExperimentError::ZeroRounds
        );
        assert_eq!(
            base().shots(0).build().unwrap_err(),
            ExperimentError::ZeroShots
        );
        assert_eq!(
            base().erasure_detection(1.5, 0.0).build().unwrap_err(),
            ExperimentError::InvalidDetectionRate(1.5)
        );
        assert_eq!(
            base()
                .window_rounds(4)
                .window_stride(5)
                .build()
                .unwrap_err(),
            ExperimentError::InvalidWindow {
                window: 4,
                stride: 5
            }
        );
        assert_eq!(
            base().window_stride(2).build().unwrap_err(),
            ExperimentError::InvalidWindow {
                window: 0,
                stride: 2
            },
            "a stride needs a window"
        );
        assert!(matches!(
            base().erasure_detection(0.0, f64::NAN).build(),
            Err(ExperimentError::InvalidDetectionRate(_))
        ));
    }

    #[test]
    fn leakage_aware_knob_reaches_the_runtime() {
        let mut exp = base()
            .shots(60)
            .noise(NoiseParams::standard(5e-3))
            .rounds(6)
            .policy(PolicyKind::eraser_m())
            .leakage_aware_decoding(true)
            .erasure_detection(0.0, 0.1)
            .build()
            .unwrap();
        assert!(exp.config().erasure.enabled);
        assert_eq!(exp.config().erasure.false_negative, 0.1);
        let aware = exp.run();
        assert!(aware.total_erasures > 0, "erasure flags must be collected");
        exp.set_leakage_aware(false);
        let blind = exp.run();
        assert_eq!(blind.total_erasures, 0);
        // The physical shots are shared: only the decoding changed.
        assert_eq!(blind.total_lrcs, aware.total_lrcs);
        assert_eq!(blind.speculation, aware.speculation);
    }

    #[test]
    fn window_knobs_reach_the_runtime() {
        let exp = base()
            .shots(40)
            .rounds(9)
            .noise(NoiseParams::standard(3e-3))
            .policy(PolicyKind::eraser())
            .window_rounds(4)
            .window_stride(2)
            // Pinned sequential: the per-window sample count asserted below
            // is a property of the sequential chain (a CI-set ERASER_FUSION
            // would switch to one per-shot sample), and pinned tier-free:
            // the tier-0 skip elides empty windows' latency samples.
            .fusion_threads(1)
            .predecode(false)
            .build()
            .unwrap();
        assert_eq!(exp.config().window_rounds, 4);
        assert_eq!(exp.config().window_stride, 2);
        let windowed = exp.run();
        // Rounds 0..=9 are ten detector rounds: windows start at 0, 2, 4, 6
        // (the final [6, 9] commits the rest) → 4 windows per shot.
        assert_eq!(windowed.decode_latency.samples(), 40 * 4);
        assert!(!windowed.predecode.is_active(), "predecoder pinned off");

        // With the predecoder on (pinned, so a CI-set ERASER_PREDECODE=off
        // cannot flip the default) the physics and outcome are identical;
        // empty windows resolve at tier 0 without a sample, and every
        // window lands in exactly one tier.
        let tiered = base()
            .shots(40)
            .rounds(9)
            .noise(NoiseParams::standard(3e-3))
            .policy(PolicyKind::eraser())
            .window_rounds(4)
            .window_stride(2)
            .fusion_threads(1)
            .predecode(true)
            .build()
            .unwrap()
            .run();
        assert_eq!(tiered.logical_errors, windowed.logical_errors);
        assert_eq!(tiered.total_lrcs, windowed.total_lrcs);
        assert_eq!(tiered.predecode.total(), 40 * 4);
        assert_eq!(
            tiered.decode_latency.samples() + tiered.predecode.hits[0],
            40 * 4
        );
        // Same physics as the monolithic run of the same seed.
        let mono = base()
            .shots(40)
            .rounds(9)
            .noise(NoiseParams::standard(3e-3))
            .policy(PolicyKind::eraser())
            .build()
            .unwrap()
            .run();
        assert_eq!(mono.total_lrcs, windowed.total_lrcs);
        assert_eq!(mono.speculation, windowed.speculation);

        // Sweep builder carries the same knobs (predecode pinned off so the
        // per-window sample floor holds; on, tier 0 absorbs empty windows).
        let sweep = Sweep::builder()
            .distances([3])
            .error_rates([1e-3])
            .policy(PolicyKind::NoLrc)
            .rounds(8)
            .shots(8)
            .window_rounds(4)
            .window_stride(4)
            .fusion_threads(1)
            .predecode(false)
            .build()
            .unwrap();
        let points = sweep.run();
        assert_eq!(points.len(), 1);
        assert!(points[0].result.decode_latency.samples() >= 8 * 2);
        assert!(!points[0].result.predecode.is_active());
        assert!(Sweep::builder()
            .distances([3])
            .error_rates([1e-3])
            .policy(PolicyKind::NoLrc)
            .rounds(8)
            .shots(8)
            .window_rounds(2)
            .window_stride(3)
            .build()
            .is_err());
    }

    #[test]
    fn cycles_resolve_to_d_times_cycles() {
        let exp = base().cycles(4).build().unwrap();
        assert_eq!(exp.rounds(), 12);
    }

    #[test]
    fn experiment_matches_direct_runner_call() {
        let exp = base()
            .shots(40)
            .policy(PolicyKind::eraser())
            .build()
            .unwrap();
        let direct = {
            let runner = MemoryRunner::new(3, NoiseParams::default(), 2);
            let config = RunConfig {
                shots: 40,
                seed: 1,
                ..RunConfig::default()
            };
            runner.run(&|c| Box::new(EraserPolicy::new(c)), &config)
        };
        let via_facade = exp.run();
        assert_eq!(via_facade.logical_errors, direct.logical_errors);
        assert_eq!(via_facade.total_lrcs, direct.total_lrcs);
        assert_eq!(via_facade.speculation, direct.speculation);
        assert_eq!(via_facade.policy, direct.policy);
    }

    #[test]
    fn facade_resolves_auto_exactly_like_the_runtime() {
        let exp = base().build().unwrap();
        // d=3, 2 rounds is far below the Auto threshold → dense MWPM —
        // unless a CI matrix leg pinned the decoder via `ERASER_DECODER`,
        // in which case the facade must predict that pin instead.
        let expected = match std::env::var("ERASER_DECODER") {
            Ok(raw) if !raw.trim().is_empty() => raw
                .trim()
                .parse::<DecoderKind>()
                .unwrap()
                .resolve(exp.runner().graph()),
            _ => DecoderKind::Mwpm,
        };
        assert_eq!(exp.resolved_decoder(), expected);
        let result = exp.run();
        assert_eq!(result.decoder, exp.resolved_decoder().to_string());
    }

    /// The sparse-blossom acceptance bar end to end: a d = 11 long memory,
    /// whose decoding graph prices out the dense all-pairs table, Auto-
    /// selects the sparse MWPM backend and decodes through the facade.
    #[test]
    fn d11_long_memory_auto_selects_sparse_and_decodes() {
        let exp = Experiment::builder()
            .distance(11)
            .rounds(55)
            .shots(4)
            .seed(9)
            .policy(PolicyKind::NoLrc)
            .build()
            .unwrap();
        assert!(
            exp.runner().graph().num_nodes() > DecoderKind::AUTO_MWPM_NODE_LIMIT,
            "graph must be past the dense-MWPM limit ({} nodes)",
            exp.runner().graph().num_nodes()
        );
        // Env-independent form of the Auto rule: this graph is sparse
        // territory (an `ERASER_DECODER` pin may still override the run).
        assert_eq!(
            DecoderKind::Auto.resolve(exp.runner().graph()),
            DecoderKind::SparseMwpm
        );
        let result = exp.run();
        assert_eq!(result.shots, 4);
        // The reported decoder reflects the decode path actually taken. By
        // default that is the monolithic sparse blossom, but an
        // `ERASER_WINDOW` / `ERASER_FUSION` CI leg forces a streaming chain
        // whose per-window graph can be back inside dense-MWPM territory —
        // so compare against the resolved artifacts, not the monolithic
        // resolution.
        let artifacts = exp
            .runner()
            .decode_artifacts(exp.config(), None)
            .expect("artifacts resolve");
        assert_eq!(result.decoder, artifacts.decoder_name());
        if !artifacts.windowed() {
            assert_eq!(result.decoder, exp.resolved_decoder().to_string());
        }
        assert!(result.logical_errors <= result.shots);
    }

    #[test]
    fn policy_kind_round_trips_through_strings() {
        for kind in PolicyKind::all_standard() {
            let parsed: PolicyKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind, "round-trip of {kind}");
        }
        assert!("martian".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn policy_kind_builds_the_advertised_policy() {
        let code = RotatedCode::new(3);
        let expected = [
            (PolicyKind::NoLrc, "no-lrc"),
            (PolicyKind::AlwaysLrc, "always-lrc"),
            (PolicyKind::AlwaysEveryRound, "always-every-round"),
            (PolicyKind::eraser(), "eraser"),
            (PolicyKind::eraser_m(), "eraser+m"),
            (PolicyKind::Optimal, "optimal"),
        ];
        for (kind, name) in expected {
            assert_eq!(kind.build(&code).name(), name);
        }
        assert!(PolicyKind::eraser_m().build(&code).uses_multilevel());
    }

    #[test]
    fn custom_policy_kind_is_usable_and_comparable() {
        let kind = PolicyKind::custom("mine", |_| Box::new(NoLrcPolicy::new()));
        assert_eq!(kind.label(), "mine");
        assert_eq!(kind, kind.clone());
        assert_ne!(
            kind,
            PolicyKind::custom("mine", |_| Box::new(NoLrcPolicy::new()))
        );
        let code = RotatedCode::new(3);
        assert_eq!(kind.build(&code).name(), "no-lrc");
    }

    #[test]
    fn decoder_kind_round_trips_through_strings() {
        for kind in [
            DecoderKind::Auto,
            DecoderKind::Mwpm,
            DecoderKind::SparseMwpm,
            DecoderKind::UnionFind,
            DecoderKind::Greedy,
        ] {
            assert_eq!(kind.to_string().parse::<DecoderKind>().unwrap(), kind);
        }
        assert_eq!("uf".parse::<DecoderKind>().unwrap(), DecoderKind::UnionFind);
        assert_eq!(
            "sparse".parse::<DecoderKind>().unwrap(),
            DecoderKind::SparseMwpm
        );
        assert!("tensor-network".parse::<DecoderKind>().is_err());
    }

    #[test]
    fn sweep_build_validates_axes() {
        let b = || {
            Sweep::builder()
                .distances([3])
                .error_rates([1e-3])
                .policy(PolicyKind::NoLrc)
                .rounds(2)
                .shots(5)
        };
        assert!(b().build().is_ok());
        assert_eq!(
            b().distances([]).build().unwrap_err(),
            ExperimentError::EmptyGridAxis("distances")
        );
        assert_eq!(
            b().error_rates([]).build().unwrap_err(),
            ExperimentError::EmptyGridAxis("error_rates")
        );
        assert_eq!(
            b().policies([]).build().unwrap_err(),
            ExperimentError::EmptyGridAxis("policies")
        );
        assert_eq!(
            b().distances([4]).build().unwrap_err(),
            ExperimentError::InvalidDistance(4)
        );
        assert!(matches!(
            b().error_rates([f64::NAN]).build(),
            Err(ExperimentError::InvalidErrorRate(_))
        ));
        assert_eq!(
            b().error_rates([1.5]).build().unwrap_err(),
            ExperimentError::InvalidErrorRate(1.5)
        );
        assert_eq!(
            b().shots(0).build().unwrap_err(),
            ExperimentError::ZeroShots
        );
    }

    #[test]
    fn sweep_streams_points_in_grid_order() {
        let sweep = Sweep::builder()
            .distances([3])
            .error_rates([1e-3, 2e-3])
            .policies([PolicyKind::NoLrc, PolicyKind::eraser()])
            .rounds(2)
            .shots(8)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(sweep.len(), 4);
        let points = sweep.run();
        let order: Vec<(f64, &str)> = points.iter().map(|pt| (pt.p, pt.policy.as_str())).collect();
        assert_eq!(
            order,
            vec![
                (1e-3, "no-lrc"),
                (1e-3, "eraser"),
                (2e-3, "no-lrc"),
                (2e-3, "eraser")
            ]
        );
        assert!(points
            .iter()
            .all(|pt| pt.result.shots == 8 && pt.rounds == 2));
    }

    #[test]
    fn adaptive_policy_kind_round_trips_and_builds() {
        use crate::control::ControlLawKind;
        for (kind, label) in [
            (PolicyKind::adaptive(ControlLawKind::Ewma), "adaptive-ewma"),
            (
                PolicyKind::adaptive(ControlLawKind::Budget),
                "adaptive-budget",
            ),
        ] {
            assert_eq!(kind.label(), label);
            let parsed: PolicyKind = label.parse().unwrap();
            assert_eq!(parsed, kind, "round-trip of {label}");
        }
        assert_eq!(
            "adaptive".parse::<PolicyKind>().unwrap(),
            PolicyKind::adaptive(ControlLawKind::Ewma),
            "bare \"adaptive\" means the EWMA escalator"
        );
        let code = RotatedCode::new(3);
        let policy = PolicyKind::adaptive(ControlLawKind::Ewma).build(&code);
        assert_eq!(policy.name(), "adaptive-ewma");
        assert!(
            policy.uses_multilevel(),
            "adaptive runs reserve multi-level readout for escalation"
        );
    }

    #[test]
    fn builder_rejects_invalid_controller_and_profile() {
        let bad = ControllerConfig {
            up: 0.1,
            down: 0.5,
            ..ControllerConfig::ewma()
        };
        assert_eq!(
            base().controller(bad).build().unwrap_err(),
            ExperimentError::InvalidController("thresholds must satisfy 0 <= down <= up <= 1")
        );
        assert_eq!(
            base()
                .policy(PolicyKind::Adaptive(bad))
                .build()
                .unwrap_err(),
            ExperimentError::InvalidController("thresholds must satisfy 0 <= down <= up <= 1")
        );
        assert_eq!(
            base()
                .leakage_profile(LeakageProfile::Burst {
                    start: 0,
                    len: 0,
                    period: 4,
                    rate: 0.1,
                })
                .build()
                .unwrap_err(),
            ExperimentError::InvalidProfile("burst length must be at least one round")
        );
        assert_eq!(
            Sweep::builder()
                .distances([3])
                .error_rates([1e-3])
                .policy(PolicyKind::Adaptive(bad))
                .rounds(2)
                .shots(5)
                .build()
                .unwrap_err(),
            ExperimentError::InvalidController("thresholds must satisfy 0 <= down <= up <= 1")
        );
    }

    #[test]
    fn run_config_controller_overrides_the_variant_knobs() {
        use crate::control::ControlLawKind;
        let override_config = ControllerConfig {
            budget: 7,
            ..ControllerConfig::budget()
        };
        let kind = PolicyKind::adaptive(ControlLawKind::Ewma);
        let mut config = RunConfig::default();
        assert_eq!(
            kind.resolved(&config).unwrap(),
            kind,
            "no override leaves the embedded knobs"
        );
        config.controller = Some(override_config);
        assert_eq!(
            kind.resolved(&config).unwrap(),
            PolicyKind::Adaptive(override_config),
            "the run-level controller rebinds the variant"
        );
        // Static kinds never change.
        assert_eq!(
            PolicyKind::eraser().resolved(&config).unwrap(),
            PolicyKind::eraser()
        );
    }

    #[test]
    fn leakage_profile_and_controller_reach_the_runtime() {
        use crate::control::ControlLawKind;
        let storm = LeakageProfile::Burst {
            start: 2,
            len: 3,
            period: 0,
            rate: 0.25,
        };
        let exp = base()
            .shots(40)
            .rounds(8)
            .noise(NoiseParams::standard(2e-3))
            .policy(PolicyKind::adaptive(ControlLawKind::Ewma))
            .leakage_profile(storm)
            .build()
            .unwrap();
        assert_eq!(exp.config().profile, storm);
        let result = exp.run();
        assert!(
            result.controller.is_active(),
            "adaptive runs must report controller telemetry"
        );
        assert_eq!(result.controller.rounds(), 40 * 8);
        // A static policy on the same workload reports no controller.
        let quiet = base()
            .shots(40)
            .rounds(8)
            .noise(NoiseParams::standard(2e-3))
            .policy(PolicyKind::eraser())
            .leakage_profile(storm)
            .build()
            .unwrap()
            .run();
        assert!(!quiet.controller.is_active());
        assert_eq!(quiet.controller, crate::control::ControllerStats::default());
    }
}
