//! LRC scheduling policies (§4 of the paper).
//!
//! A policy is consulted once per syndrome-extraction round, *before* the
//! round executes, with the detection events produced by the previous round
//! (the "current syndrome" in the paper's terminology, §4.2 footnote). It
//! returns the LRC assignments for the upcoming round.
//!
//! | policy | source of truth | paper role |
//! |---|---|---|
//! | [`NoLrcPolicy`] | — | "No LRC" baseline (Fig 1c, 2c) |
//! | [`AlwaysLrcPolicy`] | fixed schedule | state-of-the-art Always-LRCs (Fig 3) |
//! | [`EraserPolicy`] | ≥2 neighbouring parity flips (LSB) | ERASER |
//! | [`EraserPolicy::with_multilevel`] | flips + \|L⟩ readouts | ERASER+M (§4.6) |
//! | [`OptimalPolicy`] | simulator ground truth | idealized oracle |

use crate::swap_table::SwapLookupTable;
use surface_code::{LrcAssignment, RotatedCode, SlotTable};

/// Everything a policy may inspect when planning the next round.
#[derive(Debug, Clone, Copy)]
pub struct RoundContext<'a> {
    /// Index of the round being planned (0-based). Round 0 has no syndrome
    /// history: `events` is all-false.
    pub round: usize,
    /// Detection events per stabilizer from the previous round (syndrome bit
    /// changed relative to the round before).
    pub events: &'a [bool],
    /// Per-stabilizer flag: the previous round's readout for this stabilizer
    /// was classified |L⟩ (only ever true under multi-level readout).
    pub leaked_readouts: &'a [bool],
    /// Ground-truth leakage per data qubit at planning time. Only
    /// [`OptimalPolicy`] reads this — it models the idealized scheduler, not
    /// physically available information.
    pub oracle_leaked_data: &'a [bool],
    /// The LRC assignments that were executed in the previous round.
    pub last_lrcs: &'a [LrcAssignment],
}

/// Per-round leakage-detection outcomes a policy exposes to the decoder —
/// the read path of erasure-aware decoding (ERASER's detection flags become
/// heralded-erasure information, per Gu/Retzker/Kubica 2023 and Chang et
/// al. 2024).
///
/// The flags are the policy's *belief* at planning time, not ground truth:
/// speculation already has false positives and negatives, and the runtime
/// can layer additional imperfect-erasure-check noise on top (configurable
/// FP/FN rates in `ErasureDetection`).
#[derive(Debug, Clone, Copy)]
pub struct LeakageDetections<'a> {
    /// Per data qubit: believed leaked while the upcoming round executes
    /// (heralds the qubit's checks' time-like edges — a leaked qubit kicks
    /// random Paulis onto its CNOT partners, randomizing their readouts).
    pub data: &'a [bool],
    /// Per data qubit: leakage was just *removed* — the previous round's LRC
    /// (or seepage, for the oracle) returned the qubit to the computational
    /// basis in an effectively random state. Heralds the qubit's own
    /// data-error (space-like) edge around the return round, plus the
    /// time-like edges of the preceding leaked window.
    pub data_returned: &'a [bool],
    /// Per parity qubit (stabilizer index): the previous round's readout was
    /// classified |L⟩ (only ever true under multi-level readout).
    pub parity: &'a [bool],
}

/// An LRC scheduling policy. Implementations are stateful per shot; the
/// runtime calls [`LrcPolicy::reset_shot`] between shots.
pub trait LrcPolicy {
    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Clears per-shot state.
    fn reset_shot(&mut self);

    /// Plans the LRC assignments for the upcoming round.
    fn plan_round(&mut self, ctx: &RoundContext<'_>) -> Vec<LrcAssignment>;

    /// Whether this policy requires multi-level readout (ERASER+M).
    fn uses_multilevel(&self) -> bool {
        false
    }

    /// Read path for erasure-aware decoding: the leakage flags this policy
    /// holds after the latest [`LrcPolicy::plan_round`] call. Policies
    /// without a detection mechanism (the static baselines) return `None`
    /// and leave the decoder leakage-blind.
    fn leakage_detections(&self) -> Option<LeakageDetections<'_>> {
        None
    }

    /// Run-level feedback-controller telemetry. Static policies return
    /// `None`; [`crate::control::AdaptivePolicy`] exposes its accumulated
    /// [`crate::control::ControllerStats`], which the runtime harvests once
    /// per worker (scalar) or lane (striped) and merges exactly.
    fn controller(&self) -> Option<&crate::control::ControllerStats> {
        None
    }
}

/// The striped (64-shots-per-word) planning context: the same signals as
/// [`RoundContext`], transposed into one word per stabilizer / data qubit
/// with bit `l` belonging to stripe lane `l`.
#[derive(Debug, Clone, Copy)]
pub struct StripeRoundContext<'a> {
    /// Index of the round being planned (0-based; shared by every lane).
    pub round: usize,
    /// Detection-event words per stabilizer from the previous round.
    pub events: &'a [u64],
    /// |L⟩-label words per stabilizer from the previous round.
    pub leaked_readouts: &'a [u64],
    /// Ground-truth leakage words per data qubit at planning time (consumed
    /// only by the oracle policy).
    pub oracle_leaked_data: &'a [u64],
    /// Lanes holding live shots.
    pub active: u64,
}

/// The batched read path of the policy layer: wraps one scalar
/// [`LrcPolicy`] instance per stripe lane and resolves their per-shot plans
/// into per-**slot** lane masks over a [`SlotTable`] — the form the
/// word-parallel runtime's static schedules consume.
///
/// Lane `l`'s policy sees exactly the [`RoundContext`] the scalar runtime
/// would hand it for that shot (the transposed words are re-sliced per
/// lane), and plans are canonically sorted by `(data, stab)` — the same
/// order the scalar path applies — so striped and scalar runs stay
/// bit-identical.
pub struct StripedPolicy {
    lanes: Vec<Box<dyn LrcPolicy>>,
    last_plans: Vec<Vec<LrcAssignment>>,
    /// Per-lane transposed signal rows (`lane × num_stabs` /
    /// `lane × num_data`), rebuilt each round by *scattering* the set bits
    /// of the context words — the signals are sparse, so this beats
    /// extracting every (lane, index) bit.
    events_rows: Vec<bool>,
    labels_rows: Vec<bool>,
    oracle_rows: Vec<bool>,
    num_stabs: usize,
    num_data: usize,
    active_lanes: usize,
}

impl StripedPolicy {
    /// Builds one policy instance per lane from `factory` (at most
    /// `max_lanes`, the stripe width).
    pub fn new(
        factory: &(dyn Fn(&RotatedCode) -> Box<dyn LrcPolicy> + Sync),
        code: &RotatedCode,
        max_lanes: usize,
    ) -> StripedPolicy {
        StripedPolicy {
            lanes: (0..max_lanes).map(|_| factory(code)).collect(),
            last_plans: vec![Vec::new(); max_lanes],
            events_rows: vec![false; max_lanes * code.num_stabs()],
            labels_rows: vec![false; max_lanes * code.num_stabs()],
            oracle_rows: vec![false; max_lanes * code.num_data()],
            num_stabs: code.num_stabs(),
            num_data: code.num_data(),
            active_lanes: max_lanes,
        }
    }

    /// Display name (all lanes run the same policy).
    pub fn name(&self) -> &'static str {
        self.lanes[0].name()
    }

    /// Whether the wrapped policy requires multi-level readout.
    pub fn uses_multilevel(&self) -> bool {
        self.lanes[0].uses_multilevel()
    }

    /// Starts a fresh stripe of `lanes` live shots.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` exceeds the constructed stripe width.
    pub fn reset_stripe(&mut self, lanes: usize) {
        assert!(lanes <= self.lanes.len(), "stripe wider than constructed");
        self.active_lanes = lanes;
        for policy in &mut self.lanes[..lanes] {
            policy.reset_shot();
        }
        for plan in &mut self.last_plans[..lanes] {
            plan.clear();
        }
    }

    /// Plans the upcoming round for every active lane, writing one lane
    /// mask per slot into `slot_masks` (zeroed first).
    ///
    /// # Panics
    ///
    /// Panics if a lane's policy schedules a non-adjacent (data, stab)
    /// pair; `slot_masks` must hold `slots.len()` words.
    pub fn plan_round(
        &mut self,
        ctx: &StripeRoundContext<'_>,
        slots: &SlotTable,
        slot_masks: &mut [u64],
    ) {
        assert_eq!(slot_masks.len(), slots.len());
        slot_masks.fill(0);
        let width = self.lanes.len();
        self.events_rows[..width * self.num_stabs].fill(false);
        self.labels_rows[..width * self.num_stabs].fill(false);
        self.oracle_rows[..width * self.num_data].fill(false);
        let scatter = |rows: &mut [bool], stride: usize, index: usize, word: u64| {
            let mut lanes = word;
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                rows[lane * stride + index] = true;
                lanes &= lanes - 1;
            }
        };
        for (s, &word) in ctx.events.iter().enumerate() {
            scatter(&mut self.events_rows, self.num_stabs, s, word & ctx.active);
        }
        for (s, &word) in ctx.leaked_readouts.iter().enumerate() {
            scatter(&mut self.labels_rows, self.num_stabs, s, word & ctx.active);
        }
        for (q, &word) in ctx.oracle_leaked_data.iter().enumerate() {
            scatter(&mut self.oracle_rows, self.num_data, q, word & ctx.active);
        }
        for lane in 0..self.active_lanes {
            if ctx.active >> lane & 1 == 0 {
                continue;
            }
            let mut plan = self.lanes[lane].plan_round(&RoundContext {
                round: ctx.round,
                events: &self.events_rows[lane * self.num_stabs..][..self.num_stabs],
                leaked_readouts: &self.labels_rows[lane * self.num_stabs..][..self.num_stabs],
                oracle_leaked_data: &self.oracle_rows[lane * self.num_data..][..self.num_data],
                last_lrcs: &self.last_plans[lane],
            });
            // Canonical order: the striped and scalar paths must consume
            // plans identically (the static schedule's slots are sorted the
            // same way).
            plan.sort_unstable_by_key(|l| (l.data, l.stab));
            debug_assert!(
                plan.windows(2).all(|w| w[0].data != w[1].data) && {
                    let mut stabs: Vec<usize> = plan.iter().map(|l| l.stab).collect();
                    stabs.sort_unstable();
                    stabs.windows(2).all(|w| w[0] != w[1])
                },
                "policy produced a conflicting plan"
            );
            for lrc in &plan {
                let slot = slots
                    .slot_of(lrc.data, lrc.stab)
                    .expect("policy scheduled a non-adjacent LRC pair");
                slot_masks[slot] |= 1u64 << lane;
            }
            self.last_plans[lane] = plan;
        }
    }

    /// Lane `lane`'s leakage-detection read path (after the latest
    /// [`StripedPolicy::plan_round`]).
    pub fn lane_detections(&self, lane: usize) -> Option<LeakageDetections<'_>> {
        self.lanes[lane].leakage_detections()
    }

    /// Lane `lane`'s feedback-controller telemetry (the lane's own
    /// run-level accumulation; harvested once after the lane's last shot).
    pub fn lane_controller(&self, lane: usize) -> Option<&crate::control::ControllerStats> {
        self.lanes[lane].controller()
    }
}

/// Baseline: never schedule an LRC.
#[derive(Debug, Clone, Default)]
pub struct NoLrcPolicy;

impl NoLrcPolicy {
    /// Creates the policy.
    pub fn new() -> NoLrcPolicy {
        NoLrcPolicy
    }
}

impl LrcPolicy for NoLrcPolicy {
    fn name(&self) -> &'static str {
        "no-lrc"
    }

    fn reset_shot(&mut self) {}

    fn plan_round(&mut self, _ctx: &RoundContext<'_>) -> Vec<LrcAssignment> {
        Vec::new()
    }
}

/// The state-of-the-art static policy: LRCs on alternating rounds, `d² − 1`
/// at a time, with the left-out data qubit rotating so every qubit is covered
/// (Fig 3). With [`AlwaysLrcPolicy::every_round`] it applies the schedule in
/// every round instead — the shape used by the baseline DQLR protocol
/// (Appendix A.2), which removes leakage each round.
#[derive(Debug, Clone)]
pub struct AlwaysLrcPolicy {
    plans: [Vec<LrcAssignment>; 2],
    every_round: bool,
}

impl AlwaysLrcPolicy {
    /// Alternate-round SWAP-LRC schedule (the paper's Always-LRCs baseline).
    pub fn new(code: &RotatedCode) -> AlwaysLrcPolicy {
        AlwaysLrcPolicy {
            plans: Self::build_plans(code),
            every_round: false,
        }
    }

    /// Every-round schedule (used as the baseline DQLR policy).
    pub fn every_round(code: &RotatedCode) -> AlwaysLrcPolicy {
        AlwaysLrcPolicy {
            plans: Self::build_plans(code),
            every_round: true,
        }
    }

    fn build_plans(code: &RotatedCode) -> [Vec<LrcAssignment>; 2] {
        let table = SwapLookupTable::new(code);
        // Plan A: every data qubit with a primary.
        let mut plan_a = Vec::new();
        for q in 0..code.num_data() {
            if let Some(s) = table.primary(q) {
                plan_a.push(LrcAssignment { data: q, stab: s });
            }
        }
        // Plan B: the unmatched qubit takes its backup; the backup's primary
        // owner sits out this time (rotating coverage).
        let leftover = table.unmatched_data().expect("one unmatched data qubit");
        let backup = table.backup(leftover).expect("backup for unmatched qubit");
        let mut plan_b = vec![LrcAssignment {
            data: leftover,
            stab: backup,
        }];
        for q in 0..code.num_data() {
            if q == leftover {
                continue;
            }
            match table.primary(q) {
                Some(s) if s != backup => plan_b.push(LrcAssignment { data: q, stab: s }),
                _ => {}
            }
        }
        [plan_a, plan_b]
    }
}

impl LrcPolicy for AlwaysLrcPolicy {
    fn name(&self) -> &'static str {
        if self.every_round {
            "always-every-round"
        } else {
            "always-lrc"
        }
    }

    fn reset_shot(&mut self) {}

    fn plan_round(&mut self, ctx: &RoundContext<'_>) -> Vec<LrcAssignment> {
        if self.every_round {
            self.plans[ctx.round % 2].clone()
        } else if ctx.round % 2 == 1 {
            // Rounds 0, 2, 4… run plain extraction (parity qubits get their
            // MR); rounds 1, 3, 5… carry the LRCs.
            self.plans[(ctx.round / 2) % 2].clone()
        } else {
            Vec::new()
        }
    }
}

/// The idealized policy: schedules an LRC for exactly the data qubits that
/// are truly leaked, as soon as they leak (§3.2). Physically unrealizable —
/// it reads the simulator's ground truth — but it upper-bounds what any
/// speculation can achieve.
#[derive(Debug, Clone)]
pub struct OptimalPolicy {
    table: SwapLookupTable,
    /// Oracle leakage flags at the latest planning time (the read path: this
    /// policy's "detector" is perfect, so erasure-aware decoding under it
    /// upper-bounds what any real detector enables).
    detected_data: Vec<bool>,
    /// Qubits leaked at the previous planning time but clean now — the
    /// oracle's exact "leakage just removed" herald.
    detected_return: Vec<bool>,
    /// Constantly `false`: [`RoundContext`] carries no parity-qubit ground
    /// truth (the oracle models an idealized *data* scheduler). Sized for
    /// the runtime's imperfect-check false-positive synthesis.
    detected_parity: Vec<bool>,
}

impl OptimalPolicy {
    /// Creates the oracle policy for a code.
    pub fn new(code: &RotatedCode) -> OptimalPolicy {
        OptimalPolicy {
            table: SwapLookupTable::new(code),
            detected_data: vec![false; code.num_data()],
            detected_return: vec![false; code.num_data()],
            detected_parity: vec![false; code.num_stabs()],
        }
    }
}

impl LrcPolicy for OptimalPolicy {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn reset_shot(&mut self) {
        self.detected_data.fill(false);
        self.detected_return.fill(false);
    }

    fn plan_round(&mut self, ctx: &RoundContext<'_>) -> Vec<LrcAssignment> {
        for (q, &leaked) in ctx.oracle_leaked_data.iter().enumerate() {
            self.detected_return[q] = self.detected_data[q] && !leaked;
            self.detected_data[q] = leaked;
        }
        let mut used = vec![false; ctx.events.len()];
        for lrc in ctx.last_lrcs {
            used[lrc.stab] = true;
        }
        let mut plan = Vec::new();
        for (q, &leaked) in ctx.oracle_leaked_data.iter().enumerate() {
            if !leaked {
                continue;
            }
            for s in self.table.candidates(q) {
                if !used[s] {
                    used[s] = true;
                    plan.push(LrcAssignment { data: q, stab: s });
                    break;
                }
            }
            // No free partner: the qubit stays leaked and reappears in the
            // oracle set next round.
        }
        plan
    }

    fn leakage_detections(&self) -> Option<LeakageDetections<'_>> {
        Some(LeakageDetections {
            data: &self.detected_data,
            data_returned: &self.detected_return,
            parity: &self.detected_parity,
        })
    }
}

/// ERASER (§4.2–§4.4): the Leakage Speculation Block with its Leakage
/// Tracking Table (LTT) and Parity Usage Tracking Table (PUTT), plus Dynamic
/// LRC Insertion through the primary/backup SWAP Lookup Table.
///
/// A data qubit is speculated leaked when **at least half** of its
/// neighbouring parity checks flipped (§4.2.1: two flips for bulk qubits per
/// Fig 10, a single flip for weight-2 corner qubits) — unless it received an
/// LRC in the previous round, in which case any leakage was just removed.
/// With
/// [`EraserPolicy::with_multilevel`] the LSB additionally marks every data
/// neighbour of a parity qubit whose readout was classified |L⟩ (ERASER+M,
/// §4.6.1).
#[derive(Debug, Clone)]
pub struct EraserPolicy {
    code: RotatedCode,
    table: SwapLookupTable,
    /// Leakage Tracking Table: one bit per data qubit.
    ltt: Vec<bool>,
    /// Data-qubit channel of the read path. Constantly `false` under both
    /// readout modes — two-level ERASER has no erasure-grade data herald
    /// (see the read-path comment in `plan_round`), and ERASER+M's data
    /// information arrives through [`EraserPolicy::detected_return`] — but
    /// kept at full size so the runtime's imperfect-check model can
    /// synthesize false positives over it.
    detected_data: Vec<bool>,
    /// Data qubits whose LRC *confirmed* leakage: serviced in the previous
    /// round and showing the post-LRC return transient now. A false flag's
    /// LRC is transparent (the SWAP preserves an unleaked state), so this
    /// signal is far more precise than speculation itself.
    detected_return: Vec<bool>,
    /// Parity qubits whose previous readout was classified |L⟩ (multilevel
    /// only) — the erasure read path.
    detected_parity: Vec<bool>,
    multilevel: bool,
    options: EraserOptions,
    /// Reusable planning scratch ("which data qubits had an LRC last
    /// round") — `plan_round` runs once per shot-round on the hot path, so
    /// it must not allocate.
    scratch_had_lrc: Vec<bool>,
    /// Reusable planning scratch ("which parity qubits are claimed").
    scratch_used: Vec<bool>,
}

/// Design knobs of the LSB/DLI, exposed for the ablation studies DESIGN.md
/// calls out (the defaults are the paper's design point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EraserOptions {
    /// Flip-count threshold override; 0 keeps the paper's "at least half,
    /// minimum two" rule. A value `t` demands ≥ t flips regardless of the
    /// neighbour count (Insight #2: too low wastes LRCs, too high misses
    /// leakage).
    pub threshold_override: usize,
    /// Honour the Parity Usage Tracking Table (§4.2.2). Disabling it lets a
    /// parity qubit serve LRCs in consecutive rounds and accumulate leakage.
    pub use_putt: bool,
    /// Consult the backup column of the SWAP Lookup Table (§4.4). Disabling
    /// it reverts to primary-only allocation and drops conflicting LRCs.
    pub use_backup: bool,
}

impl Default for EraserOptions {
    fn default() -> EraserOptions {
        EraserOptions {
            threshold_override: 0,
            use_putt: true,
            use_backup: true,
        }
    }
}

impl EraserPolicy {
    /// ERASER with standard two-level readout.
    pub fn new(code: &RotatedCode) -> EraserPolicy {
        EraserPolicy {
            table: SwapLookupTable::new(code),
            ltt: vec![false; code.num_data()],
            detected_data: vec![false; code.num_data()],
            detected_return: vec![false; code.num_data()],
            detected_parity: vec![false; code.num_stabs()],
            code: code.clone(),
            multilevel: false,
            options: EraserOptions::default(),
            scratch_had_lrc: Vec::new(),
            scratch_used: Vec::new(),
        }
    }

    /// ERASER+M: ERASER plus multi-level readout integration.
    pub fn with_multilevel(code: &RotatedCode) -> EraserPolicy {
        EraserPolicy {
            multilevel: true,
            ..EraserPolicy::new(code)
        }
    }

    /// ERASER with explicit design knobs (ablation studies).
    pub fn with_options(code: &RotatedCode, options: EraserOptions) -> EraserPolicy {
        EraserPolicy {
            options,
            ..EraserPolicy::new(code)
        }
    }

    /// ERASER+M with explicit design knobs.
    pub fn with_multilevel_options(code: &RotatedCode, options: EraserOptions) -> EraserPolicy {
        EraserPolicy {
            multilevel: true,
            options,
            ..EraserPolicy::new(code)
        }
    }

    /// The paper's speculation threshold for a data qubit with `neighbours`
    /// adjacent parity qubits: **at least half** (§4.2.1). Bulk qubits (3–4
    /// neighbours) need the "at least two flips" of Fig 10; weight-2 corner
    /// qubits trigger on a single flip. This reproduces the paper's ≈3%
    /// false-positive rate and Table 4 LRC counts.
    pub fn threshold(neighbours: usize) -> usize {
        neighbours.div_ceil(2)
    }

    fn effective_threshold(&self, neighbours: usize) -> usize {
        if self.options.threshold_override == 0 {
            Self::threshold(neighbours)
        } else {
            self.options.threshold_override
        }
    }

    /// Read-only view of the LTT (exposed for tests and the RTL generator).
    pub fn ltt(&self) -> &[bool] {
        &self.ltt
    }
}

impl LrcPolicy for EraserPolicy {
    fn name(&self) -> &'static str {
        if self.multilevel {
            "eraser+m"
        } else {
            "eraser"
        }
    }

    fn reset_shot(&mut self) {
        self.ltt.fill(false);
        self.detected_data.fill(false);
        self.detected_return.fill(false);
        self.detected_parity.fill(false);
    }

    fn plan_round(&mut self, ctx: &RoundContext<'_>) -> Vec<LrcAssignment> {
        // --- Leakage Speculation Block -----------------------------------
        // Scratch is taken out of `self` and restored at the end: the body
        // keeps plain local borrows, with no steady-state allocation.
        let mut had_lrc = std::mem::take(&mut self.scratch_had_lrc);
        had_lrc.clear();
        had_lrc.resize(self.code.num_data(), false);
        for lrc in ctx.last_lrcs {
            had_lrc[lrc.data] = true;
        }
        for (q, &had) in had_lrc.iter().enumerate() {
            if had {
                // The LRC just removed any leakage; the syndrome transient it
                // causes must not retrigger speculation (§4.2.1).
                self.ltt[q] = false;
                continue;
            }
            let adj = self.code.adjacent_stabs(q);
            let flips = adj.iter().filter(|&&s| ctx.events[s]).count();
            if flips >= self.effective_threshold(adj.len()) {
                self.ltt[q] = true;
            }
        }
        // --- Erasure read path -------------------------------------------
        // Two-level readout provides no erasure-grade herald: the LSB's
        // speculative flags are precise enough to schedule cheap LRCs but
        // not to reweight the decoder (measured: feeding them in *raises*
        // the LER — the dominant false-positive trigger is an ordinary data
        // error, i.e. a real defect pair). Only multi-level |L⟩ labels —
        // genuine erasure checks in the sense of Chang et al. — flow to the
        // decoder.
        self.detected_data.fill(false);
        self.detected_return.fill(false);
        self.detected_parity.fill(false);
        if self.multilevel {
            // ERASER+M: a parity qubit read out as |L⟩ has likely transported
            // leakage to its data neighbours; speculate all of them (§4.6.1).
            for (s, &leaked) in ctx.leaked_readouts.iter().enumerate() {
                if !leaked {
                    continue;
                }
                for q in self.code.stabilizers()[s].support() {
                    if !had_lrc[q] {
                        self.ltt[q] = true;
                    }
                }
                // Read path: an |L⟩ label on a stabilizer that served an LRC
                // is the *data* qubit's readout (§4.6.2) — a hardware-
                // confirmed "this qubit was leaked and has just been
                // removed". Otherwise the parity qubit itself read out |L⟩.
                match ctx.last_lrcs.iter().find(|lrc| lrc.stab == s) {
                    Some(lrc) => self.detected_return[lrc.data] = true,
                    None => self.detected_parity[s] = true,
                }
            }
        }

        // --- Dynamic LRC Insertion ---------------------------------------
        // PUTT: parity qubits that served an LRC last round missed their MR
        // and must be measured+reset before serving again (§4.2.2).
        let mut used = std::mem::take(&mut self.scratch_used);
        used.clear();
        used.resize(self.code.num_stabs(), false);
        if self.options.use_putt {
            for lrc in ctx.last_lrcs {
                used[lrc.stab] = true;
            }
        }
        let mut plan = Vec::new();
        for q in 0..self.code.num_data() {
            if !self.ltt[q] {
                continue;
            }
            let candidates: Vec<usize> = if self.options.use_backup {
                self.table.candidates(q).collect()
            } else {
                self.table.primary(q).into_iter().collect()
            };
            for s in candidates {
                if !used[s] {
                    used[s] = true;
                    plan.push(LrcAssignment { data: q, stab: s });
                    self.ltt[q] = false;
                    break;
                }
            }
            // If every candidate is busy the entry stays in the LTT and
            // retries next round.
        }
        self.scratch_had_lrc = had_lrc;
        self.scratch_used = used;
        plan
    }

    fn uses_multilevel(&self) -> bool {
        self.multilevel
    }

    fn leakage_detections(&self) -> Option<LeakageDetections<'_>> {
        Some(LeakageDetections {
            data: &self.detected_data,
            data_returned: &self.detected_return,
            parity: &self.detected_parity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        round: usize,
        events: &'a [bool],
        leaked_readouts: &'a [bool],
        oracle: &'a [bool],
        last: &'a [LrcAssignment],
    ) -> RoundContext<'a> {
        RoundContext {
            round,
            events,
            leaked_readouts,
            oracle_leaked_data: oracle,
            last_lrcs: last,
        }
    }

    fn quiet(code: &RotatedCode) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
        (
            vec![false; code.num_stabs()],
            vec![false; code.num_stabs()],
            vec![false; code.num_data()],
        )
    }

    #[test]
    fn no_lrc_policy_never_schedules() {
        let code = RotatedCode::new(3);
        let (ev, lab, orc) = quiet(&code);
        let mut p = NoLrcPolicy::new();
        for r in 0..5 {
            assert!(p.plan_round(&ctx(r, &ev, &lab, &orc, &[])).is_empty());
        }
    }

    #[test]
    fn always_lrc_alternates_with_full_coverage() {
        let code = RotatedCode::new(5);
        let (ev, lab, orc) = quiet(&code);
        let mut p = AlwaysLrcPolicy::new(&code);
        let r0 = p.plan_round(&ctx(0, &ev, &lab, &orc, &[]));
        let r1 = p.plan_round(&ctx(1, &ev, &lab, &orc, &[]));
        let r2 = p.plan_round(&ctx(2, &ev, &lab, &orc, &[]));
        let r3 = p.plan_round(&ctx(3, &ev, &lab, &orc, &[]));
        assert!(r0.is_empty() && r2.is_empty());
        assert_eq!(r1.len(), code.num_stabs());
        assert_eq!(r3.len(), code.num_stabs());
        // The two LRC plans together cover every data qubit.
        let covered: std::collections::HashSet<usize> =
            r1.iter().chain(&r3).map(|l| l.data).collect();
        assert_eq!(covered.len(), code.num_data());
        // Average LRCs per round = (d²−1)/2, matching Table 4's baseline row.
        let avg = (r1.len() + r3.len()) as f64 / 4.0;
        assert!((avg - (code.num_data() - 1) as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn always_every_round_never_rests() {
        let code = RotatedCode::new(3);
        let (ev, lab, orc) = quiet(&code);
        let mut p = AlwaysLrcPolicy::every_round(&code);
        for r in 0..4 {
            assert_eq!(
                p.plan_round(&ctx(r, &ev, &lab, &orc, &[])).len(),
                code.num_stabs()
            );
        }
    }

    #[test]
    fn optimal_schedules_exactly_leaked_qubits() {
        let code = RotatedCode::new(3);
        let (ev, lab, mut orc) = quiet(&code);
        orc[4] = true;
        orc[7] = true;
        let mut p = OptimalPolicy::new(&code);
        let plan = p.plan_round(&ctx(2, &ev, &lab, &orc, &[]));
        let data: Vec<usize> = plan.iter().map(|l| l.data).collect();
        assert_eq!(data, vec![4, 7]);
        // Quiet oracle → nothing scheduled.
        let orc2 = vec![false; code.num_data()];
        assert!(p.plan_round(&ctx(3, &ev, &lab, &orc2, &[])).is_empty());
    }

    #[test]
    fn eraser_threshold_is_at_least_half() {
        assert_eq!(EraserPolicy::threshold(2), 1, "corner qubits: single flip");
        assert_eq!(EraserPolicy::threshold(3), 2);
        assert_eq!(EraserPolicy::threshold(4), 2);
    }

    #[test]
    fn eraser_fires_on_two_neighbouring_flips() {
        let code = RotatedCode::new(3);
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(1, 1); // interior: 4 neighbours
        let adj = code.adjacent_stabs(q);
        ev[adj[0]] = true;
        ev[adj[1]] = true;
        let mut p = EraserPolicy::new(&code);
        let plan = p.plan_round(&ctx(1, &ev, &lab, &orc, &[]));
        assert!(plan.iter().any(|l| l.data == q), "LRC for flipped qubit");
    }

    #[test]
    fn eraser_ignores_single_flip_on_bulk_qubits() {
        let code = RotatedCode::new(3);
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(1, 1); // interior: 4 neighbours, threshold 2
        ev[code.adjacent_stabs(q)[0]] = true;
        let mut p = EraserPolicy::new(&code);
        let plan = p.plan_round(&ctx(1, &ev, &lab, &orc, &[]));
        // The bulk qubit must not fire on one flip. (A weight-2 corner qubit
        // adjacent to the same stabilizer legitimately may — its threshold is
        // "half of two" = 1.)
        assert!(!plan.iter().any(|l| l.data == q));
        for l in &plan {
            assert_eq!(
                code.adjacent_stabs(l.data).len(),
                2,
                "only corners may fire"
            );
        }
    }

    #[test]
    fn eraser_skips_qubits_that_just_had_an_lrc() {
        let code = RotatedCode::new(3);
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(1, 1);
        let adj = code.adjacent_stabs(q);
        ev[adj[0]] = true;
        ev[adj[1]] = true;
        let last = [LrcAssignment {
            data: q,
            stab: adj[2],
        }];
        let mut p = EraserPolicy::new(&code);
        let plan = p.plan_round(&ctx(2, &ev, &lab, &orc, &last));
        assert!(
            !plan.iter().any(|l| l.data == q),
            "no re-speculation right after an LRC"
        );
    }

    #[test]
    fn putt_blocks_parity_reuse_in_consecutive_rounds() {
        let code = RotatedCode::new(3);
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(1, 1);
        let adj = code.adjacent_stabs(q);
        ev[adj[0]] = true;
        ev[adj[1]] = true;
        let mut p = EraserPolicy::new(&code);
        let table = SwapLookupTable::new(&code);
        let primary = table.primary(q).unwrap();
        // The primary served an LRC (for some other qubit) last round.
        let other = code.stabilizers()[primary]
            .support()
            .find(|&d| d != q)
            .unwrap();
        let last = [LrcAssignment {
            data: other,
            stab: primary,
        }];
        let plan = p.plan_round(&ctx(2, &ev, &lab, &orc, &last));
        let mine = plan.iter().find(|l| l.data == q).expect("still scheduled");
        assert_ne!(mine.stab, primary, "PUTT must divert to the backup");
        assert_eq!(mine.stab, table.backup(q).unwrap());
    }

    #[test]
    fn unserviced_ltt_entry_retries_next_round() {
        let code = RotatedCode::new(3);
        // Corner qubit with exactly two neighbours; block both.
        let q = code.data_qubit(0, 0);
        let adj: Vec<usize> = code.adjacent_stabs(q).to_vec();
        assert_eq!(adj.len(), 2);
        let (mut ev, lab, orc) = quiet(&code);
        ev[adj[0]] = true;
        ev[adj[1]] = true;
        let mut p = EraserPolicy::new(&code);
        // Both of q's candidates served LRCs last round (pick data owners for
        // them different from q).
        let table = SwapLookupTable::new(&code);
        let cands: Vec<usize> = table.candidates(q).collect();
        let last: Vec<LrcAssignment> = cands
            .iter()
            .map(|&s| LrcAssignment {
                data: code.stabilizers()[s].support().find(|&d| d != q).unwrap(),
                stab: s,
            })
            .collect();
        let plan = p.plan_round(&ctx(2, &ev, &lab, &orc, &last));
        assert!(!plan.iter().any(|l| l.data == q), "no free partner yet");
        assert!(p.ltt()[q], "entry must persist");
        // Next round with free partners: it gets serviced.
        let quiet_ev = vec![false; code.num_stabs()];
        let plan2 = p.plan_round(&ctx(3, &quiet_ev, &lab, &orc, &plan));
        assert!(plan2.iter().any(|l| l.data == q), "retried and serviced");
    }

    #[test]
    fn eraser_m_reacts_to_leaked_readout() {
        let code = RotatedCode::new(3);
        let (ev, mut lab, orc) = quiet(&code);
        let s = 3;
        lab[s] = true;
        let mut p = EraserPolicy::with_multilevel(&code);
        assert!(p.uses_multilevel());
        let plan = p.plan_round(&ctx(1, &ev, &lab, &orc, &[]));
        let planned: std::collections::HashSet<usize> = plan.iter().map(|l| l.data).collect();
        for q in code.stabilizers()[s].support() {
            assert!(planned.contains(&q), "neighbour {q} of leaked parity");
        }
        // Plain ERASER ignores labels entirely.
        let mut base = EraserPolicy::new(&code);
        assert!(base.plan_round(&ctx(1, &ev, &lab, &orc, &[])).is_empty());
    }

    #[test]
    fn plans_never_conflict() {
        // Fuzz: random events must never produce duplicate data or parity
        // assignments.
        let code = RotatedCode::new(5);
        let mut rng = qec_core::Rng::new(42);
        let mut p = EraserPolicy::new(&code);
        let lab = vec![false; code.num_stabs()];
        let orc = vec![false; code.num_data()];
        let mut last: Vec<LrcAssignment> = Vec::new();
        for round in 0..50 {
            let ev: Vec<bool> = (0..code.num_stabs()).map(|_| rng.bernoulli(0.3)).collect();
            let plan = p.plan_round(&ctx(round, &ev, &lab, &orc, &last));
            let mut data_seen = std::collections::HashSet::new();
            let mut stab_seen = std::collections::HashSet::new();
            for l in &plan {
                assert!(data_seen.insert(l.data), "duplicate data {}", l.data);
                assert!(stab_seen.insert(l.stab), "duplicate stab {}", l.stab);
                assert!(code.adjacent_stabs(l.data).contains(&l.stab));
                // PUTT honoured.
                assert!(!last.iter().any(|x| x.stab == l.stab));
            }
            last = plan;
        }
    }

    #[test]
    fn threshold_override_changes_sensitivity() {
        let code = RotatedCode::new(3);
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(1, 1); // bulk qubit: default threshold 2
        ev[code.adjacent_stabs(q)[0]] = true; // single flip
        let mut strict = EraserPolicy::new(&code);
        assert!(!strict
            .plan_round(&ctx(1, &ev, &lab, &orc, &[]))
            .iter()
            .any(|l| l.data == q));
        let mut eager = EraserPolicy::with_options(
            &code,
            EraserOptions {
                threshold_override: 1,
                ..EraserOptions::default()
            },
        );
        let plan = eager.plan_round(&ctx(1, &ev, &lab, &orc, &[]));
        assert!(
            plan.iter().any(|l| l.data == q),
            "threshold 1 fires on one flip"
        );
        // And a global threshold of 3 silences even double flips on corners.
        let (mut ev2, ..) = quiet(&code);
        let corner = code.data_qubit(0, 0);
        for &s in code.adjacent_stabs(corner) {
            ev2[s] = true;
        }
        let mut sluggish = EraserPolicy::with_options(
            &code,
            EraserOptions {
                threshold_override: 3,
                ..EraserOptions::default()
            },
        );
        assert!(sluggish
            .plan_round(&ctx(1, &ev2, &lab, &orc, &[]))
            .is_empty());
    }

    #[test]
    fn disabling_putt_allows_consecutive_reuse() {
        let code = RotatedCode::new(3);
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(1, 1);
        let adj = code.adjacent_stabs(q);
        ev[adj[0]] = true;
        ev[adj[1]] = true;
        let table = SwapLookupTable::new(&code);
        let primary = table.primary(q).unwrap();
        let other = code.stabilizers()[primary]
            .support()
            .find(|&d| d != q)
            .unwrap();
        let last = [LrcAssignment {
            data: other,
            stab: primary,
        }];
        let mut no_putt = EraserPolicy::with_options(
            &code,
            EraserOptions {
                use_putt: false,
                ..EraserOptions::default()
            },
        );
        let plan = no_putt.plan_round(&ctx(2, &ev, &lab, &orc, &last));
        let mine = plan.iter().find(|l| l.data == q).unwrap();
        assert_eq!(mine.stab, primary, "without PUTT the primary is reused");
    }

    #[test]
    fn disabling_backup_drops_conflicting_requests() {
        let code = RotatedCode::new(3);
        let table = SwapLookupTable::new(&code);
        // The unmatched data qubit has no primary: with backups disabled it
        // can never be serviced.
        let q = table.unmatched_data().unwrap();
        let (mut ev, lab, orc) = quiet(&code);
        for &s in code.adjacent_stabs(q) {
            ev[s] = true;
        }
        let mut no_backup = EraserPolicy::with_options(
            &code,
            EraserOptions {
                use_backup: false,
                ..EraserOptions::default()
            },
        );
        let plan = no_backup.plan_round(&ctx(1, &ev, &lab, &orc, &[]));
        assert!(!plan.iter().any(|l| l.data == q));
        assert!(no_backup.ltt()[q], "entry parks in the LTT forever");
    }

    #[test]
    fn leakage_detections_read_path() {
        let code = RotatedCode::new(3);
        // Two-level ERASER exposes the read path but certifies nothing: its
        // speculative flags are not erasure-grade (see the module docs).
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(1, 1);
        let adj = code.adjacent_stabs(q);
        ev[adj[0]] = true;
        ev[adj[1]] = true;
        let mut p = EraserPolicy::new(&code);
        let plan = p.plan_round(&ctx(1, &ev, &lab, &orc, &[]));
        assert!(plan.iter().any(|l| l.data == q), "LRC scheduled");
        let det = p
            .leakage_detections()
            .expect("eraser exposes the read path");
        assert!(det.data.iter().all(|&x| !x), "two-level: no data heralds");
        assert!(det.parity.iter().all(|&x| !x), "two-level: no |L> labels");

        // ERASER+M: an |L> label on a non-serving stabilizer is a parity
        // flag; on a serving stabilizer it is the LRC's *data* readout — a
        // confirmed removed data leak.
        let (ev2, mut lab2, orc2) = quiet(&code);
        lab2[3] = true;
        let mut pm = EraserPolicy::with_multilevel(&code);
        pm.plan_round(&ctx(1, &ev2, &lab2, &orc2, &[]));
        let det = pm.leakage_detections().unwrap();
        assert!(det.parity[3]);
        assert!(det.data_returned.iter().all(|&x| !x));
        let serviced = code.stabilizers()[3].support().next().unwrap();
        let last = [LrcAssignment {
            data: serviced,
            stab: 3,
        }];
        pm.plan_round(&ctx(2, &ev2, &lab2, &orc2, &last));
        let det = pm.leakage_detections().unwrap();
        assert!(!det.parity[3], "serving stab's |L> is the data readout");
        assert!(det.data_returned[serviced], "confirmed removed data leak");
        pm.reset_shot();
        assert!(!pm.leakage_detections().unwrap().data_returned[serviced]);

        // The oracle's detector is the oracle itself, including the
        // leaked-then-returned transition.
        let (ev3, lab3, mut orc3) = quiet(&code);
        orc3[4] = true;
        let mut opt = OptimalPolicy::new(&code);
        opt.plan_round(&ctx(1, &ev3, &lab3, &orc3, &[]));
        assert!(opt.leakage_detections().unwrap().data[4]);
        assert!(!opt.leakage_detections().unwrap().data_returned[4]);
        orc3[4] = false;
        opt.plan_round(&ctx(2, &ev3, &lab3, &orc3, &[]));
        let det = opt.leakage_detections().unwrap();
        assert!(!det.data[4]);
        assert!(det.data_returned[4], "leak removal is heralded");

        // Static baselines expose no detector.
        assert!(NoLrcPolicy::new().leakage_detections().is_none());
        assert!(AlwaysLrcPolicy::new(&code).leakage_detections().is_none());
    }

    #[test]
    fn shot_reset_clears_ltt() {
        let code = RotatedCode::new(3);
        let (mut ev, lab, orc) = quiet(&code);
        let q = code.data_qubit(0, 0);
        for &s in code.adjacent_stabs(q) {
            ev[s] = true;
        }
        let mut p = EraserPolicy::new(&code);
        // Saturate candidates so the entry persists.
        let table = SwapLookupTable::new(&code);
        let last: Vec<LrcAssignment> = table
            .candidates(q)
            .map(|s| LrcAssignment {
                data: code.stabilizers()[s].support().find(|&d| d != q).unwrap(),
                stab: s,
            })
            .collect();
        p.plan_round(&ctx(1, &ev, &lab, &orc, &last));
        assert!(p.ltt()[q]);
        p.reset_shot();
        assert!(!p.ltt()[q]);
    }
}
