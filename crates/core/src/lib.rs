//! ERASER: adaptive leakage suppression for fault-tolerant quantum computing.
//!
//! This crate implements the paper's contribution (§4) and its evaluation
//! machinery (§5–6):
//!
//! * [`Experiment`] — the one front door to the runtime: a validating builder
//!   over code distance, noise, rounds, policy, and decoder, plus the
//!   [`Sweep`] grid engine for batched (distance × error rate × policy)
//!   studies with runner caching and streamed results.
//! * [`PolicyKind`] — the by-value policy registry (with [`std::str::FromStr`]
//!   and [`std::fmt::Display`]) covering the five scheduling policies:
//!   [`NoLrcPolicy`], [`AlwaysLrcPolicy`] (state of the art before ERASER),
//!   [`EraserPolicy`] (the Leakage Speculation Block with its Leakage
//!   Tracking Table, Parity Usage Tracking Table, and ≥2-flip rule), ERASER+M
//!   (multi-level readout, §4.6), and [`OptimalPolicy`] (the idealized
//!   oracle) — plus a closure escape hatch, [`PolicyKind::Custom`], and the
//!   feedback-controlled [`PolicyKind::Adaptive`] family.
//! * [`control`] — online adaptive leakage control: a [`LeakageEstimator`]
//!   (integer-EWMA reference implementation) feeding a [`ControlLaw`]
//!   (threshold escalator with hysteresis, or a fixed-budget scheduler)
//!   that retunes the LRC density mid-run, plus [`LeakageProfile`]
//!   time-varying noise schedules (bursts, ramps) to adapt against.
//! * [`runtime`] — the Monte-Carlo memory-experiment engine behind the
//!   facade: executes policy-adapted rounds on the leakage-aware frame
//!   simulator, decodes with MWPM / union-find / greedy, and reports logical
//!   error rate, leakage population ratio, LRC counts, and speculation
//!   accuracy (TP/FP/FN/TN).
//! * [`analysis`] — the paper's analytical models: Eq. (1), Eq. (2), the
//!   invisible-leakage distribution of Eq. (3)/Table 2.
//! * [`rtl`] / [`resource`] — a SystemVerilog generator for the
//!   LSB + DLI hardware (mirroring the artifact's `eraser_rtl_gen`) and an
//!   analytical LUT/FF/latency model for the Kintex UltraScale+ part used in
//!   Table 3.
//!
//! # Example
//!
//! ```
//! use eraser_core::{Experiment, PolicyKind};
//! use qec_core::NoiseParams;
//!
//! let exp = Experiment::builder()
//!     .distance(3)
//!     .noise(NoiseParams::standard(1e-3))
//!     .rounds(3)
//!     .policy(PolicyKind::eraser())
//!     .shots(20)
//!     .seed(1)
//!     .build()
//!     .expect("a valid experiment");
//! let result = exp.run();
//! assert_eq!(result.shots, 20);
//! assert!(result.ler() <= 1.0);
//!
//! // Grids run through the Sweep engine, which reuses runners and streams
//! // results point by point:
//! use eraser_core::Sweep;
//! let sweep = Sweep::builder()
//!     .distances([3])
//!     .error_rates([1e-3])
//!     .policies([PolicyKind::NoLrc, PolicyKind::eraser()])
//!     .rounds(3)
//!     .shots(10)
//!     .build()
//!     .expect("a valid sweep");
//! assert_eq!(sweep.run().len(), 2);
//! ```

pub mod analysis;
pub mod cache;
pub mod control;
pub mod experiment;
pub mod policy;
pub mod resource;
pub mod rtl;
pub mod runtime;
pub mod swap_table;

pub use cache::{ArtifactCache, ArtifactKind, CacheKey, CacheStats, ExperimentKey};
pub use control::{
    AdaptivePolicy, ControlBase, ControlLaw, ControlLawKind, ControlMode, ControlSignals,
    ControllerConfig, ControllerStats, EwmaEstimator, EwmaThresholdLaw, FixedBudgetLaw,
    LeakageEstimator, LeakageProfile,
};
pub use experiment::{
    Experiment, ExperimentBuilder, ExperimentError, NoiseModel, PolicyFactory, PolicyKind, Sweep,
    SweepBuilder, SweepPoint,
};
pub use policy::{
    AlwaysLrcPolicy, EraserOptions, EraserPolicy, LeakageDetections, LrcPolicy, NoLrcPolicy,
    OptimalPolicy, RoundContext, StripeRoundContext, StripedPolicy,
};
pub use qec_decoder::TierCounters;
pub use resource::{FpgaPart, ResourceEstimate};
pub use runtime::{
    DecodeLatencyStats, DecoderKind, EnvOverrideError, ErasureDetection, LrcProtocol,
    MemoryRunResult, PostSelection, SpeculationStats,
};
pub use swap_table::SwapLookupTable;
