//! ERASER: adaptive leakage suppression for fault-tolerant quantum computing.
//!
//! This crate implements the paper's contribution (§4) and its evaluation
//! machinery (§5–6):
//!
//! * [`SwapLookupTable`] — precomputed primary/backup SWAP partners per data
//!   qubit (the DLI's lookup table, §4.4), built from a maximum bipartite
//!   matching on the code lattice.
//! * [`LrcPolicy`] and the five scheduling policies: [`NoLrcPolicy`],
//!   [`AlwaysLrcPolicy`] (state of the art before ERASER), [`EraserPolicy`]
//!   (the Leakage Speculation Block with its Leakage Tracking Table, Parity
//!   Usage Tracking Table, and ≥2-flip rule), ERASER+M (multi-level readout,
//!   §4.6), and [`OptimalPolicy`] (the idealized oracle).
//! * [`MemoryRunner`] — the Monte-Carlo memory-experiment runtime: executes
//!   policy-adapted rounds on the leakage-aware frame simulator, decodes with
//!   MWPM / union-find / greedy, and reports logical error rate, leakage
//!   population ratio, LRC counts, and speculation accuracy (TP/FP/FN/TN).
//! * [`analysis`] — the paper's analytical models: Eq. (1), Eq. (2), the
//!   invisible-leakage distribution of Eq. (3)/Table 2.
//! * [`rtl`] / [`resource`] — a SystemVerilog generator for the
//!   LSB + DLI hardware (mirroring the artifact's `eraser_rtl_gen`) and an
//!   analytical LUT/FF/latency model for the Kintex UltraScale+ part used in
//!   Table 3.
//!
//! # Example
//!
//! ```
//! use eraser_core::{EraserPolicy, MemoryRunner, RunConfig};
//! use qec_core::NoiseParams;
//!
//! let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 3);
//! let config = RunConfig { shots: 20, seed: 1, ..RunConfig::default() };
//! let result = runner.run(&|code| Box::new(EraserPolicy::new(code)), &config);
//! assert_eq!(result.shots, 20);
//! assert!(result.ler() <= 1.0);
//! ```

pub mod analysis;
pub mod policy;
pub mod resource;
pub mod rtl;
pub mod runtime;
pub mod swap_table;

pub use policy::{
    AlwaysLrcPolicy, EraserOptions, EraserPolicy, LrcPolicy, NoLrcPolicy, OptimalPolicy,
    RoundContext,
};
pub use resource::{FpgaPart, ResourceEstimate};
pub use runtime::{
    DecoderKind, LrcProtocol, MemoryRunResult, MemoryRunner, PostSelection, RunConfig,
    SpeculationStats,
};
pub use swap_table::SwapLookupTable;
