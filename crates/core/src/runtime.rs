//! Memory-experiment runtime: policy-adaptive Monte-Carlo simulation with
//! decoding and the paper's metrics.
//!
//! Per shot, the runner executes `R` syndrome-extraction rounds. Before each
//! round it consults the [`LrcPolicy`] with the previous round's detection
//! events (and readout labels under multi-level readout), builds the round
//! circuit — SWAP-LRC or DQLR protocol — and executes it on the
//! leakage-aware frame simulator, handling ERASER+M's intra-round branch
//! (squash the swap-back and reset the parity qubit when the LRC's data
//! readout is |L⟩, §4.6.2). After the final transversal readout the Z-basis
//! detector graph is decoded and the logical-Z outcome compared.
//!
//! Shots run **stripe-at-a-time**: up to 64 shots are packed into one
//! word-parallel [`BatchFrameSimulator`] stripe, driven by a *static* round
//! schedule (`surface_code::MaskedRound`) whose dynamic LRC decisions are
//! resolved each round into per-slot lane masks by the [`StripedPolicy`]
//! layer; the stripe's defect/erasure sets then feed the decoder as one
//! `decode_batch` call. [`RunConfig::stripe_width`] (or the `ERASER_STRIPE`
//! environment variable) selects the width; width 1 runs the scalar
//! reference path, and results are bit-identical at every width — exactly
//! like the worker-thread count, striping is a pure wall-clock knob.
//!
//! Decoding has two paths. **Monolithic** (the default, auto-selected when
//! [`RunConfig::window_rounds`] is 0 or exceeds the round count): the whole
//! shot's detection events form one syndrome over the whole-experiment
//! decoding graph. **Sliding-window streaming** (`window_rounds` in
//! `1..=rounds`, or the `ERASER_WINDOW` environment variable): each round's
//! defects and erasure flags are pushed into a per-shot
//! [`qec_decoder::WindowedDecoder`] as the round completes, and windows of
//! `window_rounds` rounds are decoded incrementally, committing
//! `window_stride` rounds each (the remaining buffer — keep it ≥ d — is
//! re-decoded by the next window). Peak decoder memory is then O(window²)
//! regardless of R, which is what makes long-memory workloads (R ≫ d)
//! decodable with MWPM at all; per-window decode latency lands in
//! [`MemoryRunResult::decode_latency`]. The simulated physics is identical
//! on both paths — only the decode differs.
//!
//! Metrics collected per run (paper §5.4, §6.4):
//!
//! * **LER** — logical error rate (Eq. 4);
//! * **LPR** — leakage population ratio per round (Eq. 5), probed between
//!   the entangling layers and the measurement layer, split into data/parity;
//! * **LRC count** — average LRCs per round (Table 4);
//! * **speculation stats** — TP/FP/FN/TN of "this data qubit is leaked"
//!   decisions against simulator ground truth (Fig 16).

use crate::cache::{ArtifactCache, ArtifactKind, CacheKey, ExperimentKey};
use crate::control::{parse_control_env, ControllerConfig, ControllerStats, LeakageProfile};
use crate::policy::{LrcPolicy, RoundContext, StripeRoundContext, StripedPolicy};
use leak_sim::{BatchFrameSimulator, Discriminator, FrameSimulator, STRIPE_WIDTH};
use qec_core::circuit::DetectorBasis;
use qec_core::{DetectorInfo, MeasKey, NoiseParams, Op, OpCond, Rng};
use qec_decoder::{
    build_dem, DecodeOutcome, DecoderFactory, DecodingGraph, FusionDecoder, FusionPlan, FusionPool,
    GreedyFactory, MwpmFactory, ShortestPaths, SparseIndex, SparseMwpmFactory, StreamingDecoder,
    Syndrome, SyndromeDecoder, TierCounters, TieredDecoder, UnionFindCapacities, UnionFindFactory,
    WindowBackend, WindowPlan, WindowedDecoder,
};
use std::sync::Arc;
use surface_code::{
    LrcAssignment, MaskedRound, MemoryBasis, MemoryExperiment, RotatedCode, SlotTable,
    SyndromeRound,
};

/// Which leakage-removal protocol the scheduled pairs execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LrcProtocol {
    /// SWAP-based LRC (Fig 1(b), the main text's protocol).
    #[default]
    Swap,
    /// Google's DQLR protocol (Appendix A.2).
    Dqlr,
}

/// Decoder selection for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecoderKind {
    /// Dense MWPM below [`DecoderKind::AUTO_MWPM_NODE_LIMIT`] graph nodes,
    /// sparse MWPM above. On the monolithic path the node count is the
    /// whole-experiment graph's (where dense MWPM's O(n²) path table prices
    /// out large d × R products — the sparse blossom keeps the same optimal
    /// weight with O(n) precomputation); on the sliding-window path it is
    /// the *window's*.
    #[default]
    Auto,
    /// Exact blossom MWPM (the paper's decoder), dense all-pairs tables.
    Mwpm,
    /// Exact sparse blossom MWPM: same optimal correction weight as
    /// [`DecoderKind::Mwpm`] without the all-pairs table — the
    /// MWPM-accuracy decoder for d ≥ 11.
    SparseMwpm,
    /// Weighted union-find.
    UnionFind,
    /// Greedy nearest-first (ablation baseline).
    Greedy,
}

impl DecoderKind {
    /// Node count above which `Auto` switches from dense to sparse MWPM.
    /// This constant — together with [`DecoderKind::resolve`] — is the
    /// *single* source of the Auto-selection rule; both
    /// [`MemoryRunner::run`] and the `Experiment` facade go through it.
    pub const AUTO_MWPM_NODE_LIMIT: usize = 3000;

    /// Resolves `Auto` against a concrete decoding graph; the other variants
    /// map to themselves. Never returns [`DecoderKind::Auto`]. Both arms are
    /// MWPM-accurate: the limit only decides whether the dense all-pairs
    /// table is affordable.
    pub fn resolve(self, graph: &DecodingGraph) -> DecoderKind {
        match self {
            DecoderKind::Auto => {
                if graph.num_nodes() <= DecoderKind::AUTO_MWPM_NODE_LIMIT {
                    DecoderKind::Mwpm
                } else {
                    DecoderKind::SparseMwpm
                }
            }
            other => other,
        }
    }

    /// Builds the decoder factory for `graph`: the one place decoder
    /// construction (including Auto selection) happens. The factory owns the
    /// expensive per-graph precomputation (shared via `Arc`); every worker
    /// thread then builds its own stateful instance from it.
    pub fn build_factory(self, graph: &DecodingGraph) -> Box<dyn DecoderFactory + '_> {
        match self.resolve(graph) {
            DecoderKind::Mwpm => Box::new(MwpmFactory::new(graph)),
            DecoderKind::SparseMwpm => Box::new(SparseMwpmFactory::new(graph)),
            DecoderKind::UnionFind => Box::new(UnionFindFactory::new(graph)),
            DecoderKind::Greedy => Box::new(GreedyFactory::new(graph)),
            DecoderKind::Auto => unreachable!("resolve never returns Auto"),
        }
    }

    /// Resolves the per-window backend for sliding-window decoding: `Auto`
    /// applies [`DecoderKind::AUTO_MWPM_NODE_LIMIT`] to the *window's* node
    /// count (per-round nodes × window rounds) rather than the whole
    /// experiment's — the windowed path is exactly what keeps MWPM viable at
    /// large R.
    pub fn resolve_window_backend(self, graph: &DecodingGraph, window: usize) -> WindowBackend {
        match self {
            DecoderKind::Auto => {
                let per_round = graph.num_nodes() / (graph.max_round() + 1).max(1);
                if per_round * (window + 1) <= DecoderKind::AUTO_MWPM_NODE_LIMIT {
                    WindowBackend::Mwpm
                } else {
                    WindowBackend::SparseMwpm
                }
            }
            DecoderKind::Mwpm => WindowBackend::Mwpm,
            DecoderKind::SparseMwpm => WindowBackend::SparseMwpm,
            DecoderKind::UnionFind => WindowBackend::UnionFind,
            DecoderKind::Greedy => WindowBackend::Greedy,
        }
    }
}

/// Leakage-detection model for erasure-aware decoding.
///
/// When `enabled`, the runner reads each policy's per-round
/// [`LrcPolicy::leakage_detections`] flags, optionally perturbs them with an
/// imperfect-erasure-check model (independent per-qubit-per-round
/// false-positive/false-negative rates, after Chang et al. 2024, "Surface
/// Code with Imperfect Erasure Checks"), maps the surviving flags to the
/// exact heralded mechanisms' decoding-graph edges (fault provenance:
/// `ErrorMechanism::sources` +
/// [`DecodingGraph::erasure_edges_for_mechanism`]), and hands them to the
/// decoder as [`Syndrome::erasures`].
///
/// Detection noise draws from a per-shot stream that is independent of the
/// simulator's, so enabling erasure decoding never changes the physical
/// shots: leakage-aware and leakage-blind runs of the same seed decode the
/// *same* error realizations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErasureDetection {
    /// Whether erasure information flows to the decoder at all.
    pub enabled: bool,
    /// Probability that an unflagged qubit is spuriously reported leaked
    /// (per qubit, per round).
    pub false_positive: f64,
    /// Probability that a flagged qubit's report is dropped (per flag).
    pub false_negative: f64,
}

impl Default for ErasureDetection {
    fn default() -> ErasureDetection {
        ErasureDetection {
            enabled: false,
            false_positive: 0.0,
            false_negative: 0.0,
        }
    }
}

impl ErasureDetection {
    /// Erasure decoding with the policy's flags passed through verbatim.
    pub fn perfect_readout() -> ErasureDetection {
        ErasureDetection {
            enabled: true,
            ..ErasureDetection::default()
        }
    }

    /// Erasure decoding under imperfect erasure checks.
    pub fn imperfect(false_positive: f64, false_negative: f64) -> ErasureDetection {
        ErasureDetection {
            enabled: true,
            false_positive,
            false_negative,
        }
    }
}

/// Monte-Carlo run configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of shots.
    pub shots: u64,
    /// Root RNG seed. Every shot derives its own stream from (seed, shot
    /// index), so the whole run is a pure function of the seed — regardless
    /// of the worker-thread count.
    pub seed: u64,
    /// Worker threads; 0 means the `ERASER_THREADS` environment variable if
    /// set, else all available cores.
    pub threads: usize,
    /// Decoder selection. `Auto` defers to the `ERASER_DECODER`
    /// environment variable if set, else to the node-count rule in
    /// [`DecoderKind::resolve`]. An explicit kind always wins.
    pub decoder: DecoderKind,
    /// Leakage-removal protocol executed for scheduled pairs.
    pub protocol: LrcProtocol,
    /// Whether to decode at all. LPR-only experiments (Fig 5, 15, 18, 21)
    /// disable decoding; `logical_errors` is then 0 and the LER meaningless.
    pub decode: bool,
    /// Erasure-aware decoding: thread the policy's leakage-detection flags
    /// into the decoder as dynamically reweighted (erased) edges.
    pub erasure: ErasureDetection,
    /// Shots simulated per word-parallel stripe (1..=64); 0 means the
    /// `ERASER_STRIPE` environment variable if set, else the full 64-lane
    /// stripe. Width 1 runs the scalar reference path; results are
    /// bit-identical for every width (shots own their RNG streams).
    pub stripe_width: usize,
    /// Sliding-window length in rounds for streaming decoding; 0 means the
    /// `ERASER_WINDOW` environment variable if set, else monolithic
    /// whole-shot decoding. A window larger than the round count also
    /// auto-selects the monolithic path (one window would cover the shot).
    pub window_rounds: usize,
    /// Rounds committed (and advanced) per window; 0 derives the default
    /// `window_rounds − d` (clamped to ≥ 1), which keeps the re-decoded
    /// buffer at d rounds. Must not exceed `window_rounds`.
    pub window_stride: usize,
    /// Intra-shot fusion decoding threads: each shot's window chain is
    /// partitioned into this many leaf blocks, decoded concurrently, and
    /// fused up a balanced merge tree — bit-identical to the sequential
    /// windowed path at every count. 0 means the `ERASER_FUSION`
    /// environment variable if set, else 1 (sequential). Values > 1 imply
    /// windowed decoding: if no window is configured, `min(3d, rounds)`
    /// with the default stride is derived. Per-worker fusion pools stack on
    /// top of [`RunConfig::threads`], so pair `fusion_threads = T` with
    /// `threads = cores / T` when measuring latency.
    pub fusion_threads: usize,
    /// Feedback-controller override for adaptive policies: `Some` replaces
    /// the knobs embedded in `PolicyKind::Adaptive` for this run; `None`
    /// defers to the `ERASER_CONTROL` environment variable, then to the
    /// policy's own configuration. Static policies ignore it entirely.
    pub controller: Option<ControllerConfig>,
    /// Time-varying injected-leakage schedule (bursts, ramps). The runner
    /// applies the profile's per-round rate as an extra `LeakInject` on
    /// every data qubit at the top of each round, identically on the
    /// scalar and striped paths. [`LeakageProfile::Stationary`] (the
    /// default) injects nothing.
    pub profile: LeakageProfile,
    /// Tiered sparse-syndrome fast path in front of every decode (tier 0
    /// skips empty syndromes/windows, tier 1 resolves 1–2 defects in
    /// closed form, tier 2 is the configured backend — bit-identical
    /// either way). `Some` forces it; `None` defers to the
    /// `ERASER_PREDECODE` environment variable (`on`/`off`), then to on.
    pub predecode: Option<bool>,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            shots: 1000,
            seed: 0x2023,
            threads: 0,
            decoder: DecoderKind::Auto,
            protocol: LrcProtocol::Swap,
            decode: true,
            erasure: ErasureDetection::default(),
            stripe_width: 0,
            window_rounds: 0,
            window_stride: 0,
            fusion_threads: 0,
            controller: None,
            profile: LeakageProfile::Stationary,
            predecode: None,
        }
    }
}

/// A malformed `ERASER_*` environment override.
///
/// The `ERASER_THREADS` / `ERASER_STRIPE` / `ERASER_WINDOW` hooks used to
/// be resolved with `.parse().ok()`, so a typo (`ERASER_THREADS=fuor`)
/// silently fell back to the default — the worst failure mode for a knob
/// whose whole job is reproducing a specific configuration. Malformed
/// values now surface as this error: the `Experiment`/`Sweep` builders
/// return it at build time, and the low-level [`MemoryRunner::run`] path
/// panics with its message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvOverrideError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// Its raw value.
    pub value: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl std::fmt::Display for EnvOverrideError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {}={:?}: {} (unset the variable or fix the value)",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for EnvOverrideError {}

/// The shared envelope of every strict `ERASER_*` parser: trim the raw
/// value, treat empty/whitespace as unset (CI matrix legs pass `""` to
/// mean "no override"), and wrap any value-level rejection in an
/// [`EnvOverrideError`] naming the variable. Each override supplies only
/// its value grammar; the unset/error plumbing can't drift between knobs.
pub(crate) fn parse_env_override<T>(
    var: &'static str,
    raw: &str,
    parse: impl FnOnce(&str) -> Result<T, &'static str>,
) -> Result<Option<T>, EnvOverrideError> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match parse(trimmed) {
        Ok(value) => Ok(Some(value)),
        Err(reason) => Err(EnvOverrideError {
            var,
            value: raw.to_string(),
            reason,
        }),
    }
}

/// Parses an `ERASER_THREADS` value: a positive integer. An empty (or
/// all-whitespace) value counts as unset — CI matrix legs pass `""` to
/// mean "no override".
pub fn parse_threads_env(raw: &str) -> Result<Option<usize>, EnvOverrideError> {
    parse_env_override("ERASER_THREADS", raw, parse_positive)
}

/// Parses an `ERASER_STRIPE` value: a positive integer (clamped to the
/// 64-lane stripe width at resolution time). Empty counts as unset.
pub fn parse_stripe_env(raw: &str) -> Result<Option<usize>, EnvOverrideError> {
    parse_env_override("ERASER_STRIPE", raw, parse_positive)
}

/// Parses an `ERASER_FUSION` value: a positive intra-shot fusion thread
/// count (1 = sequential windowed decoding). Empty counts as unset.
pub fn parse_fusion_env(raw: &str) -> Result<Option<usize>, EnvOverrideError> {
    parse_env_override("ERASER_FUSION", raw, parse_positive)
}

fn parse_positive(value: &str) -> Result<usize, &'static str> {
    match value.parse::<usize>() {
        Ok(0) => Err("must be a positive integer"),
        Ok(n) => Ok(n),
        Err(_) => Err("not an integer"),
    }
}

/// Parses an `ERASER_DECODER` value: a decoder name (`auto`, `mwpm`,
/// `sparse-mwpm`, `union-find`, `greedy`, or an alias accepted by
/// [`DecoderKind`]'s `FromStr`). Empty counts as unset — CI matrix legs
/// pass `""` to mean "no override".
pub fn parse_decoder_env(raw: &str) -> Result<Option<DecoderKind>, EnvOverrideError> {
    parse_env_override("ERASER_DECODER", raw, |value| {
        value.parse::<DecoderKind>().map_err(|_| {
            "unknown decoder (expected auto, mwpm, sparse-mwpm, union-find, or greedy)"
        })
    })
}

/// Parses an `ERASER_WINDOW` specification: `"15"` (window only, stride
/// defaulted at run time against the code distance) or `"15:10"`
/// (window:stride, stride ≤ window). Empty counts as unset.
pub fn parse_window_env(raw: &str) -> Result<Option<(usize, usize)>, EnvOverrideError> {
    parse_env_override("ERASER_WINDOW", raw, |value| {
        let mut it = value.splitn(2, ':');
        let window = match it.next().unwrap_or("").trim().parse::<usize>() {
            Ok(0) => return Err("window must be a positive round count"),
            Ok(w) => w,
            Err(_) => return Err("expected \"W\" or \"W:S\" with integer rounds"),
        };
        let stride = match it.next() {
            Some(s) => match s.trim().parse::<usize>() {
                Ok(x) if x <= window => x,
                Ok(_) => return Err("stride exceeds the window"),
                Err(_) => return Err("expected \"W\" or \"W:S\" with integer rounds"),
            },
            None => 0,
        };
        Ok((window, stride))
    })
}

/// Parses an `ERASER_PREDECODE` value: `on` or `off` (the tiered
/// sparse-syndrome fast path in front of every decode). Empty counts as
/// unset — the predecoder then defaults to on.
pub fn parse_predecode_env(raw: &str) -> Result<Option<bool>, EnvOverrideError> {
    parse_env_override("ERASER_PREDECODE", raw, |value| match value {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err("expected \"on\" or \"off\""),
    })
}

impl RunConfig {
    /// The worker-thread count this configuration resolves to: `threads`
    /// itself; else the `ERASER_THREADS` environment variable (the CI test
    /// matrix's hook); else every available core. Results are bit-identical
    /// for any resolution — shots own their RNG streams — so this only
    /// affects wall-clock time. A malformed override is an error, never a
    /// silent default.
    pub fn resolved_threads(&self) -> Result<usize, EnvOverrideError> {
        if self.threads != 0 {
            return Ok(self.threads);
        }
        if let Ok(raw) = std::env::var("ERASER_THREADS") {
            if let Some(n) = parse_threads_env(&raw)? {
                return Ok(n);
            }
        }
        Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1))
    }

    /// The `(window_rounds, window_stride)` pair this configuration resolves
    /// to: the config fields themselves when `window_rounds` is set; else the
    /// `ERASER_WINDOW` environment variable (`"W"` or `"W:S"`, the CI smoke
    /// leg's hook); else `(0, 0)` — monolithic decoding. A stride of 0 is
    /// resolved later against the code distance (`window − d`, min 1).
    /// A malformed override is an error, never a silent default.
    pub fn resolved_window(&self) -> Result<(usize, usize), EnvOverrideError> {
        if self.window_rounds != 0 {
            return Ok((
                self.window_rounds,
                self.window_stride.min(self.window_rounds),
            ));
        }
        if let Ok(raw) = std::env::var("ERASER_WINDOW") {
            if let Some(pair) = parse_window_env(&raw)? {
                return Ok(pair);
            }
        }
        Ok((0, 0))
    }

    /// The decoder selection this configuration resolves to: `decoder`
    /// itself when it is not `Auto`; else the `ERASER_DECODER` environment
    /// variable (the CI test matrix's hook); else `Auto`, deferred to
    /// [`DecoderKind::resolve`] against the concrete decoding graph. Every
    /// resolution is MWPM-accurate or an explicitly requested ablation, so
    /// the override never silently degrades accuracy. A malformed override
    /// is an error, never a silent default.
    pub fn resolved_decoder(&self) -> Result<DecoderKind, EnvOverrideError> {
        if self.decoder != DecoderKind::Auto {
            return Ok(self.decoder);
        }
        if let Ok(raw) = std::env::var("ERASER_DECODER") {
            if let Some(kind) = parse_decoder_env(&raw)? {
                return Ok(kind);
            }
        }
        Ok(DecoderKind::Auto)
    }

    /// The stripe width this configuration resolves to: `stripe_width`
    /// itself; else the `ERASER_STRIPE` environment variable (the CI test
    /// matrix's hook); else the full 64-lane stripe. Clamped to 1..=64.
    /// Results are bit-identical for any resolution — this only affects
    /// wall-clock time. A malformed override is an error, never a silent
    /// default.
    pub fn resolved_stripe_width(&self) -> Result<usize, EnvOverrideError> {
        let width = if self.stripe_width != 0 {
            self.stripe_width
        } else if let Some(w) = match std::env::var("ERASER_STRIPE") {
            Ok(raw) => parse_stripe_env(&raw)?,
            Err(_) => None,
        } {
            w
        } else {
            STRIPE_WIDTH
        };
        Ok(width.clamp(1, STRIPE_WIDTH))
    }

    /// The intra-shot fusion thread count this configuration resolves to:
    /// `fusion_threads` itself; else the `ERASER_FUSION` environment
    /// variable (the CI test matrix's hook); else 1 — sequential windowed
    /// decoding. Results are bit-identical for any resolution (the fusion
    /// merge tree reconverges on the sequential carry chain), so this only
    /// affects per-shot decode latency. A malformed override is an error,
    /// never a silent default.
    pub fn resolved_fusion(&self) -> Result<usize, EnvOverrideError> {
        if self.fusion_threads != 0 {
            return Ok(self.fusion_threads);
        }
        if let Ok(raw) = std::env::var("ERASER_FUSION") {
            if let Some(n) = parse_fusion_env(&raw)? {
                return Ok(n);
            }
        }
        Ok(1)
    }

    /// The controller configuration adaptive policies resolve to:
    /// `controller` itself when set; else the `ERASER_CONTROL` environment
    /// variable (a controller spec, e.g. `ewma:up=0.1,down=0.03`); else
    /// `None` — the `PolicyKind::Adaptive` variant's own knobs apply.
    /// A malformed override is an error, never a silent default.
    pub fn resolved_controller(&self) -> Result<Option<ControllerConfig>, EnvOverrideError> {
        if let Some(config) = self.controller {
            return Ok(Some(config));
        }
        if let Ok(raw) = std::env::var("ERASER_CONTROL") {
            return parse_control_env(&raw);
        }
        Ok(None)
    }

    /// Whether the tiered predecoder is active for this run: `predecode`
    /// itself when set; else the `ERASER_PREDECODE` environment variable
    /// (`on`/`off`, the CI test matrix's hook); else on. Results are
    /// bit-identical for either resolution — the tiers are exact — so this
    /// only affects decode latency and telemetry. A malformed override is
    /// an error, never a silent default.
    pub fn resolved_predecode(&self) -> Result<bool, EnvOverrideError> {
        if let Some(on) = self.predecode {
            return Ok(on);
        }
        if let Ok(raw) = std::env::var("ERASER_PREDECODE") {
            if let Some(on) = parse_predecode_env(&raw)? {
                return Ok(on);
            }
        }
        Ok(true)
    }

    /// Checks every `ERASER_*` override this configuration would consult,
    /// so facades can reject malformed environments eagerly (at build
    /// time) instead of deep inside a worker thread.
    pub fn validate_env(&self) -> Result<(), EnvOverrideError> {
        self.resolved_threads()?;
        self.resolved_window()?;
        self.resolved_decoder()?;
        self.resolved_stripe_width()?;
        self.resolved_fusion()?;
        self.resolved_controller()?;
        self.resolved_predecode()?;
        Ok(())
    }
}

/// The RNG stream of one shot: a pure function of (root seed, global shot
/// index), independent of how shots are partitioned across worker threads —
/// this is what makes run results bit-identical for any thread count. The
/// multiplier is the SplitMix64 golden-ratio increment; [`Rng::new`] then
/// applies two full SplitMix64 mixes per state word, decorrelating adjacent
/// shot indices.
fn shot_rng(seed: u64, shot: u64) -> Rng {
    Rng::new(seed ^ shot.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The qubit operands of an op, for fault-provenance attribution (only
/// noise ops ever appear as mechanism sources, but the mapping is total).
fn op_operands(op: &Op) -> [Option<usize>; 2] {
    match *op {
        Op::H(q) | Op::Reset(q) => [Some(q), None],
        Op::Measure { qubit, .. }
        | Op::Depolarize1 { qubit, .. }
        | Op::XError { qubit, .. }
        | Op::LeakInject { qubit, .. }
        | Op::Seep { qubit, .. } => [Some(qubit), None],
        Op::Cnot { control, target } | Op::CnotNoTransport { control, target } => {
            [Some(control), Some(target)]
        }
        Op::Depolarize2 { a, b, .. } => [Some(a), Some(b)],
        Op::LeakIswap { data, parity } => [Some(data), Some(parity)],
        Op::Tick => [None, None],
    }
}

/// Confusion-matrix counts for per-round, per-data-qubit "leaked?" decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationStats {
    /// LRC scheduled and the qubit was leaked.
    pub true_positive: u64,
    /// LRC scheduled but the qubit was not leaked.
    pub false_positive: u64,
    /// No LRC but the qubit was leaked.
    pub false_negative: u64,
    /// No LRC and the qubit was not leaked.
    pub true_negative: u64,
}

impl SpeculationStats {
    /// Fraction of correct decisions (Fig 16 top).
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positive + self.false_positive + self.false_negative + self.true_negative;
        if total == 0 {
            return 1.0;
        }
        (self.true_positive + self.true_negative) as f64 / total as f64
    }

    /// False-positive rate FP/(FP+TN) (Fig 16 bottom).
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.false_positive + self.true_negative;
        if denom == 0 {
            return 0.0;
        }
        self.false_positive as f64 / denom as f64
    }

    /// False-negative rate FN/(FN+TP) (Fig 16 bottom).
    pub fn false_negative_rate(&self) -> f64 {
        let denom = self.false_negative + self.true_positive;
        if denom == 0 {
            return 0.0;
        }
        self.false_negative as f64 / denom as f64
    }

    fn merge(&mut self, other: &SpeculationStats) {
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
        self.false_negative += other.false_negative;
        self.true_negative += other.true_negative;
    }
}

/// Offline leakage post-selection statistics (the paper's §2.4 prior-work
/// category (1)): a shot is *flagged* when its syndrome history contains a
/// leakage-like pattern (some data qubit with at least half of its
/// neighbouring parity checks firing in one round — the LSB rule applied
/// offline). Post-selection discards flagged shots; it can clean up memory
/// experiments but cannot be used during real computation, which is the
/// paper's motivation for real-time suppression.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostSelection {
    /// Shots whose syndrome history was flagged as leakage-suspect.
    pub flagged_shots: u64,
    /// Logical errors among the *unflagged* (kept) shots.
    pub errors_on_kept: u64,
}

impl PostSelection {
    /// Fraction of shots that survive post-selection.
    pub fn keep_fraction(&self, shots: u64) -> f64 {
        if shots == 0 {
            return 1.0;
        }
        (shots - self.flagged_shots) as f64 / shots as f64
    }

    /// Logical error rate over the kept shots.
    pub fn ler_postselected(&self, shots: u64) -> f64 {
        let kept = shots - self.flagged_shots;
        if kept == 0 {
            return 0.0;
        }
        self.errors_on_kept as f64 / kept as f64
    }
}

/// Decode-latency distribution in nanoseconds **per committed round**,
/// aggregated over every decode call of a run (per window on the streaming
/// path, per shot on the monolithic path — both normalized by the rounds the
/// call settled, so the two paths are directly comparable).
///
/// Samples land in power-of-two histogram buckets, which keeps the stats
/// O(1) in memory, exactly mergeable across worker threads, and good to
/// ~1.5× resolution on the reported quantiles — plenty for the real-time
/// story the `longmem` figure tells.
#[derive(Debug, Clone)]
pub struct DecodeLatencyStats {
    /// `buckets[i]` counts samples with ns/round in `[2^i, 2^(i+1))`.
    buckets: [u64; 64],
    count: u64,
    total_nanos: u64,
    total_rounds: u64,
}

impl Default for DecodeLatencyStats {
    fn default() -> DecodeLatencyStats {
        DecodeLatencyStats {
            buckets: [0; 64],
            count: 0,
            total_nanos: 0,
            total_rounds: 0,
        }
    }
}

impl DecodeLatencyStats {
    /// Records one decode call that took `nanos` and settled `rounds`.
    pub fn record(&mut self, nanos: u64, rounds: usize) {
        let rounds = rounds.max(1) as u64;
        let per_round = (nanos / rounds).max(1);
        self.buckets[63 - per_round.leading_zeros() as usize] += 1;
        self.count += 1;
        self.total_nanos += nanos;
        self.total_rounds += rounds;
    }

    /// Number of decode calls sampled.
    pub fn samples(&self) -> u64 {
        self.count
    }

    /// Mean ns per committed round (exact — computed from the raw totals).
    pub fn mean_ns_per_round(&self) -> f64 {
        if self.total_rounds == 0 {
            return 0.0;
        }
        self.total_nanos as f64 / self.total_rounds as f64
    }

    /// The `q`-quantile of ns/round, to bucket resolution (the geometric
    /// midpoint of the winning power-of-two bucket).
    ///
    /// Total on every input: an empty histogram returns 0.0; `q` is clamped
    /// into `[0, 1]` (`q ≤ 0` is the minimum bucket, `q ≥ 1` the maximum)
    /// and a non-finite `q` is treated as 0 — never NaN out, never a
    /// division, never a panic.
    pub fn quantile_ns_per_round(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            cumulative += b;
            if cumulative >= target {
                return (1u64 << i) as f64 * 1.5;
            }
        }
        unreachable!("count is the sum of the buckets")
    }

    /// Total nanoseconds across all samples. Tier-0-skipped windows take no
    /// sample, so figure-level ns/round normalization must divide this by
    /// the *true* round count, not [`DecodeLatencyStats::samples`] × stride.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos
    }

    /// Total rounds settled across all samples.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Median ns/round.
    pub fn p50_ns_per_round(&self) -> f64 {
        self.quantile_ns_per_round(0.50)
    }

    /// 99th-percentile ns/round — the number a real-time decode budget has
    /// to absorb.
    pub fn p99_ns_per_round(&self) -> f64 {
        self.quantile_ns_per_round(0.99)
    }

    fn merge(&mut self, other: &DecodeLatencyStats) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total_nanos += other.total_nanos;
        self.total_rounds += other.total_rounds;
    }
}

/// Aggregated result of a Monte-Carlo run.
#[derive(Debug, Clone)]
pub struct MemoryRunResult {
    /// Shots executed.
    pub shots: u64,
    /// Shots whose decoded logical-Z outcome was wrong.
    pub logical_errors: u64,
    /// Rounds per shot.
    pub rounds: usize,
    /// Per-round mean leaked fraction over all qubits (LPR, Eq. 5).
    pub lpr_total: Vec<f64>,
    /// Per-round mean leaked fraction over data qubits.
    pub lpr_data: Vec<f64>,
    /// Per-round mean leaked fraction over parity qubits.
    pub lpr_parity: Vec<f64>,
    /// Total LRCs scheduled across all shots and rounds.
    pub total_lrcs: u64,
    /// Total decoding-graph edges flagged as erased across all shots
    /// (deduplicated per shot; 0 unless erasure-aware decoding is enabled
    /// and the policy exposes detections).
    pub total_erasures: u64,
    /// Speculation confusion matrix.
    pub speculation: SpeculationStats,
    /// Offline post-selection statistics.
    pub postselection: PostSelection,
    /// Policy display name.
    pub policy: String,
    /// Decoder display name.
    pub decoder: String,
    /// Decode-latency distribution (ns per committed round): one sample per
    /// window on the streaming path, one per shot on the monolithic path.
    /// Empty when decoding is disabled.
    pub decode_latency: DecodeLatencyStats,
    /// Feedback-controller telemetry (escalations, rounds per mode,
    /// estimator trace stats). All-zero for static policies; see
    /// [`ControllerStats::is_active`].
    pub controller: ControllerStats,
    /// Tiered-predecoder telemetry: per-tier decode counts and nanos (tier
    /// 0 = skipped empty syndromes/windows, tier 1 = closed-form 1–2 defect
    /// decodes, tier 2 = full backend). All-zero when the predecoder is
    /// disabled or decoding is off; see [`TierCounters::is_active`].
    pub predecode: TierCounters,
}

impl MemoryRunResult {
    /// Logical error rate (Eq. 4).
    pub fn ler(&self) -> f64 {
        self.logical_errors as f64 / self.shots as f64
    }

    /// One-sigma binomial error bar on the LER.
    pub fn ler_stderr(&self) -> f64 {
        let p = self.ler();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Mean LRCs scheduled per round (Table 4).
    pub fn lrcs_per_round(&self) -> f64 {
        self.total_lrcs as f64 / (self.shots as f64 * self.rounds as f64)
    }

    /// Mean LPR across all rounds.
    pub fn mean_lpr(&self) -> f64 {
        if self.lpr_total.is_empty() {
            return 0.0;
        }
        self.lpr_total.iter().sum::<f64>() / self.lpr_total.len() as f64
    }
}

#[derive(Default)]
struct PartialStats {
    logical_errors: u64,
    lpr_data_sum: Vec<f64>,
    lpr_parity_sum: Vec<f64>,
    total_lrcs: u64,
    total_erasures: u64,
    speculation: SpeculationStats,
    postselection: PostSelection,
    decode_latency: DecodeLatencyStats,
    controller: ControllerStats,
    predecode: TierCounters,
}

/// Reusable memory-experiment runner: owns the experiment description, the
/// detector list, and the decoding graph (built once from the base no-LRC
/// circuit — the decoder's *error model* is LRC- and leakage-unaware, the
/// paper's premise; leakage-detection flags can still reach the decoder at
/// runtime as erasures, see [`ErasureDetection`]).
#[derive(Debug)]
pub struct MemoryRunner {
    exp: MemoryExperiment,
    detectors: Vec<DetectorInfo>,
    observable: Vec<MeasKey>,
    graph: DecodingGraph,
    init_segment: Vec<Op>,
    final_segment: Vec<Op>,
    /// Per stabilizer: whether its round-0 outcome is deterministic (it
    /// belongs to the memory basis) and hence produces a round-0 event.
    stab_deterministic_round0: Vec<bool>,
    /// The enumerable LRC slots of the code, in canonical `(data, stab)`
    /// order — the address space of the striped runtime's per-round
    /// schedule bitmasks.
    slot_table: SlotTable,
    /// Static SWAP-protocol round schedule (round-0 keys; the executor adds
    /// the round's key offset).
    masked_swap: MaskedRound,
    /// Static DQLR-protocol round schedule.
    masked_dqlr: MaskedRound,
    /// Detectors of the decoded basis grouped by round, as `(detector index,
    /// graph node)` pairs in ascending node order — the streaming path's
    /// per-round read schedule (detector round r is fully measured once
    /// simulation round r completes; the final transversal detectors carry
    /// round = rounds and complete with the final segment).
    detector_nodes_by_round: Vec<Vec<(u32, u32)>>,
    /// Provenance buckets `(round, qubit) -> sorted erased-edge indices`:
    /// every decoding-graph edge fed by a fault mechanism whose circuit
    /// location touched `qubit` during `round`. A leakage flag on a qubit
    /// erases exactly these — the heralded mechanisms — via
    /// [`ErrorMechanism::sources`] and
    /// [`DecodingGraph::erasure_edges_for_mechanism`]. Hand-derived edge
    /// sets (detector stars, or space/time edges picked by geometry) are
    /// measurably wrong here: mid-round fault injection lands on diagonal
    /// space-time edges that geometric reasoning misses.
    qubit_round_edges: Vec<Vec<usize>>,
}

/// The decode-path artifacts resolved for one (runner, config) pair:
/// either a sliding-window plan or the monolithic decoder's precomputed
/// tables, `Arc`-shared so an [`ArtifactCache`] can hand one build to many
/// runs. Built by [`MemoryRunner::decode_artifacts`]; consumed by
/// [`MemoryRunner::run_with_artifacts`].
#[derive(Debug, Clone)]
pub struct DecodeArtifacts {
    resolved: Option<ResolvedDecode>,
}

#[derive(Debug, Clone)]
enum ResolvedDecode {
    /// Whole-experiment decoding; `kind` is resolved (never `Auto`) and
    /// exactly one of the tables is populated (paths for MWPM/greedy,
    /// capacities for union-find, the boundary index for sparse MWPM).
    Monolithic {
        kind: DecoderKind,
        paths: Option<Arc<ShortestPaths>>,
        capacities: Option<Arc<UnionFindCapacities>>,
        sparse: Option<Arc<SparseIndex>>,
    },
    /// Sliding-window streaming decoding.
    Windowed(Arc<WindowPlan>),
    /// Sliding-window decoding with intra-shot fusion parallelism: the
    /// window positions are partitioned into leaf blocks decoded
    /// concurrently and merged up a fusion tree. Bit-identical to
    /// `Windowed` over the wrapped plan.
    Fused(Arc<FusionPlan>),
}

impl DecodeArtifacts {
    /// Whether the run will decode at all.
    pub fn decodes(&self) -> bool {
        self.resolved.is_some()
    }

    /// Whether the run takes the sliding-window path (sequentially or
    /// through the fusion decoder).
    pub fn windowed(&self) -> bool {
        matches!(
            self.resolved,
            Some(ResolvedDecode::Windowed(_) | ResolvedDecode::Fused(_))
        )
    }

    /// Whether the run decodes each shot's window chain on an intra-shot
    /// fusion pool.
    pub fn fused(&self) -> bool {
        matches!(self.resolved, Some(ResolvedDecode::Fused(_)))
    }

    /// The decoder name a run with these artifacts reports in
    /// [`MemoryRunResult::decoder`]: the window backend on the streaming
    /// paths (which an `ERASER_WINDOW` / `ERASER_FUSION` override can
    /// resolve differently than the monolithic graph would), the resolved
    /// monolithic kind otherwise, `"none"` when decoding is disabled.
    pub fn decoder_name(&self) -> String {
        match &self.resolved {
            Some(ResolvedDecode::Windowed(plan)) => plan.backend().name().to_string(),
            Some(ResolvedDecode::Fused(fplan)) => fplan.window_plan().backend().name().to_string(),
            Some(ResolvedDecode::Monolithic { kind, .. }) => kind.to_string(),
            None => "none".to_string(),
        }
    }
}

/// One shot's streaming decode engine: the sequential windowed chain, or
/// the fusion decoder running the same chain's positions on an intra-shot
/// worker pool. Built per runtime worker — fusion pools nest *inside* a
/// shot-level worker thread and are never shared across workers.
enum ShotStream<'p> {
    Windowed(WindowedDecoder<'p>),
    Fused(FusionDecoder<'p>),
}

impl ShotStream<'_> {
    fn begin_shot(&mut self) {
        match self {
            ShotStream::Windowed(w) => w.begin_shot(),
            ShotStream::Fused(f) => f.begin_shot(),
        }
    }

    fn push_round(&mut self, defects: &[usize], erasures: &[usize]) {
        match self {
            ShotStream::Windowed(w) => w.push_round(defects, erasures),
            ShotStream::Fused(f) => f.push_round(defects, erasures),
        }
    }

    fn finish(&mut self) -> DecodeOutcome {
        match self {
            ShotStream::Windowed(w) => w.finish(),
            ShotStream::Fused(f) => f.finish(),
        }
    }

    /// Latency samples for the just-finished shot as `(nanos, rounds)`
    /// pairs: one per window position on the sequential path, one per
    /// *shot* (wall time of the whole fused decode) on the fusion path.
    /// Both are ns-per-committed-round samples for [`DecodeLatencyStats`].
    fn latencies(&self) -> &[(u64, u32)] {
        match self {
            ShotStream::Windowed(w) => w.window_latencies(),
            ShotStream::Fused(f) => f.shot_latencies(),
        }
    }

    fn set_predecode(&mut self, on: bool) {
        match self {
            ShotStream::Windowed(w) => w.set_predecode(on),
            ShotStream::Fused(f) => f.set_predecode(on),
        }
    }

    /// Accumulated tier telemetry across every shot this stream decoded
    /// (merged over the fusion path's replay engines).
    fn tier_counters(&self) -> TierCounters {
        match self {
            ShotStream::Windowed(w) => *w.tier_counters(),
            ShotStream::Fused(f) => f.tier_counters(),
        }
    }
}

impl MemoryRunner {
    /// Builds the runner for a distance-`d` memory-Z experiment over `rounds`
    /// rounds under `noise` (the paper's workload).
    pub fn new(d: usize, noise: NoiseParams, rounds: usize) -> MemoryRunner {
        MemoryRunner::new_with_basis(d, noise, rounds, MemoryBasis::Z)
    }

    /// Builds the runner for a memory experiment preserving the given logical
    /// basis.
    pub fn new_with_basis(
        d: usize,
        noise: NoiseParams,
        rounds: usize,
        basis: MemoryBasis,
    ) -> MemoryRunner {
        let code = RotatedCode::new(d);
        let exp = MemoryExperiment::new_with_basis(code, noise, rounds, basis);
        let detectors = exp.detectors();
        let observable = exp.observable_keys();
        let base_circuit = exp.base_circuit();
        let dem = build_dem(&base_circuit, &detectors, &observable);
        let graph_basis = match basis {
            MemoryBasis::Z => DetectorBasis::Z,
            MemoryBasis::X => DetectorBasis::X,
        };
        let graph = DecodingGraph::from_dem(&dem, &detectors, graph_basis);
        debug_assert_eq!(
            graph.undetectable_observable_flips(),
            0,
            "observable flips must be detectable in the memory basis"
        );
        let init_segment = exp.init_segment();
        let final_segment = exp.final_segment();
        let stab_deterministic_round0 = exp
            .code()
            .stabilizers()
            .iter()
            .map(|s| s.kind == basis.stab_kind())
            .collect();
        // Attribute every op of the base circuit to its round (init → round
        // 0, final readout → the last round), mirroring how `base_circuit`
        // concatenates its segments. The rebuilt sequence is asserted
        // op-for-op against the real circuit, so a future change to
        // `base_circuit`'s composition cannot silently shift round
        // boundaries (which would attribute provenance buckets — and hence
        // erased edges — to the wrong rounds).
        let builder = exp.round_builder();
        let mut op_round = Vec::with_capacity(base_circuit.ops().len());
        let mut rebuilt = init_segment.clone();
        op_round.resize(init_segment.len(), 0);
        for r in 0..rounds {
            let round = builder.round(r, &[], exp.keys());
            let n = round.pre.len() + round.measure.len() + round.mr_reset.len();
            rebuilt.extend(round.pre);
            rebuilt.extend(round.measure);
            rebuilt.extend(round.mr_reset);
            op_round.resize(op_round.len() + n, r);
        }
        rebuilt.extend_from_slice(&final_segment);
        op_round.resize(op_round.len() + final_segment.len(), rounds - 1);
        assert_eq!(
            rebuilt.as_slice(),
            base_circuit.ops(),
            "op->round attribution must mirror base_circuit's exact layout"
        );

        // Provenance buckets: for every mechanism, credit its edges to each
        // (round, qubit) its source fault ops touched.
        let num_qubits = exp.code().num_qubits();
        let mut qubit_round_edges: Vec<Vec<usize>> = vec![Vec::new(); rounds * num_qubits];
        for (mi, mech) in dem.mechanisms.iter().enumerate() {
            let medges = graph.erasure_edges_for_mechanism(mi);
            if medges.is_empty() {
                continue;
            }
            for &src in &mech.sources {
                let r = op_round[src as usize];
                for q in op_operands(&base_circuit.ops()[src as usize])
                    .into_iter()
                    .flatten()
                {
                    qubit_round_edges[r * num_qubits + q].extend_from_slice(medges);
                }
            }
        }
        for bucket in &mut qubit_round_edges {
            bucket.sort_unstable();
            bucket.dedup();
        }

        let slot_table = SlotTable::new(exp.code());
        let masked_swap = builder.masked_round(&slot_table, exp.keys());
        let masked_dqlr = builder.masked_dqlr_round(&slot_table, exp.keys());

        let mut detector_nodes_by_round: Vec<Vec<(u32, u32)>> = vec![Vec::new(); rounds + 1];
        for (di, det) in detectors.iter().enumerate() {
            if let Some(node) = graph.node_of_detector(di) {
                detector_nodes_by_round[det.round].push((di as u32, node as u32));
            }
        }

        MemoryRunner {
            exp,
            detectors,
            observable,
            graph,
            init_segment,
            final_segment,
            slot_table,
            masked_swap,
            masked_dqlr,
            stab_deterministic_round0,
            detector_nodes_by_round,
            qubit_round_edges,
        }
    }

    /// The experiment description.
    pub fn experiment(&self) -> &MemoryExperiment {
        &self.exp
    }

    /// The Z-basis decoding graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// Appends the decoding-graph edges erased by a leakage flag on `qubit`
    /// (data or parity, as a global qubit id) believed leaked across
    /// `rounds` (plan-round window): exactly the edges fed by fault
    /// mechanisms whose circuit location touched the qubit there. Every
    /// operation touching a leaked qubit is heralded-faulty — a CNOT kicks a
    /// uniformly random Pauli onto the partner, a measurement reads a random
    /// value — so the provenance bucket *is* the heralded-mechanism set.
    fn extend_qubit_erasures(
        &self,
        rounds: std::ops::RangeInclusive<usize>,
        qubit: usize,
        out: &mut Vec<usize>,
    ) {
        let num_qubits = self.exp.code().num_qubits();
        let last = self.exp.rounds() - 1;
        for r in rounds {
            if r > last {
                continue;
            }
            out.extend_from_slice(&self.qubit_round_edges[r * num_qubits + qubit]);
        }
    }

    /// Collects detector round `round`'s fired defects (graph node ids,
    /// ascending) from a scalar simulator's record — the streaming path's
    /// per-round read.
    fn gather_round_defects(&self, sim: &FrameSimulator, round: usize, out: &mut Vec<usize>) {
        out.clear();
        for &(di, node) in &self.detector_nodes_by_round[round] {
            if sim.record().parity(&self.detectors[di as usize].keys) {
                out.push(node as usize);
            }
        }
    }

    /// The word-parallel analogue of [`MemoryRunner::gather_round_defects`]:
    /// one parity word per detector of the round, scattered into each active
    /// lane's defect list (ascending node order preserved).
    fn gather_round_defect_lanes(
        &self,
        sim: &BatchFrameSimulator,
        round: usize,
        active: u64,
        lanes: usize,
        out: &mut [Vec<usize>],
    ) {
        for buffer in out.iter_mut().take(lanes) {
            buffer.clear();
        }
        for &(di, node) in &self.detector_nodes_by_round[round] {
            let mut word = sim.record().parity_word(&self.detectors[di as usize].keys) & active;
            while word != 0 {
                let lane = word.trailing_zeros() as usize;
                out[lane].push(node as usize);
                word &= word - 1;
            }
        }
    }

    /// The content identity of this runner — runs sharing it share every
    /// decode artifact bit-for-bit. See [`ExperimentKey`].
    pub fn cache_key(&self) -> ExperimentKey {
        ExperimentKey::new(
            self.exp.code().distance(),
            self.exp.rounds(),
            self.exp.basis(),
            self.exp.noise(),
        )
    }

    /// Approximate heap footprint of the runner itself (DEM-derived graph,
    /// round schedules, provenance buckets), for size-bounded caches.
    pub fn approx_bytes(&self) -> usize {
        let buckets: usize = self
            .qubit_round_edges
            .iter()
            .map(|b| b.len() * std::mem::size_of::<usize>())
            .sum();
        let detectors = self.detectors.len() * std::mem::size_of::<DetectorInfo>();
        let segments =
            (self.init_segment.len() + self.final_segment.len()) * std::mem::size_of::<Op>();
        // Per-edge/node constants are rough: endpoints, weight, provenance
        // vectors' headers.
        let graph = self.graph.edges().len() * 64 + self.graph.num_nodes() * 16;
        buckets + detectors + segments + graph
    }

    /// Resolves the decode-path artifacts for `config`: the sliding-window
    /// plan when a window applies, else the monolithic decoder's APSP or
    /// capacity table. With a cache, artifacts are fetched by content key
    /// and shared across runs (and across content-identical runners);
    /// without one they are built fresh — the results are bit-identical
    /// either way, because every artifact is a deterministic function of
    /// the key.
    ///
    /// Fails only on a malformed `ERASER_WINDOW` / `ERASER_DECODER` /
    /// `ERASER_FUSION` override.
    pub fn decode_artifacts(
        &self,
        config: &RunConfig,
        cache: Option<&ArtifactCache>,
    ) -> Result<DecodeArtifacts, EnvOverrideError> {
        if !config.decode {
            return Ok(DecodeArtifacts { resolved: None });
        }
        // Streaming vs monolithic decode path. A window of 0 (or beyond the
        // round count, where a single window would cover the whole shot)
        // selects monolithic decoding — unless fusion is requested, which
        // *requires* a window chain to partition: fusion_threads > 1 with
        // no usable window derives the default geometry min(3d, rounds).
        let (mut window, mut stride_raw) = config.resolved_window()?;
        let decoder = config.resolved_decoder()?;
        let fusion = config.resolved_fusion()?;
        let d = self.exp.code().distance();
        if fusion > 1 && (window == 0 || window > self.exp.rounds()) {
            window = (3 * d).min(self.exp.rounds());
            stride_raw = 0;
        }
        let resolved = if window > 0 && window <= self.exp.rounds() {
            let stride = if stride_raw == 0 {
                window.saturating_sub(d).max(1)
            } else {
                stride_raw.min(window)
            };
            let backend = decoder.resolve_window_backend(&self.graph, window);
            let plan = match cache {
                Some(cache) => cache.get_or_build(
                    &CacheKey {
                        experiment: self.cache_key(),
                        kind: ArtifactKind::WindowPlan {
                            window,
                            stride,
                            backend,
                        },
                    },
                    WindowPlan::approx_decoder_bytes,
                    || WindowPlan::new(&self.graph, window, stride, backend),
                ),
                None => Arc::new(WindowPlan::new(&self.graph, window, stride, backend)),
            };
            if fusion > 1 {
                let fplan = match cache {
                    Some(cache) => cache.get_or_build(
                        &CacheKey {
                            experiment: self.cache_key(),
                            kind: ArtifactKind::FusionPlan {
                                window,
                                stride,
                                backend,
                                threads: fusion,
                            },
                        },
                        FusionPlan::approx_bytes,
                        || FusionPlan::new(Arc::clone(&plan), fusion),
                    ),
                    None => Arc::new(FusionPlan::new(Arc::clone(&plan), fusion)),
                };
                ResolvedDecode::Fused(fplan)
            } else {
                ResolvedDecode::Windowed(plan)
            }
        } else {
            let kind = decoder.resolve(&self.graph);
            let (paths, capacities, sparse) = match kind {
                DecoderKind::Mwpm | DecoderKind::Greedy => {
                    let paths = match cache {
                        Some(cache) => cache.get_or_build(
                            &CacheKey {
                                experiment: self.cache_key(),
                                kind: ArtifactKind::Apsp,
                            },
                            ShortestPaths::approx_bytes,
                            || ShortestPaths::compute(&self.graph),
                        ),
                        None => Arc::new(ShortestPaths::compute(&self.graph)),
                    };
                    (Some(paths), None, None)
                }
                DecoderKind::SparseMwpm => {
                    let sparse = match cache {
                        Some(cache) => cache.get_or_build(
                            &CacheKey {
                                experiment: self.cache_key(),
                                kind: ArtifactKind::SparseIndex,
                            },
                            SparseIndex::approx_bytes,
                            || SparseIndex::compute(&self.graph),
                        ),
                        None => Arc::new(SparseIndex::compute(&self.graph)),
                    };
                    (None, None, Some(sparse))
                }
                DecoderKind::UnionFind => {
                    let capacities = match cache {
                        Some(cache) => cache.get_or_build(
                            &CacheKey {
                                experiment: self.cache_key(),
                                kind: ArtifactKind::UfCapacities,
                            },
                            UnionFindCapacities::approx_bytes,
                            || UnionFindCapacities::compute(&self.graph),
                        ),
                        None => Arc::new(UnionFindCapacities::compute(&self.graph)),
                    };
                    (None, Some(capacities), None)
                }
                DecoderKind::Auto => unreachable!("resolve never returns Auto"),
            };
            ResolvedDecode::Monolithic {
                kind,
                paths,
                capacities,
                sparse,
            }
        };
        Ok(DecodeArtifacts {
            resolved: Some(resolved),
        })
    }

    /// Runs `config.shots` shots of the experiment under the policy produced
    /// by `policy_factory` (one instance per worker thread).
    ///
    /// Builds the decode artifacts fresh (no cache); callers that reuse
    /// artifacts across runs — the `Sweep` engine, `eraser-serve` — resolve
    /// them once via [`MemoryRunner::decode_artifacts`] and call
    /// [`MemoryRunner::run_with_artifacts`].
    ///
    /// # Panics
    ///
    /// Panics if `config.shots == 0`, or on a malformed `ERASER_*`
    /// environment override (the `Experiment`/`Sweep` facades validate the
    /// environment at build time and surface the same condition as an
    /// `Err` instead).
    pub fn run(
        &self,
        policy_factory: &(dyn Fn(&RotatedCode) -> Box<dyn LrcPolicy> + Sync),
        config: &RunConfig,
    ) -> MemoryRunResult {
        let artifacts = self
            .decode_artifacts(config, None)
            .unwrap_or_else(|e| panic!("{e}"));
        self.run_with_artifacts(policy_factory, config, &artifacts)
    }

    /// [`MemoryRunner::run`] with pre-resolved decode artifacts.
    ///
    /// `artifacts` must come from [`MemoryRunner::decode_artifacts`] on a
    /// content-identical runner with this `config` (same decoder selection
    /// and window geometry). Results are bit-identical to [`run`] — the
    /// artifacts are deterministic, so sharing them cannot change a single
    /// decode.
    ///
    /// # Panics
    ///
    /// Panics if `config.shots == 0`, or on a malformed `ERASER_*`
    /// environment override.
    ///
    /// [`run`]: MemoryRunner::run
    pub fn run_with_artifacts(
        &self,
        policy_factory: &(dyn Fn(&RotatedCode) -> Box<dyn LrcPolicy> + Sync),
        config: &RunConfig,
        artifacts: &DecodeArtifacts,
    ) -> MemoryRunResult {
        assert!(config.shots >= 1, "a run needs at least one shot");
        let (plan, fused): (Option<&WindowPlan>, Option<&FusionPlan>) = match &artifacts.resolved {
            Some(ResolvedDecode::Windowed(plan)) => (Some(plan), None),
            Some(ResolvedDecode::Fused(fplan)) => (Some(fplan.window_plan()), Some(fplan)),
            _ => (None, None),
        };
        // The factory holds the expensive precomputation (APSP table, edge
        // capacities) — resolved once, possibly from a cache; worker
        // threads build their own stateful instances from it.
        let factory: Option<Box<dyn DecoderFactory + '_>> = match &artifacts.resolved {
            Some(ResolvedDecode::Monolithic {
                kind,
                paths,
                capacities,
                sparse,
            }) => Some(match kind {
                DecoderKind::Mwpm => Box::new(MwpmFactory::with_paths(
                    &self.graph,
                    Arc::clone(paths.as_ref().expect("mwpm artifacts carry paths")),
                )),
                DecoderKind::SparseMwpm => Box::new(SparseMwpmFactory::with_index(
                    &self.graph,
                    Arc::clone(sparse.as_ref().expect("sparse artifacts carry an index")),
                )),
                DecoderKind::Greedy => Box::new(GreedyFactory::with_paths(
                    &self.graph,
                    Arc::clone(paths.as_ref().expect("greedy artifacts carry paths")),
                )),
                DecoderKind::UnionFind => Box::new(UnionFindFactory::with_capacities(
                    &self.graph,
                    Arc::clone(
                        capacities
                            .as_ref()
                            .expect("union-find artifacts carry capacities"),
                    ),
                )),
                DecoderKind::Auto => unreachable!("artifacts hold a resolved kind"),
            }),
            _ => None,
        };
        let factory = factory.as_deref();

        let threads = config
            .resolved_threads()
            .unwrap_or_else(|e| panic!("{e}"))
            .min(config.shots.max(1) as usize)
            .max(1);
        // Contiguous shot ranges per worker. Every shot derives its own RNG
        // stream from (seed, global shot index) — see `shot_rng` — so the
        // partitioning affects wall-clock time only: results are
        // bit-identical for any thread count (all merged statistics are
        // integer-valued, so even the f64 LPR sums are exact).
        let mut jobs: Vec<(u64, u64)> = Vec::with_capacity(threads);
        let base = config.shots / threads as u64;
        let extra = (config.shots % threads as u64) as usize;
        let mut first = 0u64;
        for t in 0..threads {
            let count = base + u64::from(t < extra);
            jobs.push((first, count));
            first += count;
        }

        let width = config
            .resolved_stripe_width()
            .unwrap_or_else(|e| panic!("{e}"));
        let partials: Vec<PartialStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(first, count)| {
                    scope.spawn(move || {
                        if width == 1 {
                            self.run_shots_scalar(
                                first,
                                count,
                                policy_factory,
                                factory,
                                plan,
                                fused,
                                config,
                            )
                        } else {
                            self.run_stripes(
                                first,
                                count,
                                width,
                                policy_factory,
                                factory,
                                plan,
                                fused,
                                config,
                            )
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let rounds = self.exp.rounds();
        let mut merged = PartialStats {
            lpr_data_sum: vec![0.0; rounds],
            lpr_parity_sum: vec![0.0; rounds],
            ..PartialStats::default()
        };
        for p in &partials {
            merged.logical_errors += p.logical_errors;
            merged.total_lrcs += p.total_lrcs;
            merged.total_erasures += p.total_erasures;
            merged.speculation.merge(&p.speculation);
            merged.postselection.flagged_shots += p.postselection.flagged_shots;
            merged.postselection.errors_on_kept += p.postselection.errors_on_kept;
            merged.decode_latency.merge(&p.decode_latency);
            merged.controller.merge(&p.controller);
            merged.predecode.merge(&p.predecode);
            for r in 0..rounds {
                merged.lpr_data_sum[r] += p.lpr_data_sum[r];
                merged.lpr_parity_sum[r] += p.lpr_parity_sum[r];
            }
        }
        let code = self.exp.code();
        let shots_f = config.shots as f64;
        let num_data = code.num_data() as f64;
        let num_parity = code.num_stabs() as f64;
        let num_all = code.num_qubits() as f64;
        let lpr_data: Vec<f64> = merged
            .lpr_data_sum
            .iter()
            .map(|&s| s / (shots_f * num_data))
            .collect();
        let lpr_parity: Vec<f64> = merged
            .lpr_parity_sum
            .iter()
            .map(|&s| s / (shots_f * num_parity))
            .collect();
        let lpr_total: Vec<f64> = merged
            .lpr_data_sum
            .iter()
            .zip(&merged.lpr_parity_sum)
            .map(|(&d, &p)| (d + p) / (shots_f * num_all))
            .collect();
        let policy_name = policy_factory(code).name().to_string();
        MemoryRunResult {
            shots: config.shots,
            logical_errors: merged.logical_errors,
            rounds,
            lpr_total,
            lpr_data,
            lpr_parity,
            total_lrcs: merged.total_lrcs,
            total_erasures: merged.total_erasures,
            speculation: merged.speculation,
            postselection: merged.postselection,
            policy: policy_name,
            decoder: plan
                .map(|p| p.backend().name())
                .or_else(|| factory.map(|f| f.name()))
                .unwrap_or("none")
                .to_string(),
            decode_latency: merged.decode_latency,
            controller: merged.controller,
            predecode: merged.predecode,
        }
    }

    /// The scalar reference path (stripe width 1): one shot at a time on
    /// the scalar [`FrameSimulator`]. The striped path must stay
    /// bit-identical to this, shot for shot.
    #[allow(clippy::too_many_arguments)]
    fn run_shots_scalar(
        &self,
        first_shot: u64,
        shots: u64,
        policy_factory: &(dyn Fn(&RotatedCode) -> Box<dyn LrcPolicy> + Sync),
        factory: Option<&dyn DecoderFactory>,
        plan: Option<&WindowPlan>,
        fused: Option<&FusionPlan>,
        config: &RunConfig,
    ) -> PartialStats {
        let code = self.exp.code();
        let keys = self.exp.keys();
        let rounds = self.exp.rounds();
        let builder = self.exp.round_builder();
        let num_data = code.num_data();
        let num_stabs = code.num_stabs();

        // Per-thread decoder instance: mutable, with scratch buffers reused
        // across every shot this worker decodes. Exactly one of `decoder`
        // (monolithic) and `streaming` (sliding-window) is live on
        // decode-enabled runs. Both are fronted by the tiered predecoder
        // (bit-identical either way; env validated upstream, so a malformed
        // `ERASER_PREDECODE` here can only panic, never silently default).
        let predecode = config
            .resolved_predecode()
            .unwrap_or_else(|e| panic!("{e}"));
        let mut decoder = factory.map(|f| TieredDecoder::with_enabled(f.build(), predecode));
        let mut streaming: Option<ShotStream> = match (fused, plan) {
            (Some(f), _) => Some(ShotStream::Fused(FusionDecoder::new(
                f,
                Arc::new(FusionPool::new(f.threads())),
            ))),
            (None, Some(p)) => Some(ShotStream::Windowed(p.streaming())),
            (None, None) => None,
        };
        if let Some(stream) = streaming.as_mut() {
            stream.set_predecode(predecode);
        }
        let erasure_active = config.erasure.enabled && (decoder.is_some() || streaming.is_some());
        let mut policy = policy_factory(code);
        let discriminator = if policy.uses_multilevel() {
            Discriminator::MultiLevel
        } else {
            Discriminator::TwoLevel
        };
        let mut sim = FrameSimulator::new(
            code.num_qubits(),
            keys.total(),
            *self.exp.noise(),
            discriminator,
            Rng::new(0), // reseeded per shot below
        );

        let mut stats = PartialStats {
            lpr_data_sum: vec![0.0; rounds],
            lpr_parity_sum: vec![0.0; rounds],
            ..PartialStats::default()
        };
        let mut prev_syndrome = vec![false; num_stabs];
        let mut events = vec![false; num_stabs];
        let mut leaked_readouts = vec![false; num_stabs];
        let mut oracle = vec![false; num_data];
        let mut det_events = vec![false; self.detectors.len()];
        let mut syndrome = Syndrome::build(Vec::new()).rounds(rounds).finish();
        // Streaming-path scratch: the current round's defects / erasure
        // edges, plus the shot-level erasure log (kept only to report
        // `total_erasures` with the monolithic dedup-per-shot semantics).
        let mut round_defects: Vec<usize> = Vec::new();
        let mut round_erasures: Vec<usize> = Vec::new();
        let mut erasure_log: Vec<usize> = Vec::new();

        for shot in first_shot..first_shot + shots {
            // The shot's stream splits in two: the simulator's physics and
            // the (independent) detection-noise stream, so erasure-aware and
            // leakage-blind runs decode identical error realizations.
            let mut det_rng = shot_rng(config.seed, shot);
            sim.reseed(det_rng.fork());
            sim.reset_shot();
            policy.reset_shot();
            syndrome.clear();
            erasure_log.clear();
            if let Some(stream) = streaming.as_mut() {
                stream.begin_shot();
            }
            sim.run(&self.init_segment);
            prev_syndrome.fill(false);
            events.fill(false);
            leaked_readouts.fill(false);
            let mut last_lrcs: Vec<LrcAssignment> = Vec::new();
            // Offline post-selection flag: leakage-like syndrome pattern seen
            // anywhere in the shot's history.
            let mut suspect = false;

            for r in 0..rounds {
                // Time-varying injected leakage (the profile schedule),
                // applied before the oracle snapshot so even the idealized
                // policy sees the storm the round it lands. The striped path
                // injects identically (same qubit order, same draws).
                let extra = config.profile.extra_leak_p(r);
                if extra > 0.0 {
                    for q in 0..num_data {
                        sim.run(&[Op::LeakInject { qubit: q, p: extra }]);
                    }
                }
                for (q, slot) in oracle.iter_mut().enumerate() {
                    *slot = sim.is_leaked(q);
                }
                let mut plan = policy.plan_round(&RoundContext {
                    round: r,
                    events: &events,
                    leaked_readouts: &leaked_readouts,
                    oracle_leaked_data: &oracle,
                    last_lrcs: &last_lrcs,
                });
                // Canonical (data, stab) order: the striped path executes
                // LRC slots in this order, so the scalar reference must
                // build (and draw randomness for) its rounds the same way.
                plan.sort_unstable_by_key(|l| (l.data, l.stab));
                // Confusion matrix against ground truth at planning time.
                let mut planned = vec![false; num_data];
                for lrc in &plan {
                    planned[lrc.data] = true;
                }
                for q in 0..num_data {
                    match (planned[q], oracle[q]) {
                        (true, true) => stats.speculation.true_positive += 1,
                        (true, false) => stats.speculation.false_positive += 1,
                        (false, true) => stats.speculation.false_negative += 1,
                        (false, false) => stats.speculation.true_negative += 1,
                    }
                }
                stats.total_lrcs += plan.len() as u64;

                round_erasures.clear();
                if erasure_active {
                    if let Some(det) = policy.leakage_detections() {
                        let fp = config.erasure.false_positive;
                        let fnr = config.erasure.false_negative;
                        // Every flag erases the provenance bucket of the
                        // flagged qubit over its believed-leaked window:
                        // data flags cover the evidence round and the
                        // current one; a returned qubit's random state
                        // shows up in the same window; a parity |L⟩ readout
                        // pins the (reset-bounded) leak to the previous
                        // round alone.
                        for (q, &flag) in det.data.iter().enumerate() {
                            let reported = if flag {
                                !det_rng.bernoulli(fnr)
                            } else {
                                det_rng.bernoulli(fp)
                            };
                            if reported {
                                self.extend_qubit_erasures(
                                    r.saturating_sub(1)..=r,
                                    q,
                                    &mut round_erasures,
                                );
                            }
                        }
                        // No false-positive synthesis here: a clean data
                        // qubit already took its one per-round FP draw in
                        // the `data` loop above; drawing again would double
                        // the effective FP rate versus the documented model.
                        for (q, &flag) in det.data_returned.iter().enumerate() {
                            if flag && !det_rng.bernoulli(fnr) {
                                self.extend_qubit_erasures(
                                    r.saturating_sub(2)..=r,
                                    q,
                                    &mut round_erasures,
                                );
                            }
                        }
                        for (s, &flag) in det.parity.iter().enumerate() {
                            let reported = if flag {
                                !det_rng.bernoulli(fnr)
                            } else {
                                det_rng.bernoulli(fp)
                            };
                            if reported && r > 0 {
                                let parity = code.parity_qubit(s);
                                self.extend_qubit_erasures(
                                    r - 1..=r - 1,
                                    parity,
                                    &mut round_erasures,
                                );
                            }
                        }
                        if streaming.is_some() {
                            erasure_log.extend_from_slice(&round_erasures);
                        } else {
                            syndrome.erasures.extend_from_slice(&round_erasures);
                        }
                    }
                }

                let round_circ: SyndromeRound = match config.protocol {
                    LrcProtocol::Swap => builder.round(r, &plan, keys),
                    LrcProtocol::Dqlr => builder.dqlr_round(r, &plan, keys),
                };
                sim.run(&round_circ.pre);
                // LPR probe: after the entangling layers, before readout
                // (captures leakage accumulated during the round).
                stats.lpr_data_sum[r] += sim.leaked_count_in(0..num_data) as f64;
                stats.lpr_parity_sum[r] += sim.leaked_count_in(num_data..code.num_qubits()) as f64;
                sim.run(&round_circ.measure);
                sim.run(&round_circ.mr_reset);
                for tail in &round_circ.lrc_post {
                    if policy.uses_multilevel() && sim.record().label(tail.data_key).is_leaked() {
                        // §4.6.2: the SWAP failed; reset P, squash swap-back.
                        sim.run(&tail.leak_path);
                    } else {
                        sim.run(&tail.swap_back);
                    }
                }
                sim.run(&round_circ.post);

                for s in 0..num_stabs {
                    let key = keys.stab_key(r, s);
                    let flip = sim.record().flip(key);
                    events[s] = if r == 0 {
                        // Round 0: memory-basis stabilizers are deterministic;
                        // the other basis has a random reference and produces
                        // no event yet.
                        self.stab_deterministic_round0[s] && flip
                    } else {
                        flip ^ prev_syndrome[s]
                    };
                    prev_syndrome[s] = flip;
                    leaked_readouts[s] = sim.record().label(key).is_leaked();
                }
                if !suspect {
                    // The LSB rule applied offline: at least half of some data
                    // qubit's neighbouring checks fired this round.
                    suspect = (0..num_data).any(|q| {
                        let adj = code.adjacent_stabs(q);
                        let flips = adj.iter().filter(|&&s| events[s]).count();
                        flips >= adj.len().div_ceil(2)
                    });
                }
                if let Some(stream) = streaming.as_mut() {
                    // Detector round r is fully measured now: stream its
                    // defects (and this round's erasure flags) into the
                    // windowed decoder, which retires any window whose last
                    // round just arrived.
                    self.gather_round_defects(&sim, r, &mut round_defects);
                    stream.push_round(&round_defects, &round_erasures);
                }
                last_lrcs = plan;
            }
            sim.run(&self.final_segment);

            if suspect {
                stats.postselection.flagged_shots += 1;
            }
            if let Some(decoder) = decoder.as_mut() {
                for (i, det) in self.detectors.iter().enumerate() {
                    det_events[i] = sim.record().parity(&det.keys);
                }
                self.graph
                    .defects_from_events_into(&det_events, &mut syndrome.defects);
                // Adjacent flagged qubits share checks, and flags persist
                // across rounds: deduplicate the collected erasure edges.
                syndrome.erasures.sort_unstable();
                syndrome.erasures.dedup();
                stats.total_erasures += syndrome.erasures.len() as u64;
                let outcome = decoder.decode_syndrome(&syndrome);
                stats.decode_latency.record(outcome.nanos, rounds + 1);
                let actual = sim.record().parity(&self.observable);
                if outcome.flip != actual {
                    stats.logical_errors += 1;
                    if !suspect {
                        stats.postselection.errors_on_kept += 1;
                    }
                }
            } else if let Some(stream) = streaming.as_mut() {
                // The final transversal detectors (round = rounds) complete
                // with the final segment; pushing them retires the last
                // window and seals the shot.
                self.gather_round_defects(&sim, rounds, &mut round_defects);
                stream.push_round(&round_defects, &[]);
                let outcome = stream.finish();
                for &(nanos, committed) in stream.latencies() {
                    stats.decode_latency.record(nanos, committed as usize);
                }
                erasure_log.sort_unstable();
                erasure_log.dedup();
                stats.total_erasures += erasure_log.len() as u64;
                let actual = sim.record().parity(&self.observable);
                if outcome.flip != actual {
                    stats.logical_errors += 1;
                    if !suspect {
                        stats.postselection.errors_on_kept += 1;
                    }
                }
            }
        }
        // Controller telemetry accumulates across this worker's shots;
        // harvest it once (sum/max merge makes the order irrelevant). Same
        // for the predecoder's tier counters.
        if let Some(controller) = policy.controller() {
            stats.controller.merge(controller);
        }
        if let Some(decoder) = decoder.as_ref() {
            stats.predecode.merge(decoder.counters());
        }
        if let Some(stream) = streaming.as_ref() {
            stats.predecode.merge(&stream.tier_counters());
        }
        stats
    }

    /// Executes one segment of a static round schedule on the stripe,
    /// resolving each op's condition to a lane mask. `key_offset` rebases
    /// the schedule's round-0 measurement keys onto the current round.
    #[inline]
    fn exec_segment(
        &self,
        sim: &mut BatchFrameSimulator,
        segment: &[qec_core::MaskedOp],
        key_offset: usize,
        active: u64,
        slot_masks: &[u64],
        stab_free: &[u64],
    ) {
        for mop in segment {
            let mask = match mop.cond {
                OpCond::Always => active,
                OpCond::Slot(i) => slot_masks[i],
                OpCond::StabFree(s) => stab_free[s],
                // The ERASER+M intra-round branch: the LRC's data readout
                // (recorded this round under the slot's stabilizer key)
                // came back |L⟩. Labels are only ever set under multi-level
                // readout, so two-level policies always take the clean arm.
                OpCond::SlotLabelLeaked(i) => {
                    let key = key_offset + self.slot_table.slot(i).stab;
                    slot_masks[i] & sim.record().leaked_word(key)
                }
                OpCond::SlotLabelClean(i) => {
                    let key = key_offset + self.slot_table.slot(i).stab;
                    slot_masks[i] & !sim.record().leaked_word(key)
                }
            };
            if mask == 0 {
                continue;
            }
            let mut op = mop.op;
            if let Op::Measure { ref mut key, .. } = op {
                *key += key_offset;
            }
            sim.apply_masked(&op, mask);
        }
    }

    /// The word-parallel path: up to 64 shots per stripe on the
    /// [`BatchFrameSimulator`], with one static schedule per round executed
    /// under the policy layer's per-slot lane masks, and the stripe's
    /// defect/erasure sets fed to the decoder as one `decode_batch` call.
    /// Bit-identical to [`MemoryRunner::run_shots_scalar`], shot for shot.
    #[allow(clippy::too_many_arguments)]
    fn run_stripes(
        &self,
        first_shot: u64,
        shots: u64,
        width: usize,
        policy_factory: &(dyn Fn(&RotatedCode) -> Box<dyn LrcPolicy> + Sync),
        factory: Option<&dyn DecoderFactory>,
        plan: Option<&WindowPlan>,
        fused: Option<&FusionPlan>,
        config: &RunConfig,
    ) -> PartialStats {
        let code = self.exp.code();
        let rounds = self.exp.rounds();
        let num_data = code.num_data();
        let num_stabs = code.num_stabs();
        let num_qubits = code.num_qubits();
        let slots = &self.slot_table;
        let schedule = match config.protocol {
            LrcProtocol::Swap => &self.masked_swap,
            LrcProtocol::Dqlr => &self.masked_dqlr,
        };

        let predecode = config
            .resolved_predecode()
            .unwrap_or_else(|e| panic!("{e}"));
        let mut decoder = factory.map(|f| TieredDecoder::with_enabled(f.build(), predecode));
        // One streaming decoder per lane: each lane is its own shot, so each
        // needs its own streaming state (the expensive tables stay shared
        // through the plan). On the fusion path the lanes finish strictly one
        // at a time, so a single intra-shot pool serves all of this worker's
        // lanes.
        let mut streams: Vec<ShotStream> = match (fused, plan) {
            (Some(f), _) => {
                let pool = Arc::new(FusionPool::new(f.threads()));
                (0..width)
                    .map(|_| ShotStream::Fused(FusionDecoder::new(f, Arc::clone(&pool))))
                    .collect()
            }
            (None, Some(p)) => (0..width)
                .map(|_| ShotStream::Windowed(p.streaming()))
                .collect(),
            (None, None) => Vec::new(),
        };
        for stream in &mut streams {
            stream.set_predecode(predecode);
        }
        let erasure_active = config.erasure.enabled && (decoder.is_some() || !streams.is_empty());
        let mut policy = StripedPolicy::new(policy_factory, code, width);
        let discriminator = if policy.uses_multilevel() {
            Discriminator::MultiLevel
        } else {
            Discriminator::TwoLevel
        };
        let mut sim = BatchFrameSimulator::new(
            num_qubits,
            self.exp.keys().total(),
            *self.exp.noise(),
            discriminator,
        );

        let mut stats = PartialStats {
            lpr_data_sum: vec![0.0; rounds],
            lpr_parity_sum: vec![0.0; rounds],
            ..PartialStats::default()
        };
        let mut sim_rngs: Vec<Rng> = Vec::with_capacity(width);
        let mut det_rngs: Vec<Rng> = Vec::with_capacity(width);
        let mut prev_syndrome = vec![0u64; num_stabs];
        let mut events = vec![0u64; num_stabs];
        let mut leaked_readouts = vec![0u64; num_stabs];
        let mut oracle = vec![0u64; num_data];
        let mut slot_masks = vec![0u64; slots.len()];
        let mut planned = vec![0u64; num_data];
        let mut stab_free = vec![0u64; num_stabs];
        let mut det_words = vec![0u64; self.detectors.len()];
        let mut det_events = vec![false; self.detectors.len()];
        let mut syndromes: Vec<Syndrome> = (0..width)
            .map(|_| Syndrome::build(Vec::new()).rounds(rounds).finish())
            .collect();
        let mut outcomes: Vec<DecodeOutcome> = Vec::with_capacity(width);
        // Streaming-path scratch, one slot per lane.
        let mut lane_round_defects: Vec<Vec<usize>> = vec![Vec::new(); width];
        let mut lane_round_erasures: Vec<Vec<usize>> = vec![Vec::new(); width];
        let mut lane_erasure_log: Vec<Vec<usize>> = vec![Vec::new(); width];

        let end = first_shot + shots;
        let mut shot = first_shot;
        while shot < end {
            let lanes = width.min((end - shot) as usize);
            // Lane l carries global shot `shot + l`, with exactly the
            // per-shot streams the scalar path derives: the detection
            // stream and its fork for the simulator physics.
            sim_rngs.clear();
            det_rngs.clear();
            for l in 0..lanes as u64 {
                let mut det = shot_rng(config.seed, shot + l);
                sim_rngs.push(det.fork());
                det_rngs.push(det);
            }
            sim.begin_stripe(&sim_rngs);
            let active = sim.active();
            policy.reset_stripe(lanes);
            for syndrome in &mut syndromes[..lanes] {
                syndrome.clear();
            }
            for log in lane_erasure_log.iter_mut().take(lanes) {
                log.clear();
            }
            for stream in streams.iter_mut().take(lanes) {
                stream.begin_shot();
            }
            sim.run_masked(&self.init_segment, active);
            prev_syndrome.fill(0);
            events.fill(0);
            leaked_readouts.fill(0);
            // Offline post-selection flags, one bit per lane.
            let mut suspect = 0u64;

            for r in 0..rounds {
                // Time-varying injected leakage, mirroring the scalar path:
                // same qubit order, and per-active-lane draws line up with
                // each lane's scalar physics stream.
                let extra = config.profile.extra_leak_p(r);
                if extra > 0.0 {
                    for q in 0..num_data {
                        sim.apply_masked(&Op::LeakInject { qubit: q, p: extra }, active);
                    }
                }
                for (q, word) in oracle.iter_mut().enumerate() {
                    *word = sim.leak_word(q);
                }
                policy.plan_round(
                    &StripeRoundContext {
                        round: r,
                        events: &events,
                        leaked_readouts: &leaked_readouts,
                        oracle_leaked_data: &oracle,
                        active,
                    },
                    slots,
                    &mut slot_masks,
                );
                // Confusion matrix and LRC count, word-parallel.
                planned.fill(0);
                for (i, &mask) in slot_masks.iter().enumerate() {
                    if mask != 0 {
                        planned[slots.slot(i).data] |= mask;
                        stats.total_lrcs += mask.count_ones() as u64;
                    }
                }
                for q in 0..num_data {
                    let p = planned[q];
                    let o = oracle[q] & active;
                    stats.speculation.true_positive += (p & o).count_ones() as u64;
                    stats.speculation.false_positive += (p & !o).count_ones() as u64;
                    stats.speculation.false_negative += (!p & o).count_ones() as u64;
                    stats.speculation.true_negative += (!p & !o & active).count_ones() as u64;
                }

                for buffer in lane_round_erasures.iter_mut().take(lanes) {
                    buffer.clear();
                }
                if erasure_active {
                    // Per-lane detection noise, drawing each lane's stream
                    // in exactly the scalar order (data, data_returned,
                    // parity loops per round).
                    let fp = config.erasure.false_positive;
                    let fnr = config.erasure.false_negative;
                    for lane in 0..lanes {
                        let Some(det) = policy.lane_detections(lane) else {
                            continue;
                        };
                        let det_rng = &mut det_rngs[lane];
                        let erasures = &mut lane_round_erasures[lane];
                        for (q, &flag) in det.data.iter().enumerate() {
                            let reported = if flag {
                                !det_rng.bernoulli(fnr)
                            } else {
                                det_rng.bernoulli(fp)
                            };
                            if reported {
                                self.extend_qubit_erasures(r.saturating_sub(1)..=r, q, erasures);
                            }
                        }
                        for (q, &flag) in det.data_returned.iter().enumerate() {
                            if flag && !det_rng.bernoulli(fnr) {
                                self.extend_qubit_erasures(r.saturating_sub(2)..=r, q, erasures);
                            }
                        }
                        for (s, &flag) in det.parity.iter().enumerate() {
                            let reported = if flag {
                                !det_rng.bernoulli(fnr)
                            } else {
                                det_rng.bernoulli(fp)
                            };
                            if reported && r > 0 {
                                let parity = code.parity_qubit(s);
                                self.extend_qubit_erasures(r - 1..=r - 1, parity, erasures);
                            }
                        }
                        if streams.is_empty() {
                            syndromes[lane].erasures.extend_from_slice(erasures);
                        } else {
                            lane_erasure_log[lane].extend_from_slice(erasures);
                        }
                    }
                }

                for (s, free) in stab_free.iter_mut().enumerate() {
                    let mut busy = 0u64;
                    for &i in slots.slots_on_stab(s) {
                        busy |= slot_masks[i];
                    }
                    *free = active & !busy;
                }

                let key_offset = r * num_stabs;
                self.exec_segment(
                    &mut sim,
                    &schedule.pre,
                    key_offset,
                    active,
                    &slot_masks,
                    &stab_free,
                );
                // LPR probe: after the entangling layers, before readout.
                stats.lpr_data_sum[r] += sim.leaked_count_in(0..num_data) as f64;
                stats.lpr_parity_sum[r] += sim.leaked_count_in(num_data..num_qubits) as f64;
                self.exec_segment(
                    &mut sim,
                    &schedule.measure,
                    key_offset,
                    active,
                    &slot_masks,
                    &stab_free,
                );
                self.exec_segment(
                    &mut sim,
                    &schedule.mr_reset,
                    key_offset,
                    active,
                    &slot_masks,
                    &stab_free,
                );
                self.exec_segment(
                    &mut sim,
                    &schedule.tails,
                    key_offset,
                    active,
                    &slot_masks,
                    &stab_free,
                );
                self.exec_segment(
                    &mut sim,
                    &schedule.post,
                    key_offset,
                    active,
                    &slot_masks,
                    &stab_free,
                );

                for s in 0..num_stabs {
                    let flip = sim.record().flip_word(key_offset + s);
                    events[s] = if r == 0 {
                        if self.stab_deterministic_round0[s] {
                            flip
                        } else {
                            0
                        }
                    } else {
                        flip ^ prev_syndrome[s]
                    };
                    prev_syndrome[s] = flip;
                    leaked_readouts[s] = sim.record().leaked_word(key_offset + s);
                }
                // The offline LSB rule, word-parallel: flag lanes in which
                // at least half of some data qubit's neighbouring checks
                // fired this round.
                if suspect != active {
                    for q in 0..num_data {
                        let adj = code.adjacent_stabs(q);
                        suspect |= at_least(adj.iter().map(|&s| events[s]), adj.len().div_ceil(2));
                    }
                    suspect &= active;
                }
                if !streams.is_empty() {
                    self.gather_round_defect_lanes(&sim, r, active, lanes, &mut lane_round_defects);
                    for lane in 0..lanes {
                        streams[lane]
                            .push_round(&lane_round_defects[lane], &lane_round_erasures[lane]);
                    }
                }
            }
            sim.run_masked(&self.final_segment, active);

            stats.postselection.flagged_shots += suspect.count_ones() as u64;
            if let Some(decoder) = decoder.as_mut() {
                // Detector parities for all lanes at once, then per-lane
                // defect extraction into the stripe's syndrome batch.
                for (i, det) in self.detectors.iter().enumerate() {
                    det_words[i] = sim.record().parity_word(&det.keys);
                }
                for (lane, syndrome) in syndromes.iter_mut().enumerate().take(lanes) {
                    for (i, &word) in det_words.iter().enumerate() {
                        det_events[i] = word >> lane & 1 != 0;
                    }
                    self.graph
                        .defects_from_events_into(&det_events, &mut syndrome.defects);
                    syndrome.erasures.sort_unstable();
                    syndrome.erasures.dedup();
                    stats.total_erasures += syndrome.erasures.len() as u64;
                }
                decoder.decode_batch(&syndromes[..lanes], &mut outcomes);
                let actual = sim.record().parity_word(&self.observable);
                for (lane, outcome) in outcomes.iter().enumerate() {
                    stats.decode_latency.record(outcome.nanos, rounds + 1);
                    if outcome.flip != (actual >> lane & 1 != 0) {
                        stats.logical_errors += 1;
                        if suspect >> lane & 1 == 0 {
                            stats.postselection.errors_on_kept += 1;
                        }
                    }
                }
            } else if !streams.is_empty() {
                // Final transversal detectors (round = rounds) arrive with
                // the final segment; push them, then seal every lane's shot.
                self.gather_round_defect_lanes(
                    &sim,
                    rounds,
                    active,
                    lanes,
                    &mut lane_round_defects,
                );
                let actual = sim.record().parity_word(&self.observable);
                for lane in 0..lanes {
                    let stream = &mut streams[lane];
                    stream.push_round(&lane_round_defects[lane], &[]);
                    let outcome = stream.finish();
                    for &(nanos, committed) in stream.latencies() {
                        stats.decode_latency.record(nanos, committed as usize);
                    }
                    let log = &mut lane_erasure_log[lane];
                    log.sort_unstable();
                    log.dedup();
                    stats.total_erasures += log.len() as u64;
                    if outcome.flip != (actual >> lane & 1 != 0) {
                        stats.logical_errors += 1;
                        if suspect >> lane & 1 == 0 {
                            stats.postselection.errors_on_kept += 1;
                        }
                    }
                }
            }
            shot += lanes as u64;
        }
        // Controller telemetry accumulates per lane across the worker's
        // stripes; harvest each lane once (sum/max merge is order-free).
        // Same for the predecoder's tier counters.
        for lane in 0..width {
            if let Some(controller) = policy.lane_controller(lane) {
                stats.controller.merge(controller);
            }
        }
        if let Some(decoder) = decoder.as_ref() {
            stats.predecode.merge(decoder.counters());
        }
        for stream in &streams {
            stats.predecode.merge(&stream.tier_counters());
        }
        stats
    }
}

/// Lane mask of "at least `t` of these words' bits are set", via a
/// bit-sliced ripple counter. Exact for up to 4 words (a data qubit has at
/// most 4 neighbouring checks).
#[inline]
fn at_least(words: impl Iterator<Item = u64>, t: usize) -> u64 {
    let (mut b0, mut b1, mut b2) = (0u64, 0u64, 0u64);
    for w in words {
        let c0 = b0 & w;
        b0 ^= w;
        let c1 = b1 & c0;
        b1 ^= c0;
        b2 |= c1;
    }
    match t {
        0 => !0,
        1 => b0 | b1 | b2,
        2 => b1 | b2,
        3 => (b1 & b0) | b2,
        _ => b2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AlwaysLrcPolicy, EraserPolicy, NoLrcPolicy, OptimalPolicy};

    fn cfg(shots: u64) -> RunConfig {
        RunConfig {
            shots,
            seed: 11,
            threads: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn decoder_kind_resolution_is_centralized() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 2);
        let graph = runner.graph();
        assert!(graph.num_nodes() <= DecoderKind::AUTO_MWPM_NODE_LIMIT);
        assert_eq!(DecoderKind::Auto.resolve(graph), DecoderKind::Mwpm);
        assert_eq!(DecoderKind::Greedy.resolve(graph), DecoderKind::Greedy);
        assert_eq!(DecoderKind::Auto.build_factory(graph).name(), "mwpm");
        assert_eq!(
            DecoderKind::UnionFind.build_factory(graph).name(),
            "union-find"
        );
    }

    #[test]
    fn noiseless_run_has_zero_ler() {
        let runner = MemoryRunner::new(3, NoiseParams::without_leakage(0.0), 3);
        let result = runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg(50));
        assert_eq!(result.logical_errors, 0);
        assert!(result.lpr_total.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pauli_only_noise_gives_small_ler() {
        let runner = MemoryRunner::new(3, NoiseParams::without_leakage(1e-3), 3);
        let result = runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg(400));
        assert!(
            result.ler() < 0.1,
            "LER {} too high for p=1e-3 d=3",
            result.ler()
        );
    }

    #[test]
    fn results_are_deterministic_for_fixed_seed_and_threads() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 3);
        let a = runner.run(&|c| Box::new(EraserPolicy::new(c)), &cfg(120));
        let b = runner.run(&|c| Box::new(EraserPolicy::new(c)), &cfg(120));
        assert_eq!(a.logical_errors, b.logical_errors);
        assert_eq!(a.total_lrcs, b.total_lrcs);
        assert_eq!(a.speculation, b.speculation);
    }

    /// Shots own their RNG streams, so the worker-thread partitioning must
    /// not change anything — including with leakage-aware decoding (whose
    /// detection-noise stream is also per-shot).
    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(3e-3), 5);
        let run_with = |threads: usize| {
            let config = RunConfig {
                shots: 90,
                seed: 31,
                threads,
                decoder: DecoderKind::Mwpm,
                erasure: ErasureDetection::imperfect(0.01, 0.05),
                ..RunConfig::default()
            };
            runner.run(&|c| Box::new(EraserPolicy::new(c)), &config)
        };
        let one = run_with(1);
        for threads in [2usize, 4] {
            let multi = run_with(threads);
            assert_eq!(one.logical_errors, multi.logical_errors, "{threads}t");
            assert_eq!(one.total_lrcs, multi.total_lrcs, "{threads}t");
            assert_eq!(one.total_erasures, multi.total_erasures, "{threads}t");
            assert_eq!(one.speculation, multi.speculation, "{threads}t");
            assert_eq!(one.postselection, multi.postselection, "{threads}t");
            // The LPR sums accumulate integer counts, so even the f64
            // vectors are exactly reproducible.
            assert_eq!(one.lpr_total, multi.lpr_total, "{threads}t");
            assert_eq!(one.lpr_data, multi.lpr_data, "{threads}t");
            assert_eq!(one.lpr_parity, multi.lpr_parity, "{threads}t");
        }
    }

    #[test]
    fn erasure_aware_decoding_flags_edges_without_changing_physics() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(5e-3), 8);
        let blind = runner.run(&|c| Box::new(EraserPolicy::with_multilevel(c)), &cfg(150));
        let config = RunConfig {
            erasure: ErasureDetection::perfect_readout(),
            ..cfg(150)
        };
        let aware = runner.run(&|c| Box::new(EraserPolicy::with_multilevel(c)), &config);
        assert!(aware.total_erasures > 0, "|L> flags must reach decoding");
        assert_eq!(blind.total_erasures, 0);
        // Same physics: the shots, LRC schedule, and speculation stats are
        // identical — only the decoding differs.
        assert_eq!(blind.total_lrcs, aware.total_lrcs);
        assert_eq!(blind.speculation, aware.speculation);
        assert_eq!(blind.lpr_total, aware.lpr_total);
        // Two-level ERASER has no erasure-grade herald: flags stay at zero
        // unless the imperfect-check model synthesizes false positives.
        let two_level = runner.run(&|c| Box::new(EraserPolicy::new(c)), &config);
        assert_eq!(two_level.total_erasures, 0);
        let noisy = RunConfig {
            erasure: ErasureDetection::imperfect(0.02, 0.0),
            ..cfg(150)
        };
        let synthetic = runner.run(&|c| Box::new(EraserPolicy::new(c)), &noisy);
        assert!(synthetic.total_erasures > 0, "FP model synthesizes flags");
        // Baselines without a detection read path stay leakage-blind.
        let none = runner.run(&|_| Box::new(NoLrcPolicy::new()), &noisy);
        assert_eq!(none.total_erasures, 0);
    }

    #[test]
    fn leakage_increases_lpr_over_rounds_without_lrcs() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(5e-3), 9);
        let result = runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg(300));
        let early = result.lpr_total[0];
        let late = result.lpr_total[8];
        assert!(
            late > early,
            "LPR must grow without leakage removal: {early} vs {late}"
        );
    }

    #[test]
    fn optimal_policy_has_perfect_fpr() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 6);
        let result = runner.run(&|c| Box::new(OptimalPolicy::new(c)), &cfg(200));
        assert_eq!(result.speculation.false_positive, 0);
        assert!(result.speculation.accuracy() > 0.999);
    }

    #[test]
    fn always_lrc_schedules_half_the_lattice_per_round() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 8);
        let result = runner.run(&|c| Box::new(AlwaysLrcPolicy::new(c)), &cfg(20));
        let per_round = result.lrcs_per_round();
        assert!((per_round - 4.0).abs() < 0.01, "got {per_round}");
    }

    #[test]
    fn eraser_schedules_far_fewer_lrcs_than_always() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 8);
        let always = runner.run(&|c| Box::new(AlwaysLrcPolicy::new(c)), &cfg(100));
        let eraser = runner.run(&|c| Box::new(EraserPolicy::new(c)), &cfg(100));
        assert!(
            eraser.lrcs_per_round() < always.lrcs_per_round() / 4.0,
            "eraser {} vs always {}",
            eraser.lrcs_per_round(),
            always.lrcs_per_round()
        );
    }

    #[test]
    fn dqlr_protocol_runs_and_keeps_lpr_bounded() {
        let runner = MemoryRunner::new(3, NoiseParams::exchange_transport(1e-3), 8);
        let config = RunConfig {
            protocol: LrcProtocol::Dqlr,
            ..cfg(100)
        };
        let result = runner.run(&|c| Box::new(AlwaysLrcPolicy::every_round(c)), &config);
        assert!(result.mean_lpr() < 0.05);
    }

    #[test]
    fn speculation_stats_identities() {
        let s = SpeculationStats {
            true_positive: 10,
            false_positive: 10,
            false_negative: 20,
            true_negative: 60,
        };
        assert!((s.accuracy() - 0.7).abs() < 1e-12);
        assert!((s.false_positive_rate() - 10.0 / 70.0).abs() < 1e-12);
        assert!((s.false_negative_rate() - 20.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shot_runs_are_rejected() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 2);
        runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg(0));
    }

    #[test]
    fn postselection_cleans_up_leaky_shots() {
        // With leakage on, post-selection must (a) flag a nonzero fraction of
        // shots and (b) achieve an LER on the kept shots no worse than the
        // raw LER (it removes leakage-corrupted trials). p is kept moderate:
        // at 5e-3 the offline LSB rule saturates (it flags nearly every shot
        // with or without leakage) and the leaky/clean comparison below loses
        // its signal — especially now that the per-shot RNG streams pair the
        // two runs.
        let runner = MemoryRunner::new(3, NoiseParams::standard(2e-3), 10);
        let result = runner.run(&|_| Box::new(NoLrcPolicy::new()), &cfg(800));
        let ps = result.postselection;
        assert!(ps.flagged_shots > 0, "leaky shots must be flagged");
        assert!(ps.flagged_shots < result.shots, "not everything is flagged");
        assert!(
            ps.ler_postselected(result.shots) <= result.ler() + 0.01,
            "post-selected LER {} vs raw {}",
            ps.ler_postselected(result.shots),
            result.ler()
        );
        // Without leakage, fewer shots get flagged.
        let clean = MemoryRunner::new(3, NoiseParams::without_leakage(2e-3), 10);
        let clean_result = clean.run(&|_| Box::new(NoLrcPolicy::new()), &cfg(800));
        assert!(
            clean_result.postselection.keep_fraction(clean_result.shots)
                > ps.keep_fraction(result.shots),
            "leakage must reduce the keep fraction"
        );
    }

    #[test]
    fn memory_x_runner_works_end_to_end() {
        use surface_code::MemoryBasis;
        let noiseless =
            MemoryRunner::new_with_basis(3, NoiseParams::without_leakage(0.0), 3, MemoryBasis::X);
        let clean = noiseless.run(&|_| Box::new(NoLrcPolicy::new()), &cfg(40));
        assert_eq!(clean.logical_errors, 0, "noiseless memory-X must be exact");

        let noisy = MemoryRunner::new_with_basis(3, NoiseParams::standard(1e-3), 6, MemoryBasis::X);
        let result = noisy.run(&|c| Box::new(EraserPolicy::new(c)), &cfg(200));
        assert!(result.ler() < 0.2);
    }

    /// Table-driven coverage of every `ERASER_*` override parser. All
    /// seven route through the shared [`parse_env_override`] envelope, and
    /// this single test pins the shared contract: valid values parse,
    /// empty/whitespace means unset, and malformed values are a *clear
    /// error* naming the variable and the reason — never a silent default
    /// or a panic. The parsers are pure functions of the raw string — no
    /// `set_var` here, which would race with concurrently running tests.
    #[test]
    fn env_override_parsing_is_strict() {
        use crate::control::{parse_control_env, ControlBase, ControlLawKind, ControllerConfig};

        // The shared envelope assertion every knob's cases run through.
        fn check<T: std::fmt::Debug + PartialEq>(
            var: &str,
            raw: &str,
            result: Result<Option<T>, EnvOverrideError>,
            expected: &Result<Option<T>, &str>,
        ) {
            match expected {
                Ok(v) => assert_eq!(result.as_ref().ok(), Some(v), "{var}={raw:?}"),
                Err(reason) => {
                    let err = result.expect_err(&format!("{var}={raw:?} must error"));
                    assert_eq!(err.var, var);
                    assert_eq!(err.reason, *reason);
                    assert!(
                        err.to_string().contains(var) && err.to_string().contains(reason),
                        "message names the variable and the problem: {err}"
                    );
                }
            }
        }

        // (raw, expected) for the positive-integer knobs.
        let int_cases: &[(&str, Result<Option<usize>, &str>)] = &[
            ("4", Ok(Some(4))),
            (" 8 ", Ok(Some(8))),
            ("1", Ok(Some(1))),
            ("", Ok(None)),
            ("   ", Ok(None)),
            ("0", Err("must be a positive integer")),
            ("four", Err("not an integer")),
            ("4x", Err("not an integer")),
            ("-2", Err("not an integer")),
            ("4.0", Err("not an integer")),
        ];
        for (raw, expected) in int_cases {
            check("ERASER_THREADS", raw, parse_threads_env(raw), expected);
            check("ERASER_STRIPE", raw, parse_stripe_env(raw), expected);
            check("ERASER_FUSION", raw, parse_fusion_env(raw), expected);
        }

        type WindowCase = (&'static str, Result<Option<(usize, usize)>, &'static str>);
        let window_cases: &[WindowCase] = &[
            ("15", Ok(Some((15, 0)))),
            ("15:10", Ok(Some((15, 10)))),
            (" 8 : 8 ", Ok(Some((8, 8)))),
            ("", Ok(None)),
            ("  ", Ok(None)),
            ("0", Err("window must be a positive round count")),
            ("8:9", Err("stride exceeds the window")),
            ("abc", Err("expected \"W\" or \"W:S\" with integer rounds")),
            ("8:x", Err("expected \"W\" or \"W:S\" with integer rounds")),
            (":4", Err("expected \"W\" or \"W:S\" with integer rounds")),
            ("8:", Err("expected \"W\" or \"W:S\" with integer rounds")),
        ];
        for (raw, expected) in window_cases {
            check("ERASER_WINDOW", raw, parse_window_env(raw), expected);
        }

        let unknown_decoder =
            "unknown decoder (expected auto, mwpm, sparse-mwpm, union-find, or greedy)";
        type DecoderCase = (&'static str, Result<Option<DecoderKind>, &'static str>);
        let decoder_cases: &[DecoderCase] = &[
            ("mwpm", Ok(Some(DecoderKind::Mwpm))),
            (" sparse-mwpm ", Ok(Some(DecoderKind::SparseMwpm))),
            ("sparse", Ok(Some(DecoderKind::SparseMwpm))),
            ("SPARSE-BLOSSOM", Ok(Some(DecoderKind::SparseMwpm))),
            ("uf", Ok(Some(DecoderKind::UnionFind))),
            ("greedy", Ok(Some(DecoderKind::Greedy))),
            ("auto", Ok(Some(DecoderKind::Auto))),
            ("", Ok(None)),
            ("  ", Ok(None)),
            ("tensor-network", Err(unknown_decoder)),
            ("mwpm2", Err(unknown_decoder)),
        ];
        for (raw, expected) in decoder_cases {
            check("ERASER_DECODER", raw, parse_decoder_env(raw), expected);
        }

        let predecode_cases: &[(&str, Result<Option<bool>, &str>)] = &[
            ("on", Ok(Some(true))),
            (" off ", Ok(Some(false))),
            ("", Ok(None)),
            ("  ", Ok(None)),
            ("1", Err("expected \"on\" or \"off\"")),
            ("true", Err("expected \"on\" or \"off\"")),
            ("ON", Err("expected \"on\" or \"off\"")),
        ];
        for (raw, expected) in predecode_cases {
            check("ERASER_PREDECODE", raw, parse_predecode_env(raw), expected);
        }

        type ControlCase = (&'static str, Result<Option<ControllerConfig>, &'static str>);
        let control_cases: &[ControlCase] = &[
            ("", Ok(None)),
            ("   ", Ok(None)),
            ("ewma", Ok(Some(ControllerConfig::ewma()))),
            (" budget ", Ok(Some(ControllerConfig::budget()))),
            (
                "ewma:up=0.2,down=0.05",
                Ok(Some(ControllerConfig {
                    up: 0.2,
                    down: 0.05,
                    ..ControllerConfig::ewma()
                })),
            ),
            (
                "budget:quota=7,base=eraser,shift=2,dwell=1",
                Ok(Some(ControllerConfig {
                    law: ControlLawKind::Budget,
                    base: ControlBase::Eraser,
                    budget: 7,
                    ewma_shift: 2,
                    min_dwell: 1,
                    ..ControllerConfig::budget()
                })),
            ),
            (
                "pid",
                Err("unknown control law (expected \"ewma\" or \"budget\")"),
            ),
            ("ewma:up=two", Err("knob value is not a number")),
            (
                "ewma:up=0.01,down=0.5",
                Err("thresholds must satisfy 0 <= down <= up <= 1"),
            ),
            ("ewma:shift=16", Err("ewma shift must be at most 15")),
            ("budget:quota=0", Err("budget law needs a positive quota")),
            (
                "ewma:base=optimal",
                Err("unknown base policy (expected \"no-lrc\" or \"eraser\")"),
            ),
            (
                "ewma:wat=1",
                Err("unknown control knob (expected up/down/shift/dwell/quota/base)"),
            ),
            ("ewma:up", Err("knobs must be key=value pairs")),
        ];
        for (raw, expected) in control_cases {
            check("ERASER_CONTROL", raw, parse_control_env(raw), expected);
        }
    }

    #[test]
    fn config_fields_win_over_environment_hooks() {
        // Explicit config fields resolve without consulting the
        // environment at all.
        let config = RunConfig {
            window_rounds: 6,
            window_stride: 9,
            ..RunConfig::default()
        };
        assert_eq!(
            config.resolved_window().unwrap(),
            (6, 6),
            "stride clamps to window"
        );
        let config = RunConfig {
            threads: 3,
            stripe_width: 200,
            ..RunConfig::default()
        };
        assert_eq!(config.resolved_threads().unwrap(), 3);
        assert_eq!(
            config.resolved_stripe_width().unwrap(),
            STRIPE_WIDTH,
            "stripe clamps to the 64-lane word"
        );
        let config = RunConfig {
            controller: Some(ControllerConfig::budget()),
            ..RunConfig::default()
        };
        assert_eq!(
            config.resolved_controller().unwrap(),
            Some(ControllerConfig::budget()),
            "an explicit controller field needs no environment"
        );
    }

    #[test]
    fn auto_backend_resolves_against_the_window() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 30);
        // The whole-experiment graph stays below the monolithic limit here,
        // but the rule under test is the per-window node count.
        assert_eq!(
            DecoderKind::Auto.resolve_window_backend(runner.graph(), 10),
            WindowBackend::Mwpm
        );
        assert_eq!(
            DecoderKind::Greedy.resolve_window_backend(runner.graph(), 10),
            WindowBackend::Greedy
        );
        let nodes_per_round = runner.graph().num_nodes() / (runner.graph().max_round() + 1);
        let huge = DecoderKind::AUTO_MWPM_NODE_LIMIT / nodes_per_round + 2;
        // A window that large prices out the dense all-pairs table — were
        // the experiment long enough to host it, Auto would pick the sparse
        // blossom (same optimal weight, O(n) precomputation).
        assert_eq!(
            DecoderKind::Auto.resolve_window_backend(runner.graph(), huge),
            WindowBackend::SparseMwpm
        );
    }

    /// The windowed path simulates identical physics (it only changes *when*
    /// decoding happens) and its LER tracks the monolithic decoder tightly.
    #[test]
    fn windowed_decoding_preserves_physics_and_tracks_monolithic_ler() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(3e-3), 12);
        let config = |window: usize| RunConfig {
            shots: 200,
            seed: 77,
            threads: 2,
            decoder: DecoderKind::Mwpm,
            window_rounds: window,
            // Pinned sequential: the per-window latency-sample count below
            // is the sequential path's contract (a CI-set `ERASER_FUSION`
            // would otherwise flip this run to one sample per shot), and
            // pinned tier-free (the tier-0 skip elides empty windows'
            // samples; tier identity has its own tests).
            fusion_threads: 1,
            predecode: Some(false),
            erasure: ErasureDetection::perfect_readout(),
            ..RunConfig::default()
        };
        let policy =
            |c: &RotatedCode| -> Box<dyn LrcPolicy> { Box::new(EraserPolicy::with_multilevel(c)) };
        // A window beyond the round count auto-selects monolithic decoding
        // (and, unlike window 0, is immune to a CI-set `ERASER_WINDOW`).
        let mono = runner.run(&policy, &config(13));
        let windowed = runner.run(&policy, &config(5));
        // Identical physics: every decode-independent statistic matches.
        assert_eq!(mono.total_lrcs, windowed.total_lrcs);
        assert_eq!(mono.speculation, windowed.speculation);
        assert_eq!(mono.lpr_total, windowed.lpr_total);
        assert_eq!(
            mono.postselection.flagged_shots,
            windowed.postselection.flagged_shots
        );
        assert_eq!(mono.total_erasures, windowed.total_erasures);
        assert_eq!(mono.decoder, windowed.decoder, "same backend name");
        // Paired shots: the decode disagreement rate is tiny.
        let delta = mono.logical_errors.abs_diff(windowed.logical_errors);
        assert!(
            delta <= 6,
            "windowed LER drifted: {} vs {}",
            windowed.logical_errors,
            mono.logical_errors
        );
        // Latency probes: one sample per shot monolithically, one per window
        // (⌈(12+1−5)/s⌉+1 windows with the stride defaulting to w−d=2) when
        // streaming.
        assert_eq!(mono.decode_latency.samples(), 200);
        assert_eq!(windowed.decode_latency.samples(), 200 * 5);
        assert!(windowed.decode_latency.p50_ns_per_round() > 0.0);
        assert!(
            windowed.decode_latency.p99_ns_per_round()
                >= windowed.decode_latency.p50_ns_per_round()
        );
    }

    /// Windowed runs stay bit-identical across worker-thread counts and
    /// stripe widths, exactly like monolithic runs.
    #[test]
    fn windowed_results_bit_identical_across_threads_and_stripes() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(3e-3), 10);
        let run_with = |threads: usize, stripe: usize| {
            let config = RunConfig {
                shots: 90,
                seed: 31,
                threads,
                stripe_width: stripe,
                decoder: DecoderKind::Mwpm,
                window_rounds: 4,
                window_stride: 2,
                erasure: ErasureDetection::imperfect(0.01, 0.05),
                ..RunConfig::default()
            };
            runner.run(&|c| Box::new(EraserPolicy::with_multilevel(c)), &config)
        };
        let reference = run_with(1, 1);
        assert!(reference.total_erasures > 0, "erasures must be in play");
        for (threads, stripe) in [(1usize, 64usize), (4, 1), (4, 64), (3, 13)] {
            let other = run_with(threads, stripe);
            assert_eq!(
                reference.logical_errors, other.logical_errors,
                "{threads}t stripe{stripe}"
            );
            assert_eq!(reference.total_lrcs, other.total_lrcs);
            assert_eq!(reference.total_erasures, other.total_erasures);
            assert_eq!(reference.speculation, other.speculation);
            assert_eq!(reference.postselection, other.postselection);
            assert_eq!(reference.lpr_total, other.lpr_total);
        }
    }

    /// Intra-shot fusion is a pure wall-clock knob at the run level too:
    /// every statistic of a fused run — logical errors included — matches
    /// the sequential windowed run bit-for-bit at every thread count, on
    /// both the scalar and striped paths, with erasures in play.
    #[test]
    fn fused_runs_match_sequential_windowed_bitwise() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(3e-3), 12);
        let run_with = |fusion: usize, stripe: usize| {
            let config = RunConfig {
                shots: 120,
                seed: 99,
                threads: 2,
                stripe_width: stripe,
                decoder: DecoderKind::Mwpm,
                window_rounds: 5,
                window_stride: 2,
                fusion_threads: fusion,
                erasure: ErasureDetection::imperfect(0.01, 0.05),
                ..RunConfig::default()
            };
            runner.run(&|c| Box::new(EraserPolicy::with_multilevel(c)), &config)
        };
        let sequential = run_with(1, 64);
        assert!(sequential.total_erasures > 0, "erasures must be in play");
        for (fusion, stripe) in [(2usize, 64usize), (2, 1), (3, 64), (8, 13)] {
            let fused = run_with(fusion, stripe);
            assert_eq!(
                sequential.logical_errors, fused.logical_errors,
                "{fusion} fusion threads, stripe {stripe}"
            );
            assert_eq!(sequential.lpr_total, fused.lpr_total);
            assert_eq!(sequential.total_lrcs, fused.total_lrcs);
            assert_eq!(sequential.total_erasures, fused.total_erasures);
            assert_eq!(sequential.speculation, fused.speculation);
            assert_eq!(sequential.postselection, fused.postselection);
            assert_eq!(sequential.decoder, fused.decoder);
            // The fused latency probe is one sample per *shot* (the number
            // the real-time budget cares about), not one per window.
            assert_eq!(fused.decode_latency.samples(), 120);
            assert!(fused.decode_latency.p50_ns_per_round() > 0.0);
        }
    }

    /// `fusion_threads > 1` with no window configured derives the
    /// `min(3d, rounds)` default geometry instead of silently falling back
    /// to monolithic decoding (which has no chain to partition).
    #[test]
    fn fusion_derives_a_window_when_none_is_configured() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 20);
        let fused = RunConfig {
            fusion_threads: 4,
            ..cfg(10)
        };
        let artifacts = runner.decode_artifacts(&fused, None).unwrap();
        assert!(artifacts.windowed() && artifacts.fused());
        // Pinned sequential with no window stays monolithic (unless an
        // external `ERASER_WINDOW` — e.g. a CI matrix leg — supplies one,
        // which is a window config, not a fusion derivation).
        let sequential = RunConfig {
            fusion_threads: 1,
            ..cfg(10)
        };
        let artifacts = runner.decode_artifacts(&sequential, None).unwrap();
        assert!(!artifacts.fused());
        if sequential.resolved_window().unwrap().0 == 0 {
            assert!(!artifacts.windowed());
        }
        // An explicit window under fusion keeps its configured geometry.
        let windowed = RunConfig {
            fusion_threads: 4,
            window_rounds: 6,
            window_stride: 3,
            ..cfg(10)
        };
        let artifacts = runner.decode_artifacts(&windowed, None).unwrap();
        assert!(artifacts.windowed() && artifacts.fused());
        // And a no-decode run resolves nothing regardless of fusion.
        let no_decode = RunConfig {
            decode: false,
            fusion_threads: 4,
            ..cfg(10)
        };
        let artifacts = runner.decode_artifacts(&no_decode, None).unwrap();
        assert!(!artifacts.decodes() && !artifacts.fused());
    }

    #[test]
    fn decode_latency_stats_quantiles_and_merge() {
        let mut stats = DecodeLatencyStats::default();
        assert_eq!(stats.samples(), 0);
        assert_eq!(stats.p50_ns_per_round(), 0.0);
        for _ in 0..99 {
            stats.record(1000, 1); // bucket [512, 1024) -> midpoint 768
        }
        stats.record(1 << 20, 1);
        assert_eq!(stats.samples(), 100);
        assert_eq!(stats.p50_ns_per_round(), 768.0);
        assert_eq!(stats.p99_ns_per_round(), 768.0);
        assert!(stats.quantile_ns_per_round(1.0) > 1e6);
        let mean = stats.mean_ns_per_round();
        assert!((mean - (99.0 * 1000.0 + (1u64 << 20) as f64) / 100.0).abs() < 1e-6);
        // Normalization: 10_000 ns over 10 rounds is a 1000 ns/round sample.
        let mut other = DecodeLatencyStats::default();
        other.record(10_000, 10);
        assert_eq!(other.p50_ns_per_round(), 768.0);
        stats.merge(&other);
        assert_eq!(stats.samples(), 101);
    }

    /// The quantile is total on every input: empty histograms, boundary
    /// and out-of-range `q`, non-finite `q`, and single-bucket histograms
    /// all return a defined, finite value — never NaN, never a panic.
    #[test]
    fn decode_latency_quantile_edge_cases_are_total() {
        // Empty histogram: 0.0 for every q, including the pathological ones.
        let empty = DecodeLatencyStats::default();
        for q in [0.0, 0.5, 1.0, -3.0, 7.0, f64::NAN, f64::INFINITY] {
            assert_eq!(empty.quantile_ns_per_round(q), 0.0, "empty, q={q}");
        }
        assert_eq!(empty.mean_ns_per_round(), 0.0);

        // Single-bucket histogram: every q lands in that bucket.
        let mut single = DecodeLatencyStats::default();
        for _ in 0..5 {
            single.record(700, 1); // bucket [512, 1024) -> midpoint 768
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0, -1.0, 2.0] {
            assert_eq!(single.quantile_ns_per_round(q), 768.0, "single, q={q}");
        }

        // Two-bucket histogram: q=0 is the minimum bucket, q=1 the maximum,
        // out-of-range q clamps to those, and non-finite q acts like 0.
        let mut two = DecodeLatencyStats::default();
        two.record(700, 1);
        two.record(100_000, 1); // bucket [2^16, 2^17) -> midpoint 98304
        assert_eq!(two.quantile_ns_per_round(0.0), 768.0);
        assert_eq!(two.quantile_ns_per_round(-0.5), 768.0);
        assert_eq!(two.quantile_ns_per_round(1.0), 98304.0);
        assert_eq!(two.quantile_ns_per_round(1.5), 98304.0);
        assert_eq!(two.quantile_ns_per_round(f64::NAN), 768.0);
        assert_eq!(two.quantile_ns_per_round(f64::NEG_INFINITY), 768.0);
        for q in [0.0, 0.5, 1.0] {
            assert!(two.quantile_ns_per_round(q).is_finite());
        }

        // A zero-nanosecond sample (timer resolution floor) still buckets.
        let mut floor = DecodeLatencyStats::default();
        floor.record(0, 1);
        assert_eq!(floor.samples(), 1);
        assert!(floor.quantile_ns_per_round(0.5) > 0.0);
    }

    #[test]
    fn single_threaded_matches_shape() {
        let runner = MemoryRunner::new(3, NoiseParams::standard(1e-3), 2);
        let config = RunConfig {
            threads: 1,
            ..cfg(30)
        };
        let result = runner.run(&|c| Box::new(EraserPolicy::new(c)), &config);
        assert_eq!(result.shots, 30);
        assert_eq!(result.lpr_total.len(), 2);
    }
}
