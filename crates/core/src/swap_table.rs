//! The DLI's SWAP Lookup Table (§4.4).
//!
//! Every data qubit gets a pre-determined *primary* parity-qubit partner and
//! one *backup*. Primaries form a maximum bipartite matching between data
//! qubits and their adjacent stabilizers — since a distance-`d` code has `d²`
//! data but only `d² − 1` parity qubits, exactly one data qubit is left
//! without a primary (it is served by its backup, and under Always-LRC
//! scheduling it is the LRC carried into the next round, Fig 3).

use surface_code::RotatedCode;

/// Primary/backup SWAP partners per data qubit.
///
/// # Example
///
/// ```
/// use eraser_core::SwapLookupTable;
/// use surface_code::RotatedCode;
///
/// let code = RotatedCode::new(3);
/// let table = SwapLookupTable::new(&code);
/// // Exactly one data qubit lacks a primary (d² data, d²−1 parities).
/// let unmatched = (0..code.num_data()).filter(|&q| table.primary(q).is_none()).count();
/// assert_eq!(unmatched, 1);
/// // Every data qubit has a backup.
/// assert!((0..code.num_data()).all(|q| table.backup(q).is_some()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapLookupTable {
    primary: Vec<Option<usize>>,
    backup: Vec<Option<usize>>,
}

impl SwapLookupTable {
    /// Builds the table for a code via maximum bipartite matching
    /// (augmenting paths; the lattice is tiny, so O(V·E) is irrelevant).
    pub fn new(code: &RotatedCode) -> SwapLookupTable {
        let num_data = code.num_data();
        let num_stabs = code.num_stabs();
        // stab -> matched data qubit.
        let mut stab_owner: Vec<Option<usize>> = vec![None; num_stabs];
        let mut primary: Vec<Option<usize>> = vec![None; num_data];

        fn try_assign(
            q: usize,
            code: &RotatedCode,
            stab_owner: &mut [Option<usize>],
            primary: &mut [Option<usize>],
            visited: &mut [bool],
        ) -> bool {
            for &s in code.adjacent_stabs(q) {
                if visited[s] {
                    continue;
                }
                visited[s] = true;
                let free = match stab_owner[s] {
                    None => true,
                    Some(owner) => try_assign(owner, code, stab_owner, primary, visited),
                };
                if free {
                    stab_owner[s] = Some(q);
                    primary[q] = Some(s);
                    return true;
                }
            }
            false
        }

        for q in 0..num_data {
            let mut visited = vec![false; num_stabs];
            try_assign(q, code, &mut stab_owner, &mut primary, &mut visited);
        }

        // Backup: a different adjacent stabilizer, spread by round-robin so
        // backups don't all collide on the same parity qubits.
        let mut backup: Vec<Option<usize>> = vec![None; num_data];
        let mut backup_load = vec![0usize; num_stabs];
        for q in 0..num_data {
            let choice = code
                .adjacent_stabs(q)
                .iter()
                .copied()
                .filter(|&s| Some(s) != primary[q])
                .min_by_key(|&s| backup_load[s]);
            if let Some(s) = choice {
                backup_load[s] += 1;
                backup[q] = Some(s);
            } else {
                // Degenerate: a data qubit with a single neighbour (cannot
                // happen on a rotated code, where every data qubit touches at
                // least two stabilizers).
                backup[q] = primary[q];
            }
        }
        SwapLookupTable { primary, backup }
    }

    /// The primary SWAP partner (stabilizer index) of data qubit `q`, if any.
    pub fn primary(&self, q: usize) -> Option<usize> {
        self.primary[q]
    }

    /// The backup SWAP partner of data qubit `q`.
    pub fn backup(&self, q: usize) -> Option<usize> {
        self.backup[q]
    }

    /// The data qubit left without a primary (exactly one per code).
    pub fn unmatched_data(&self) -> Option<usize> {
        self.primary.iter().position(|p| p.is_none())
    }

    /// Lookup order used by the DLI: primary first, then backup.
    pub fn candidates(&self, q: usize) -> impl Iterator<Item = usize> + '_ {
        self.primary[q].into_iter().chain(
            self.backup[q]
                .into_iter()
                .filter(move |&b| Some(b) != self.primary[q]),
        )
    }

    /// Number of data qubits covered.
    pub fn num_data(&self) -> usize {
        self.primary.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_form_a_matching() {
        for d in [3usize, 5, 7, 9, 11] {
            let code = RotatedCode::new(d);
            let table = SwapLookupTable::new(&code);
            let mut used = vec![false; code.num_stabs()];
            let mut matched = 0;
            for q in 0..code.num_data() {
                if let Some(s) = table.primary(q) {
                    assert!(!used[s], "stab {s} matched twice at d={d}");
                    assert!(code.adjacent_stabs(q).contains(&s), "non-adjacent primary");
                    used[s] = true;
                    matched += 1;
                }
            }
            // Maximum matching saturates all d²−1 parity qubits.
            assert_eq!(matched, code.num_stabs(), "matching not maximum at d={d}");
            assert_eq!(table.unmatched_data().into_iter().count(), 1);
        }
    }

    #[test]
    fn backups_differ_from_primaries_and_are_adjacent() {
        let code = RotatedCode::new(5);
        let table = SwapLookupTable::new(&code);
        for q in 0..code.num_data() {
            let b = table.backup(q).expect("backup exists");
            assert!(code.adjacent_stabs(q).contains(&b));
            if let Some(p) = table.primary(q) {
                assert_ne!(p, b, "backup equals primary for data {q}");
            }
        }
    }

    #[test]
    fn candidates_order_primary_then_backup() {
        let code = RotatedCode::new(3);
        let table = SwapLookupTable::new(&code);
        for q in 0..code.num_data() {
            let c: Vec<usize> = table.candidates(q).collect();
            match table.primary(q) {
                Some(p) => {
                    assert_eq!(c[0], p);
                    assert_eq!(c.len(), 2);
                }
                None => assert_eq!(c.len(), 1),
            }
        }
    }
}
