//! Minimal JSON reader/writer with no dependencies.
//!
//! The workspace keeps a strict zero-dependency policy, so both the bench
//! harness (which writes `results/BENCH_*.json` baselines) and the
//! `eraser-serve` wire protocol need a hand-rolled JSON implementation.
//! This crate is that single shared implementation: an order-preserving
//! [`Value`] tree, a strict recursive-descent parser, and a compact writer
//! whose output round-trips exactly.
//!
//! Design notes:
//!
//! - Integers are held as `i128` ([`Value::Int`]), wide enough to carry
//!   `u64` seeds and shot counts exactly. `f64` would silently lose
//!   precision above 2^53, which matters for bit-identical replies.
//! - Floats are written with Rust's shortest-round-trip `Display`, so
//!   `parse(write(x)) == x` for every finite `f64`.
//! - Objects preserve insertion order (`Vec<(String, Value)>`), keeping
//!   written frames and baseline files stable and diffable.
//!
//! ```
//! use eraser_json::Value;
//!
//! let mut obj = Value::object();
//! obj.set("name", "d7");
//! obj.set("shots", 1u64 << 60);
//! let text = obj.to_string();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("shots").unwrap().as_u64(), Some(1u64 << 60));
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts before bailing out. Deeply
/// nested input would otherwise overflow the stack via recursion.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Any number written without a fraction or exponent that fits `i128`.
    Int(i128),
    /// Every other number. Always finite (JSON has no NaN/Infinity).
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A parse failure: byte offset into the input plus a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Empty object, ready for [`Value::set`].
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Empty array, ready for [`Value::push`].
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Inserts or replaces `key` on an object. Panics if `self` is not an
    /// object — builder misuse, not a data error.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) {
        match self {
            Value::Object(entries) => {
                let value = value.into();
                if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
    }

    /// Appends to an array. Panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Value>) {
        match self {
            Value::Array(items) => items.push(value.into()),
            other => panic!("Value::push on non-array {other:?}"),
        }
    }

    /// Object field lookup. `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric read: accepts both `Int` and `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Parses a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Compact serialization (no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                use fmt::Write;
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => write_f64(*f, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Indented serialization for files that humans diff (baselines).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Shortest-round-trip float formatting. JSON cannot represent NaN or
/// infinity, so those degrade to `null` rather than emitting an invalid
/// document.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let text = format!("{f}");
        out.push_str(&text);
        // `Display` prints integral floats without a point ("2"), which
        // would parse back as Int; keep the type stable across round-trips.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i as i128)
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Value {
        Value::Int(i as i128)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i as i128)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i128)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: must be followed by \uDC00..DFFF.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-decode UTF-8 from the source slice; the input is a
                    // &str so the byte sequence is guaranteed valid.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-17").unwrap(), Value::Int(-17));
        assert_eq!(Value::parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(Value::parse("1e-3").unwrap(), Value::Float(1e-3));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 3;
        let mut obj = Value::object();
        obj.set("seed", seed);
        let back = Value::parse(&obj.to_string()).unwrap();
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(seed));
    }

    #[test]
    fn floats_round_trip_shortest() {
        for &f in &[0.1, 1.0 / 3.0, 6.02e23, -2.2e-308, 123456.789, 2.0] {
            let mut s = String::new();
            write_f64(f, &mut s);
            let back = Value::parse(&s).unwrap();
            assert_eq!(back.as_f64(), Some(f), "round-trip failed for {f}: {s}");
        }
    }

    #[test]
    fn integral_float_stays_float() {
        let v = Value::Float(2.0);
        let text = v.to_string();
        assert_eq!(text, "2.0");
        assert_eq!(Value::parse(&text).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote:\" slash:\\ nl:\n tab:\t cr:\r bell:\u{7} unicode:\u{1F600}é";
        let v = Value::Str(nasty.to_string());
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_standard_escapes_and_surrogates() {
        let v = Value::parse(r#""a\"b\\c\/d\b\f\n\r\tA😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c/d\u{8}\u{c}\n\r\tA\u{1F600}");
    }

    #[test]
    fn rejects_bad_surrogates() {
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ud83dA""#).is_err());
        assert!(Value::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn object_round_trip_preserves_order() {
        let text = r#"{"z":1,"a":{"nested":[1,2.5,"x",null,true]},"m":-3}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        let keys: Vec<_> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut obj = Value::object();
        obj.set("k", 1u64);
        obj.set("k", 2u64);
        assert_eq!(obj.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(obj.as_object().unwrap().len(), 1);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "1.",
            "1e",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
            "\u{1}",
            "nan",
            "infinity",
        ] {
            assert!(Value::parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn rejects_runaway_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::parse(r#"{"benches":[{"name":"a","ns":1.5}],"empty":[],"eo":{}}"#).unwrap();
        let pretty = v.to_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
        assert!(pretty.ends_with('\n'));
    }
}
