//! Masked-op intermediate representation for word-parallel execution.
//!
//! A striped (64-shots-per-word) simulator cannot consume per-shot dynamic
//! circuits: rebuilding the op sequence for every shot is exactly the
//! overhead bit-packing is meant to remove. Instead, a round is emitted
//! *once* as a static sequence of [`MaskedOp`]s in which every dynamic
//! decision — "does this shot run an LRC on pair (D, P) this round?",
//! "did this LRC's data readout come back |L⟩?" — is a *condition* resolved
//! at execution time into a 64-bit lane mask. Ops whose mask is zero are
//! skipped with a single word compare.
//!
//! The conditions reference *slots*: the enumerable set of legal LRC
//! assignments (adjacent (data, stabilizer) pairs) of a code, in a canonical
//! order. A policy layer produces one mask word per slot per round; the
//! static schedule's conditions are resolved against those words. Restricted
//! to any single lane, the executed op sequence is exactly the dynamic
//! circuit the scalar path builds for that shot's LRC plan — this is what
//! keeps the striped simulator bit-identical to the scalar one.

use crate::circuit::Op;

/// Execution condition of one [`MaskedOp`], resolved to a lane mask at
/// runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCond {
    /// Every active lane executes the op (the static round body).
    Always,
    /// Lanes whose current-round plan schedules LRC slot `slot`.
    Slot(usize),
    /// Lanes in which *no* slot borrowing stabilizer `stab` is scheduled
    /// this round (the stabilizer reads out from its own parity qubit).
    StabFree(usize),
    /// Lanes where slot `slot` is scheduled *and* the LRC's data readout was
    /// classified |L⟩ — the ERASER+M intra-round branch (§4.6.2) that
    /// squashes the swap-back and resets the parity qubit instead.
    SlotLabelLeaked(usize),
    /// Lanes where slot `slot` is scheduled and the data readout was *not*
    /// |L⟩ (the normal swap-back path).
    SlotLabelClean(usize),
}

/// One operation of a static round schedule, tagged with the condition
/// selecting which lanes execute it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskedOp {
    /// The operation. `Measure` keys are emitted relative to round 0; the
    /// executor adds the round's key offset.
    pub op: Op,
    /// Which lanes execute it.
    pub cond: OpCond,
}

impl MaskedOp {
    /// An op every active lane executes.
    pub fn always(op: Op) -> MaskedOp {
        MaskedOp {
            op,
            cond: OpCond::Always,
        }
    }

    /// An op gated on a slot being scheduled.
    pub fn slot(op: Op, slot: usize) -> MaskedOp {
        MaskedOp {
            op,
            cond: OpCond::Slot(slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_tag_conditions() {
        let m = MaskedOp::always(Op::Tick);
        assert_eq!(m.cond, OpCond::Always);
        let s = MaskedOp::slot(Op::H(3), 7);
        assert_eq!(s.cond, OpCond::Slot(7));
        assert_eq!(s.op, Op::H(3));
    }
}
