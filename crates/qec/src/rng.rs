//! Deterministic pseudo-random number generation.
//!
//! Monte-Carlo estimates of logical error rates must be reproducible from a
//! seed across platforms and thread counts, so the workspace uses its own
//! xoshiro256++ implementation (public-domain algorithm by Blackman & Vigna)
//! seeded through SplitMix64 instead of an external crate. Thread-parallel
//! experiment runners derive independent streams with [`Rng::fork`].

use crate::pauli::Pauli;

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// # Example
///
/// ```
/// use qec_core::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are decorrelated but still deterministic.
/// let mut child = a.fork();
/// assert_ne!(a.next_u64(), child.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for s in &mut state {
            *s = splitmix64(&mut sm);
        }
        // xoshiro256++ requires a nonzero state; SplitMix64 only produces the
        // all-zero expansion with negligible probability, but guard anyway.
        if state.iter().all(|&s| s == 0) {
            state[0] = 0x1;
        }
        Rng { state }
    }

    /// The raw xoshiro256++ state. Together with [`Rng::from_state`] this
    /// lets the word-parallel simulator keep 64 lane streams in
    /// structure-of-arrays form (one array per state word) and advance them
    /// with vectorizable bulk steps, while per-lane fallback draws rebuild
    /// a `Rng` and stay bit-identical.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from a raw state captured by [`Rng::state`]
    /// (not a seeding function — use [`Rng::new`] for seeds).
    pub fn from_state(state: [u64; 4]) -> Rng {
        Rng { state }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// Probabilities outside `[0, 1]` are clamped (a `p = 0` channel must
    /// never fire, a `p >= 1` channel always fires).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// A uniformly random bit.
    #[inline]
    pub fn bit(&mut self) -> bool {
        self.next_u64() >> 63 != 0
    }

    /// Uniform integer in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Debiased multiply-shift (Lemire). The retry loop terminates with
        // probability 1.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let low = m as u64;
            if low >= n {
                return (m >> 64) as u64;
            }
            let threshold = n.wrapping_neg() % n;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniformly random Pauli from `{I, X, Y, Z}` (used for the random error
    /// a leaked qubit inflicts on its CNOT partner, §5.2.2).
    #[inline]
    pub fn uniform_pauli(&mut self) -> Pauli {
        Pauli::ALL[self.below(4) as usize]
    }

    /// A uniformly random *non-identity* Pauli from `{X, Y, Z}` (a
    /// depolarizing-channel component).
    #[inline]
    pub fn error_pauli(&mut self) -> Pauli {
        Pauli::ERRORS[self.below(3) as usize]
    }

    /// Derives an independent child stream.
    ///
    /// The child is seeded from fresh output of `self`, so calling `fork` in a
    /// loop yields decorrelated streams for worker threads while keeping the
    /// whole experiment a pure function of the root seed.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64() ^ 0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(9);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = Rng::new(5);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn bernoulli_mean_close() {
        let mut rng = Rng::new(77);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_uniform_and_in_range() {
        let mut rng = Rng::new(31);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            let v = rng.below(7);
            assert!(v < 7);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn uniform_pauli_covers_all() {
        let mut rng = Rng::new(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(rng.uniform_pauli());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn error_pauli_never_identity() {
        let mut rng = Rng::new(4);
        for _ in 0..1000 {
            assert_ne!(rng.error_pauli(), Pauli::I);
        }
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::new(10);
        let mut child = parent.fork();
        let matches = (0..32)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn bit_is_balanced() {
        let mut rng = Rng::new(1234);
        let ones = (0..100_000).filter(|_| rng.bit()).count();
        assert!((ones as f64 - 50_000.0).abs() < 1_500.0);
    }
}
