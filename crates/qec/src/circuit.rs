//! Circuit intermediate representation with explicit noise operations.
//!
//! The representation follows Stim's philosophy: noise channels are first-class
//! operations interleaved with gates, so the Monte-Carlo simulator and the
//! detector-error-model builder enumerate *exactly the same* fault sites.
//!
//! Leakage-specific operations ([`Op::LeakInject`], [`Op::Seep`],
//! [`Op::LeakIswap`]) are executed by the leakage-aware frame simulator and
//! deliberately ignored by the decoder's error-model builder — the decoder is
//! leakage-unaware, which is the premise of the ERASER paper.

use std::fmt;

/// Index of a physical qubit within a circuit.
pub type QubitId = usize;

/// Index into the measurement record of an experiment.
///
/// Keys are allocated once per experiment and remain stable across
/// dynamically-rescheduled rounds: an LRC round measures the *data* qubit in
/// place of the parity qubit but records the outcome under the same key, so
/// detector definitions never change.
pub type MeasKey = usize;

/// One circuit operation: a Clifford gate, a measurement/reset, or an explicit
/// noise channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Hadamard gate.
    H(QubitId),
    /// Controlled-NOT gate.
    Cnot {
        /// Control qubit.
        control: QubitId,
        /// Target qubit.
        target: QubitId,
    },
    /// Controlled-NOT whose leakage-transport channel is suppressed. Used for
    /// the LRC swap-back CNOTs: the data qubit was just reset to |0⟩, so the
    /// |11⟩↔|02⟩ transport pathway is closed (the paper's Eq. (2) counts
    /// "the other two CNOTs … are unlikely to cause leakage transport"). A
    /// leaked operand still kicks a random Pauli onto its partner.
    CnotNoTransport {
        /// Control qubit.
        control: QubitId,
        /// Target qubit.
        target: QubitId,
    },
    /// Z-basis measurement recording its outcome under `key`.
    Measure {
        /// Measured qubit.
        qubit: QubitId,
        /// Measurement-record slot.
        key: MeasKey,
    },
    /// Z-basis reset to |0⟩. Removes leakage (the physical reset protocol
    /// returns the qubit to the computational ground state).
    Reset(QubitId),
    /// Single-qubit depolarizing channel: with probability `p`, apply a
    /// uniformly random Pauli from {X, Y, Z}.
    Depolarize1 {
        /// Affected qubit.
        qubit: QubitId,
        /// Channel probability.
        p: f64,
    },
    /// Two-qubit depolarizing channel: with probability `p`, apply a uniformly
    /// random non-identity two-qubit Pauli (15 components).
    Depolarize2 {
        /// First operand.
        a: QubitId,
        /// Second operand.
        b: QubitId,
        /// Channel probability.
        p: f64,
    },
    /// X error with probability `p` (used for measurement flips before
    /// `Measure` and initialization errors after `Reset`).
    XError {
        /// Affected qubit.
        qubit: QubitId,
        /// Error probability.
        p: f64,
    },
    /// Leakage injection: with probability `p` the qubit leaves the
    /// computational basis and enters |L⟩ (§5.2.2 of the paper; `0.1p` at
    /// round start on data qubits and after every CNOT on both operands).
    LeakInject {
        /// Affected qubit.
        qubit: QubitId,
        /// Injection probability.
        p: f64,
    },
    /// Seepage: if the qubit is leaked, it returns to a uniformly random
    /// computational state with probability `p` (§5.2.2, footnote 5).
    Seep {
        /// Affected qubit.
        qubit: QubitId,
        /// Return probability.
        p: f64,
    },
    /// Google's `LeakageISWAP` from the DQLR protocol (Appendix A.2): moves
    /// leakage from the data qubit onto the (just-reset) parity qubit; acts as
    /// the identity on computational states unless the parity-qubit reset
    /// failed, in which case it may excite the data qubit to |L⟩.
    LeakIswap {
        /// Data qubit whose leakage is removed.
        data: QubitId,
        /// Parity qubit receiving the leakage.
        parity: QubitId,
    },
    /// Layer separator; semantically a no-op, useful for debugging output.
    Tick,
}

impl Op {
    /// The qubits this operation touches, in operand order.
    pub fn qubits(&self) -> Vec<QubitId> {
        match *self {
            Op::H(q)
            | Op::Measure { qubit: q, .. }
            | Op::Reset(q)
            | Op::Depolarize1 { qubit: q, .. }
            | Op::XError { qubit: q, .. }
            | Op::LeakInject { qubit: q, .. }
            | Op::Seep { qubit: q, .. } => vec![q],
            Op::Cnot { control, target } | Op::CnotNoTransport { control, target } => {
                vec![control, target]
            }
            Op::Depolarize2 { a, b, .. } => vec![a, b],
            Op::LeakIswap { data, parity } => vec![data, parity],
            Op::Tick => vec![],
        }
    }

    /// Whether this is a unitary gate (as opposed to noise, measurement, or
    /// reset).
    pub fn is_gate(&self) -> bool {
        matches!(
            self,
            Op::H(_) | Op::Cnot { .. } | Op::CnotNoTransport { .. } | Op::LeakIswap { .. }
        )
    }

    /// Whether this is an explicit noise channel.
    pub fn is_noise(&self) -> bool {
        matches!(
            self,
            Op::Depolarize1 { .. }
                | Op::Depolarize2 { .. }
                | Op::XError { .. }
                | Op::LeakInject { .. }
                | Op::Seep { .. }
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::H(q) => write!(f, "H {q}"),
            Op::Cnot { control, target } => write!(f, "CX {control} {target}"),
            Op::CnotNoTransport { control, target } => write!(f, "CX_NT {control} {target}"),
            Op::Measure { qubit, key } => write!(f, "M {qubit} -> k{key}"),
            Op::Reset(q) => write!(f, "R {q}"),
            Op::Depolarize1 { qubit, p } => write!(f, "DEPOLARIZE1({p}) {qubit}"),
            Op::Depolarize2 { a, b, p } => write!(f, "DEPOLARIZE2({p}) {a} {b}"),
            Op::XError { qubit, p } => write!(f, "X_ERROR({p}) {qubit}"),
            Op::LeakInject { qubit, p } => write!(f, "LEAK({p}) {qubit}"),
            Op::Seep { qubit, p } => write!(f, "SEEP({p}) {qubit}"),
            Op::LeakIswap { data, parity } => write!(f, "LEAKAGE_ISWAP {data} {parity}"),
            Op::Tick => write!(f, "TICK"),
        }
    }
}

/// An ordered sequence of [`Op`]s over a fixed qubit register, plus a
/// measurement-key allocator.
///
/// # Example
///
/// ```
/// use qec_core::{Circuit, Op};
///
/// let mut c = Circuit::new(3);
/// c.push(Op::H(0));
/// let k = c.alloc_key();
/// c.push(Op::Measure { qubit: 0, key: k });
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.num_keys(), 1);
/// assert_eq!(c.ops().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    next_key: MeasKey,
    ops: Vec<Op>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Circuit {
        Circuit {
            num_qubits,
            next_key: 0,
            ops: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of measurement keys allocated so far.
    pub fn num_keys(&self) -> usize {
        self.next_key
    }

    /// The operation sequence.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the operation references a qubit outside the
    /// register or a measurement key that was never allocated.
    pub fn push(&mut self, op: Op) {
        debug_assert!(
            op.qubits().iter().all(|&q| q < self.num_qubits),
            "op {op} out of range for {} qubits",
            self.num_qubits
        );
        if let Op::Measure { key, .. } = op {
            debug_assert!(key < self.next_key, "measurement key {key} not allocated");
        }
        self.ops.push(op);
    }

    /// Appends every operation from `ops`.
    pub fn extend(&mut self, ops: impl IntoIterator<Item = Op>) {
        for op in ops {
            self.push(op);
        }
    }

    /// Allocates the next measurement key.
    pub fn alloc_key(&mut self) -> MeasKey {
        let k = self.next_key;
        self.next_key += 1;
        k
    }

    /// Pre-allocates keys `0..n` in bulk (used by experiment builders that lay
    /// out the whole measurement record up front).
    ///
    /// # Panics
    ///
    /// Panics if keys were already allocated.
    pub fn alloc_keys(&mut self, n: usize) {
        assert_eq!(self.next_key, 0, "keys already allocated");
        self.next_key = n;
    }

    /// Counts operations satisfying a predicate (handy in tests:
    /// `c.count(|op| matches!(op, Op::Cnot { .. }))`).
    pub fn count(&self, pred: impl Fn(&Op) -> bool) -> usize {
        self.ops.iter().filter(|op| pred(op)).count()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# circuit: {} qubits, {} keys",
            self.num_qubits, self.next_key
        )?;
        for op in &self.ops {
            writeln!(f, "{op}")?;
        }
        Ok(())
    }
}

/// Which stabilizer basis a detector belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorBasis {
    /// Compares X-stabilizer measurements (sensitive to Z errors).
    X,
    /// Compares Z-stabilizer measurements (sensitive to X errors).
    Z,
}

/// A detector: a set of measurement keys whose XOR is deterministic (0) in the
/// absence of errors, annotated with the stabilizer it tracks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DetectorInfo {
    /// Measurement keys whose parity forms the detector value.
    pub keys: Vec<MeasKey>,
    /// Basis of the underlying stabilizer.
    pub basis: DetectorBasis,
    /// Index of the stabilizer within the code (dense, over all stabilizers).
    pub stabilizer: usize,
    /// Syndrome-extraction round the detector compares *up to* (the final
    /// data-measurement detector uses round = number of rounds).
    pub round: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut c = Circuit::new(4);
        c.push(Op::H(0));
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Op::Cnot {
            control: 2,
            target: 3,
        });
        let k = c.alloc_key();
        c.push(Op::Measure { qubit: 3, key: k });
        assert_eq!(c.count(|o| matches!(o, Op::Cnot { .. })), 2);
        assert_eq!(c.count(Op::is_gate), 3);
        assert_eq!(c.num_keys(), 1);
    }

    // The operand checks are debug assertions (hot path); they only fire in
    // debug builds.
    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(1);
        c.push(Op::H(1));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn unallocated_key_panics() {
        let mut c = Circuit::new(1);
        c.push(Op::Measure { qubit: 0, key: 0 });
    }

    #[test]
    fn bulk_key_allocation() {
        let mut c = Circuit::new(2);
        c.alloc_keys(10);
        assert_eq!(c.num_keys(), 10);
        c.push(Op::Measure { qubit: 0, key: 9 });
    }

    #[test]
    fn op_qubits_and_classes() {
        assert_eq!(
            Op::Cnot {
                control: 3,
                target: 5
            }
            .qubits(),
            vec![3, 5]
        );
        assert_eq!(Op::Tick.qubits(), Vec::<usize>::new());
        assert!(Op::Depolarize1 { qubit: 0, p: 0.1 }.is_noise());
        assert!(!Op::Reset(0).is_noise());
        assert!(Op::LeakIswap { data: 0, parity: 1 }.is_gate());
    }

    #[test]
    fn display_is_parsable_by_eye() {
        let mut c = Circuit::new(2);
        c.push(Op::H(0));
        c.push(Op::Cnot {
            control: 0,
            target: 1,
        });
        let text = c.to_string();
        assert!(text.contains("H 0"));
        assert!(text.contains("CX 0 1"));
    }

    #[test]
    fn extend_appends_in_order() {
        let mut c = Circuit::new(2);
        c.extend([Op::H(0), Op::H(1)]);
        assert_eq!(c.ops().len(), 2);
        assert_eq!(c.ops()[1], Op::H(1));
    }
}
