//! The paper's circuit-level error model with leakage (§5.2).
//!
//! All rates derive from a single physical error rate `p`:
//!
//! | channel                                   | rate    |
//! |-------------------------------------------|---------|
//! | data depolarizing at round start          | `p`     |
//! | depolarizing after CNOT / H               | `p`     |
//! | measurement flip                          | `p`     |
//! | reset/initialization flip                 | `p`     |
//! | leakage injection (round start, post-CNOT)| `0.1 p` |
//! | seepage (leaked → random computational)   | `0.1 p` |
//! | leakage transport per leaked CNOT         | `0.1`   |
//! | multi-level readout error on |L⟩          | `10 p`  |

/// How leakage moves between the operands of a two-qubit gate when exactly one
/// operand is leaked (§5.2.2 and Appendix A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportModel {
    /// The main text's conservative model: the receiving qubit becomes leaked
    /// and the source qubit *stays* leaked (leakage duplicates).
    #[default]
    Conservative,
    /// Appendix A.1's alternative: the qubits *exchange* leakage — the
    /// receiver becomes leaked while the source returns to the computational
    /// basis in a random state. If the receiver is already leaked, the
    /// transport has no effect.
    Exchange,
}

/// Parameters of the circuit-level noise + leakage model.
///
/// # Example
///
/// ```
/// use qec_core::{NoiseParams, TransportModel};
///
/// let noise = NoiseParams::standard(1e-3);
/// assert_eq!(noise.p, 1e-3);
/// assert!((noise.leak_p() - 1e-4).abs() < 1e-15);
/// assert!((noise.multilevel_error_p() - 1e-2).abs() < 1e-15);
/// assert_eq!(noise.transport, TransportModel::Conservative);
///
/// let quiet = NoiseParams::without_leakage(1e-3);
/// assert_eq!(quiet.leak_p(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseParams {
    /// Physical error rate `p` for depolarizing / measurement / reset errors.
    pub p: f64,
    /// Leakage-injection rate as a fraction of `p` (paper: 0.1).
    pub leak_fraction: f64,
    /// Seepage rate as a fraction of `p` (paper: 0.1).
    pub seep_fraction: f64,
    /// Leakage-transport probability per CNOT with exactly one leaked operand
    /// (paper: 0.1; this is an absolute probability, not a fraction of `p`).
    pub p_transport: f64,
    /// Multi-level readout error as a multiple of `p` (paper: 10).
    pub multilevel_error_factor: f64,
    /// Transport model (main text vs Appendix A.1).
    pub transport: TransportModel,
    /// Master switch for every leakage channel; `false` reproduces the
    /// "without leakage" baselines of Fig 2(c).
    pub leakage_enabled: bool,
}

impl NoiseParams {
    /// The paper's default model at physical error rate `p` (leakage on,
    /// conservative transport).
    pub fn standard(p: f64) -> NoiseParams {
        NoiseParams {
            p,
            leak_fraction: 0.1,
            seep_fraction: 0.1,
            p_transport: 0.1,
            multilevel_error_factor: 10.0,
            transport: TransportModel::Conservative,
            leakage_enabled: true,
        }
    }

    /// The same Pauli model with every leakage channel disabled (the
    /// "No leakage" series of Fig 2(c)).
    pub fn without_leakage(p: f64) -> NoiseParams {
        NoiseParams {
            leakage_enabled: false,
            ..NoiseParams::standard(p)
        }
    }

    /// The standard model with the Appendix A.1 exchange-transport variant.
    pub fn exchange_transport(p: f64) -> NoiseParams {
        NoiseParams {
            transport: TransportModel::Exchange,
            ..NoiseParams::standard(p)
        }
    }

    /// Leakage-injection probability (`0.1 p`, or 0 when leakage is disabled).
    pub fn leak_p(&self) -> f64 {
        if self.leakage_enabled {
            self.leak_fraction * self.p
        } else {
            0.0
        }
    }

    /// Seepage probability (`0.1 p`, or 0 when leakage is disabled).
    pub fn seep_p(&self) -> f64 {
        if self.leakage_enabled {
            self.seep_fraction * self.p
        } else {
            0.0
        }
    }

    /// Error rate of the multi-level discriminator when classifying |L⟩
    /// (`10 p`).
    pub fn multilevel_error_p(&self) -> f64 {
        self.multilevel_error_factor * self.p
    }
}

impl Default for NoiseParams {
    /// The paper's default configuration: `p = 1e-3` with leakage.
    fn default() -> NoiseParams {
        NoiseParams::standard(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_rates() {
        let n = NoiseParams::standard(1e-3);
        assert_eq!(n.p, 1e-3);
        assert!((n.leak_p() - 1e-4).abs() < 1e-15);
        assert!((n.seep_p() - 1e-4).abs() < 1e-15);
        assert_eq!(n.p_transport, 0.1);
        assert!((n.multilevel_error_p() - 1e-2).abs() < 1e-15);
        assert!(n.leakage_enabled);
    }

    #[test]
    fn without_leakage_zeroes_leak_channels() {
        let n = NoiseParams::without_leakage(1e-3);
        assert_eq!(n.leak_p(), 0.0);
        assert_eq!(n.seep_p(), 0.0);
        // Pauli noise is untouched.
        assert_eq!(n.p, 1e-3);
    }

    #[test]
    fn exchange_variant() {
        let n = NoiseParams::exchange_transport(1e-3);
        assert_eq!(n.transport, TransportModel::Exchange);
        assert!(n.leakage_enabled);
    }

    #[test]
    fn default_is_standard_1e3() {
        assert_eq!(NoiseParams::default(), NoiseParams::standard(1e-3));
    }
}
