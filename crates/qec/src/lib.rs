//! Core types shared by every crate in the ERASER reproduction.
//!
//! This crate provides the vocabulary of the whole workspace:
//!
//! * [`Pauli`] — single-qubit Pauli operators with multiplication and
//!   commutation rules, used by the frame simulator and the detector-error-model
//!   builder.
//! * [`Circuit`] and [`Op`] — a Stim-style circuit intermediate representation
//!   with *explicit* noise operations, so the simulator and the decoder consume
//!   exactly the same fault sites.
//! * [`NoiseParams`] — the paper's circuit-level error model (§5.2): gate /
//!   measurement / reset errors at rate `p`, leakage injection at `0.1p`,
//!   leakage transport at `0.1`, seepage at `0.1p`, multi-level readout error
//!   at `10p`.
//! * [`Rng`] — a deterministic, seedable xoshiro256++ generator so that every
//!   experiment in the repository is exactly reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use qec_core::{Circuit, NoiseParams, Op, Rng};
//!
//! let mut rng = Rng::new(7);
//! let p = NoiseParams::standard(1e-3);
//! assert!((p.leak_p() - 1e-4).abs() < 1e-12);
//!
//! let mut c = Circuit::new(2);
//! c.push(Op::H(0));
//! c.push(Op::Cnot { control: 0, target: 1 });
//! let key = c.alloc_key();
//! c.push(Op::Measure { qubit: 1, key });
//! assert_eq!(c.num_keys(), 1);
//! let _ = rng.f64();
//! ```

pub mod circuit;
pub mod noise;
pub mod pauli;
pub mod rng;
pub mod schedule;

pub use circuit::{Circuit, DetectorBasis, DetectorInfo, MeasKey, Op, QubitId};
pub use noise::{NoiseParams, TransportModel};
pub use pauli::Pauli;
pub use rng::Rng;
pub use schedule::{MaskedOp, OpCond};
