//! Single-qubit Pauli operators.
//!
//! The frame simulator tracks errors as (X-part, Z-part) bit pairs; [`Pauli`]
//! is the friendly enum view of those bit pairs and is also used when
//! enumerating depolarizing-channel components for the detector error model.

use std::fmt;

/// A single-qubit Pauli operator (ignoring global phase).
///
/// # Example
///
/// ```
/// use qec_core::Pauli;
///
/// assert_eq!(Pauli::X * Pauli::Z, Pauli::Y);
/// assert!(!Pauli::X.commutes_with(Pauli::Z));
/// assert!(Pauli::Y.commutes_with(Pauli::Y));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum Pauli {
    /// Identity.
    #[default]
    I,
    /// Bit flip.
    X,
    /// Bit and phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All four Paulis in index order `I, X, Y, Z`.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Paulis (the components of a depolarizing
    /// channel).
    pub const ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Builds a Pauli from its X/Z component bits.
    ///
    /// `(false, false) -> I`, `(true, false) -> X`, `(true, true) -> Y`,
    /// `(false, true) -> Z`.
    ///
    /// # Example
    ///
    /// ```
    /// use qec_core::Pauli;
    /// assert_eq!(Pauli::from_bits(true, true), Pauli::Y);
    /// ```
    pub fn from_bits(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Whether the operator has an X component (flips Z-basis measurements).
    pub fn has_x(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Whether the operator has a Z component (flips X-basis measurements).
    pub fn has_z(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }

    /// Whether `self` and `other` commute.
    ///
    /// Two Paulis commute iff the symplectic product of their (x, z) bit
    /// vectors is zero.
    pub fn commutes_with(self, other: Pauli) -> bool {
        let anti = (self.has_x() && other.has_z()) ^ (self.has_z() && other.has_x());
        !anti
    }

    /// Whether this is the identity.
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }
}

impl std::ops::Mul for Pauli {
    type Output = Pauli;

    /// Phaseless Pauli product: `X * Z = Y` (the ±i phase is dropped, which is
    /// all a frame simulator needs).
    fn mul(self, rhs: Pauli) -> Pauli {
        Pauli::from_bits(self.has_x() ^ rhs.has_x(), self.has_z() ^ rhs.has_z())
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pauli::I => "I",
            Pauli::X => "X",
            Pauli::Y => "Y",
            Pauli::Z => "Z",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_table() {
        use Pauli::*;
        assert_eq!(X * X, I);
        assert_eq!(Y * Y, I);
        assert_eq!(Z * Z, I);
        assert_eq!(X * Z, Y);
        assert_eq!(Z * X, Y);
        assert_eq!(X * Y, Z);
        assert_eq!(Y * Z, X);
        for p in Pauli::ALL {
            assert_eq!(p * I, p);
            assert_eq!(I * p, p);
        }
    }

    #[test]
    fn commutation() {
        use Pauli::*;
        assert!(X.commutes_with(X));
        assert!(!X.commutes_with(Z));
        assert!(!X.commutes_with(Y));
        assert!(!Y.commutes_with(Z));
        for p in Pauli::ALL {
            assert!(p.commutes_with(I));
            assert!(p.commutes_with(p));
        }
    }

    #[test]
    fn bits_round_trip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_bits(p.has_x(), p.has_z()), p);
        }
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Pauli::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, ["I", "X", "Y", "Z"]);
    }

    #[test]
    fn product_is_commutative_up_to_phase() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                assert_eq!(a * b, b * a, "phaseless product must be symmetric");
            }
        }
    }
}
