//! Property-based tests for the core algebra and PRNG.

use proptest::prelude::*;
use qec_core::{Pauli, Rng};

fn any_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z),
    ]
}

proptest! {
    #[test]
    fn pauli_product_closed_and_associative(a in any_pauli(), b in any_pauli(), c in any_pauli()) {
        // Closure is by construction; associativity of the phaseless product.
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn pauli_is_self_inverse(a in any_pauli()) {
        prop_assert_eq!(a * a, Pauli::I);
    }

    #[test]
    fn pauli_commutation_is_symmetric(a in any_pauli(), b in any_pauli()) {
        prop_assert_eq!(a.commutes_with(b), b.commutes_with(a));
    }

    #[test]
    fn pauli_commutes_iff_symplectic_product_vanishes(a in any_pauli(), b in any_pauli()) {
        let sym = (a.has_x() && b.has_z()) ^ (a.has_z() && b.has_x());
        prop_assert_eq!(a.commutes_with(b), !sym);
    }

    #[test]
    fn pauli_bits_round_trip(a in any_pauli()) {
        prop_assert_eq!(Pauli::from_bits(a.has_x(), a.has_z()), a);
    }

    #[test]
    fn rng_below_respects_bound(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut rng = Rng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_is_pure_function_of_seed(seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_fork_changes_stream(seed in any::<u64>()) {
        let mut parent = Rng::new(seed);
        let mut child = parent.fork();
        // Equality of all 8 next values would be astronomically unlikely.
        let same = (0..8).all(|_| parent.next_u64() == child.next_u64());
        prop_assert!(!same);
    }

    #[test]
    fn bernoulli_extremes(seed in any::<u64>(), p in 0.0f64..1.0) {
        let mut rng = Rng::new(seed);
        prop_assert!(!rng.bernoulli(0.0));
        prop_assert!(rng.bernoulli(1.0));
        let _ = rng.bernoulli(p); // must not panic anywhere in [0, 1]
    }
}
