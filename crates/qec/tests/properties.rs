//! Property-based tests for the core algebra and PRNG, driven by the
//! in-repo [`qec_core::Rng`] generator (keeping the workspace's
//! zero-external-dependency invariant — no proptest).

use qec_core::{Pauli, Rng};

/// Number of random cases per property.
const CASES: usize = 256;

fn any_pauli(rng: &mut Rng) -> Pauli {
    rng.uniform_pauli()
}

#[test]
fn pauli_product_closed_and_associative() {
    let mut rng = Rng::new(0xA55_0C1A);
    for _ in 0..CASES {
        let (a, b, c) = (
            any_pauli(&mut rng),
            any_pauli(&mut rng),
            any_pauli(&mut rng),
        );
        // Closure is by construction; associativity of the phaseless product.
        assert_eq!((a * b) * c, a * (b * c), "{a:?} {b:?} {c:?}");
    }
}

#[test]
fn pauli_is_self_inverse() {
    let mut rng = Rng::new(0x5E1F);
    for _ in 0..CASES {
        let a = any_pauli(&mut rng);
        assert_eq!(a * a, Pauli::I);
    }
}

#[test]
fn pauli_commutation_is_symmetric() {
    let mut rng = Rng::new(0xC0_44);
    for _ in 0..CASES {
        let (a, b) = (any_pauli(&mut rng), any_pauli(&mut rng));
        assert_eq!(a.commutes_with(b), b.commutes_with(a));
    }
}

#[test]
fn pauli_commutes_iff_symplectic_product_vanishes() {
    let mut rng = Rng::new(0x57_4B);
    for _ in 0..CASES {
        let (a, b) = (any_pauli(&mut rng), any_pauli(&mut rng));
        let sym = (a.has_x() && b.has_z()) ^ (a.has_z() && b.has_x());
        assert_eq!(a.commutes_with(b), !sym, "{a:?} vs {b:?}");
    }
}

#[test]
fn pauli_bits_round_trip() {
    let mut rng = Rng::new(0xB175);
    for _ in 0..CASES {
        let a = any_pauli(&mut rng);
        assert_eq!(Pauli::from_bits(a.has_x(), a.has_z()), a);
    }
}

#[test]
fn rng_below_respects_bound() {
    let mut gen = Rng::new(0xB0_0D);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let n = 1 + gen.below(1_000_000);
        let mut rng = Rng::new(seed);
        for _ in 0..32 {
            assert!(rng.below(n) < n, "seed {seed} bound {n}");
        }
    }
}

#[test]
fn rng_is_pure_function_of_seed() {
    let mut gen = Rng::new(0xF0F0);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}");
        }
    }
}

#[test]
fn rng_fork_changes_stream() {
    let mut gen = Rng::new(0xF0_4C);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let mut parent = Rng::new(seed);
        let mut child = parent.fork();
        // Equality of all 8 next values would be astronomically unlikely.
        let same = (0..8).all(|_| parent.next_u64() == child.next_u64());
        assert!(!same, "fork of seed {seed} tracked its parent");
    }
}

#[test]
fn bernoulli_extremes() {
    let mut gen = Rng::new(0xBE_44);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let p = gen.f64();
        let mut rng = Rng::new(seed);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        let _ = rng.bernoulli(p); // must not panic anywhere in [0, 1]
    }
}
