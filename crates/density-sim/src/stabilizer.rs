//! The paper's §3.3 study: leakage spread across one Z stabilizer (Fig 7/8).
//!
//! Five ququarts: data qubits `q0..q3` and the parity qubit `P`. `q0` starts
//! in |2⟩. The circuit is an LRC round followed by a plain round:
//!
//! ```text
//! round 1:  CX(q0→P) CX(q1→P) CX(q2→P) CX(q3→P)   // dance
//!           CX(q0,P) CX(P,q0) CX(q0,P)            // SWAP-in (LRC)
//!           MR(q0)                                 // readout + reset
//!           CX(P,q0) CX(q0,P)                      // swap-back
//! round 2:  CX(q0→P) CX(q1→P) CX(q2→P) CX(q3→P)   // dance
//!           MR(P)
//! ```
//!
//! After every CNOT the three Fig 7(b) channels fire: leakage transport,
//! RX(0.65π) on the unleaked operand of a leaked pair, leakage injection.
//! The study records each qudit's leakage population and the probability of
//! reading the *correct* stabilizer outcome (0 — there are no X errors on
//! the data qubits) from the parity qubit.

use crate::density::DensityMatrix;
use crate::gates;

/// One sampled point of the study.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Human-readable step label (e.g. `"CX#4"`, `"A: after LRC swap-in"`).
    pub label: String,
    /// Leakage probability of `[q0, q1, q2, q3, P]`.
    pub leak: [f64; 5],
    /// Probability that a two-level readout of P now returns the correct
    /// outcome 0 (leaked population reads out randomly, contributing ½).
    pub p_correct: f64,
}

/// The model applied to the unleaked operand of a leaked CNOT pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KickModel {
    /// Coherent RX(θ) (the paper's Fig 7(b) channel; θ = 0.65π from
    /// Sycamore).
    Coherent(f64),
    /// Uniformly random Pauli — the Pauli-twirled kick the frame simulator
    /// applies (§5.2.2). Keeps the state diagonal, so the Monte-Carlo
    /// frame simulator samples the exact same open-system dynamics.
    PauliTwirl,
}

/// Configuration and driver for the single-stabilizer leakage study.
///
/// # Example
///
/// ```
/// use density_sim::StabilizerLeakageStudy;
///
/// let records = StabilizerLeakageStudy::default().run();
/// assert!(records.len() > 10);
/// // q0 starts fully leaked.
/// assert!((records[0].leak[0] - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StabilizerLeakageStudy {
    /// Leakage-transport probability per CNOT (paper: 0.1).
    pub p_transport: f64,
    /// Leakage-injection probability per CNOT operand (paper: 1e-4).
    pub p_inject: f64,
    /// Kick model for leaked-pair CNOTs.
    pub kick: KickModel,
    /// Transport channel: `false` = the paper's SWAP mixture
    /// ([`gates::leak_transport_kraus`]); `true` = the frame simulator's
    /// exchange semantics ([`gates::leak_transport_kraus_frame`]: fires
    /// only on singly-leaked pairs and randomizes the returned state).
    pub frame_transport: bool,
}

impl Default for StabilizerLeakageStudy {
    fn default() -> StabilizerLeakageStudy {
        StabilizerLeakageStudy {
            p_transport: 0.1,
            p_inject: 1e-4,
            kick: KickModel::Coherent(gates::SYCAMORE_KICK),
            frame_transport: false,
        }
    }
}

/// Index of the parity qudit in the 5-qudit register.
pub const PARITY: usize = 4;

impl StabilizerLeakageStudy {
    /// The frame-calibrated configuration: Pauli-twirled kicks, exchange
    /// transport, no injection (the frame model injects from *any*
    /// computational state, the density model only from |1⟩, so injection
    /// is excluded from exact cross-validation). Under this configuration
    /// every channel keeps the state diagonal and the leakage-aware frame
    /// simulator is an unbiased sampler of the exact dynamics — the
    /// cross-validation suite (`tests/density_crossval.rs`) runs both and
    /// compares within Monte-Carlo tolerance.
    pub fn frame_calibrated() -> StabilizerLeakageStudy {
        StabilizerLeakageStudy {
            p_transport: 0.1,
            p_inject: 0.0,
            kick: KickModel::PauliTwirl,
            frame_transport: true,
        }
    }

    /// Runs the full two-round circuit, returning one record per step.
    pub fn run(&self) -> Vec<StepRecord> {
        let mut rho = DensityMatrix::new_pure(5, &[2, 0, 0, 0, 0]);
        let mut records = Vec::new();
        self.record(&rho, "init (q0 = |2⟩)", &mut records);

        // ---- Round 1: dance + LRC ------------------------------------
        for (i, q) in (0..4).enumerate() {
            self.noisy_cnot(&mut rho, q, PARITY);
            let label = format!("CX#{}", i + 1);
            self.record(&rho, &label, &mut records);
        }
        // SWAP-in: three CNOTs between q0 and P.
        self.noisy_cnot(&mut rho, 0, PARITY);
        self.record(&rho, "CX#5 (swap-in 1/3)", &mut records);
        self.noisy_cnot(&mut rho, PARITY, 0);
        self.record(&rho, "CX#6 (swap-in 2/3)", &mut records);
        self.noisy_cnot(&mut rho, 0, PARITY);
        self.record(&rho, "A: CX#7 (LRC swap-in done)", &mut records);
        // MR on the data qubit: removes its leakage.
        rho.reset(0);
        self.record(&rho, "MR(q0)", &mut records);
        // Swap-back: two CNOTs.
        self.noisy_cnot(&mut rho, PARITY, 0);
        self.record(&rho, "CX#8 (swap-back 1/2)", &mut records);
        self.noisy_cnot(&mut rho, 0, PARITY);
        self.record(&rho, "CX#9 (swap-back 2/2)", &mut records);

        // ---- Round 2: plain extraction --------------------------------
        rho.reset(PARITY);
        self.record(&rho, "MR(P) / round 2 start", &mut records);
        for (i, q) in (0..4).enumerate() {
            self.noisy_cnot(&mut rho, q, PARITY);
            let label = if i == 3 {
                "C: CX#13 (before MR(P))".to_string()
            } else {
                format!("CX#{}", 10 + i)
            };
            self.record(&rho, &label, &mut records);
        }
        records
    }

    fn noisy_cnot(&self, rho: &mut DensityMatrix, control: usize, target: usize) {
        rho.apply_two(control, target, &gates::cnot());
        // Fig 7(b) channel sequence: transport, conditional kicks, injection.
        let transport = if self.frame_transport {
            gates::leak_transport_kraus_frame(self.p_transport)
        } else {
            gates::leak_transport_kraus(self.p_transport)
        };
        rho.apply_kraus_two(control, target, &transport);
        match self.kick {
            KickModel::Coherent(theta) => {
                let kick = gates::rx_if_partner_leaked(theta);
                rho.apply_two(control, target, &kick);
                rho.apply_two(target, control, &kick);
            }
            KickModel::PauliTwirl => {
                let kick = gates::pauli_twirl_if_partner_leaked();
                rho.apply_kraus_two(control, target, &kick);
                rho.apply_kraus_two(target, control, &kick);
            }
        }
        if self.p_inject > 0.0 {
            rho.apply_kraus_one(control, &gates::leak_inject_kraus(self.p_inject));
            rho.apply_kraus_one(target, &gates::leak_inject_kraus(self.p_inject));
        }
    }

    fn record(&self, rho: &DensityMatrix, label: &str, out: &mut Vec<StepRecord>) {
        let leak = [
            rho.leak_probability(0),
            rho.leak_probability(1),
            rho.leak_probability(2),
            rho.leak_probability(3),
            rho.leak_probability(PARITY),
        ];
        // Correct outcome is 0: computational |0⟩ population reads 0, leaked
        // population reads a uniformly random label.
        let p_correct = rho.population(PARITY, 0) + 0.5 * rho.leak_probability(PARITY);
        out.push(StepRecord {
            label: label.to_string(),
            leak,
            p_correct,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The 5-ququart study is the most expensive computation in the test
    /// suite; run it once and share across assertions.
    fn study() -> &'static [StepRecord] {
        static CACHE: OnceLock<Vec<StepRecord>> = OnceLock::new();
        CACHE.get_or_init(|| StabilizerLeakageStudy::default().run())
    }

    #[test]
    fn q0_leakage_removed_by_lrc_readout() {
        let records = study();
        let before = records
            .iter()
            .position(|r| r.label.starts_with("A:"))
            .unwrap();
        let after = records
            .iter()
            .position(|r| r.label.starts_with("MR(q0)"))
            .unwrap();
        assert!(
            records[before].leak[0] > 0.5,
            "q0 still mostly leaked pre-MR"
        );
        assert!(records[after].leak[0] < 1e-9, "reset clears q0");
    }

    #[test]
    fn lrc_transports_leakage_onto_parity() {
        // Point A of Fig 8: after the swap-in, P has significantly leaked.
        let records = study();
        let a = records.iter().find(|r| r.label.starts_with("A:")).unwrap();
        // ~1-(1-0.1)^5 from five interacting CNOTs so far; the paper reads
        // "significantly leaked" off the same mechanism.
        assert!(a.leak[4] > 0.2, "parity leakage at A: {}", a.leak[4]);
    }

    #[test]
    fn leaked_parity_randomizes_measurement() {
        // Point C of Fig 8: the correct-readout probability is depressed
        // towards ½ (random) while P carries leakage.
        let records = study();
        let c = records.iter().find(|r| r.label.starts_with("C:")).unwrap();
        assert!(
            c.p_correct < 0.95,
            "readout must be degraded: {}",
            c.p_correct
        );
        assert!(
            c.p_correct > 0.5,
            "but better than a coin flip: {}",
            c.p_correct
        );
    }

    #[test]
    fn leakage_spreads_to_other_data_qubits_in_round_two() {
        let records = study();
        let last = records.last().unwrap();
        let spread: f64 = last.leak[1] + last.leak[2] + last.leak[3];
        assert!(spread > 0.005, "round-2 dance spreads leakage: {spread}");
    }

    #[test]
    fn trace_is_preserved_throughout() {
        // The run uses only unitaries and trace-preserving channels; the
        // probabilities must stay normalized.
        let records = study();
        for r in records {
            for &l in &r.leak {
                assert!((-1e-9..=1.0 + 1e-9).contains(&l), "{r:?}");
            }
            assert!((0.0..=1.0 + 1e-9).contains(&r.p_correct));
        }
    }
}
