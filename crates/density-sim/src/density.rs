//! Dense operators and the n-ququart density matrix.

use crate::complex::Complex;

/// Local ququart dimension.
pub const Q: usize = 4;

/// A dense square operator (4×4 for one ququart, 16×16 for a pair).
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    dim: usize,
    a: Vec<Complex>,
}

impl Mat {
    /// Zero matrix of dimension `dim`.
    pub fn zeros(dim: usize) -> Mat {
        Mat {
            dim,
            a: vec![Complex::ZERO; dim * dim],
        }
    }

    /// Identity matrix.
    pub fn identity(dim: usize) -> Mat {
        let mut m = Mat::zeros(dim);
        for i in 0..dim {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from a function of (row, col).
    pub fn from_fn(dim: usize, f: impl Fn(usize, usize) -> Complex) -> Mat {
        let mut m = Mat::zeros(dim);
        for r in 0..dim {
            for c in 0..dim {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Mat {
        Mat::from_fn(self.dim, |r, c| self[(c, r)].conj())
    }

    /// Matrix product.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.dim, rhs.dim);
        let mut out = Mat::zeros(self.dim);
        for r in 0..self.dim {
            for k in 0..self.dim {
                let v = self[(r, k)];
                if v == Complex::ZERO {
                    continue;
                }
                for c in 0..self.dim {
                    out[(r, c)] += v * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Scales every entry by a real factor.
    pub fn scaled(&self, s: f64) -> Mat {
        Mat {
            dim: self.dim,
            a: self.a.iter().map(|x| x.scale(s)).collect(),
        }
    }

    /// Whether `self · self† = I` within tolerance (unitarity check for
    /// tests).
    pub fn is_unitary(&self, tol: f64) -> bool {
        let p = self.matmul(&self.dagger());
        for r in 0..self.dim {
            for c in 0..self.dim {
                let expect = if r == c { Complex::ONE } else { Complex::ZERO };
                if (p[(r, c)] - expect).norm_sqr() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = Complex;
    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        &self.a[r * self.dim + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        &mut self.a[r * self.dim + c]
    }
}

/// An n-ququart density matrix (dimension 4ⁿ).
///
/// Qudit 0 is the least-significant base-4 digit of a basis index.
///
/// # Example
///
/// ```
/// use density_sim::DensityMatrix;
///
/// let rho = DensityMatrix::new_pure(2, &[2, 1]);
/// assert!((rho.population(0, 2) - 1.0).abs() < 1e-12);
/// assert!((rho.population(1, 1) - 1.0).abs() < 1e-12);
/// assert!((rho.leak_probability(0) - 1.0).abs() < 1e-12);
/// assert!((rho.leak_probability(1) - 0.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    a: Vec<Complex>,
}

impl DensityMatrix {
    /// All qudits in |0⟩.
    pub fn new_ground(n: usize) -> DensityMatrix {
        DensityMatrix::new_pure(n, &vec![0; n])
    }

    /// A pure computational basis state; `levels[q]` is qudit `q`'s level.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != n` or any level is ≥ 4.
    pub fn new_pure(n: usize, levels: &[usize]) -> DensityMatrix {
        assert_eq!(levels.len(), n);
        assert!(levels.iter().all(|&l| l < Q));
        let dim = Q.pow(n as u32);
        let mut idx = 0;
        for (q, &l) in levels.iter().enumerate() {
            idx += l * Q.pow(q as u32);
        }
        let mut a = vec![Complex::ZERO; dim * dim];
        a[idx * dim + idx] = Complex::ONE;
        DensityMatrix { n, dim, a }
    }

    /// Number of qudits.
    pub fn num_qudits(&self) -> usize {
        self.n
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Trace (should stay 1 under unitaries and trace-preserving channels).
    pub fn trace(&self) -> Complex {
        let mut t = Complex::ZERO;
        for i in 0..self.dim {
            t += self.a[i * self.dim + i];
        }
        t
    }

    fn digit(&self, index: usize, q: usize) -> usize {
        (index / Q.pow(q as u32)) % Q
    }

    /// Probability that qudit `q` occupies `level`.
    pub fn population(&self, q: usize, level: usize) -> f64 {
        let mut p = 0.0;
        for i in 0..self.dim {
            if self.digit(i, q) == level {
                p += self.a[i * self.dim + i].re;
            }
        }
        p
    }

    /// Probability that qudit `q` is leaked (level 2 or 3).
    pub fn leak_probability(&self, q: usize) -> f64 {
        self.population(q, 2) + self.population(q, 3)
    }

    /// Applies a 4×4 unitary to qudit `q`: ρ ← UρU†.
    pub fn apply_one(&mut self, q: usize, u: &Mat) {
        assert_eq!(u.dim(), Q);
        self.apply(&[q], u);
    }

    /// Applies a 16×16 unitary to qudits `(qa, qb)` (qa is the
    /// most-significant digit of the 16-dim index): ρ ← UρU†.
    pub fn apply_two(&mut self, qa: usize, qb: usize, u: &Mat) {
        assert_eq!(u.dim(), Q * Q);
        assert_ne!(qa, qb);
        self.apply(&[qa, qb], u);
    }

    /// Applies a Kraus channel on one qudit: ρ ← Σ KρK†.
    pub fn apply_kraus_one(&mut self, q: usize, ks: &[Mat]) {
        self.apply_kraus(&[q], ks);
    }

    /// Applies a Kraus channel on a qudit pair.
    pub fn apply_kraus_two(&mut self, qa: usize, qb: usize, ks: &[Mat]) {
        self.apply_kraus(&[qa, qb], ks);
    }

    /// Measure-and-reset qudit `q` to |0⟩ (trace out and re-prepare),
    /// implemented as the Kraus channel {|0⟩⟨l|}.
    pub fn reset(&mut self, q: usize) {
        let ks: Vec<Mat> = (0..Q)
            .map(|l| {
                let mut k = Mat::zeros(Q);
                k[(0, l)] = Complex::ONE;
                k
            })
            .collect();
        self.apply_kraus_one(q, &ks);
    }

    fn apply_kraus(&mut self, qs: &[usize], ks: &[Mat]) {
        let mut acc = vec![Complex::ZERO; self.dim * self.dim];
        for k in ks {
            let mut branch = self.clone();
            branch.apply(qs, k);
            for (dst, src) in acc.iter_mut().zip(&branch.a) {
                *dst += *src;
            }
        }
        self.a = acc;
    }

    /// ρ ← M ρ M† for an operator M acting on the given qudits (not
    /// necessarily unitary; used by both unitaries and Kraus terms).
    fn apply(&mut self, qs: &[usize], m: &Mat) {
        let msize = m.dim();
        debug_assert_eq!(msize, Q.pow(qs.len() as u32));
        let strides: Vec<usize> = qs.iter().map(|&q| Q.pow(q as u32)).collect();
        // Offsets of the m local basis states within a global index; local
        // index i has digits (most-significant first over qs).
        let mut offsets = vec![0usize; msize];
        for (i, off) in offsets.iter_mut().enumerate() {
            let mut rem = i;
            for (slot, stride) in strides.iter().enumerate() {
                let shift = qs.len() - 1 - slot;
                let digit = (rem / Q.pow(shift as u32)) % Q;
                rem %= Q.pow(shift as u32);
                *off += digit * stride;
            }
        }
        // Base indices: global indices whose digits at qs are all zero.
        let mut bases = Vec::with_capacity(self.dim / msize);
        for i in 0..self.dim {
            if qs.iter().all(|&q| self.digit(i, q) == 0) {
                bases.push(i);
            }
        }

        let dim = self.dim;
        // Sparsity map: most gates are permutations or near-diagonal, so
        // skipping zero entries is a large win.
        let nonzero: Vec<Vec<(usize, Complex)>> = (0..msize)
            .map(|r| {
                (0..msize)
                    .filter(|&c| m[(r, c)] != Complex::ZERO)
                    .map(|c| (c, m[(r, c)]))
                    .collect()
            })
            .collect();

        // Rows: A = M ρ, processed one base-group (msize rows) at a time with
        // contiguous row AXPYs.
        let mut scratch = vec![Complex::ZERO; msize * dim];
        for &base in &bases {
            for (i, &off) in offsets.iter().enumerate() {
                let src = (base + off) * dim;
                scratch[i * dim..(i + 1) * dim].copy_from_slice(&self.a[src..src + dim]);
            }
            for (r, &off) in offsets.iter().enumerate() {
                let dst = (base + off) * dim;
                let row_out = &mut self.a[dst..dst + dim];
                row_out.fill(Complex::ZERO);
                for &(c, factor) in &nonzero[r] {
                    let src_row = &scratch[c * dim..(c + 1) * dim];
                    for (o, &s) in row_out.iter_mut().zip(src_row) {
                        *o += factor * s;
                    }
                }
            }
        }
        // Columns: ρ' = A M† — column vectors transform with conj(M).
        let mut vin = vec![Complex::ZERO; msize];
        for row in 0..dim {
            let row_slice = &mut self.a[row * dim..(row + 1) * dim];
            for &base in &bases {
                for (i, &off) in offsets.iter().enumerate() {
                    vin[i] = row_slice[base + off];
                }
                for (c, &off) in offsets.iter().enumerate() {
                    let mut acc = Complex::ZERO;
                    for &(k, factor) in &nonzero[c] {
                        acc += factor.conj() * vin[k];
                    }
                    row_slice[base + off] = acc;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_state_populations() {
        let rho = DensityMatrix::new_pure(3, &[1, 0, 3]);
        assert!((rho.population(0, 1) - 1.0).abs() < 1e-12);
        assert!((rho.population(1, 0) - 1.0).abs() < 1e-12);
        assert!((rho.population(2, 3) - 1.0).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_qudit_unitary_moves_population() {
        // X on the qubit subspace.
        let x = Mat::from_fn(Q, |r, c| {
            let v = matches!((r, c), (0, 1) | (1, 0) | (2, 2) | (3, 3));
            if v {
                Complex::ONE
            } else {
                Complex::ZERO
            }
        });
        assert!(x.is_unitary(1e-12));
        let mut rho = DensityMatrix::new_ground(2);
        rho.apply_one(1, &x);
        assert!((rho.population(1, 1) - 1.0).abs() < 1e-12);
        assert!((rho.population(0, 0) - 1.0).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_restores_ground() {
        let mut rho = DensityMatrix::new_pure(2, &[3, 1]);
        rho.reset(0);
        assert!((rho.population(0, 0) - 1.0).abs() < 1e-12);
        // Partner untouched.
        assert!((rho.population(1, 1) - 1.0).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kraus_mixture_preserves_trace() {
        // 50/50 identity-or-X mixture.
        let x = Mat::from_fn(Q, |r, c| match (r, c) {
            (0, 1) | (1, 0) | (2, 2) | (3, 3) => Complex::ONE,
            _ => Complex::ZERO,
        });
        let ks = [
            Mat::identity(Q).scaled(0.5f64.sqrt()),
            x.scaled(0.5f64.sqrt()),
        ];
        let mut rho = DensityMatrix::new_ground(1);
        rho.apply_kraus_one(0, &ks);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.population(0, 0) - 0.5).abs() < 1e-12);
        assert!((rho.population(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_qudit_ordering_convention() {
        // A unitary that maps |a=1, b=0⟩ -> |a=1, b=1⟩ (controlled on the
        // first argument being 1).
        let u = Mat::from_fn(Q * Q, |r, c| {
            let (ra, rb) = (r / Q, r % Q);
            let (ca, cb) = (c / Q, c % Q);
            let flip = ca == 1 && cb < 2;
            let target = if flip { (ca, cb ^ 1) } else { (ca, cb) };
            if (ra, rb) == target {
                Complex::ONE
            } else {
                Complex::ZERO
            }
        });
        assert!(u.is_unitary(1e-12));
        let mut rho = DensityMatrix::new_pure(3, &[0, 1, 0]); // qudit1 = 1
        rho.apply_two(1, 2, &u); // control qudit1, target qudit2
        assert!((rho.population(2, 1) - 1.0).abs() < 1e-12);
        assert!((rho.population(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_and_dagger() {
        let a = Mat::from_fn(2, |r, c| Complex::new((r + c) as f64, r as f64 - c as f64));
        let id = Mat::identity(2);
        assert_eq!(a.matmul(&id), a);
        let d = a.dagger();
        assert_eq!(d[(0, 1)], a[(1, 0)].conj());
    }
}
