//! Ququart-embedded gates and leakage channels (paper Fig 7(b)).
//!
//! Quantum operations are calibrated for the computational basis, so every
//! embedded qubit gate acts as the identity on |2⟩ and |3⟩. Each noisy CNOT
//! of the §3.3 study is followed by three effects:
//!
//! 1. **leakage transport** — a probabilistic state exchange between the
//!    operands ([`leak_transport_kraus`]);
//! 2. **an RX(0.65π) kick** on an unleaked operand whose partner is leaked
//!    ([`rx_if_partner_leaked`]; 0.65π is the rotation Google measured on
//!    Sycamore);
//! 3. **leakage injection** — |1⟩ → |2⟩ with small probability
//!    ([`leak_inject_kraus`]).

use crate::complex::Complex;
use crate::density::{Mat, Q};

/// Embeds a 2×2 qubit gate into a ququart (identity on |2⟩, |3⟩).
pub fn embed_qubit_gate(u00: Complex, u01: Complex, u10: Complex, u11: Complex) -> Mat {
    let mut m = Mat::identity(Q);
    m[(0, 0)] = u00;
    m[(0, 1)] = u01;
    m[(1, 0)] = u10;
    m[(1, 1)] = u11;
    m
}

/// Embedded Hadamard.
pub fn hadamard() -> Mat {
    let s = Complex::real(1.0 / 2.0f64.sqrt());
    embed_qubit_gate(s, s, s, -s)
}

/// Embedded RX(θ) (the leakage-induced kick uses θ = 0.65π).
pub fn rx(theta: f64) -> Mat {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    embed_qubit_gate(c, s, s, c)
}

/// The rotation angle Google measured for leakage-induced kicks on Sycamore.
pub const SYCAMORE_KICK: f64 = 0.65 * std::f64::consts::PI;

/// Embedded CNOT on a ququart pair `(control, target)` — the first index of
/// [`crate::DensityMatrix::apply_two`] is the control. Acts only when both
/// operands are in the computational subspace.
pub fn cnot() -> Mat {
    Mat::from_fn(Q * Q, |r, c| {
        let (ca, cb) = (c / Q, c % Q);
        let flip = ca == 1 && cb < 2;
        let (ta, tb) = if flip { (ca, cb ^ 1) } else { (ca, cb) };
        if (r / Q, r % Q) == (ta, tb) {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Full two-ququart SWAP.
pub fn swap() -> Mat {
    Mat::from_fn(Q * Q, |r, c| {
        let (ca, cb) = (c / Q, c % Q);
        if (r / Q, r % Q) == (cb, ca) {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Leakage transport after a CNOT: with probability `p` the operands
/// exchange states (moving any leaked population across), otherwise nothing
/// happens. Kraus form of the unitary mixture.
pub fn leak_transport_kraus(p: f64) -> Vec<Mat> {
    vec![
        Mat::identity(Q * Q).scaled((1.0 - p).sqrt()),
        swap().scaled(p.sqrt()),
    ]
}

/// Conditional kick: applies RX(θ) to the second qudit exactly when the
/// first qudit is leaked (block-diagonal, hence unitary). Use twice with the
/// operands swapped to kick whichever partner is unleaked.
pub fn rx_if_partner_leaked(theta: f64) -> Mat {
    let kick = rx(theta);
    Mat::from_fn(Q * Q, |r, c| {
        let (ra, rb) = (r / Q, r % Q);
        let (ca, cb) = (c / Q, c % Q);
        if ra != ca {
            return Complex::ZERO;
        }
        if ca >= 2 {
            kick[(rb, cb)]
        } else if rb == cb {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Embedded Pauli (identity on |2⟩, |3⟩): 0 = I, 1 = X, 2 = Y, 3 = Z.
fn embedded_pauli(i: usize) -> Mat {
    match i {
        0 => Mat::identity(Q),
        1 => embed_qubit_gate(Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO),
        2 => embed_qubit_gate(
            Complex::ZERO,
            Complex::new(0.0, -1.0),
            Complex::new(0.0, 1.0),
            Complex::ZERO,
        ),
        _ => embed_qubit_gate(Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE),
    }
}

/// Projector onto one ququart's leaked subspace (|2⟩, |3⟩).
fn leak_projector() -> Mat {
    let mut m = Mat::zeros(Q);
    m[(2, 2)] = Complex::ONE;
    m[(3, 3)] = Complex::ONE;
    m
}

/// Projector onto one ququart's computational subspace (|0⟩, |1⟩).
fn comp_projector() -> Mat {
    let mut m = Mat::zeros(Q);
    m[(0, 0)] = Complex::ONE;
    m[(1, 1)] = Complex::ONE;
    m
}

/// One-sided tensor product `a ⊗ b` of two single-ququart matrices.
fn kron(a: &Mat, b: &Mat) -> Mat {
    Mat::from_fn(Q * Q, |r, c| a[(r / Q, c / Q)] * b[(r % Q, c % Q)])
}

/// The Pauli-twirled kick: a uniformly random Pauli on the second qudit
/// exactly when the first is leaked — the §5.2.2 channel the Pauli-frame
/// simulator applies to the unleaked operand of a leaked pair. Use twice
/// with the operands swapped, like [`rx_if_partner_leaked`]. This is the
/// frame-calibrated replacement for the coherent RX kick: under it the
/// frame simulator is an unbiased sampler of the exact density dynamics,
/// which is what the cross-validation suite relies on.
pub fn pauli_twirl_if_partner_leaked() -> Vec<Mat> {
    let leak = leak_projector();
    let comp = comp_projector();
    let mut ks: Vec<Mat> = (0..4)
        .map(|i| kron(&leak, &embedded_pauli(i)).scaled(0.5))
        .collect();
    ks.push(kron(&comp, &Mat::identity(Q)));
    ks
}

/// Frame-calibrated leakage transport: with probability `p`, and only when
/// *exactly one* operand is leaked, the operands exchange states and the
/// returned (now computational) qudit is Pauli-twirled into a uniformly
/// random computational state — the frame simulator's exchange-transport
/// semantics (`TransportModel::Exchange`), where the returned qubit's
/// frame is randomized rather than preserved. Clean and doubly-leaked
/// pairs are untouched (the plain [`leak_transport_kraus`] SWAP-mixture
/// instead exchanges every pair's states).
pub fn leak_transport_kraus_frame(p: f64) -> Vec<Mat> {
    let leak = leak_projector();
    let comp = comp_projector();
    // Projectors onto "left leaked, right computational" and the mirror.
    let left = kron(&leak, &comp);
    let right = kron(&comp, &leak);
    let mixed = {
        let mut m = left.clone();
        for r in 0..Q * Q {
            for c in 0..Q * Q {
                m[(r, c)] += right[(r, c)];
            }
        }
        m
    };
    // No-transport branch on the mixed subspace; identity elsewhere.
    let mut k0 = Mat::identity(Q * Q);
    for r in 0..Q * Q {
        for c in 0..Q * Q {
            k0[(r, c)] = k0[(r, c)] - mixed[(r, c)].scale(1.0 - (1.0 - p).sqrt());
        }
    }
    let mut ks = vec![k0];
    let swap = swap();
    // After the SWAP, the side that held the leaked state is the returned
    // (computational) one and gets the twirl.
    for (proj, returned_left) in [(&left, true), (&right, false)] {
        for i in 0..4 {
            // Twirl the returned operand (post-swap: the side that held the
            // leaked state) with each Pauli at weight p/4.
            let twirl = if returned_left {
                kron(&embedded_pauli(i), &Mat::identity(Q))
            } else {
                kron(&Mat::identity(Q), &embedded_pauli(i))
            };
            ks.push(twirl.matmul(&swap).matmul(proj).scaled((p / 4.0).sqrt()));
        }
    }
    ks
}

/// Google's `LeakageISWAP` from the DQLR protocol (paper App A.2, Fig 19):
/// an iSWAP calibrated on the |11⟩/|20⟩ submanifold of a (data, parity)
/// pair. With the parity qubit freshly reset to |0⟩ it converts a leaked
/// data qubit |2_d 0_p⟩ into |1_d 1_p⟩ (the parity excitation is then reset
/// away); if the parity reset *failed* (|1_p⟩) the same coupling excites a
/// data |1⟩ to |2⟩ — exactly the failure mode of Fig 19(b).
///
/// Operand order for [`crate::DensityMatrix::apply_two`]: `(data, parity)`.
pub fn leakage_iswap() -> Mat {
    Mat::from_fn(Q * Q, |r, c| {
        let (cd, cp) = (c / Q, c % Q);
        // |2_d 0_p⟩ ↔ |1_d 1_p⟩ (iSWAP phase folded into the mixture use).
        let (td, tp) = match (cd, cp) {
            (2, 0) => (1, 1),
            (1, 1) => (2, 0),
            other => other,
        };
        if (r / Q, r % Q) == (td, tp) {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Leakage injection on one ququart: |1⟩ decays to |2⟩ with probability `p`.
pub fn leak_inject_kraus(p: f64) -> Vec<Mat> {
    let mut k0 = Mat::identity(Q);
    k0[(1, 1)] = Complex::real((1.0 - p).sqrt());
    let mut k1 = Mat::zeros(Q);
    k1[(2, 1)] = Complex::real(p.sqrt());
    vec![k0, k1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;

    #[test]
    fn embedded_gates_are_unitary() {
        assert!(hadamard().is_unitary(1e-12));
        assert!(rx(SYCAMORE_KICK).is_unitary(1e-12));
        assert!(cnot().is_unitary(1e-12));
        assert!(swap().is_unitary(1e-12));
        assert!(rx_if_partner_leaked(SYCAMORE_KICK).is_unitary(1e-12));
    }

    #[test]
    fn cnot_truth_table_on_computational_states() {
        for (c, t, expect) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            let mut rho = DensityMatrix::new_pure(2, &[c, t]);
            rho.apply_two(0, 1, &cnot());
            assert!(
                (rho.population(1, expect) - 1.0).abs() < 1e-12,
                "CX|{c}{t}⟩"
            );
        }
    }

    #[test]
    fn cnot_is_identity_on_leaked_control() {
        for leaked in [2usize, 3] {
            let mut rho = DensityMatrix::new_pure(2, &[leaked, 1]);
            rho.apply_two(0, 1, &cnot());
            assert!((rho.population(1, 1) - 1.0).abs() < 1e-12);
            assert!((rho.leak_probability(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn transport_moves_leakage() {
        let mut rho = DensityMatrix::new_pure(2, &[2, 0]);
        rho.apply_kraus_two(0, 1, &leak_transport_kraus(1.0));
        assert!((rho.leak_probability(0) - 0.0).abs() < 1e-12);
        assert!((rho.leak_probability(1) - 1.0).abs() < 1e-12);
        // Partial transport splits the population.
        let mut rho = DensityMatrix::new_pure(2, &[2, 0]);
        rho.apply_kraus_two(0, 1, &leak_transport_kraus(0.1));
        assert!((rho.leak_probability(1) - 0.1).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn injection_leaks_excited_states_only() {
        let mut ground = DensityMatrix::new_ground(1);
        ground.apply_kraus_one(0, &leak_inject_kraus(0.3));
        assert!((ground.leak_probability(0)).abs() < 1e-12);

        let mut excited = DensityMatrix::new_pure(1, &[1]);
        excited.apply_kraus_one(0, &leak_inject_kraus(0.3));
        assert!((excited.leak_probability(0) - 0.3).abs() < 1e-12);
        assert!((excited.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_iswap_removes_data_leakage_onto_parity() {
        let u = leakage_iswap();
        assert!(u.is_unitary(1e-12));
        // Nominal DQLR step: leaked data, reset parity.
        let mut rho = DensityMatrix::new_pure(2, &[2, 0]);
        rho.apply_two(0, 1, &u);
        assert!(
            (rho.leak_probability(0)).abs() < 1e-12,
            "data leakage removed"
        );
        assert!(
            (rho.population(0, 1) - 1.0).abs() < 1e-12,
            "data lands in |1⟩"
        );
        assert!((rho.population(1, 1) - 1.0).abs() < 1e-12, "parity excited");
        // The follow-up parity reset completes the protocol.
        rho.reset(1);
        assert!((rho.population(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_iswap_reset_failure_excites_data() {
        // Fig 19(b): parity reset failed (|1⟩), data in |1⟩ → data leaks.
        let mut rho = DensityMatrix::new_pure(2, &[1, 1]);
        rho.apply_two(0, 1, &leakage_iswap());
        assert!((rho.leak_probability(0) - 1.0).abs() < 1e-12);
        // Computational data + correctly reset parity: identity.
        for d in [0usize, 1] {
            let mut calm = DensityMatrix::new_pure(2, &[d, 0]);
            calm.apply_two(0, 1, &leakage_iswap());
            assert!((calm.population(0, d) - 1.0).abs() < 1e-12);
        }
    }

    /// A Kraus set must be trace-preserving: Σ K†K = I.
    fn assert_complete(ks: &[Mat], dim: usize) {
        let mut sum = Mat::zeros(dim);
        for k in ks {
            let prod = k.dagger().matmul(k);
            for r in 0..dim {
                for c in 0..dim {
                    sum[(r, c)] += prod[(r, c)];
                }
            }
        }
        for r in 0..dim {
            for c in 0..dim {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!(
                    (sum[(r, c)] - Complex::real(expect)).norm_sqr() < 1e-18,
                    "ΣK†K differs from I at ({r},{c}): {:?}",
                    sum[(r, c)]
                );
            }
        }
    }

    #[test]
    fn frame_calibrated_channels_are_trace_preserving() {
        assert_complete(&pauli_twirl_if_partner_leaked(), Q * Q);
        for p in [0.0, 0.1, 0.5, 1.0] {
            assert_complete(&leak_transport_kraus_frame(p), Q * Q);
        }
        assert_complete(&leak_transport_kraus(0.1), Q * Q);
        assert_complete(&leak_inject_kraus(0.3), Q);
    }

    #[test]
    fn frame_transport_fires_only_on_singly_leaked_pairs() {
        // Leaked + computational: leakage moves, returned state is uniform.
        let mut rho = DensityMatrix::new_pure(2, &[2, 1]);
        rho.apply_kraus_two(0, 1, &leak_transport_kraus_frame(1.0));
        assert!((rho.leak_probability(0)).abs() < 1e-12);
        assert!((rho.leak_probability(1) - 1.0).abs() < 1e-12);
        assert!(
            (rho.population(0, 0) - 0.5).abs() < 1e-12,
            "returned state must be uniformly random, not the partner's |1⟩"
        );
        // Clean pairs are untouched (the SWAP mixture would exchange them).
        let mut clean = DensityMatrix::new_pure(2, &[1, 0]);
        clean.apply_kraus_two(0, 1, &leak_transport_kraus_frame(1.0));
        assert!((clean.population(0, 1) - 1.0).abs() < 1e-12);
        assert!((clean.population(1, 0) - 1.0).abs() < 1e-12);
        // Doubly-leaked pairs too.
        let mut both = DensityMatrix::new_pure(2, &[2, 2]);
        both.apply_kraus_two(0, 1, &leak_transport_kraus_frame(0.7));
        assert!((both.leak_probability(0) - 1.0).abs() < 1e-12);
        assert!((both.leak_probability(1) - 1.0).abs() < 1e-12);
        // Partial transport splits the population like the scalar model.
        let mut partial = DensityMatrix::new_pure(2, &[2, 0]);
        partial.apply_kraus_two(0, 1, &leak_transport_kraus_frame(0.1));
        assert!((partial.leak_probability(1) - 0.1).abs() < 1e-12);
        assert!((partial.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_twirl_kick_randomizes_only_on_leaked_partner() {
        // Partner leaked: the computational qubit lands uniformly random.
        let mut kicked = DensityMatrix::new_pure(2, &[2, 0]);
        kicked.apply_kraus_two(0, 1, &pauli_twirl_if_partner_leaked());
        assert!((kicked.population(1, 0) - 0.5).abs() < 1e-12);
        assert!((kicked.population(1, 1) - 0.5).abs() < 1e-12);
        // Partner computational: identity.
        let mut calm = DensityMatrix::new_pure(2, &[1, 1]);
        calm.apply_kraus_two(0, 1, &pauli_twirl_if_partner_leaked());
        assert!((calm.population(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_kick_fires_only_on_leaked_partner() {
        // Partner unleaked: nothing happens.
        let mut calm = DensityMatrix::new_pure(2, &[0, 0]);
        calm.apply_two(0, 1, &rx_if_partner_leaked(SYCAMORE_KICK));
        assert!((calm.population(1, 0) - 1.0).abs() < 1e-12);
        // Partner leaked: the qubit rotates.
        let mut kicked = DensityMatrix::new_pure(2, &[2, 0]);
        kicked.apply_two(0, 1, &rx_if_partner_leaked(SYCAMORE_KICK));
        let expect_p1 = (SYCAMORE_KICK / 2.0).sin().powi(2);
        assert!((kicked.population(1, 1) - expect_p1).abs() < 1e-12);
    }
}
