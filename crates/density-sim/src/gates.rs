//! Ququart-embedded gates and leakage channels (paper Fig 7(b)).
//!
//! Quantum operations are calibrated for the computational basis, so every
//! embedded qubit gate acts as the identity on |2⟩ and |3⟩. Each noisy CNOT
//! of the §3.3 study is followed by three effects:
//!
//! 1. **leakage transport** — a probabilistic state exchange between the
//!    operands ([`leak_transport_kraus`]);
//! 2. **an RX(0.65π) kick** on an unleaked operand whose partner is leaked
//!    ([`rx_if_partner_leaked`]; 0.65π is the rotation Google measured on
//!    Sycamore);
//! 3. **leakage injection** — |1⟩ → |2⟩ with small probability
//!    ([`leak_inject_kraus`]).

use crate::complex::Complex;
use crate::density::{Mat, Q};

/// Embeds a 2×2 qubit gate into a ququart (identity on |2⟩, |3⟩).
pub fn embed_qubit_gate(u00: Complex, u01: Complex, u10: Complex, u11: Complex) -> Mat {
    let mut m = Mat::identity(Q);
    m[(0, 0)] = u00;
    m[(0, 1)] = u01;
    m[(1, 0)] = u10;
    m[(1, 1)] = u11;
    m
}

/// Embedded Hadamard.
pub fn hadamard() -> Mat {
    let s = Complex::real(1.0 / 2.0f64.sqrt());
    embed_qubit_gate(s, s, s, -s)
}

/// Embedded RX(θ) (the leakage-induced kick uses θ = 0.65π).
pub fn rx(theta: f64) -> Mat {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    embed_qubit_gate(c, s, s, c)
}

/// The rotation angle Google measured for leakage-induced kicks on Sycamore.
pub const SYCAMORE_KICK: f64 = 0.65 * std::f64::consts::PI;

/// Embedded CNOT on a ququart pair `(control, target)` — the first index of
/// [`crate::DensityMatrix::apply_two`] is the control. Acts only when both
/// operands are in the computational subspace.
pub fn cnot() -> Mat {
    Mat::from_fn(Q * Q, |r, c| {
        let (ca, cb) = (c / Q, c % Q);
        let flip = ca == 1 && cb < 2;
        let (ta, tb) = if flip { (ca, cb ^ 1) } else { (ca, cb) };
        if (r / Q, r % Q) == (ta, tb) {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Full two-ququart SWAP.
pub fn swap() -> Mat {
    Mat::from_fn(Q * Q, |r, c| {
        let (ca, cb) = (c / Q, c % Q);
        if (r / Q, r % Q) == (cb, ca) {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Leakage transport after a CNOT: with probability `p` the operands
/// exchange states (moving any leaked population across), otherwise nothing
/// happens. Kraus form of the unitary mixture.
pub fn leak_transport_kraus(p: f64) -> Vec<Mat> {
    vec![
        Mat::identity(Q * Q).scaled((1.0 - p).sqrt()),
        swap().scaled(p.sqrt()),
    ]
}

/// Conditional kick: applies RX(θ) to the second qudit exactly when the
/// first qudit is leaked (block-diagonal, hence unitary). Use twice with the
/// operands swapped to kick whichever partner is unleaked.
pub fn rx_if_partner_leaked(theta: f64) -> Mat {
    let kick = rx(theta);
    Mat::from_fn(Q * Q, |r, c| {
        let (ra, rb) = (r / Q, r % Q);
        let (ca, cb) = (c / Q, c % Q);
        if ra != ca {
            return Complex::ZERO;
        }
        if ca >= 2 {
            kick[(rb, cb)]
        } else if rb == cb {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Google's `LeakageISWAP` from the DQLR protocol (paper App A.2, Fig 19):
/// an iSWAP calibrated on the |11⟩/|20⟩ submanifold of a (data, parity)
/// pair. With the parity qubit freshly reset to |0⟩ it converts a leaked
/// data qubit |2_d 0_p⟩ into |1_d 1_p⟩ (the parity excitation is then reset
/// away); if the parity reset *failed* (|1_p⟩) the same coupling excites a
/// data |1⟩ to |2⟩ — exactly the failure mode of Fig 19(b).
///
/// Operand order for [`crate::DensityMatrix::apply_two`]: `(data, parity)`.
pub fn leakage_iswap() -> Mat {
    Mat::from_fn(Q * Q, |r, c| {
        let (cd, cp) = (c / Q, c % Q);
        // |2_d 0_p⟩ ↔ |1_d 1_p⟩ (iSWAP phase folded into the mixture use).
        let (td, tp) = match (cd, cp) {
            (2, 0) => (1, 1),
            (1, 1) => (2, 0),
            other => other,
        };
        if (r / Q, r % Q) == (td, tp) {
            Complex::ONE
        } else {
            Complex::ZERO
        }
    })
}

/// Leakage injection on one ququart: |1⟩ decays to |2⟩ with probability `p`.
pub fn leak_inject_kraus(p: f64) -> Vec<Mat> {
    let mut k0 = Mat::identity(Q);
    k0[(1, 1)] = Complex::real((1.0 - p).sqrt());
    let mut k1 = Mat::zeros(Q);
    k1[(2, 1)] = Complex::real(p.sqrt());
    vec![k0, k1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::DensityMatrix;

    #[test]
    fn embedded_gates_are_unitary() {
        assert!(hadamard().is_unitary(1e-12));
        assert!(rx(SYCAMORE_KICK).is_unitary(1e-12));
        assert!(cnot().is_unitary(1e-12));
        assert!(swap().is_unitary(1e-12));
        assert!(rx_if_partner_leaked(SYCAMORE_KICK).is_unitary(1e-12));
    }

    #[test]
    fn cnot_truth_table_on_computational_states() {
        for (c, t, expect) in [(0, 0, 0), (0, 1, 1), (1, 0, 1), (1, 1, 0)] {
            let mut rho = DensityMatrix::new_pure(2, &[c, t]);
            rho.apply_two(0, 1, &cnot());
            assert!(
                (rho.population(1, expect) - 1.0).abs() < 1e-12,
                "CX|{c}{t}⟩"
            );
        }
    }

    #[test]
    fn cnot_is_identity_on_leaked_control() {
        for leaked in [2usize, 3] {
            let mut rho = DensityMatrix::new_pure(2, &[leaked, 1]);
            rho.apply_two(0, 1, &cnot());
            assert!((rho.population(1, 1) - 1.0).abs() < 1e-12);
            assert!((rho.leak_probability(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn transport_moves_leakage() {
        let mut rho = DensityMatrix::new_pure(2, &[2, 0]);
        rho.apply_kraus_two(0, 1, &leak_transport_kraus(1.0));
        assert!((rho.leak_probability(0) - 0.0).abs() < 1e-12);
        assert!((rho.leak_probability(1) - 1.0).abs() < 1e-12);
        // Partial transport splits the population.
        let mut rho = DensityMatrix::new_pure(2, &[2, 0]);
        rho.apply_kraus_two(0, 1, &leak_transport_kraus(0.1));
        assert!((rho.leak_probability(1) - 0.1).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn injection_leaks_excited_states_only() {
        let mut ground = DensityMatrix::new_ground(1);
        ground.apply_kraus_one(0, &leak_inject_kraus(0.3));
        assert!((ground.leak_probability(0)).abs() < 1e-12);

        let mut excited = DensityMatrix::new_pure(1, &[1]);
        excited.apply_kraus_one(0, &leak_inject_kraus(0.3));
        assert!((excited.leak_probability(0) - 0.3).abs() < 1e-12);
        assert!((excited.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_iswap_removes_data_leakage_onto_parity() {
        let u = leakage_iswap();
        assert!(u.is_unitary(1e-12));
        // Nominal DQLR step: leaked data, reset parity.
        let mut rho = DensityMatrix::new_pure(2, &[2, 0]);
        rho.apply_two(0, 1, &u);
        assert!(
            (rho.leak_probability(0)).abs() < 1e-12,
            "data leakage removed"
        );
        assert!(
            (rho.population(0, 1) - 1.0).abs() < 1e-12,
            "data lands in |1⟩"
        );
        assert!((rho.population(1, 1) - 1.0).abs() < 1e-12, "parity excited");
        // The follow-up parity reset completes the protocol.
        rho.reset(1);
        assert!((rho.population(1, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_iswap_reset_failure_excites_data() {
        // Fig 19(b): parity reset failed (|1⟩), data in |1⟩ → data leaks.
        let mut rho = DensityMatrix::new_pure(2, &[1, 1]);
        rho.apply_two(0, 1, &leakage_iswap());
        assert!((rho.leak_probability(0) - 1.0).abs() < 1e-12);
        // Computational data + correctly reset parity: identity.
        for d in [0usize, 1] {
            let mut calm = DensityMatrix::new_pure(2, &[d, 0]);
            calm.apply_two(0, 1, &leakage_iswap());
            assert!((calm.population(0, d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conditional_kick_fires_only_on_leaked_partner() {
        // Partner unleaked: nothing happens.
        let mut calm = DensityMatrix::new_pure(2, &[0, 0]);
        calm.apply_two(0, 1, &rx_if_partner_leaked(SYCAMORE_KICK));
        assert!((calm.population(1, 0) - 1.0).abs() < 1e-12);
        // Partner leaked: the qubit rotates.
        let mut kicked = DensityMatrix::new_pure(2, &[2, 0]);
        kicked.apply_two(0, 1, &rx_if_partner_leaked(SYCAMORE_KICK));
        let expect_p1 = (SYCAMORE_KICK / 2.0).sin().powi(2);
        assert!((kicked.population(1, 1) - expect_p1).abs() < 1e-12);
    }
}
