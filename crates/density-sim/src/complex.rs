//! Minimal complex arithmetic (kept dependency-free on purpose; see
//! DESIGN.md's dependency policy).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use density_sim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// assert!((Complex::new(3.0, 4.0).norm_sqr() - 25.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A real number.
    pub fn real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn norm_and_scale() {
        let a = Complex::new(3.0, 4.0);
        assert!((a.norm_sqr() - 25.0).abs() < 1e-12);
        assert_eq!(a.scale(2.0), Complex::new(6.0, 8.0));
    }
}
