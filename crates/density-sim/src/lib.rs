//! Ququart density-matrix simulation of leakage spread (paper §3.3).
//!
//! The paper characterizes how leakage moves through a single Z stabilizer
//! with a density-matrix simulation over **ququarts** (|0⟩, |1⟩, |2⟩, |3⟩,
//! where |2⟩/|3⟩ are the leaked states Google observed on Sycamore). This
//! crate implements that simulation from scratch:
//!
//! * [`Complex`] / [`Mat`] — minimal complex arithmetic and dense operators
//!   (no external dependencies);
//! * [`DensityMatrix`] — an n-ququart density matrix with 1- and 2-qudit
//!   unitaries and Kraus channels;
//! * [`gates`] — embedded qubit gates (CNOT, RX(θ) with the Sycamore-measured
//!   θ = 0.65π), the leakage-transport mixture, leakage-injection and reset
//!   channels;
//! * [`stabilizer`] — the Fig 7/8 experiment: a Z stabilizer whose data qubit
//!   `q0` starts in |2⟩, executing an LRC round followed by a plain round,
//!   recording each qudit's leakage population and the probability of
//!   reading the correct stabilizer outcome after every CNOT.
//!
//! # Example
//!
//! ```
//! use density_sim::{gates, DensityMatrix};
//!
//! // CNOT is calibrated for the computational basis only: a leaked control
//! // does nothing.
//! let mut rho = DensityMatrix::new_pure(2, &[2, 0]);
//! rho.apply_two(0, 1, &gates::cnot());
//! assert!((rho.population(1, 0) - 1.0).abs() < 1e-12);
//! assert!((rho.leak_probability(0) - 1.0).abs() < 1e-12);
//! ```

pub mod complex;
pub mod density;
pub mod gates;
pub mod stabilizer;

pub use complex::Complex;
pub use density::{DensityMatrix, Mat};
pub use stabilizer::{KickModel, StabilizerLeakageStudy, StepRecord};
