//! End-to-end tests for `eraser-serve`: bit-identity against in-process
//! runs, artifact-cache warm-up, backpressure, and graceful shutdown.

use eraser_core::SweepPoint;
use eraser_json::Value;
use eraser_serve::protocol::write_frame;
use eraser_serve::{
    Client, FrameReader, JobEvent, JobSpec, ReadOutcome, ServerConfig, ServerHandle, Submission,
};
use std::net::TcpStream;

fn start(workers: usize, queue_capacity: usize) -> ServerHandle {
    ServerHandle::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        cache_bytes: 64 << 20,
    })
    .expect("bind ephemeral port")
}

/// Every statistic in a streamed point must equal the in-process value —
/// integers exactly, floats bit-for-bit (the protocol's shortest-round-trip
/// float formatting guarantees parse(write(x)) == x).
fn assert_points_match(points: &[Value], reference: &[SweepPoint], context: &str) {
    assert_eq!(points.len(), reference.len(), "{context}: point count");
    for (frame, expect) in points.iter().zip(reference) {
        let r = &expect.result;
        let ctx = format!(
            "{context}: d={} p={} policy={}",
            expect.distance, expect.p, expect.policy
        );
        let get_u64 = |key: &str| frame.get(key).and_then(|v| v.as_u64()).unwrap_or(u64::MAX);
        let get_f64 = |key: &str| frame.get(key).and_then(|v| v.as_f64()).unwrap();
        assert_eq!(
            get_u64("distance"),
            expect.distance as u64,
            "{ctx}: distance"
        );
        assert_eq!(get_f64("p").to_bits(), expect.p.to_bits(), "{ctx}: p");
        assert_eq!(get_u64("rounds"), expect.rounds as u64, "{ctx}: rounds");
        assert_eq!(
            frame.get("policy").and_then(|v| v.as_str()),
            Some(expect.policy.as_str()),
            "{ctx}: policy"
        );
        assert_eq!(
            frame.get("decoder").and_then(|v| v.as_str()),
            Some(r.decoder.as_str()),
            "{ctx}: decoder"
        );
        assert_eq!(get_u64("shots"), r.shots, "{ctx}: shots");
        assert_eq!(
            get_u64("logical_errors"),
            r.logical_errors,
            "{ctx}: logical_errors"
        );
        assert_eq!(get_f64("ler").to_bits(), r.ler().to_bits(), "{ctx}: ler");
        assert_eq!(get_u64("total_lrcs"), r.total_lrcs, "{ctx}: total_lrcs");
        assert_eq!(
            get_u64("total_erasures"),
            r.total_erasures,
            "{ctx}: total_erasures"
        );
        assert_eq!(
            get_u64("spec_tp"),
            r.speculation.true_positive,
            "{ctx}: spec_tp"
        );
        assert_eq!(
            get_u64("spec_fp"),
            r.speculation.false_positive,
            "{ctx}: spec_fp"
        );
        assert_eq!(
            get_u64("spec_fn"),
            r.speculation.false_negative,
            "{ctx}: spec_fn"
        );
        assert_eq!(
            get_u64("spec_tn"),
            r.speculation.true_negative,
            "{ctx}: spec_tn"
        );
        assert_eq!(
            get_u64("flagged_shots"),
            r.postselection.flagged_shots,
            "{ctx}: flagged_shots"
        );
        assert_eq!(
            get_u64("errors_on_kept"),
            r.postselection.errors_on_kept,
            "{ctx}: errors_on_kept"
        );
        assert_eq!(
            get_f64("spec_accuracy").to_bits(),
            r.speculation.accuracy().to_bits(),
            "{ctx}: spec_accuracy"
        );
        if r.controller.is_active() {
            assert_eq!(
                get_u64("ctrl_escalations"),
                r.controller.escalations,
                "{ctx}: ctrl_escalations"
            );
            assert_eq!(
                get_u64("ctrl_rounds_escalated"),
                r.controller.rounds_escalated,
                "{ctx}: ctrl_rounds_escalated"
            );
            assert_eq!(
                get_u64("ctrl_rounds_base"),
                r.controller.rounds_base,
                "{ctx}: ctrl_rounds_base"
            );
            assert_eq!(
                get_f64("ctrl_mean_estimate").to_bits(),
                r.controller.mean_estimate().to_bits(),
                "{ctx}: ctrl_mean_estimate"
            );
            assert_eq!(
                get_f64("ctrl_peak_estimate").to_bits(),
                r.controller.peak_estimate().to_bits(),
                "{ctx}: ctrl_peak_estimate"
            );
        } else {
            assert!(
                frame.get("ctrl_escalations").is_none(),
                "{ctx}: static policies must not carry controller fields"
            );
        }
        let lpr: Vec<f64> = frame
            .get("lpr_total")
            .and_then(|v| v.as_array())
            .expect("lpr_total array")
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(lpr.len(), r.lpr_total.len(), "{ctx}: lpr length");
        for (got, want) in lpr.iter().zip(&r.lpr_total) {
            assert_eq!(got.to_bits(), want.to_bits(), "{ctx}: lpr value");
        }
    }
}

#[test]
fn adaptive_jobs_stream_controller_telemetry() {
    let spec = JobSpec {
        distances: vec![3],
        error_rates: vec![2e-3],
        policies: vec!["eraser".to_string(), "adaptive-ewma".to_string()],
        rounds: 12,
        shots: 96,
        seed: 0xC0DE,
        decoder: "mwpm".to_string(),
        profile: "burst:start=4,len=3,period=8,rate=0.05".to_string(),
        ..JobSpec::default()
    };
    let reference = spec.build_sweep(2).unwrap().run();
    assert_eq!(reference.len(), 2);
    let adaptive = &reference[1];
    assert_eq!(adaptive.policy, "adaptive-ewma");
    assert!(
        adaptive.result.controller.is_active(),
        "the reference adaptive run must report telemetry"
    );

    let server = start(2, 4);
    let mut client = Client::connect(server.addr()).unwrap();
    let (points, _) = client.run_job(&spec).unwrap();
    assert_points_match(&points, &reference, "adaptive job");
    server.shutdown();
    server.wait();
}

fn done_u64(done: &Value, key: &str) -> u64 {
    done.get(key).and_then(|v| v.as_u64()).unwrap_or(u64::MAX)
}

#[test]
fn server_results_are_bit_identical_across_workers_and_cache_state() {
    let spec = JobSpec {
        distances: vec![3, 5],
        error_rates: vec![1e-3, 3e-3],
        policies: vec!["no-lrc".to_string(), "eraser".to_string()],
        shots: 128,
        seed: 0xBEEF,
        decoder: "mwpm".to_string(),
        ..JobSpec::default()
    };

    // In-process reference through the same facade, different thread count
    // than either server — thread count must be a pure wall-clock knob.
    let reference = spec.build_sweep(2).unwrap().run();
    assert_eq!(reference.len(), 8);

    let single = start(1, 8);
    let mut client = Client::connect(single.addr()).unwrap();
    let (cold_points, cold_done) = client.run_job(&spec).unwrap();
    assert_points_match(&cold_points, &reference, "workers=1 cold");
    assert!(
        done_u64(&cold_done, "cache_misses") > 0,
        "cold run must build artifacts"
    );

    // Same job on the same server: everything comes from the cache and the
    // numbers do not move.
    let (warm_points, warm_done) = client.run_job(&spec).unwrap();
    assert_points_match(&warm_points, &reference, "workers=1 warm");
    assert_eq!(
        done_u64(&warm_done, "cache_misses"),
        0,
        "warm run must not rebuild"
    );
    assert!(
        done_u64(&warm_done, "cache_hits") > 0,
        "warm run must hit the cache"
    );

    single.shutdown();
    single.wait();

    let pooled = start(4, 8);
    let mut client = Client::connect(pooled.addr()).unwrap();
    let (pooled_points, _) = client.run_job(&spec).unwrap();
    assert_points_match(&pooled_points, &reference, "workers=4 cold");
    pooled.shutdown();
    pooled.wait();
}

#[test]
fn windowed_jobs_are_bit_identical_too() {
    let spec = JobSpec {
        distances: vec![3, 5],
        rounds: 8,
        cycles: 0,
        window: 4,
        shots: 96,
        seed: 0x51D3,
        decoder: "union-find".to_string(),
        ..JobSpec::default()
    };

    let reference = spec.build_sweep(2).unwrap().run();
    let server = start(2, 8);
    let mut client = Client::connect(server.addr()).unwrap();
    let (points, _) = client.run_job(&spec).unwrap();
    assert_points_match(&points, &reference, "windowed");
    let (again, done) = client.run_job(&spec).unwrap();
    assert_points_match(&again, &reference, "windowed warm");
    assert_eq!(
        done_u64(&done, "cache_misses"),
        0,
        "window plans must be cached"
    );
    server.shutdown();
    server.wait();
}

#[test]
fn full_queue_answers_busy_instead_of_hanging() {
    let server = start(2, 1);

    // Job big enough to keep the executor busy while we fill the queue.
    let long = JobSpec {
        distances: vec![5, 7],
        error_rates: vec![1e-3, 2e-3, 3e-3],
        shots: 4096,
        decoder: "mwpm".to_string(),
        ..JobSpec::default()
    };

    let mut first = Client::connect(server.addr()).unwrap();
    assert!(matches!(
        first.submit(&long).unwrap(),
        Submission::Accepted { .. }
    ));

    // Queue capacity is 1: the second job occupies the only slot...
    let mut second = Client::connect(server.addr()).unwrap();
    assert!(matches!(
        second.submit(&long).unwrap(),
        Submission::Accepted { .. }
    ));

    // ...so a third submit gets an explicit `busy`, immediately.
    let mut third = Client::connect(server.addr()).unwrap();
    match third.submit(&JobSpec::default()).unwrap() {
        Submission::Busy { queued, capacity } => {
            assert_eq!(queued, 1);
            assert_eq!(capacity, 1);
        }
        other => panic!("expected busy, got {other:?}"),
    }

    // Both accepted jobs still complete in order.
    for client in [&mut first, &mut second] {
        loop {
            if let JobEvent::Done(done) = client.next_event().unwrap() {
                assert_eq!(done.get("completed").and_then(|v| v.as_bool()), Some(true));
                break;
            }
        }
    }
    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_drains_accepted_jobs() {
    let server = start(2, 8);
    let spec = JobSpec {
        distances: vec![5],
        shots: 2048,
        decoder: "mwpm".to_string(),
        ..JobSpec::default()
    };

    let mut client = Client::connect(server.addr()).unwrap();
    let cells = match client.submit(&spec).unwrap() {
        Submission::Accepted { cells, .. } => cells,
        other => panic!("expected accepted, got {other:?}"),
    };

    // Shut down while the job is queued/running: it must still finish.
    server.shutdown();
    let mut points = 0;
    let done = loop {
        match client.next_event().unwrap() {
            JobEvent::Point(_) => points += 1,
            JobEvent::Done(done) => break done,
        }
    };
    assert_eq!(points as u64, cells, "all cells streamed despite shutdown");
    assert_eq!(done.get("completed").and_then(|v| v.as_bool()), Some(true));
    server.wait();
}

#[test]
fn shutdown_frame_is_acknowledged_with_bye() {
    let server = start(1, 4);
    let mut client = Client::connect(server.addr()).unwrap();
    let pong = client.ping().unwrap();
    assert_eq!(pong.get("type").and_then(|v| v.as_str()), Some("pong"));
    assert_eq!(pong.get("version").and_then(|v| v.as_u64()), Some(1));
    let bye = client.shutdown().unwrap();
    assert_eq!(bye.get("type").and_then(|v| v.as_str()), Some("bye"));
    server.wait();
}

#[test]
fn invalid_jobs_are_rejected_with_error_frames() {
    let server = start(1, 4);

    let mut client = Client::connect(server.addr()).unwrap();
    let bad = JobSpec {
        policies: vec!["definitely-not-a-policy".to_string()],
        ..JobSpec::default()
    };
    match client.submit(&bad).unwrap() {
        Submission::Rejected { message } => {
            assert!(message.contains("unknown policy"), "{message}")
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // The connection survives a rejected job: a valid one still runs.
    let (points, _) = client.run_job(&JobSpec::default()).unwrap();
    assert_eq!(points.len(), 1);

    // Unknown frame types get an error frame, not a dropped connection.
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream);
    let mut frame = Value::object();
    frame.set("type", "frobnicate");
    write_frame(&mut writer, &frame).unwrap();
    let reply = loop {
        match reader.read().unwrap() {
            ReadOutcome::Frame(v) => break v,
            ReadOutcome::Idle => continue,
            ReadOutcome::Eof => panic!("connection dropped on unknown frame"),
        }
    };
    assert_eq!(reply.get("type").and_then(|v| v.as_str()), Some("error"));
    assert!(reply
        .get("message")
        .and_then(|v| v.as_str())
        .unwrap()
        .contains("frobnicate"));

    server.shutdown();
    server.wait();
}
