//! Wire protocol of `eraser-serve`: length-prefixed JSON frames.
//!
//! Every frame is a 4-byte big-endian payload length followed by exactly
//! that many bytes of UTF-8 JSON (one [`eraser_json::Value`] object with a
//! `"type"` discriminant). Length prefixing keeps framing trivial for any
//! client language; JSON keeps the payloads inspectable with `nc`+`jq`.
//!
//! Client → server frames:
//!
//! | type       | fields                                   |
//! |------------|------------------------------------------|
//! | `submit`   | a [`JobSpec`] (see its field docs)       |
//! | `ping`     | —                                        |
//! | `stats`    | —                                        |
//! | `shutdown` | —                                        |
//!
//! Server → client frames:
//!
//! | type       | fields                                                       |
//! |------------|--------------------------------------------------------------|
//! | `accepted` | `job`, `cells` (grid points to expect)                       |
//! | `busy`     | `queued`, `capacity` — job queue full, retry later           |
//! | `error`    | `message` — the job was rejected (validation, shutdown)      |
//! | `point`    | one streamed sweep cell (see `server::point_frame`)          |
//! | `done`     | `job`, `cells`, `micros`, `cache_hits`, `cache_misses`       |
//! | `pong`     | `version`, `workers`, `queue_capacity`                       |
//! | `stats`    | server + artifact-cache counters                             |
//! | `bye`      | shutdown acknowledged; the server drains and exits           |

use eraser_core::{ControllerConfig, ExperimentError, LeakageProfile, NoiseModel, Sweep};
use eraser_json::Value;
use std::io::{self, Read, Write};

/// Protocol version reported by `pong`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a single frame's payload. Large enough for any job spec
/// or streamed point by orders of magnitude; small enough that a garbage
/// length prefix cannot OOM the server.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one frame: 4-byte big-endian length, then the compact JSON.
pub fn write_frame(w: &mut impl Write, value: &Value) -> io::Result<()> {
    let payload = value.to_string();
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// One `FrameReader::read` outcome.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame arrived.
    Frame(Value),
    /// The read timed out with no (or a partial) frame; already-received
    /// bytes are retained, so callers can poll a shutdown flag and retry
    /// without corrupting the stream.
    Idle,
    /// The peer closed the connection cleanly (between frames).
    Eof,
}

/// Incremental frame reader that survives read timeouts.
///
/// A plain blocking read loop would lose buffered bytes when a
/// `set_read_timeout` deadline fires mid-frame; this reader accumulates
/// into an internal buffer and only yields [`ReadOutcome::Frame`] once the
/// length prefix and full payload are present.
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    filled: usize,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            buf: Vec::new(),
            filled: 0,
        }
    }

    /// Reads until a full frame, a timeout, or EOF.
    pub fn read(&mut self) -> io::Result<ReadOutcome> {
        loop {
            if self.filled >= 4 {
                let len = u32::from_be_bytes(self.buf[..4].try_into().unwrap()) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame length exceeds limit",
                    ));
                }
                let need = 4 + len;
                if self.filled >= need {
                    let payload = std::str::from_utf8(&self.buf[4..need])
                        .map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8")
                        })?
                        .to_string();
                    self.buf.copy_within(need..self.filled, 0);
                    self.filled -= need;
                    let value = Value::parse(&payload).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}"))
                    })?;
                    return Ok(ReadOutcome::Frame(value));
                }
                if self.buf.len() < need {
                    self.buf.resize(need, 0);
                }
            } else if self.buf.len() < 4096 {
                self.buf.resize(4096, 0);
            }
            match self.inner.read(&mut self.buf[self.filled..]) {
                Ok(0) => {
                    return if self.filled == 0 {
                        Ok(ReadOutcome::Eof)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(ReadOutcome::Idle);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A decode job: the same grid the in-process [`Sweep`] facade runs,
/// expressed as plain JSON. Every field has a default, so the minimal
/// submit frame is `{"type":"submit"}`.
///
/// Reproducibility contract: a job's streamed points are bit-identical to
/// building the equivalent [`Sweep`] (or per-cell
/// [`Experiment`](eraser_core::Experiment)) in-process with the same
/// `seed` — the server adds sharding and caching, never different
/// arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Code distances (default `[3]`).
    pub distances: Vec<usize>,
    /// Physical error rates (default `[1e-3]`).
    pub error_rates: Vec<f64>,
    /// Policy labels, e.g. `"eraser"`, `"no-lrc"` (default `["eraser"]`).
    pub policies: Vec<String>,
    /// Explicit rounds per shot; 0 defers to `cycles` (default 0).
    pub rounds: usize,
    /// Rounds as multiples of the distance; used when `rounds` is 0
    /// (default 1, the paper's `R = d` short-memory shape).
    pub cycles: usize,
    /// Monte-Carlo shots per cell (default 256).
    pub shots: u64,
    /// Root RNG seed (default `0x2023`, matching `RunConfig`).
    pub seed: u64,
    /// Memory basis, `"z"` or `"x"` (default `"z"`).
    pub basis: String,
    /// Decoder name: `"auto"`, `"mwpm"`, `"sparse-mwpm"`, `"union-find"`,
    /// `"greedy"` (default `"auto"`).
    pub decoder: String,
    /// Noise family: `"standard"`, `"without-leakage"`,
    /// `"exchange-transport"` (default `"standard"`).
    pub noise: String,
    /// Leakage-aware (erasure) decoding (default false).
    pub leakage_aware: bool,
    /// Imperfect-erasure-check false-positive rate (default 0).
    pub erasure_fp: f64,
    /// Imperfect-erasure-check false-negative rate (default 0).
    pub erasure_fn: f64,
    /// Sliding-window rounds; 0 = monolithic decoding (default 0).
    pub window: usize,
    /// Sliding-window stride; 0 derives `window − d` (default 0).
    pub stride: usize,
    /// Intra-shot fusion threads; 0 resolves `ERASER_FUSION`, else
    /// sequential windowed decoding (default 0). Values > 1 decode each
    /// shot's window chain in parallel, bit-identically.
    pub fusion: usize,
    /// Controller spec for adaptive policies, e.g. `"ewma:up=0.2"` or
    /// `"budget:quota=40"`; empty = each adaptive policy's embedded
    /// defaults (default empty; see
    /// [`ControllerConfig::parse_spec`](eraser_core::ControllerConfig)).
    pub control: String,
    /// Injected-leakage schedule, e.g. `"burst:start=5,len=2,period=10,rate=0.02"`;
    /// empty = stationary (default empty; see
    /// [`LeakageProfile::parse_spec`](eraser_core::LeakageProfile)).
    pub profile: String,
    /// Tiered predecode fast path: `"on"`, `"off"`, or empty to defer to
    /// the server's `ERASER_PREDECODE` environment (default empty).
    pub predecode: String,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            distances: vec![3],
            error_rates: vec![1e-3],
            policies: vec!["eraser".to_string()],
            rounds: 0,
            cycles: 1,
            shots: 256,
            seed: 0x2023,
            basis: "z".to_string(),
            decoder: "auto".to_string(),
            noise: "standard".to_string(),
            leakage_aware: false,
            erasure_fp: 0.0,
            erasure_fn: 0.0,
            window: 0,
            stride: 0,
            fusion: 0,
            control: String::new(),
            profile: String::new(),
            predecode: String::new(),
        }
    }
}

impl JobSpec {
    /// Serializes as a submit frame payload.
    pub fn to_frame(&self) -> Value {
        let mut v = Value::object();
        v.set("type", "submit");
        v.set(
            "distances",
            Value::Array(self.distances.iter().map(|&d| Value::from(d)).collect()),
        );
        v.set(
            "error_rates",
            Value::Array(self.error_rates.iter().map(|&p| Value::from(p)).collect()),
        );
        v.set(
            "policies",
            Value::Array(
                self.policies
                    .iter()
                    .map(|p| Value::from(p.as_str()))
                    .collect(),
            ),
        );
        v.set("rounds", self.rounds);
        v.set("cycles", self.cycles);
        v.set("shots", self.shots);
        v.set("seed", self.seed);
        v.set("basis", self.basis.as_str());
        v.set("decoder", self.decoder.as_str());
        v.set("noise", self.noise.as_str());
        v.set("leakage_aware", self.leakage_aware);
        v.set("erasure_fp", self.erasure_fp);
        v.set("erasure_fn", self.erasure_fn);
        v.set("window", self.window);
        v.set("stride", self.stride);
        v.set("fusion", self.fusion);
        v.set("control", self.control.as_str());
        v.set("profile", self.profile.as_str());
        v.set("predecode", self.predecode.as_str());
        v
    }

    /// Parses a submit frame. Unknown fields are ignored (forward
    /// compatibility); present fields must have the right shape.
    pub fn from_frame(v: &Value) -> Result<JobSpec, String> {
        let mut spec = JobSpec::default();
        if let Some(field) = v.get("distances") {
            spec.distances = field
                .as_array()
                .ok_or("distances must be an array")?
                .iter()
                .map(|d| d.as_u64().map(|d| d as usize))
                .collect::<Option<Vec<_>>>()
                .ok_or("distances must hold non-negative integers")?;
        }
        if let Some(field) = v.get("error_rates") {
            spec.error_rates = field
                .as_array()
                .ok_or("error_rates must be an array")?
                .iter()
                .map(|p| p.as_f64())
                .collect::<Option<Vec<_>>>()
                .ok_or("error_rates must hold numbers")?;
        }
        if let Some(field) = v.get("policies") {
            spec.policies = field
                .as_array()
                .ok_or("policies must be an array")?
                .iter()
                .map(|p| p.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .ok_or("policies must hold strings")?;
        }
        read_usize(v, "rounds", &mut spec.rounds)?;
        read_usize(v, "cycles", &mut spec.cycles)?;
        if let Some(field) = v.get("shots") {
            spec.shots = field
                .as_u64()
                .ok_or("shots must be a non-negative integer")?;
        }
        if let Some(field) = v.get("seed") {
            spec.seed = field
                .as_u64()
                .ok_or("seed must be a non-negative integer")?;
        }
        read_string(v, "basis", &mut spec.basis)?;
        read_string(v, "decoder", &mut spec.decoder)?;
        read_string(v, "noise", &mut spec.noise)?;
        if let Some(field) = v.get("leakage_aware") {
            spec.leakage_aware = field.as_bool().ok_or("leakage_aware must be a boolean")?;
        }
        read_f64(v, "erasure_fp", &mut spec.erasure_fp)?;
        read_f64(v, "erasure_fn", &mut spec.erasure_fn)?;
        read_usize(v, "window", &mut spec.window)?;
        read_usize(v, "stride", &mut spec.stride)?;
        read_usize(v, "fusion", &mut spec.fusion)?;
        read_string(v, "control", &mut spec.control)?;
        read_string(v, "profile", &mut spec.profile)?;
        read_string(v, "predecode", &mut spec.predecode)?;
        Ok(spec)
    }

    /// Validates through the `Sweep` facade and returns the runnable grid.
    /// `threads` is the server's worker-pool width (shots shard across it).
    pub fn build_sweep(&self, threads: usize) -> Result<Sweep, String> {
        let noise = match self.noise.as_str() {
            "standard" => NoiseModel::Standard,
            "without-leakage" => NoiseModel::WithoutLeakage,
            "exchange-transport" => NoiseModel::ExchangeTransport,
            other => return Err(format!("unknown noise family `{other}`")),
        };
        let basis = match self.basis.as_str() {
            "z" | "Z" => surface_code::MemoryBasis::Z,
            "x" | "X" => surface_code::MemoryBasis::X,
            other => return Err(format!("unknown basis `{other}` (expected \"z\" or \"x\")")),
        };
        let policies = self
            .policies
            .iter()
            .map(|p| p.parse())
            .collect::<Result<Vec<_>, ExperimentError>>()
            .map_err(|e| e.to_string())?;
        let decoder = self
            .decoder
            .parse()
            .map_err(|e: ExperimentError| e.to_string())?;
        let mut builder = Sweep::builder()
            .distances(self.distances.iter().copied())
            .error_rates(self.error_rates.iter().copied())
            .noise_model(noise)
            .basis(basis)
            .shots(self.shots)
            .seed(self.seed)
            .threads(threads)
            .decoder(decoder)
            .leakage_aware_decoding(self.leakage_aware)
            .erasure_detection(self.erasure_fp, self.erasure_fn)
            .window_rounds(self.window)
            .window_stride(self.stride)
            .fusion_threads(self.fusion);
        if !self.control.trim().is_empty() {
            let config = ControllerConfig::parse_spec(self.control.trim())
                .map_err(|reason| format!("invalid control spec: {reason}"))?;
            builder = builder.controller(config);
        }
        if !self.profile.trim().is_empty() {
            let profile = LeakageProfile::parse_spec(self.profile.trim())
                .map_err(|reason| format!("invalid leakage profile: {reason}"))?;
            builder = builder.leakage_profile(profile);
        }
        match self.predecode.trim() {
            "" => {}
            "on" => builder = builder.predecode(true),
            "off" => builder = builder.predecode(false),
            other => {
                return Err(format!(
                    "invalid predecode `{other}` (expected \"on\" or \"off\")"
                ));
            }
        }
        for kind in policies {
            builder = builder.policy(kind);
        }
        builder = if self.rounds > 0 {
            builder.rounds(self.rounds)
        } else {
            builder.cycles(self.cycles)
        };
        builder.build().map_err(|e| e.to_string())
    }
}

fn read_usize(v: &Value, key: &str, out: &mut usize) -> Result<(), String> {
    if let Some(field) = v.get(key) {
        *out = field
            .as_u64()
            .map(|x| x as usize)
            .ok_or_else(|| format!("{key} must be a non-negative integer"))?;
    }
    Ok(())
}

fn read_f64(v: &Value, key: &str, out: &mut f64) -> Result<(), String> {
    if let Some(field) = v.get(key) {
        *out = field
            .as_f64()
            .ok_or_else(|| format!("{key} must be a number"))?;
    }
    Ok(())
}

fn read_string(v: &Value, key: &str, out: &mut String) -> Result<(), String> {
    if let Some(field) = v.get(key) {
        *out = field
            .as_str()
            .ok_or_else(|| format!("{key} must be a string"))?
            .to_string();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let spec = JobSpec {
            distances: vec![3, 5, 7],
            seed: u64::MAX - 1,
            policies: vec!["no-lrc".into(), "eraser".into()],
            window: 9,
            stride: 4,
            fusion: 2,
            predecode: "off".into(),
            ..JobSpec::default()
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &spec.to_frame()).unwrap();
        write_frame(&mut wire, &Value::parse(r#"{"type":"ping"}"#).unwrap()).unwrap();

        let mut reader = FrameReader::new(&wire[..]);
        let first = match reader.read().unwrap() {
            ReadOutcome::Frame(v) => v,
            other => panic!("expected frame, got {other:?}"),
        };
        assert_eq!(JobSpec::from_frame(&first).unwrap(), spec);
        assert!(matches!(reader.read().unwrap(), ReadOutcome::Frame(_)));
        assert!(matches!(reader.read().unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn reader_handles_split_frames() {
        // Feed the frame one byte at a time through a reader that returns
        // WouldBlock between bytes — the timeout path.
        struct Trickle {
            data: Vec<u8>,
            pos: usize,
            ready: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                if !self.ready {
                    self.ready = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
                }
                self.ready = false;
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, &JobSpec::default().to_frame()).unwrap();
        let total = wire.len();
        let mut reader = FrameReader::new(Trickle {
            data: wire,
            pos: 0,
            ready: false,
        });
        let mut idles = 0;
        loop {
            match reader.read().unwrap() {
                ReadOutcome::Frame(v) => {
                    assert_eq!(v.get("type").unwrap().as_str(), Some("submit"));
                    break;
                }
                ReadOutcome::Idle => idles += 1,
                ReadOutcome::Eof => panic!("hit EOF before the frame completed"),
            }
        }
        assert_eq!(idles, total, "one WouldBlock per delivered byte");
    }

    #[test]
    fn reader_rejects_oversized_and_truncated_frames() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut reader = FrameReader::new(&wire[..]);
        assert!(reader.read().is_err(), "oversized length prefix");

        let mut wire = Vec::new();
        write_frame(&mut wire, &Value::parse("{}").unwrap()).unwrap();
        wire.pop();
        let mut reader = FrameReader::new(&wire[..]);
        let err = reader.read().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn job_spec_validates_through_the_facade() {
        let spec = JobSpec::default();
        let sweep = spec.build_sweep(1).unwrap();
        assert_eq!(sweep.len(), 1);

        let bad = JobSpec {
            policies: vec!["definitely-not-a-policy".into()],
            ..JobSpec::default()
        };
        assert!(bad.build_sweep(1).unwrap_err().contains("unknown policy"));

        let bad = JobSpec {
            noise: "thermal".into(),
            ..JobSpec::default()
        };
        assert!(bad.build_sweep(1).unwrap_err().contains("noise"));

        let bad = JobSpec {
            shots: 0,
            ..JobSpec::default()
        };
        assert!(bad.build_sweep(1).is_err());

        let good = JobSpec {
            predecode: " on ".into(),
            ..JobSpec::default()
        };
        assert_eq!(good.build_sweep(1).unwrap().len(), 1);

        let bad = JobSpec {
            predecode: "yes".into(),
            ..JobSpec::default()
        };
        let err = bad.build_sweep(1).unwrap_err();
        assert!(err.contains("predecode"), "{err}");
    }

    #[test]
    fn adaptive_jobs_round_trip_and_validate() {
        let spec = JobSpec {
            policies: vec!["adaptive-ewma".into(), "adaptive-budget".into()],
            control: "budget:quota=12,base=eraser".into(),
            profile: "burst:start=5,len=2,period=10,rate=0.02".into(),
            ..JobSpec::default()
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &spec.to_frame()).unwrap();
        let mut reader = FrameReader::new(&wire[..]);
        let frame = match reader.read().unwrap() {
            ReadOutcome::Frame(v) => v,
            other => panic!("expected frame, got {other:?}"),
        };
        assert_eq!(JobSpec::from_frame(&frame).unwrap(), spec);
        let sweep = spec.build_sweep(1).unwrap();
        assert_eq!(sweep.len(), 2);

        let bad = JobSpec {
            control: "pid:kp=0.3".into(),
            ..JobSpec::default()
        };
        let err = bad.build_sweep(1).unwrap_err();
        assert!(err.contains("invalid control spec"), "{err}");

        let bad = JobSpec {
            profile: "burst:rate=7".into(),
            ..JobSpec::default()
        };
        let err = bad.build_sweep(1).unwrap_err();
        assert!(err.contains("invalid leakage profile"), "{err}");
    }

    #[test]
    fn malformed_submit_fields_are_rejected() {
        for (raw, needle) in [
            (r#"{"type":"submit","distances":3}"#, "array"),
            (r#"{"type":"submit","shots":-4}"#, "shots"),
            (r#"{"type":"submit","policies":[7]}"#, "strings"),
            (r#"{"type":"submit","basis":3}"#, "basis"),
        ] {
            let v = Value::parse(raw).unwrap();
            let err = JobSpec::from_frame(&v).unwrap_err();
            assert!(err.contains(needle), "{raw} -> {err}");
        }
    }
}
