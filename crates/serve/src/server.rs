//! The `eraser-serve` server: accept loop, bounded job queue, executor.
//!
//! Threading model:
//!
//! * one **accept thread** spawns a connection thread per client;
//! * each **connection thread** parses frames, enqueues jobs, and streams
//!   that job's result frames back to its own client;
//! * one **executor thread** pops jobs in FIFO order and runs them
//!   *sequentially* through [`Sweep::try_for_each_cached`] — each job then
//!   shards its shots across the worker pool internally (`threads =
//!   workers`). Sequential jobs keep per-job latency deterministic and let
//!   one job use the whole pool; concurrency across clients comes from
//!   pipelining (queue depth), which is what a decoding service wants
//!   under heavy traffic.
//!
//! Backpressure: the queue is bounded; a submit that finds it full gets an
//! immediate `busy` frame (never a hang, never an unbounded buffer).
//!
//! Shutdown: a `shutdown` frame (or [`ServerHandle::shutdown`]) sets the
//! flag, wakes the accept loop with a self-connection, and the executor
//! *drains* every already-accepted job before exiting — accepted work is
//! never dropped. Connection threads poll the flag via 100 ms read
//! timeouts between frames.

use crate::protocol::{
    write_frame, FrameReader, JobSpec, ReadOutcome, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use eraser_core::{ArtifactCache, Sweep, SweepPoint};
use eraser_json::Value;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often idle connection threads wake to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads each job's shots shard across; 0 = all cores.
    pub workers: usize,
    /// Bounded job-queue depth; submits beyond it get `busy`.
    pub queue_capacity: usize,
    /// Artifact-cache budget in bytes.
    pub cache_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_bytes: 256 << 20,
        }
    }
}

struct QueuedJob {
    id: u64,
    sweep: Sweep,
    cells: usize,
    reply: mpsc::Sender<Value>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<QueuedJob>,
}

#[derive(Default)]
struct Counters {
    jobs_done: u64,
    points_streamed: u64,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals the executor: a job arrived or shutdown began.
    work: Condvar,
    cache: ArtifactCache,
    workers: usize,
    queue_capacity: usize,
    counters: Mutex<Counters>,
    shutdown: AtomicBool,
    next_job_id: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.work.notify_all();
        // Unblock the accept loop; the no-op connection is dropped
        // immediately and the loop re-checks the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown`] (or send a `shutdown` frame) and then
/// [`ServerHandle::wait`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    executor: JoinHandle<()>,
}

impl ServerHandle {
    /// Binds `config.addr` and spawns the accept + executor threads.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(
            config
                .addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "bad address"))?,
        )?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            cache: ArtifactCache::new(config.cache_bytes),
            workers,
            queue_capacity: config.queue_capacity.max(1),
            counters: Mutex::new(Counters::default()),
            shutdown: AtomicBool::new(false),
            next_job_id: AtomicU64::new(1),
            addr,
        });

        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || executor_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        Ok(ServerHandle {
            shared,
            accept,
            executor,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates graceful shutdown: stop accepting, drain accepted jobs.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the accept loop and executor have exited (i.e. after
    /// [`ServerHandle::shutdown`] or a client's `shutdown` frame).
    pub fn wait(self) {
        let _ = self.accept.join();
        let _ = self.executor.join();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                connections.push(std::thread::spawn(move || {
                    // Connection errors (abrupt disconnects, bad frames)
                    // only ever affect that client.
                    let _ = handle_connection(stream, &shared);
                }));
            }
            Err(_) => continue,
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        let before = shared.cache.stats();
        let start = Instant::now();
        let mut cells_run = 0usize;
        let completed = job.sweep.try_for_each_cached(&shared.cache, |point| {
            cells_run += 1;
            // A failed send means the client vanished; abandon the rest of
            // the grid rather than burning the pool on unwanted work.
            job.reply.send(point_frame(job.id, &point)).is_ok()
        });
        let after = shared.cache.stats();
        let micros = start.elapsed().as_micros() as u64;
        {
            let mut counters = shared.counters.lock().unwrap();
            counters.jobs_done += 1;
            counters.points_streamed += cells_run as u64;
        }
        let mut done = Value::object();
        done.set("type", "done");
        done.set("job", job.id);
        done.set("cells", job.cells);
        done.set("cells_run", cells_run);
        done.set("completed", completed);
        done.set("micros", micros);
        done.set("cache_hits", after.hits - before.hits);
        done.set("cache_misses", after.misses - before.misses);
        let _ = job.reply.send(done);
    }
}

/// Renders one sweep cell as a `point` frame. Integer statistics ride as
/// exact integers and f64 metrics use shortest-round-trip formatting, so a
/// client parsing the frame recovers the in-process values bit-for-bit.
fn point_frame(job: u64, point: &SweepPoint) -> Value {
    let r = &point.result;
    let mut v = Value::object();
    v.set("type", "point");
    v.set("job", job);
    v.set("distance", point.distance);
    v.set("p", point.p);
    v.set("rounds", point.rounds);
    v.set("policy", point.policy.as_str());
    v.set("decoder", r.decoder.as_str());
    v.set("shots", r.shots);
    v.set("logical_errors", r.logical_errors);
    v.set("ler", r.ler());
    v.set("total_lrcs", r.total_lrcs);
    v.set("total_erasures", r.total_erasures);
    v.set("spec_tp", r.speculation.true_positive);
    v.set("spec_fp", r.speculation.false_positive);
    v.set("spec_fn", r.speculation.false_negative);
    v.set("spec_tn", r.speculation.true_negative);
    v.set("spec_accuracy", r.speculation.accuracy());
    if r.controller.is_active() {
        v.set("ctrl_escalations", r.controller.escalations);
        v.set("ctrl_rounds_escalated", r.controller.rounds_escalated);
        v.set("ctrl_rounds_base", r.controller.rounds_base);
        v.set("ctrl_mean_estimate", r.controller.mean_estimate());
        v.set("ctrl_peak_estimate", r.controller.peak_estimate());
    }
    if r.predecode.is_active() {
        v.set("predecode_tier0", r.predecode.hits[0]);
        v.set("predecode_tier1", r.predecode.hits[1]);
        v.set("predecode_tier2", r.predecode.hits[2]);
        v.set("predecode_tier1_nanos", r.predecode.nanos[1]);
        v.set("predecode_tier2_nanos", r.predecode.nanos[2]);
    }
    v.set("flagged_shots", r.postselection.flagged_shots);
    v.set("errors_on_kept", r.postselection.errors_on_kept);
    v.set(
        "lpr_total",
        Value::Array(r.lpr_total.iter().map(|&x| Value::from(x)).collect()),
    );
    v
}

fn stats_frame(shared: &Shared) -> Value {
    let cache = shared.cache.stats();
    let counters = shared.counters.lock().unwrap();
    let queued = shared.state.lock().unwrap().jobs.len();
    let mut v = Value::object();
    v.set("type", "stats");
    v.set("jobs_done", counters.jobs_done);
    v.set("points_streamed", counters.points_streamed);
    v.set("queued", queued);
    v.set("workers", shared.workers);
    v.set("cache_hits", cache.hits);
    v.set("cache_misses", cache.misses);
    v.set("cache_evictions", cache.evictions);
    v.set("cache_entries", cache.entries);
    v.set("cache_bytes", cache.bytes);
    v
}

fn error_frame(message: &str) -> Value {
    let mut v = Value::object();
    v.set("type", "error");
    v.set("message", message);
    v
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = FrameReader::new(stream);
    loop {
        let frame = match reader.read()? {
            ReadOutcome::Frame(frame) => frame,
            ReadOutcome::Idle => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            ReadOutcome::Eof => return Ok(()),
        };
        let kind = frame.get("type").and_then(|t| t.as_str()).unwrap_or("");
        match kind {
            "ping" => {
                let mut pong = Value::object();
                pong.set("type", "pong");
                pong.set("version", PROTOCOL_VERSION);
                pong.set("workers", shared.workers);
                pong.set("queue_capacity", shared.queue_capacity);
                pong.set("max_frame_bytes", MAX_FRAME_BYTES);
                write_frame(&mut writer, &pong)?;
            }
            "stats" => write_frame(&mut writer, &stats_frame(shared))?,
            "shutdown" => {
                let mut bye = Value::object();
                bye.set("type", "bye");
                write_frame(&mut writer, &bye)?;
                shared.begin_shutdown();
                return Ok(());
            }
            "submit" => handle_submit(&frame, &mut writer, shared)?,
            other => {
                write_frame(
                    &mut writer,
                    &error_frame(&format!("unknown frame type `{other}`")),
                )?;
            }
        }
    }
}

fn handle_submit(frame: &Value, writer: &mut TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return write_frame(writer, &error_frame("server is shutting down"));
    }
    let spec = match JobSpec::from_frame(frame) {
        Ok(spec) => spec,
        Err(message) => return write_frame(writer, &error_frame(&message)),
    };
    // Validation happens through the Sweep facade *before* the job can
    // occupy a queue slot, so malformed jobs cost the executor nothing.
    let sweep = match spec.build_sweep(shared.workers) {
        Ok(sweep) => sweep,
        Err(message) => return write_frame(writer, &error_frame(&message)),
    };
    let cells = sweep.len();
    let (tx, rx) = mpsc::channel();
    let id = {
        let mut state = shared.state.lock().unwrap();
        if shared.shutdown.load(Ordering::SeqCst) {
            drop(state);
            return write_frame(writer, &error_frame("server is shutting down"));
        }
        if state.jobs.len() >= shared.queue_capacity {
            let queued = state.jobs.len();
            drop(state);
            let mut busy = Value::object();
            busy.set("type", "busy");
            busy.set("queued", queued);
            busy.set("capacity", shared.queue_capacity);
            return write_frame(writer, &busy);
        }
        let id = shared.next_job_id.fetch_add(1, Ordering::SeqCst);
        state.jobs.push_back(QueuedJob {
            id,
            sweep,
            cells,
            reply: tx,
        });
        id
    };
    shared.work.notify_one();

    let mut accepted = Value::object();
    accepted.set("type", "accepted");
    accepted.set("job", id);
    accepted.set("cells", cells);
    write_frame(writer, &accepted)?;

    // Stream this job's frames until `done`. The executor drains every
    // accepted job even during shutdown, so `recv` always terminates; a
    // write failure means the client vanished and dropping `rx` tells the
    // executor to abandon the remaining cells.
    loop {
        let frame = match rx.recv() {
            Ok(frame) => frame,
            Err(_) => return Ok(()),
        };
        let is_done = frame.get("type").and_then(|t| t.as_str()) == Some("done");
        write_frame(writer, &frame)?;
        if is_done {
            return Ok(());
        }
    }
}
