//! CLI entry point: `eraser-serve [OPTIONS]` runs the server;
//! `eraser-serve loadgen [OPTIONS]` drives one.

use eraser_serve::loadgen::{self, LoadgenOptions};
use eraser_serve::server::{ServerConfig, ServerHandle};
use std::process::ExitCode;

const USAGE: &str = "\
eraser-serve: decoding-as-a-service for the ERASER reproduction

USAGE:
  eraser-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache-mb N]
  eraser-serve loadgen [--addr HOST:PORT] [--quick] [--connections N]
                       [--jobs N] [--json PATH] [--shutdown]

SERVER OPTIONS:
  --addr HOST:PORT   bind address (default 127.0.0.1:7171; port 0 = any)
  --workers N        worker threads per job (default: all cores)
  --queue N          job-queue depth before `busy` rejects (default 64)
  --cache-mb N       artifact-cache budget in MiB (default 256)

LOADGEN OPTIONS:
  --addr HOST:PORT   server to drive (default 127.0.0.1:7171)
  --quick            CI-sized run
  --connections N    concurrent clients in the throughput phase
  --jobs N           jobs per connection
  --json PATH        write the benchmark report JSON
  --shutdown         send a shutdown frame when done
";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
    flag: &str,
) -> Result<T, String> {
    let raw = args.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag} got unparsable value {raw:?}"))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let loadgen_mode = args.first().map(String::as_str) == Some("loadgen");
    if loadgen_mode {
        args.remove(0);
    }
    let mut args = args.into_iter().peekable();

    if loadgen_mode {
        let mut options = LoadgenOptions::default();
        while let Some(arg) = args.next() {
            let result = match arg.as_str() {
                "--addr" => parse_flag(&mut args, "--addr").map(|v| options.addr = v),
                "--quick" => {
                    options.quick = true;
                    Ok(())
                }
                "--connections" => {
                    parse_flag(&mut args, "--connections").map(|v| options.connections = v)
                }
                "--jobs" => parse_flag(&mut args, "--jobs").map(|v| options.jobs = v),
                "--json" => parse_flag(&mut args, "--json").map(|v| options.json = Some(v)),
                "--shutdown" => {
                    options.shutdown = true;
                    Ok(())
                }
                "--help" | "-h" => {
                    println!("{USAGE}");
                    return ExitCode::SUCCESS;
                }
                other => Err(format!("unknown loadgen option {other:?}")),
            };
            if let Err(message) = result {
                return usage_error(&message);
            }
        }
        return match loadgen::run(&options) {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("loadgen failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut config = ServerConfig::default();
    while let Some(arg) = args.next() {
        let result = match arg.as_str() {
            "--addr" => parse_flag(&mut args, "--addr").map(|v| config.addr = v),
            "--workers" => parse_flag(&mut args, "--workers").map(|v| config.workers = v),
            "--queue" => parse_flag(&mut args, "--queue").map(|v| config.queue_capacity = v),
            "--cache-mb" => {
                parse_flag(&mut args, "--cache-mb").map(|mb: usize| config.cache_bytes = mb << 20)
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown option {other:?}")),
        };
        if let Err(message) = result {
            return usage_error(&message);
        }
    }

    let server = match ServerHandle::start(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to start server on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "eraser-serve listening on {} (queue {}, cache {} MiB)",
        server.addr(),
        config.queue_capacity,
        config.cache_bytes >> 20
    );
    // Runs until a client sends a shutdown frame; the handle then drains
    // accepted jobs and both loops exit, giving a clean exit code 0.
    server.wait();
    println!("eraser-serve drained and stopped");
    ExitCode::SUCCESS
}
