//! `eraser-serve loadgen`: drives a running server and measures it.
//!
//! Three phases:
//!
//! 1. **Cold/warm probe** — one d=7 sweep job is submitted twice. The
//!    first submission pays the artifact builds (DEM + graph, APSP); the
//!    second hits the process-wide cache. The physical error rate carries
//!    a tiny per-invocation jitter (~1e-9 absolute, physically
//!    meaningless) so the probe's cache key is unique and "cold" stays
//!    honest even against a server that has run before.
//! 2. **Throughput** — `connections` clients each submit `jobs` small
//!    jobs back-to-back over a shared grid of (d, p) cells, measuring
//!    per-job latency client-side. `busy` rejects are counted and
//!    retried after a short backoff.
//! 3. **Stats** — the server's cache counters yield the hit rate.
//!
//! With `--json PATH` the report is written via `eraser_json` in the
//! `results/BENCH_*.json` house style; `--quick` shrinks everything for
//! CI smoke use. Any malformed or inconsistent streamed frame is a hard
//! error — the smoke leg doubles as a protocol conformance check.

use crate::client::{Client, JobEvent, Submission};
use crate::protocol::JobSpec;
use eraser_json::Value;
use std::io;
use std::time::{Duration, Instant, SystemTime};

/// Loadgen options (parsed from the CLI in `main.rs`).
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address.
    pub addr: String,
    /// Shrink every knob for a CI smoke run.
    pub quick: bool,
    /// Concurrent connections in the throughput phase (0 = default).
    pub connections: usize,
    /// Jobs per connection in the throughput phase (0 = default).
    pub jobs: usize,
    /// Write the report JSON here.
    pub json: Option<String>,
    /// Send a shutdown frame when done (the CI leg's clean-exit check).
    pub shutdown: bool,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: "127.0.0.1:7171".to_string(),
            quick: false,
            connections: 0,
            jobs: 0,
            json: None,
            shutdown: false,
        }
    }
}

/// The measured report, mirrored into the JSON output.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    pub quick: bool,
    pub connections: usize,
    pub total_jobs: usize,
    pub jobs_per_sec: f64,
    pub p50_job_micros: f64,
    pub p99_job_micros: f64,
    pub busy_rejects: u64,
    pub cache_hit_rate: f64,
    pub cold_job_micros: f64,
    pub warm_job_micros: f64,
    pub warm_speedup: f64,
}

fn fail(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Validates one streamed `point` frame against its job spec. This is the
/// "streamed results parse" assertion of the CI smoke leg: every field
/// the protocol promises is present, typed, and self-consistent.
fn check_point(point: &Value, spec: &JobSpec) -> io::Result<()> {
    let shots = point
        .get("shots")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| fail("point lacks integer `shots`".into()))?;
    if shots != spec.shots {
        return Err(fail(format!(
            "point shots {shots} != submitted {}",
            spec.shots
        )));
    }
    let errors = point
        .get("logical_errors")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| fail("point lacks integer `logical_errors`".into()))?;
    if errors > shots {
        return Err(fail(format!(
            "{errors} logical errors out of {shots} shots"
        )));
    }
    let ler = point
        .get("ler")
        .and_then(|v| v.as_f64())
        .ok_or_else(|| fail("point lacks numeric `ler`".into()))?;
    if !(0.0..=1.0).contains(&ler) {
        return Err(fail(format!("ler {ler} outside [0, 1]")));
    }
    let d = point
        .get("distance")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| fail("point lacks integer `distance`".into()))?;
    if !spec.distances.contains(&(d as usize)) {
        return Err(fail(format!(
            "point distance {d} not in the submitted grid"
        )));
    }
    for key in ["policy", "decoder"] {
        if point.get(key).and_then(|v| v.as_str()).is_none() {
            return Err(fail(format!("point lacks string `{key}`")));
        }
    }
    Ok(())
}

/// Runs a job to completion, validating every streamed frame; returns
/// (client-measured latency µs, done frame). Retries `busy` with backoff.
fn run_checked(
    client: &mut Client,
    spec: &JobSpec,
    busy_rejects: &mut u64,
) -> io::Result<(f64, Value)> {
    loop {
        let start = Instant::now();
        match client.submit(spec)? {
            Submission::Accepted { job, cells } => {
                let mut points = 0u64;
                loop {
                    match client.next_event()? {
                        JobEvent::Point(point) => {
                            check_point(&point, spec)?;
                            let pj = point.get("job").and_then(|v| v.as_u64());
                            if pj != Some(job) {
                                return Err(fail(format!(
                                    "point for job {pj:?} on job {job}'s stream"
                                )));
                            }
                            points += 1;
                        }
                        JobEvent::Done(done) => {
                            let micros = start.elapsed().as_micros() as f64;
                            if points != cells {
                                return Err(fail(format!(
                                    "streamed {points} points, accepted promised {cells}"
                                )));
                            }
                            let run = done.get("cells_run").and_then(|v| v.as_u64());
                            if run != Some(points) {
                                return Err(fail(format!(
                                    "done reports cells_run {run:?}, client saw {points}"
                                )));
                            }
                            return Ok((micros, done));
                        }
                    }
                }
            }
            Submission::Busy { .. } => {
                *busy_rejects += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            Submission::Rejected { message } => {
                return Err(fail(format!("job rejected: {message}")))
            }
        }
    }
}

/// The d=7 cold/warm reference job: heavy enough that artifact builds
/// dominate a cold run (DEM + decoding graph + APSP at R=21), light
/// enough in shots that a warm run is artifact-free almost entirely.
fn reference_spec(quick: bool) -> JobSpec {
    // Sub-nanodecade jitter keeps the physics identical to 1e-3 for every
    // practical purpose while making the cache key unique per invocation.
    let jitter = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() % 997)
        .unwrap_or(0) as f64
        * 1e-12;
    JobSpec {
        distances: vec![7],
        error_rates: vec![1e-3 + jitter],
        policies: vec!["eraser".to_string()],
        cycles: 3,
        shots: if quick { 24 } else { 64 },
        decoder: "mwpm".to_string(),
        ..JobSpec::default()
    }
}

/// The throughput phase's job mix: small distinct cells so the cache
/// warms quickly and stays hot, as a service's steady state would.
fn throughput_spec(index: usize, quick: bool) -> JobSpec {
    let rates = [1e-3, 2e-3, 3e-3];
    JobSpec {
        distances: vec![if quick { 3 } else { 3 + 2 * (index % 2) }],
        error_rates: vec![rates[index % rates.len()]],
        policies: vec!["eraser".to_string()],
        rounds: 6,
        cycles: 0,
        shots: if quick { 32 } else { 128 },
        seed: 0x2023 + index as u64,
        ..JobSpec::default()
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the full loadgen sequence. Returns the report; any protocol
/// violation or I/O failure is an error (nonzero exit in `main`).
pub fn run(options: &LoadgenOptions) -> io::Result<LoadgenReport> {
    let connections = match (options.connections, options.quick) {
        (0, true) => 2,
        (0, false) => 4,
        (n, _) => n,
    };
    let jobs_per_conn = match (options.jobs, options.quick) {
        (0, true) => 4,
        (0, false) => 16,
        (n, _) => n,
    };

    let mut control = Client::connect(&options.addr)?;
    let pong = control.ping()?;
    if pong.get("type").and_then(|v| v.as_str()) != Some("pong") {
        return Err(fail("ping did not pong".into()));
    }
    println!(
        "connected to {} (protocol v{}, {} workers)",
        options.addr,
        pong.get("version").and_then(|v| v.as_u64()).unwrap_or(0),
        pong.get("workers").and_then(|v| v.as_u64()).unwrap_or(0),
    );

    // Phase 1: cold/warm probe.
    let mut busy_rejects = 0u64;
    let probe = reference_spec(options.quick);
    let (cold_job_micros, cold_done) = run_checked(&mut control, &probe, &mut busy_rejects)?;
    let cold_misses = cold_done
        .get("cache_misses")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if cold_misses == 0 {
        return Err(fail(
            "cold probe hit the cache — jittered key collision?".into(),
        ));
    }
    let (warm_job_micros, warm_done) = run_checked(&mut control, &probe, &mut busy_rejects)?;
    let warm_misses = warm_done
        .get("cache_misses")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let warm_hits = warm_done
        .get("cache_hits")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    if warm_misses != 0 || warm_hits == 0 {
        return Err(fail(format!(
            "warm probe expected pure cache hits, got {warm_hits} hits / {warm_misses} misses"
        )));
    }
    let warm_speedup = cold_job_micros / warm_job_micros.max(1.0);
    println!(
        "cold/warm d=7 probe: {:.1} ms cold, {:.1} ms warm ({:.1}x)",
        cold_job_micros / 1e3,
        warm_job_micros / 1e3,
        warm_speedup
    );

    // Phase 2: throughput.
    let quick = options.quick;
    let addr = options.addr.clone();
    let started = Instant::now();
    let results: Vec<io::Result<(Vec<f64>, u64)>> = std::thread::scope(|scope| {
        (0..connections)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr)?;
                    let mut latencies = Vec::with_capacity(jobs_per_conn);
                    let mut busy = 0u64;
                    for j in 0..jobs_per_conn {
                        let spec = throughput_spec(c * jobs_per_conn + j, quick);
                        let (micros, _) = run_checked(&mut client, &spec, &mut busy)?;
                        latencies.push(micros);
                    }
                    Ok((latencies, busy))
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("loadgen worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    for result in results {
        let (lats, busy) = result?;
        latencies.extend(lats);
        busy_rejects += busy;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_jobs = latencies.len();
    let jobs_per_sec = total_jobs as f64 / elapsed.max(1e-9);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    // Phase 3: server-side counters.
    let stats = control.stats()?;
    let hits = stats
        .get("cache_hits")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let misses = stats
        .get("cache_misses")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let cache_hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);

    if options.shutdown {
        let bye = control.shutdown()?;
        if bye.get("type").and_then(|v| v.as_str()) != Some("bye") {
            return Err(fail("shutdown was not acknowledged with `bye`".into()));
        }
        println!("server acknowledged shutdown");
    }

    let report = LoadgenReport {
        quick: options.quick,
        connections,
        total_jobs,
        jobs_per_sec,
        p50_job_micros: p50,
        p99_job_micros: p99,
        busy_rejects,
        cache_hit_rate,
        cold_job_micros,
        warm_job_micros,
        warm_speedup,
    };
    println!(
        "throughput: {total_jobs} jobs over {connections} connections, {jobs_per_sec:.1} jobs/s, p50 {:.1} ms, p99 {:.1} ms, cache hit rate {:.1}%, {busy_rejects} busy rejects",
        p50 / 1e3,
        p99 / 1e3,
        cache_hit_rate * 100.0
    );

    if let Some(path) = &options.json {
        std::fs::write(path, report_json(&report).to_pretty())?;
        println!("wrote {path}");
    }
    Ok(report)
}

fn report_json(report: &LoadgenReport) -> Value {
    let mut serve = Value::object();
    serve.set("quick", report.quick);
    serve.set("connections", report.connections);
    serve.set("total_jobs", report.total_jobs);
    serve.set("jobs_per_sec", report.jobs_per_sec);
    serve.set("p50_job_micros", report.p50_job_micros);
    serve.set("p99_job_micros", report.p99_job_micros);
    serve.set("busy_rejects", report.busy_rejects);
    serve.set("cache_hit_rate", report.cache_hit_rate);
    serve.set("cold_job_micros", report.cold_job_micros);
    serve.set("warm_job_micros", report.warm_job_micros);
    serve.set("warm_speedup", report.warm_speedup);
    let mut root = Value::object();
    root.set("serve", serve);
    root
}
