//! `eraser-serve`: decoding-as-a-service for the ERASER reproduction.
//!
//! A long-running, std-only TCP server that accepts experiment/decode
//! jobs over a length-prefixed JSON frame protocol ([`protocol`]),
//! validates them through the `Experiment`/`Sweep` facade, runs them on a
//! worker pool, and streams each completed sweep cell back as it
//! finishes. Expensive per-physics artifacts — DEM builds, APSP tables,
//! union-find capacities, window plans — are shared across jobs and
//! clients through the process-wide [`eraser_core::ArtifactCache`], which
//! is what makes a warm server answer the same job several times faster
//! than a cold one (see `results/BENCH_serve.json`).
//!
//! Binary usage is documented in the README's "Serving" section; the
//! `loadgen` subcommand ([`loadgen`]) doubles as the benchmark harness
//! and CI smoke client.

pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, JobEvent, Submission};
pub use protocol::{FrameReader, JobSpec, ReadOutcome, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use server::{ServerConfig, ServerHandle};
