//! Blocking client for the `eraser-serve` protocol.

use crate::protocol::{write_frame, FrameReader, JobSpec, ReadOutcome};
use eraser_json::Value;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// What a submit attempt produced.
#[derive(Debug)]
pub enum Submission {
    /// The job sits in the queue; stream events with [`Client::next_event`].
    Accepted { job: u64, cells: u64 },
    /// Queue full — retry later. The explicit backpressure signal.
    Busy { queued: u64, capacity: u64 },
    /// The server rejected the job (validation, shutdown).
    Rejected { message: String },
}

/// One frame of a running job's stream.
#[derive(Debug)]
pub enum JobEvent {
    /// A completed sweep cell.
    Point(Value),
    /// The job finished; carries timing and cache counters.
    Done(Value),
}

/// A connected client. One in-flight job per connection (matching the
/// server's per-connection streaming); open more connections for
/// pipelining.
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects (blocking reads, no timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: FrameReader::new(stream),
            writer,
        })
    }

    fn recv(&mut self) -> io::Result<Value> {
        loop {
            match self.reader.read()? {
                ReadOutcome::Frame(v) => return Ok(v),
                ReadOutcome::Idle => continue,
                ReadOutcome::Eof => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
            }
        }
    }

    fn send(&mut self, value: &Value) -> io::Result<()> {
        write_frame(&mut self.writer, value)
    }

    /// Round-trips a ping; returns the `pong` frame.
    pub fn ping(&mut self) -> io::Result<Value> {
        let mut v = Value::object();
        v.set("type", "ping");
        self.send(&v)?;
        self.recv()
    }

    /// Fetches the server's `stats` frame.
    pub fn stats(&mut self) -> io::Result<Value> {
        let mut v = Value::object();
        v.set("type", "stats");
        self.send(&v)?;
        self.recv()
    }

    /// Requests graceful shutdown; returns once the `bye` ack arrives.
    pub fn shutdown(&mut self) -> io::Result<Value> {
        let mut v = Value::object();
        v.set("type", "shutdown");
        self.send(&v)?;
        self.recv()
    }

    /// Submits a job and reads the immediate response (accepted / busy /
    /// rejected).
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Submission> {
        self.send(&spec.to_frame())?;
        let reply = self.recv()?;
        match reply.get("type").and_then(|t| t.as_str()) {
            Some("accepted") => Ok(Submission::Accepted {
                job: reply.get("job").and_then(|v| v.as_u64()).unwrap_or(0),
                cells: reply.get("cells").and_then(|v| v.as_u64()).unwrap_or(0),
            }),
            Some("busy") => Ok(Submission::Busy {
                queued: reply.get("queued").and_then(|v| v.as_u64()).unwrap_or(0),
                capacity: reply.get("capacity").and_then(|v| v.as_u64()).unwrap_or(0),
            }),
            Some("error") => Ok(Submission::Rejected {
                message: reply
                    .get("message")
                    .and_then(|v| v.as_str())
                    .unwrap_or("unspecified error")
                    .to_string(),
            }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected submit reply type {other:?}"),
            )),
        }
    }

    /// Next frame of the accepted job's stream.
    pub fn next_event(&mut self) -> io::Result<JobEvent> {
        let frame = self.recv()?;
        match frame.get("type").and_then(|t| t.as_str()) {
            Some("point") => Ok(JobEvent::Point(frame)),
            Some("done") => Ok(JobEvent::Done(frame)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected stream frame type {other:?}"),
            )),
        }
    }

    /// Convenience: submit, collect every point, return `(points, done)`.
    /// Busy/rejected submissions surface as `Err(WouldBlock/InvalidInput)`.
    pub fn run_job(&mut self, spec: &JobSpec) -> io::Result<(Vec<Value>, Value)> {
        match self.submit(spec)? {
            Submission::Accepted { .. } => {}
            Submission::Busy { .. } => {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "server busy"))
            }
            Submission::Rejected { message } => {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, message))
            }
        }
        let mut points = Vec::new();
        loop {
            match self.next_event()? {
                JobEvent::Point(p) => points.push(p),
                JobEvent::Done(done) => return Ok((points, done)),
            }
        }
    }
}
