//! Cross-validation of the Pauli-frame simulator against the exact tableau
//! simulator on real surface-code circuits.
//!
//! These tests are the correctness anchor of the whole reproduction: they
//! prove that (1) the generated memory-experiment circuits have deterministic
//! detectors and observable in the absence of noise — including rounds with
//! LRC swap circuits — and (2) the frame simulator's flip propagation agrees
//! with exact stabilizer simulation for arbitrary injected Pauli errors.

use leak_sim::{Discriminator, FrameSimulator, TableauSimulator};
use qec_core::{NoiseParams, Op, Pauli, Rng};
use surface_code::{LrcAssignment, MemoryExperiment, RotatedCode};

fn noiseless_experiment(d: usize, rounds: usize) -> MemoryExperiment {
    MemoryExperiment::new(
        RotatedCode::new(d),
        NoiseParams::without_leakage(0.0),
        rounds,
    )
}

/// Collects the ops of a full experiment with the given per-round LRC
/// schedule (cycled).
fn experiment_ops(exp: &MemoryExperiment, schedule: &[Vec<LrcAssignment>]) -> Vec<Op> {
    let mut ops = exp.init_segment();
    let builder = exp.round_builder();
    for r in 0..exp.rounds() {
        let lrcs: &[LrcAssignment] = if schedule.is_empty() {
            &[]
        } else {
            &schedule[r % schedule.len()]
        };
        let round = builder.round(r, lrcs, exp.keys());
        ops.extend(round.pre);
        ops.extend(round.measure);
        ops.extend(round.mr_reset);
        for tail in round.lrc_post {
            ops.extend(tail.swap_back);
        }
        ops.extend(round.post);
    }
    ops.extend(exp.final_segment());
    ops
}

fn tableau_outcomes(exp: &MemoryExperiment, ops: &[Op], seed: u64) -> Vec<bool> {
    let mut sim = TableauSimulator::new(exp.code().num_qubits(), seed);
    let mut outcomes: Vec<Option<bool>> = Vec::new();
    sim.run_circuit_ops(ops, &mut outcomes);
    assert_eq!(outcomes.len(), exp.keys().total());
    outcomes
        .into_iter()
        .map(|o| o.expect("key measured"))
        .collect()
}

fn parity(bits: &[bool], keys: &[usize]) -> bool {
    keys.iter().fold(false, |acc, &k| acc ^ bits[k])
}

#[test]
fn noiseless_base_circuit_has_deterministic_detectors() {
    for (d, rounds) in [(3usize, 3usize), (5, 4), (3, 1)] {
        let exp = noiseless_experiment(d, rounds);
        let ops = experiment_ops(&exp, &[]);
        for seed in 0..5 {
            let outcomes = tableau_outcomes(&exp, &ops, seed);
            for det in exp.detectors() {
                assert!(
                    !parity(&outcomes, &det.keys),
                    "detector {det:?} fired in a noiseless run (d={d}, rounds={rounds})"
                );
            }
            assert!(
                !parity(&outcomes, &exp.observable_keys()),
                "logical Z flipped in a noiseless run"
            );
        }
    }
}

#[test]
fn noiseless_lrc_rounds_are_logically_transparent() {
    // Schedule LRCs on alternating rounds and verify that detectors stay
    // deterministic: the swap-measure-swap-back sequence must read out the
    // same stabilizer values.
    let exp = noiseless_experiment(3, 4);
    let code = exp.code();
    // Three simultaneous LRCs on distinct stabilizers and data qubits.
    let mut used = std::collections::HashSet::new();
    let mut lrcs = Vec::new();
    for data in [0usize, 4, 8] {
        let stab = *code
            .adjacent_stabs(data)
            .iter()
            .find(|s| !used.contains(*s))
            .expect("free neighbour");
        used.insert(stab);
        lrcs.push(LrcAssignment { data, stab });
    }
    let schedule = vec![Vec::new(), lrcs];
    let ops = experiment_ops(&exp, &schedule);
    for seed in 0..5 {
        let outcomes = tableau_outcomes(&exp, &ops, seed);
        for det in exp.detectors() {
            assert!(
                !parity(&outcomes, &det.keys),
                "detector {det:?} fired in a noiseless LRC run"
            );
        }
        assert!(!parity(&outcomes, &exp.observable_keys()));
    }
}

#[test]
fn noiseless_memory_x_experiment_is_deterministic() {
    // The |+…+⟩ preparation and X-basis readout must leave every detector and
    // the logical-X observable deterministic.
    use surface_code::MemoryBasis;
    let exp = MemoryExperiment::new_with_basis(
        RotatedCode::new(3),
        NoiseParams::without_leakage(0.0),
        3,
        MemoryBasis::X,
    );
    let ops = experiment_ops(&exp, &[]);
    for seed in 0..5 {
        let outcomes = tableau_outcomes(&exp, &ops, seed);
        for det in exp.detectors() {
            assert!(
                !parity(&outcomes, &det.keys),
                "memory-X detector {det:?} fired in a noiseless run"
            );
        }
        assert!(
            !parity(&outcomes, &exp.observable_keys()),
            "logical X flipped in a noiseless run"
        );
    }
}

#[test]
fn frame_simulator_sees_no_flips_in_noiseless_run() {
    let exp = noiseless_experiment(3, 3);
    let ops = experiment_ops(&exp, &[]);
    let mut sim = FrameSimulator::new(
        exp.code().num_qubits(),
        exp.keys().total(),
        *exp.noise(),
        Discriminator::TwoLevel,
        Rng::new(5),
    );
    sim.run(&ops);
    for det in exp.detectors() {
        assert!(!sim.record().parity(&det.keys));
    }
    assert!(!sim.record().parity(&exp.observable_keys()));
}

/// The core equivalence test: inject a single Pauli error at a random
/// position and verify that the frame simulator's detector/observable
/// parities match exact stabilizer simulation.
#[test]
fn frame_matches_tableau_for_injected_errors() {
    let exp = noiseless_experiment(3, 3);
    let ops = experiment_ops(&exp, &[]);
    let detectors = exp.detectors();
    let observable = exp.observable_keys();
    let mut rng = Rng::new(2024);

    for trial in 0..250 {
        let pos = rng.below(ops.len() as u64 + 1) as usize;
        let qubit = rng.below(exp.code().num_qubits() as u64) as usize;
        let pauli = rng.error_pauli();

        // Exact simulation.
        let mut tab = TableauSimulator::new(exp.code().num_qubits(), 1000 + trial);
        let mut outcomes: Vec<Option<bool>> = Vec::new();
        tab.run_circuit_ops(&ops[..pos], &mut outcomes);
        if pauli.has_x() {
            tab.x_gate(qubit);
        }
        if pauli.has_z() {
            tab.z_gate(qubit);
        }
        tab.run_circuit_ops(&ops[pos..], &mut outcomes);
        let exact: Vec<bool> = outcomes.into_iter().map(|o| o.unwrap()).collect();

        // Frame simulation.
        let mut frame = FrameSimulator::new(
            exp.code().num_qubits(),
            exp.keys().total(),
            *exp.noise(),
            Discriminator::TwoLevel,
            Rng::new(3000 + trial),
        );
        frame.run(&ops[..pos]);
        frame.apply_pauli(qubit, pauli);
        frame.run(&ops[pos..]);

        for det in &detectors {
            assert_eq!(
                parity(&exact, &det.keys),
                frame.record().parity(&det.keys),
                "detector mismatch: trial {trial}, pos {pos}, qubit {qubit}, pauli {pauli}"
            );
        }
        assert_eq!(
            parity(&exact, &observable),
            frame.record().parity(&observable),
            "observable mismatch: trial {trial}, pos {pos}, qubit {qubit}, pauli {pauli}"
        );
    }
}

#[test]
fn frame_matches_tableau_for_errors_in_lrc_rounds() {
    // Same equivalence, but on a circuit containing LRC swap segments.
    let exp = noiseless_experiment(3, 4);
    let code = exp.code();
    let lrcs = vec![LrcAssignment {
        data: 4,
        stab: code.adjacent_stabs(4)[0],
    }];
    let schedule = vec![Vec::new(), lrcs];
    let ops = experiment_ops(&exp, &schedule);
    let detectors = exp.detectors();
    let mut rng = Rng::new(99);

    for trial in 0..150 {
        let pos = rng.below(ops.len() as u64 + 1) as usize;
        let qubit = rng.below(code.num_qubits() as u64) as usize;
        let pauli = rng.error_pauli();

        let mut tab = TableauSimulator::new(code.num_qubits(), 500 + trial);
        let mut outcomes: Vec<Option<bool>> = Vec::new();
        tab.run_circuit_ops(&ops[..pos], &mut outcomes);
        if pauli.has_x() {
            tab.x_gate(qubit);
        }
        if pauli.has_z() {
            tab.z_gate(qubit);
        }
        tab.run_circuit_ops(&ops[pos..], &mut outcomes);
        let exact: Vec<bool> = outcomes.into_iter().map(|o| o.unwrap()).collect();

        let mut frame = FrameSimulator::new(
            code.num_qubits(),
            exp.keys().total(),
            *exp.noise(),
            Discriminator::TwoLevel,
            Rng::new(7000 + trial),
        );
        frame.run(&ops[..pos]);
        frame.apply_pauli(qubit, pauli);
        frame.run(&ops[pos..]);

        for det in &detectors {
            assert_eq!(
                parity(&exact, &det.keys),
                frame.record().parity(&det.keys),
                "LRC detector mismatch: trial {trial}, pos {pos}, qubit {qubit}, pauli {pauli}"
            );
        }
    }
}

#[test]
fn single_data_x_error_fires_adjacent_z_detectors() {
    // Textbook check (paper Fig 2(b) Case-1): an X error on a data qubit
    // between rounds flips exactly its adjacent Z stabilizers.
    let exp = noiseless_experiment(3, 3);
    let code = exp.code();
    let ops = experiment_ops(&exp, &[]);
    // Find the op index right after round 0's resets: we inject before
    // round 1's dance.
    let keys_r0_done = exp.keys().stab_key(0, code.num_stabs() - 1);
    let mut idx = 0;
    let mut seen_last_r0_measure = false;
    for (i, op) in ops.iter().enumerate() {
        if let Op::Measure { key, .. } = op {
            if *key == keys_r0_done {
                seen_last_r0_measure = true;
            }
        }
        if seen_last_r0_measure {
            // Skip to after the reset block: first op of round 1 is a
            // Depolarize1 on data (noise p=0 but still emitted)… inject at the
            // first H we see after the measure.
            if let Op::H(_) = op {
                idx = i;
                break;
            }
        }
    }
    assert!(idx > 0, "failed to locate round-1 start");

    let center = code.data_qubit(1, 1);
    let mut frame = FrameSimulator::new(
        code.num_qubits(),
        exp.keys().total(),
        *exp.noise(),
        Discriminator::TwoLevel,
        Rng::new(1),
    );
    frame.run(&ops[..idx]);
    frame.apply_pauli(center, Pauli::X);
    frame.run(&ops[idx..]);

    let fired: Vec<_> = exp
        .detectors()
        .into_iter()
        .filter(|det| frame.record().parity(&det.keys))
        .collect();
    // The error fires each adjacent Z stabilizer exactly twice (once when it
    // appears, once cancelled by the final reconstruction), i.e. the set of
    // fired detectors is non-empty and confined to adjacent Z stabilizers.
    assert!(!fired.is_empty());
    use qec_core::circuit::DetectorBasis;
    for det in &fired {
        assert_eq!(det.basis, DetectorBasis::Z);
        assert!(
            code.adjacent_stabs(center).contains(&det.stabilizer),
            "unexpected detector {det:?}"
        );
    }
}
