//! Property-based equivalence of the frame simulator and the exact tableau
//! simulator on randomly chosen error injections, plus frame-simulator
//! invariants under leakage.

use leak_sim::{Discriminator, FrameSimulator, TableauSimulator};
use proptest::prelude::*;
use qec_core::{NoiseParams, Op, Pauli, Rng};
use surface_code::{MemoryExperiment, RotatedCode};

fn experiment_ops(exp: &MemoryExperiment) -> Vec<Op> {
    let mut ops = exp.init_segment();
    let builder = exp.round_builder();
    for r in 0..exp.rounds() {
        let round = builder.round(r, &[], exp.keys());
        ops.extend(round.pre);
        ops.extend(round.measure);
        ops.extend(round.mr_reset);
    }
    ops.extend(exp.final_segment());
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frame_equals_tableau_for_any_single_injection(
        pos_sel in any::<prop::sample::Index>(),
        qubit_sel in any::<prop::sample::Index>(),
        pauli_sel in 0u8..3,
        seed in any::<u64>(),
    ) {
        let exp = MemoryExperiment::new(
            RotatedCode::new(3),
            NoiseParams::without_leakage(0.0),
            2,
        );
        let ops = experiment_ops(&exp);
        let pos = pos_sel.index(ops.len() + 1);
        let qubit = qubit_sel.index(exp.code().num_qubits());
        let pauli = Pauli::ERRORS[pauli_sel as usize];

        let mut tab = TableauSimulator::new(exp.code().num_qubits(), seed);
        let mut outcomes: Vec<Option<bool>> = Vec::new();
        tab.run_circuit_ops(&ops[..pos], &mut outcomes);
        if pauli.has_x() {
            tab.x_gate(qubit);
        }
        if pauli.has_z() {
            tab.z_gate(qubit);
        }
        tab.run_circuit_ops(&ops[pos..], &mut outcomes);
        let exact: Vec<bool> = outcomes.into_iter().map(|o| o.unwrap()).collect();

        let mut frame = FrameSimulator::new(
            exp.code().num_qubits(),
            exp.keys().total(),
            *exp.noise(),
            Discriminator::TwoLevel,
            Rng::new(seed ^ 0xABCD),
        );
        frame.run(&ops[..pos]);
        frame.apply_pauli(qubit, pauli);
        frame.run(&ops[pos..]);

        for det in exp.detectors() {
            let exact_parity = det.keys.iter().fold(false, |acc, &k| acc ^ exact[k]);
            prop_assert_eq!(exact_parity, frame.record().parity(&det.keys));
        }
        let obs = exp.observable_keys();
        let exact_obs = obs.iter().fold(false, |acc, &k| acc ^ exact[k]);
        prop_assert_eq!(exact_obs, frame.record().parity(&obs));
    }

    #[test]
    fn reset_always_clears_leakage(seed in any::<u64>(), q_sel in any::<prop::sample::Index>()) {
        let mut sim = FrameSimulator::new(
            8,
            0,
            NoiseParams::standard(1e-2),
            Discriminator::TwoLevel,
            Rng::new(seed),
        );
        let q = q_sel.index(8);
        sim.force_leak(q);
        sim.apply(&Op::Reset(q));
        prop_assert!(!sim.is_leaked(q));
    }

    #[test]
    fn leakage_flags_are_monotone_under_injection(seed in any::<u64>()) {
        // Applying LeakInject with p=1 always leaks; no other op on disjoint
        // qubits may clear it.
        let mut sim = FrameSimulator::new(
            4,
            0,
            NoiseParams::standard(1e-3),
            Discriminator::TwoLevel,
            Rng::new(seed),
        );
        sim.apply(&Op::LeakInject { qubit: 0, p: 1.0 });
        prop_assert!(sim.is_leaked(0));
        sim.apply(&Op::H(1));
        sim.apply(&Op::Cnot { control: 2, target: 3 });
        sim.apply(&Op::Depolarize1 { qubit: 1, p: 1.0 });
        prop_assert!(sim.is_leaked(0), "ops on other qubits cannot unleak");
    }
}
