//! Bit-identity of the striped simulator: every lane of a
//! [`BatchFrameSimulator`] stripe must reproduce a scalar [`FrameSimulator`]
//! run with the same per-shot RNG stream, op for op — including masked
//! execution, where a lane simply skips the ops whose mask excludes it.

use leak_sim::{BatchFrameSimulator, Discriminator, FrameSimulator, STRIPE_WIDTH};
use qec_core::{NoiseParams, Op, Rng, TransportModel};

const QUBITS: usize = 7;
const KEYS: usize = 24;

/// A random op over `QUBITS` qubits with noise probabilities high enough to
/// exercise every branch (leakage, transport, seepage, readout labels).
fn random_op(rng: &mut Rng, next_key: &mut usize) -> Op {
    let q = rng.below(QUBITS as u64) as usize;
    let mut q2 = rng.below(QUBITS as u64) as usize;
    if q2 == q {
        q2 = (q + 1) % QUBITS;
    }
    let p = match rng.below(4) {
        0 => 0.0,
        1 => 0.05,
        2 => 0.3,
        _ => 1.0,
    };
    match rng.below(12) {
        0 => Op::H(q),
        1 => Op::Cnot {
            control: q,
            target: q2,
        },
        2 => Op::CnotNoTransport {
            control: q,
            target: q2,
        },
        3 => {
            let key = *next_key % KEYS;
            *next_key += 1;
            Op::Measure { qubit: q, key }
        }
        4 => Op::Reset(q),
        5 => Op::Depolarize1 { qubit: q, p },
        6 => Op::Depolarize2 { a: q, b: q2, p },
        7 => Op::XError { qubit: q, p },
        8 => Op::LeakInject { qubit: q, p },
        9 => Op::Seep { qubit: q, p },
        10 => Op::LeakIswap {
            data: q,
            parity: q2,
        },
        _ => Op::Tick,
    }
}

/// Runs `ops` (with per-op lane masks) through one stripe and through one
/// scalar simulator per lane, asserting identical records and leak state.
fn assert_equivalent(
    noise: NoiseParams,
    discriminator: Discriminator,
    lanes: usize,
    ops: &[(Op, u64)],
    seed: u64,
) {
    let rngs: Vec<Rng> = (0..lanes as u64)
        .map(|l| Rng::new(seed ^ (l << 32)))
        .collect();
    let mut batch = BatchFrameSimulator::new(QUBITS, KEYS, noise, discriminator);
    batch.begin_stripe(&rngs);
    for &(ref op, mask) in ops {
        batch.apply_masked(op, mask);
    }

    for (lane, lane_rng) in rngs.iter().enumerate() {
        let mut scalar = FrameSimulator::new(QUBITS, KEYS, noise, discriminator, lane_rng.clone());
        for &(ref op, mask) in ops {
            if mask >> lane & 1 != 0 {
                scalar.apply(op);
            }
        }
        for key in 0..KEYS {
            assert_eq!(
                batch.record().flip(key, lane),
                scalar.record().flip(key),
                "flip mismatch: lane {lane} key {key} seed {seed}"
            );
            assert_eq!(
                batch.record().is_leaked_label(key, lane),
                scalar.record().label(key).is_leaked(),
                "label mismatch: lane {lane} key {key} seed {seed}"
            );
        }
        for q in 0..QUBITS {
            assert_eq!(
                batch.is_leaked(q, lane),
                scalar.is_leaked(q),
                "leak mismatch: lane {lane} qubit {q} seed {seed}"
            );
        }
    }
}

#[test]
fn full_stripe_matches_scalar_bit_for_bit() {
    for (case, noise) in [
        NoiseParams::standard(5e-2),
        NoiseParams::exchange_transport(5e-2),
        NoiseParams::without_leakage(5e-2),
        {
            let mut n = NoiseParams::standard(5e-2);
            n.p_transport = 1.0;
            n
        },
    ]
    .into_iter()
    .enumerate()
    {
        for discriminator in [Discriminator::TwoLevel, Discriminator::MultiLevel] {
            let mut gen = Rng::new(9000 + case as u64);
            let mut next_key = 0;
            let ops: Vec<(Op, u64)> = (0..600)
                .map(|_| (random_op(&mut gen, &mut next_key), !0u64))
                .collect();
            assert_equivalent(noise, discriminator, STRIPE_WIDTH, &ops, 77 + case as u64);
        }
    }
}

#[test]
fn masked_execution_matches_per_lane_subsequences() {
    // Random per-op masks: each lane executes its own subsequence of the
    // schedule, exactly what the masked-op static rounds rely on.
    let noise = NoiseParams::standard(5e-2);
    for discriminator in [Discriminator::TwoLevel, Discriminator::MultiLevel] {
        let mut gen = Rng::new(4242);
        let mut next_key = 0;
        let ops: Vec<(Op, u64)> = (0..600)
            .map(|_| {
                let op = random_op(&mut gen, &mut next_key);
                // Mix of broad and sparse masks.
                let mask = match gen.below(3) {
                    0 => !0u64,
                    1 => gen.next_u64(),
                    _ => gen.next_u64() & gen.next_u64() & gen.next_u64(),
                };
                (op, mask)
            })
            .collect();
        assert_equivalent(noise, discriminator, STRIPE_WIDTH, &ops, 1234);
    }
}

#[test]
fn ragged_stripe_matches_scalar() {
    // 13 lanes: the ragged final stripe of a shot count that is not a
    // multiple of 64.
    let noise = NoiseParams::standard(5e-2);
    let mut gen = Rng::new(31);
    let mut next_key = 0;
    let ops: Vec<(Op, u64)> = (0..400)
        .map(|_| (random_op(&mut gen, &mut next_key), gen.next_u64()))
        .collect();
    assert_equivalent(noise, Discriminator::MultiLevel, 13, &ops, 5150);
}

#[test]
fn transport_models_diverge_but_each_matches_scalar() {
    // Conservative and exchange transport produce different physics; the
    // equivalence harness must hold for both (regression guard for the
    // per-lane transport branch).
    let mut conservative = NoiseParams::standard(5e-2);
    conservative.p_transport = 1.0;
    let mut exchange = NoiseParams::exchange_transport(5e-2);
    exchange.p_transport = 1.0;
    assert_eq!(conservative.transport, TransportModel::Conservative);
    assert_eq!(exchange.transport, TransportModel::Exchange);
    for noise in [conservative, exchange] {
        let mut gen = Rng::new(8);
        let mut next_key = 0;
        let ops: Vec<(Op, u64)> = (0..300)
            .map(|_| (random_op(&mut gen, &mut next_key), !0u64))
            .collect();
        assert_equivalent(noise, Discriminator::TwoLevel, 32, &ops, 99);
    }
}
