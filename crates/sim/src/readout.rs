//! Measurement discriminators (§4.6 and §5.2.3 of the paper).
//!
//! A physical readout pulse is classified by a trained discriminator. The
//! standard **two-level** discriminator only knows |0⟩ and |1⟩, so a leaked
//! qubit is classified into a *uniformly random* computational label — leakage
//! is invisible to it. A **multi-level** discriminator is additionally trained
//! on |L⟩ and reports it, at the cost of an elevated error rate (`10p` on the
//! leaked state, consistent with real-system results the paper cites).

/// The classifier model applied to every measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Discriminator {
    /// Standard |0⟩/|1⟩ classifier: leaked qubits read out randomly and are
    /// never labelled as leaked. Used by ERASER.
    #[default]
    TwoLevel,
    /// |0⟩/|1⟩/|L⟩ classifier: a leaked qubit is labelled [`ReadoutLabel::Leaked`]
    /// with probability `1 − 10p`, otherwise it falls back to a random
    /// computational label. Used by ERASER+M.
    MultiLevel,
}

/// The label a discriminator attached to one measurement outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadoutLabel {
    /// Classified into the computational basis (the recorded bit is the
    /// syndrome value).
    #[default]
    Computational,
    /// Classified as |L⟩ (only possible with [`Discriminator::MultiLevel`]).
    Leaked,
}

impl ReadoutLabel {
    /// Whether the label is |L⟩.
    pub fn is_leaked(self) -> bool {
        self == ReadoutLabel::Leaked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(Discriminator::default(), Discriminator::TwoLevel);
        assert_eq!(ReadoutLabel::default(), ReadoutLabel::Computational);
        assert!(!ReadoutLabel::Computational.is_leaked());
        assert!(ReadoutLabel::Leaked.is_leaked());
    }
}
