//! Word-parallel (bit-packed) Pauli-frame simulation: 64 shots per stripe.
//!
//! # Bit-plane layout
//!
//! [`BatchFrameSimulator`] runs up to [`STRIPE_WIDTH`] = 64 independent
//! shots at once by transposing the scalar [`crate::FrameSimulator`]'s
//! state: instead of one `bool` per qubit per shot, each qubit owns three
//! `u64` *bit-planes* — an X-frame word, a Z-frame word, and a leakage-mask
//! word — in which bit `l` belongs to stripe lane `l` (shot `l` of the
//! stripe). The measurement record is transposed the same way: one flip
//! word and one |L⟩-label word per measurement key. Deterministic frame
//! algebra (CNOT propagation, Hadamard X/Z exchange, resets, detector
//! parities) then executes on all 64 lanes with a handful of word ops —
//! the same trick Stim uses.
//!
//! # Masked-op discipline
//!
//! Every operation takes a 64-bit *lane mask* and must only touch lanes in
//! `mask & active`. Static round schedules (see `surface_code`'s masked
//! rounds) use this to encode per-shot dynamic decisions — which LRC slots
//! a lane's policy scheduled, which branch of the ERASER+M swap-back a
//! lane takes — as masks over one shared op sequence, so a stripe never
//! rebuilds circuits per shot.
//!
//! # Bit-identical RNG alignment
//!
//! Each lane owns the *same* per-shot RNG stream the scalar path would use
//! (`shot_rng(seed, shot)` forked exactly once), and every op draws from a
//! lane's stream under exactly the scalar conditions, in the scalar order:
//! an op that fires in lane `l` performs the draws `FrameSimulator::apply`
//! would perform for that shot, and no others. Lanes are independent
//! streams, so the order in which one op visits its lanes is immaterial —
//! per-lane draw sequences are what must (and do) match. The result is that
//! a stripe is bit-identical, shot for shot, to 64 scalar runs; the
//! equivalence suite in `crates/sim/tests/batch_equivalence.rs` asserts
//! this op-by-op and end-to-end.
//!
//! Two implementation moves keep the draw engine fast without breaking the
//! alignment:
//!
//! * **Integer Bernoulli thresholds.** `rng.bernoulli(p)` compares
//!   `(u >> 11) as f64 * 2⁻⁵³ < p`; the compiled channel (`Chan`,
//!   private) precomputes the exact integer
//!   threshold `⌈p·2⁵³⌉` (both sides exactly representable), so the
//!   decision — and the consumed draw — is identical while the hot loop
//!   stays in integer registers. `p ≤ 0` / `p ≥ 1` consume no draw, as in
//!   [`Rng::bernoulli`].
//! * **Structure-of-arrays lane streams.** The 64 lane states live as four
//!   64-entry arrays (one per xoshiro256++ state word), and
//!   `LaneRngs::next_masked` advances all lanes of a mask in one
//!   vectorizable elementwise pass (lanes outside the mask keep their state
//!   via a blend, so a lane never consumes a draw the scalar path would not
//!   have made). Rare, branchy draws (leaked-operand CNOT kicks, seepage
//!   returns) fall back to a per-lane `Rng` rebuilt from — and written back
//!   to — the lane's state words.

use crate::readout::Discriminator;
use qec_core::{MeasKey, NoiseParams, Op, QubitId, Rng, TransportModel};

/// Number of lanes (shots) in a full stripe: one per bit of a machine word.
pub const STRIPE_WIDTH: usize = 64;

/// Mask populations below this take the per-lane scalar loop instead of a
/// full 64-lane bulk pass.
const BULK_MIN_LANES: u32 = 8;

/// A Bernoulli channel compiled to an exact integer threshold (see the
/// module docs): `Never`/`Always` consume no randomness, matching
/// [`Rng::bernoulli`]'s clamped fast paths.
#[derive(Debug, Clone, Copy)]
enum Chan {
    Never,
    Always,
    Thresh(u64),
}

impl Chan {
    #[inline]
    fn new(p: f64) -> Chan {
        if p <= 0.0 {
            Chan::Never
        } else if p >= 1.0 {
            Chan::Always
        } else {
            // Exact: p·2⁵³ is a power-of-two scaling (no rounding), and
            // `u >> 11 < ⌈p·2⁵³⌉` ⇔ `(u >> 11) as f64 * 2⁻⁵³ < p`.
            Chan::Thresh((p * 9007199254740992.0).ceil() as u64)
        }
    }

    /// Draws the channel on one lane's stream, consuming exactly what
    /// `rng.bernoulli(p)` would.
    #[inline]
    fn fire(self, rng: &mut Rng) -> bool {
        match self {
            Chan::Never => false,
            Chan::Always => true,
            Chan::Thresh(t) => (rng.next_u64() >> 11) < t,
        }
    }
}

/// Iterates the set bits (lanes) of a mask word.
#[inline]
fn for_lanes(mut lanes: u64, mut f: impl FnMut(usize)) {
    while lanes != 0 {
        let l = lanes.trailing_zeros() as usize;
        f(l);
        lanes &= lanes - 1;
    }
}

/// The 64 lane streams in structure-of-arrays form: `s[j][lane]` is state
/// word `j` of lane `lane`'s xoshiro256++ generator.
#[derive(Debug, Clone)]
struct LaneRngs {
    s: [[u64; STRIPE_WIDTH]; 4],
}

impl LaneRngs {
    fn new() -> LaneRngs {
        LaneRngs {
            s: [[1; STRIPE_WIDTH]; 4],
        }
    }

    /// Installs `rng` as lane `lane`'s stream.
    fn load(&mut self, lane: usize, rng: &Rng) {
        for (plane, word) in self.s.iter_mut().zip(rng.state()) {
            plane[lane] = word;
        }
    }

    /// Runs `f` on lane `lane`'s stream as a scalar [`Rng`] (state written
    /// back afterwards) — the bit-exact fallback for branchy draws.
    #[inline]
    fn with_lane<R>(&mut self, lane: usize, f: impl FnOnce(&mut Rng) -> R) -> R {
        let mut rng = Rng::from_state([
            self.s[0][lane],
            self.s[1][lane],
            self.s[2][lane],
            self.s[3][lane],
        ]);
        let out = f(&mut rng);
        for (plane, word) in self.s.iter_mut().zip(rng.state()) {
            plane[lane] = word;
        }
        out
    }

    /// Advances every lane in `mask` by one xoshiro256++ step (other lanes
    /// keep their state via a blend), writing each advanced lane's draw
    /// into `out`. One vectorizable elementwise pass over the four state
    /// arrays.
    #[inline]
    fn next_masked(&mut self, mask: u64, out: &mut [u64; STRIPE_WIDTH]) {
        let [s0, s1, s2, s3] = &mut self.s;
        for lane in 0..STRIPE_WIDTH {
            let keep = 0u64.wrapping_sub(mask >> lane & 1);
            let (a, b, c, d) = (s0[lane], s1[lane], s2[lane], s3[lane]);
            let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
            let t = b << 17;
            let c1 = c ^ a;
            let d1 = d ^ b;
            let b1 = b ^ c1;
            let a1 = a ^ d1;
            let c2 = c1 ^ t;
            let d2 = d1.rotate_left(45);
            s0[lane] = (a1 & keep) | (a & !keep);
            s1[lane] = (b1 & keep) | (b & !keep);
            s2[lane] = (c2 & keep) | (c & !keep);
            s3[lane] = (d2 & keep) | (d & !keep);
            out[lane] = result & keep;
        }
    }
}

/// Lane word of draws below an integer Bernoulli threshold.
#[inline]
fn hits_below(draws: &[u64; STRIPE_WIDTH], mask: u64, thresh: u64) -> u64 {
    let mut hits = 0u64;
    for (lane, &draw) in draws.iter().enumerate() {
        hits |= ((draw >> 11 < thresh) as u64) << lane;
    }
    hits & mask
}

/// Lane word of draws' top bits (the bulk form of [`Rng::bit`]).
#[inline]
fn bits_msb(draws: &[u64; STRIPE_WIDTH], mask: u64) -> u64 {
    let mut bits = 0u64;
    for (lane, &draw) in draws.iter().enumerate() {
        bits |= (draw >> 63) << lane;
    }
    bits & mask
}

/// The transposed measurement record of one stripe: per measurement key,
/// one word of outcome flips and one word of |L⟩ labels (bit `l` = lane
/// `l`).
#[derive(Debug, Clone, Default)]
pub struct BatchMeasRecord {
    flips: Vec<u64>,
    leaked: Vec<u64>,
}

impl BatchMeasRecord {
    fn new(num_keys: usize) -> BatchMeasRecord {
        BatchMeasRecord {
            flips: vec![0; num_keys],
            leaked: vec![0; num_keys],
        }
    }

    fn clear(&mut self) {
        self.flips.fill(0);
        self.leaked.fill(0);
    }

    /// Flip word under `key`: bit `l` set iff lane `l`'s outcome differs
    /// from the noiseless reference.
    #[inline]
    pub fn flip_word(&self, key: MeasKey) -> u64 {
        self.flips[key]
    }

    /// |L⟩-label word under `key` (only ever nonzero with multi-level
    /// readout).
    #[inline]
    pub fn leaked_word(&self, key: MeasKey) -> u64 {
        self.leaked[key]
    }

    /// Whether lane `lane`'s outcome under `key` was flipped.
    pub fn flip(&self, key: MeasKey, lane: usize) -> bool {
        self.flips[key] >> lane & 1 != 0
    }

    /// Whether lane `lane`'s readout under `key` was labelled |L⟩.
    pub fn is_leaked_label(&self, key: MeasKey, lane: usize) -> bool {
        self.leaked[key] >> lane & 1 != 0
    }

    /// Word-parallel detector parity: XOR of the flip words under `keys` —
    /// all 64 lanes' parities in one pass.
    #[inline]
    pub fn parity_word(&self, keys: &[MeasKey]) -> u64 {
        keys.iter().fold(0, |acc, &k| acc ^ self.flips[k])
    }
}

/// A bit-packed Pauli-frame Monte-Carlo simulator running one 64-shot
/// stripe (see the module docs for layout, masking, and RNG discipline).
///
/// # Example
///
/// ```
/// use leak_sim::{BatchFrameSimulator, Discriminator};
/// use qec_core::{NoiseParams, Op, Rng};
///
/// let mut sim = BatchFrameSimulator::new(
///     2,
///     1,
///     NoiseParams::standard(1e-3),
///     Discriminator::TwoLevel,
/// );
/// // Three lanes; a deterministic X error propagates in all of them.
/// sim.begin_stripe(&[Rng::new(1), Rng::new(2), Rng::new(3)]);
/// let all = sim.active();
/// sim.apply_masked(&Op::XError { qubit: 0, p: 1.0 }, all);
/// sim.apply_masked(&Op::Cnot { control: 0, target: 1 }, all);
/// sim.apply_masked(&Op::Measure { qubit: 1, key: 0 }, all);
/// assert_eq!(sim.record().flip_word(0), 0b111);
/// ```
#[derive(Debug, Clone)]
pub struct BatchFrameSimulator {
    num_qubits: usize,
    /// Per-qubit X-frame bit-planes (bit `l` = lane `l`).
    x: Vec<u64>,
    /// Per-qubit Z-frame bit-planes.
    z: Vec<u64>,
    /// Per-qubit leakage-mask bit-planes.
    leaked: Vec<u64>,
    noise: NoiseParams,
    discriminator: Discriminator,
    /// One independent stream per lane (aligned with the scalar path's
    /// per-shot streams), in structure-of-arrays form.
    rngs: LaneRngs,
    /// Lanes holding live shots; a ragged final stripe activates fewer
    /// than 64.
    active: u64,
    record: BatchMeasRecord,
}

impl BatchFrameSimulator {
    /// Creates a stripe simulator over `num_qubits` qubits with room for
    /// `num_keys` recorded measurements. No lanes are active until
    /// [`BatchFrameSimulator::begin_stripe`].
    pub fn new(
        num_qubits: usize,
        num_keys: usize,
        noise: NoiseParams,
        discriminator: Discriminator,
    ) -> BatchFrameSimulator {
        BatchFrameSimulator {
            num_qubits,
            x: vec![0; num_qubits],
            z: vec![0; num_qubits],
            leaked: vec![0; num_qubits],
            noise,
            discriminator,
            rngs: LaneRngs::new(),
            active: 0,
            record: BatchMeasRecord::new(num_keys),
        }
    }

    /// Starts a fresh stripe: lane `l` gets `rngs[l]` as its per-shot
    /// stream, the low `rngs.len()` lanes become active, and all frames,
    /// leakage masks, and the record are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `rngs` is empty or holds more than [`STRIPE_WIDTH`]
    /// streams.
    pub fn begin_stripe(&mut self, rngs: &[Rng]) {
        assert!(
            !rngs.is_empty() && rngs.len() <= STRIPE_WIDTH,
            "a stripe holds 1..=64 shots, got {}",
            rngs.len()
        );
        self.x.fill(0);
        self.z.fill(0);
        self.leaked.fill(0);
        self.record.clear();
        for (lane, rng) in rngs.iter().enumerate() {
            self.rngs.load(lane, rng);
        }
        self.active = if rngs.len() == STRIPE_WIDTH {
            !0
        } else {
            (1u64 << rngs.len()) - 1
        };
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The active-lane mask of the current stripe.
    #[inline]
    pub fn active(&self) -> u64 {
        self.active
    }

    /// The transposed measurement record of the current stripe.
    #[inline]
    pub fn record(&self) -> &BatchMeasRecord {
        &self.record
    }

    /// The noise model in force.
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    /// The leakage-mask word of qubit `q` (active lanes only).
    #[inline]
    pub fn leak_word(&self, q: QubitId) -> u64 {
        self.leaked[q]
    }

    /// The X-frame word of qubit `q` (bit `l` = lane `l`): the flip each
    /// lane's Z-basis readout of `q` would record right now.
    #[inline]
    pub fn x_word(&self, q: QubitId) -> u64 {
        self.x[q]
    }

    /// Whether qubit `q` is leaked in lane `lane`.
    pub fn is_leaked(&self, q: QubitId, lane: usize) -> bool {
        self.leaked[q] >> lane & 1 != 0
    }

    /// Total leaked-qubit count over `qubits`, summed across the stripe's
    /// active lanes (one popcount per qubit — the stripe-side analogue of
    /// the scalar simulator's running leaked counts).
    pub fn leaked_count_in(&self, qubits: std::ops::Range<usize>) -> u64 {
        qubits
            .map(|q| (self.leaked[q] & self.active).count_ones() as u64)
            .sum()
    }

    /// Forces qubit `q` into the leaked state on `mask` lanes (targeted
    /// experiments and tests).
    pub fn force_leak_masked(&mut self, q: QubitId, mask: u64) {
        let m = mask & self.active;
        self.leaked[q] |= m;
        self.x[q] &= !m;
        self.z[q] &= !m;
    }

    /// Applies a bare Pauli to `mask` lanes of qubit `q`'s frame (no-op on
    /// leaked lanes), mirroring [`crate::FrameSimulator::apply_pauli`].
    pub fn apply_pauli_masked(&mut self, q: QubitId, p: qec_core::Pauli, mask: u64) {
        let m = mask & self.active & !self.leaked[q];
        if p.has_x() {
            self.x[q] ^= m;
        }
        if p.has_z() {
            self.z[q] ^= m;
        }
    }

    /// Executes a sequence of operations on `mask` lanes.
    pub fn run_masked(&mut self, ops: &[Op], mask: u64) {
        for op in ops {
            self.apply_masked(op, mask);
        }
    }

    /// Draws one Bernoulli threshold over `lanes`, bulk or per-lane by
    /// population, returning the hit word.
    #[inline]
    fn bernoulli_lanes(&mut self, lanes: u64, thresh: u64) -> u64 {
        if lanes.count_ones() >= BULK_MIN_LANES {
            let mut draws = [0u64; STRIPE_WIDTH];
            self.rngs.next_masked(lanes, &mut draws);
            hits_below(&draws, lanes, thresh)
        } else {
            let mut hits = 0u64;
            let rngs = &mut self.rngs;
            for_lanes(lanes, |l| {
                if rngs.with_lane(l, |rng| rng.next_u64() >> 11) < thresh {
                    hits |= 1u64 << l;
                }
            });
            hits
        }
    }

    /// Draws one uniform bit over `lanes` ([`Rng::bit`]), returning the
    /// bit word.
    #[inline]
    fn bit_lanes(&mut self, lanes: u64) -> u64 {
        if lanes.count_ones() >= BULK_MIN_LANES {
            let mut draws = [0u64; STRIPE_WIDTH];
            self.rngs.next_masked(lanes, &mut draws);
            bits_msb(&draws, lanes)
        } else {
            let mut bits = 0u64;
            let rngs = &mut self.rngs;
            for_lanes(lanes, |l| {
                if rngs.with_lane(l, Rng::bit) {
                    bits |= 1u64 << l;
                }
            });
            bits
        }
    }

    /// Executes a single operation on `mask` lanes (implicitly intersected
    /// with the active mask). Per lane, the semantics — including the RNG
    /// draw sequence — are exactly [`crate::FrameSimulator::apply`]'s.
    pub fn apply_masked(&mut self, op: &Op, mask: u64) {
        let m = mask & self.active;
        if m == 0 {
            return;
        }
        match *op {
            Op::H(q) => {
                let u = m & !self.leaked[q];
                let flip = (self.x[q] ^ self.z[q]) & u;
                self.x[q] ^= flip;
                self.z[q] ^= flip;
            }
            Op::Cnot { control, target } => self.cnot(control, target, true, m),
            Op::CnotNoTransport { control, target } => self.cnot(control, target, false, m),
            Op::Measure { qubit, key } => self.measure(qubit, key, m),
            Op::Reset(q) => {
                self.leaked[q] &= !m;
                self.x[q] &= !m;
                self.z[q] &= !m;
            }
            Op::Depolarize1 { qubit, p } => {
                let lanes = m & !self.leaked[qubit];
                let hits = match Chan::new(p) {
                    Chan::Never => return,
                    Chan::Always => lanes,
                    Chan::Thresh(t) => self.bernoulli_lanes(lanes, t),
                };
                for_lanes(hits, |l| {
                    let e = self.rngs.with_lane(l, Rng::error_pauli);
                    let bit = 1u64 << l;
                    if e.has_x() {
                        self.x[qubit] ^= bit;
                    }
                    if e.has_z() {
                        self.z[qubit] ^= bit;
                    }
                });
            }
            Op::Depolarize2 { a, b, p } => {
                // Skipped when either operand is leaked (gate noise is
                // calibrated for the computational basis; the leaked-CNOT
                // kick already fired).
                let lanes = m & !self.leaked[a] & !self.leaked[b];
                let hits = match Chan::new(p) {
                    Chan::Never => return,
                    Chan::Always => lanes,
                    Chan::Thresh(t) => self.bernoulli_lanes(lanes, t),
                };
                for_lanes(hits, |l| {
                    let (pa, pb) = self.rngs.with_lane(l, |rng| loop {
                        let pa = rng.uniform_pauli();
                        let pb = rng.uniform_pauli();
                        if !(pa.is_identity() && pb.is_identity()) {
                            break (pa, pb);
                        }
                    });
                    let bit = 1u64 << l;
                    if pa.has_x() {
                        self.x[a] ^= bit;
                    }
                    if pa.has_z() {
                        self.z[a] ^= bit;
                    }
                    if pb.has_x() {
                        self.x[b] ^= bit;
                    }
                    if pb.has_z() {
                        self.z[b] ^= bit;
                    }
                });
            }
            Op::XError { qubit, p } => {
                let lanes = m & !self.leaked[qubit];
                let hits = match Chan::new(p) {
                    Chan::Never => return,
                    Chan::Always => lanes,
                    Chan::Thresh(t) => self.bernoulli_lanes(lanes, t),
                };
                self.x[qubit] ^= hits;
            }
            Op::LeakInject { qubit, p } => {
                // Unlike the Pauli channels, injection draws on leaked
                // lanes too (the scalar path has no leak guard here).
                let hits = match Chan::new(p) {
                    Chan::Never => return,
                    Chan::Always => m,
                    Chan::Thresh(t) => self.bernoulli_lanes(m, t),
                };
                self.leaked[qubit] |= hits;
                self.x[qubit] &= !hits;
                self.z[qubit] &= !hits;
            }
            Op::Seep { qubit, p } => {
                let lanes = m & self.leaked[qubit];
                if lanes == 0 {
                    return;
                }
                let hits = match Chan::new(p) {
                    Chan::Never => return,
                    Chan::Always => lanes,
                    Chan::Thresh(t) => self.bernoulli_lanes(lanes, t),
                };
                if hits == 0 {
                    return;
                }
                // Return in a uniformly random computational state.
                self.leaked[qubit] &= !hits;
                let xbits = self.bit_lanes(hits);
                let zbits = self.bit_lanes(hits);
                self.x[qubit] = (self.x[qubit] & !hits) | xbits;
                self.z[qubit] = (self.z[qubit] & !hits) | zbits;
            }
            Op::LeakIswap { data, parity } => self.leak_iswap(data, parity, m),
            Op::Tick => {}
        }
    }

    fn cnot(&mut self, c: QubitId, t: QubitId, transport_enabled: bool, m: u64) {
        // Common case, word-parallel: both operands in the computational
        // basis — the frame propagates.
        let clean = m & !self.leaked[c] & !self.leaked[t];
        self.x[t] ^= self.x[c] & clean;
        self.z[c] ^= self.z[t] & clean;
        // Mixed lanes (exactly one operand leaked) take the scalar path:
        // random-Pauli kick on the clean operand plus leakage transport.
        let mixed = m & (self.leaked[c] ^ self.leaked[t]);
        if mixed == 0 {
            return;
        }
        let p_transport = self.noise.p_transport;
        let model = self.noise.transport;
        for_lanes(mixed, |l| {
            let bit = 1u64 << l;
            let (leaked_q, clean_q) = if self.leaked[c] & bit != 0 {
                (c, t)
            } else {
                (t, c)
            };
            let (kick, transported, exchange_bits) = self.rngs.with_lane(l, |rng| {
                let kick = rng.uniform_pauli();
                let transported = transport_enabled && rng.bernoulli(p_transport);
                let exchange_bits = if transported && model == TransportModel::Exchange {
                    Some((rng.bit(), rng.bit()))
                } else {
                    None
                };
                (kick, transported, exchange_bits)
            });
            if kick.has_x() {
                self.x[clean_q] ^= bit;
            }
            if kick.has_z() {
                self.z[clean_q] ^= bit;
            }
            if transported {
                self.leaked[clean_q] |= bit;
                self.x[clean_q] &= !bit;
                self.z[clean_q] &= !bit;
                if let Some((xb, zb)) = exchange_bits {
                    self.leaked[leaked_q] &= !bit;
                    self.set_bit(true, leaked_q, bit, xb);
                    self.set_bit(false, leaked_q, bit, zb);
                }
            }
        });
    }

    /// Sets or clears one frame bit (`x_plane` selects the plane).
    #[inline]
    fn set_bit(&mut self, x_plane: bool, q: QubitId, bit: u64, value: bool) {
        let plane = if x_plane {
            &mut self.x[q]
        } else {
            &mut self.z[q]
        };
        if value {
            *plane |= bit;
        } else {
            *plane &= !bit;
        }
    }

    fn measure(&mut self, q: QubitId, key: MeasKey, m: u64) {
        let lk = m & self.leaked[q];
        let clean = m & !self.leaked[q];
        // Unleaked lanes, word-parallel: record the X frame, clear labels.
        let mut flips = (self.record.flips[key] & !m) | (self.x[q] & clean);
        let mut labels = self.record.leaked[key] & !m;
        // Leaked lanes read out randomly (and may be labelled |L⟩ under
        // multi-level readout).
        if lk != 0 {
            match self.discriminator {
                Discriminator::TwoLevel => {
                    flips |= self.bit_lanes(lk);
                }
                Discriminator::MultiLevel => {
                    // Per lane: classification draw, then the random
                    // computational value — the scalar order.
                    let err = Chan::new(self.noise.multilevel_error_p());
                    let rngs = &mut self.rngs;
                    for_lanes(lk, |l| {
                        let (mis, flip) = rngs.with_lane(l, |rng| (err.fire(rng), rng.bit()));
                        let bit = 1u64 << l;
                        if flip {
                            flips |= bit;
                        }
                        if !mis {
                            labels |= bit;
                        }
                    });
                }
            }
        }
        self.record.flips[key] = flips;
        self.record.leaked[key] = labels;
        // Z-basis measurement randomizes the phase frame of unleaked lanes.
        if clean != 0 {
            let zbits = self.bit_lanes(clean);
            self.z[q] = (self.z[q] & !clean) | zbits;
        }
    }

    fn leak_iswap(&mut self, data: QubitId, parity: QubitId, m: u64) {
        // Deterministic move: data leaked, parity clean.
        let moves = m & self.leaked[data] & !self.leaked[parity];
        // Failed parity reset (|1⟩) with both computational: the |11⟩→|20⟩
        // coupling may excite the data qubit.
        let risky = m & !self.leaked[data] & !self.leaked[parity] & self.x[parity];
        if moves != 0 {
            self.leaked[data] &= !moves;
            self.leaked[parity] |= moves;
            let xbits = self.bit_lanes(moves);
            let zbits = self.bit_lanes(moves);
            self.x[data] = (self.x[data] & !moves) | xbits;
            self.z[data] = (self.z[data] & !moves) | zbits;
        }
        if risky != 0 {
            let excited = self.bit_lanes(risky);
            self.leaked[data] |= excited;
            self.x[data] &= !excited;
            self.z[data] &= !excited;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chan_threshold_matches_rng_bernoulli_exactly() {
        // The integer-threshold fast path must agree with Rng::bernoulli on
        // both the decision and the number of draws, for every p.
        for &p in &[
            0.0, -1.0, 1.0, 2.0, 1e-9, 1e-4, 1e-3, 0.01, 0.1, 0.25, 0.5, 0.9, 0.999,
        ] {
            let chan = Chan::new(p);
            let mut a = Rng::new(42);
            let mut b = Rng::new(42);
            for _ in 0..2000 {
                assert_eq!(chan.fire(&mut a), b.bernoulli(p), "p={p}");
                // Streams must stay aligned draw-for-draw.
                assert_eq!(a.next_u64(), b.next_u64(), "p={p}");
            }
        }
    }

    #[test]
    fn masked_bulk_advance_matches_scalar_streams() {
        // next_masked must advance exactly the masked lanes, by exactly
        // one scalar xoshiro step, and leave the rest untouched.
        let mut lanes = LaneRngs::new();
        let mut scalars: Vec<Rng> = (0..STRIPE_WIDTH as u64)
            .map(|l| Rng::new(l * 77 + 5))
            .collect();
        for (l, rng) in scalars.iter().enumerate() {
            lanes.load(l, rng);
        }
        let mut out = [0u64; STRIPE_WIDTH];
        let mut mix = Rng::new(1);
        for _ in 0..200 {
            let mask = mix.next_u64();
            lanes.next_masked(mask, &mut out);
            for (l, scalar) in scalars.iter_mut().enumerate() {
                if mask >> l & 1 != 0 {
                    assert_eq!(out[l], scalar.next_u64(), "lane {l}");
                }
            }
        }
        // Final states agree lane for lane (untouched lanes included).
        for (l, scalar) in scalars.iter_mut().enumerate() {
            assert_eq!(
                lanes.with_lane(l, |rng| rng.next_u64()),
                scalar.next_u64(),
                "final state, lane {l}"
            );
        }
    }

    #[test]
    fn ragged_stripe_activates_low_lanes() {
        let noise = NoiseParams::standard(1e-3);
        let mut sim = BatchFrameSimulator::new(2, 1, noise, Discriminator::TwoLevel);
        sim.begin_stripe(&[Rng::new(1), Rng::new(2), Rng::new(3)]);
        assert_eq!(sim.active(), 0b111);
        sim.apply_masked(&Op::XError { qubit: 0, p: 1.0 }, !0);
        assert_eq!(sim.x[0], 0b111, "inactive lanes untouched");
        let full: Vec<Rng> = (0..64).map(Rng::new).collect();
        sim.begin_stripe(&full);
        assert_eq!(sim.active(), !0);
        assert_eq!(sim.x[0], 0, "begin_stripe clears state");
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn oversized_stripe_rejected() {
        let noise = NoiseParams::standard(1e-3);
        let mut sim = BatchFrameSimulator::new(1, 0, noise, Discriminator::TwoLevel);
        let rngs: Vec<Rng> = (0..65).map(Rng::new).collect();
        sim.begin_stripe(&rngs);
    }

    #[test]
    fn word_parallel_frame_algebra() {
        let noise = NoiseParams::without_leakage(0.0);
        let mut sim = BatchFrameSimulator::new(2, 2, noise, Discriminator::TwoLevel);
        sim.begin_stripe(&[Rng::new(1), Rng::new(2)]);
        // Lane 0 only: X on qubit 0.
        sim.apply_masked(&Op::XError { qubit: 0, p: 1.0 }, 0b01);
        sim.apply_masked(
            &Op::Cnot {
                control: 0,
                target: 1,
            },
            0b11,
        );
        sim.apply_masked(&Op::Measure { qubit: 0, key: 0 }, 0b11);
        sim.apply_masked(&Op::Measure { qubit: 1, key: 1 }, 0b11);
        assert_eq!(sim.record().flip_word(0), 0b01);
        assert_eq!(sim.record().flip_word(1), 0b01);
        assert_eq!(sim.record().parity_word(&[0, 1]), 0);
        assert!(sim.record().flip(0, 0));
        assert!(!sim.record().flip(0, 1));
    }

    #[test]
    fn masked_h_exchanges_x_and_z() {
        let noise = NoiseParams::without_leakage(0.0);
        let mut sim = BatchFrameSimulator::new(1, 1, noise, Discriminator::TwoLevel);
        sim.begin_stripe(&[Rng::new(1), Rng::new(2)]);
        sim.apply_pauli_masked(0, qec_core::Pauli::Z, 0b10);
        sim.apply_masked(&Op::H(0), 0b11);
        sim.apply_masked(&Op::Measure { qubit: 0, key: 0 }, 0b11);
        assert_eq!(sim.record().flip_word(0), 0b10, "Z became X in lane 1");
    }

    #[test]
    fn leaked_count_and_force_leak() {
        let noise = NoiseParams::standard(1e-3);
        let mut sim = BatchFrameSimulator::new(4, 0, noise, Discriminator::TwoLevel);
        sim.begin_stripe(&[Rng::new(1), Rng::new(2), Rng::new(3)]);
        sim.force_leak_masked(1, 0b101);
        sim.force_leak_masked(3, 0b010);
        assert_eq!(sim.leaked_count_in(0..4), 3);
        assert_eq!(sim.leaked_count_in(0..2), 2);
        assert_eq!(sim.leak_word(1), 0b101);
        assert!(sim.is_leaked(1, 0));
        assert!(!sim.is_leaked(1, 1));
        sim.apply_masked(&Op::Reset(1), 0b001);
        assert_eq!(sim.leak_word(1), 0b100);
    }
}
