//! Leakage-aware stabilizer simulation.
//!
//! The ERASER paper extends Google's Stim simulator with leakage tracking;
//! Stim itself has no leakage support, so this crate provides the equivalent
//! from scratch:
//!
//! * [`FrameSimulator`] — a Pauli-frame Monte-Carlo simulator (Stim's sampling
//!   strategy) extended with per-qubit leakage flags implementing the paper's
//!   §5.2.2 model: leakage injection, seepage, leakage transport through
//!   CNOTs (conservative and exchange variants), random Pauli kicks from
//!   leaked operands, leaked-readout randomization, and Google's
//!   `LeakageISWAP` for the DQLR protocol.
//! * [`BatchFrameSimulator`] — the word-parallel form of the same model: 64
//!   shots per stripe as per-qubit X/Z/leakage bit-planes with masked-op
//!   execution, bit-identical to 64 scalar runs (see the [`batch`] module
//!   docs for the layout and the RNG-alignment discipline).
//! * [`TableauSimulator`] — a full Aaronson–Gottesman stabilizer simulator
//!   used by the test-suite to verify that the surface-code circuits measure
//!   what they claim to measure (deterministic detectors, logical operators).
//! * [`Discriminator`] / [`ReadoutLabel`] — two-level vs multi-level readout
//!   (§4.6): a standard discriminator classifies a leaked qubit into a random
//!   computational label, a multi-level discriminator reports |L⟩ with error
//!   rate `10p`.
//!
//! # Example
//!
//! ```
//! use leak_sim::{Discriminator, FrameSimulator};
//! use qec_core::{NoiseParams, Op, Rng};
//!
//! let noise = NoiseParams::standard(1e-3);
//! let mut sim = FrameSimulator::new(2, 1, noise, Discriminator::TwoLevel, Rng::new(1));
//! sim.apply(&Op::LeakInject { qubit: 0, p: 1.0 });
//! assert!(sim.is_leaked(0));
//! sim.apply(&Op::Measure { qubit: 0, key: 0 });
//! sim.apply(&Op::Reset(0));
//! assert!(!sim.is_leaked(0)); // reset removes leakage
//! ```

pub mod batch;
pub mod frame;
pub mod readout;
pub mod tableau;

pub use batch::{BatchFrameSimulator, BatchMeasRecord, STRIPE_WIDTH};
pub use frame::{FrameSimulator, MeasRecord};
pub use readout::{Discriminator, ReadoutLabel};
pub use tableau::TableauSimulator;
