//! Leakage-aware Pauli-frame simulator.
//!
//! Pauli-frame simulation tracks, for each qubit, the Pauli *difference*
//! between the noisy run and a noiseless reference run. For circuits whose
//! detectors are parity checks with deterministic noiseless values (every
//! circuit in this repository), sampling the frame is statistically exact —
//! this is the same strategy Stim uses.
//!
//! Leakage is tracked as a boolean flag per qubit, on top of the frame:
//!
//! * a leaked qubit has no meaningful Pauli frame (its state left the
//!   computational basis); gates and Pauli noise on it are skipped;
//! * a CNOT between a leaked and an unleaked qubit applies a uniformly random
//!   Pauli to the unleaked operand and transports leakage with probability
//!   `p_LT` (conservative or exchange semantics, §5.2.2 / Appendix A.1);
//! * measuring a leaked qubit yields a random outcome (two-level readout) or
//!   an |L⟩ label (multi-level readout, error rate `10p`);
//! * `Reset` removes leakage; seepage returns a leaked qubit to a random
//!   computational state.

use crate::readout::{Discriminator, ReadoutLabel};
use qec_core::{MeasKey, NoiseParams, Op, Pauli, QubitId, Rng, TransportModel};

/// The measurement record of one shot: per-key outcome flips (relative to the
/// noiseless reference) and readout labels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeasRecord {
    flips: Vec<bool>,
    labels: Vec<ReadoutLabel>,
}

impl MeasRecord {
    fn new(num_keys: usize) -> MeasRecord {
        MeasRecord {
            flips: vec![false; num_keys],
            labels: vec![ReadoutLabel::Computational; num_keys],
        }
    }

    fn clear(&mut self) {
        self.flips.fill(false);
        self.labels.fill(ReadoutLabel::Computational);
    }

    /// Whether the outcome under `key` differs from the noiseless reference.
    pub fn flip(&self, key: MeasKey) -> bool {
        self.flips[key]
    }

    /// The readout label recorded under `key`.
    pub fn label(&self, key: MeasKey) -> ReadoutLabel {
        self.labels[key]
    }

    /// All flips, indexed by key.
    pub fn flips(&self) -> &[bool] {
        &self.flips
    }

    /// Parity (XOR) of the flips under a set of keys — the value of a
    /// detector or logical observable.
    pub fn parity(&self, keys: &[MeasKey]) -> bool {
        keys.iter().fold(false, |acc, &k| acc ^ self.flips[k])
    }
}

/// A Pauli-frame Monte-Carlo simulator with leakage (see module docs).
///
/// # Example
///
/// ```
/// use leak_sim::{Discriminator, FrameSimulator};
/// use qec_core::{NoiseParams, Op, Rng};
///
/// let mut sim = FrameSimulator::new(
///     2,
///     2,
///     NoiseParams::standard(1e-3),
///     Discriminator::TwoLevel,
///     Rng::new(42),
/// );
/// // A deterministic X error on qubit 0 flips its later measurement.
/// sim.apply(&Op::XError { qubit: 0, p: 1.0 });
/// sim.apply(&Op::Cnot { control: 0, target: 1 });
/// sim.apply(&Op::Measure { qubit: 1, key: 0 });
/// assert!(sim.record().flip(0)); // X propagated through the CNOT
/// ```
#[derive(Debug, Clone)]
pub struct FrameSimulator {
    num_qubits: usize,
    x: Vec<bool>,
    z: Vec<bool>,
    /// Leak flags, bit-packed 64 qubits per word. The packed layout turns
    /// the per-round LPR probe ([`FrameSimulator::leaked_count_in`]) into a
    /// handful of masked popcounts instead of an O(n) bool rescan.
    leaked: Vec<u64>,
    /// Running number of set bits in `leaked`, maintained by every leak
    /// transition so [`FrameSimulator::leaked_count`] is O(1).
    leaked_count: usize,
    noise: NoiseParams,
    discriminator: Discriminator,
    rng: Rng,
    record: MeasRecord,
}

impl FrameSimulator {
    /// Creates a simulator over `num_qubits` qubits with room for `num_keys`
    /// recorded measurements.
    pub fn new(
        num_qubits: usize,
        num_keys: usize,
        noise: NoiseParams,
        discriminator: Discriminator,
        rng: Rng,
    ) -> FrameSimulator {
        FrameSimulator {
            num_qubits,
            x: vec![false; num_qubits],
            z: vec![false; num_qubits],
            leaked: vec![0; num_qubits.div_ceil(64)],
            leaked_count: 0,
            noise,
            discriminator,
            rng,
            record: MeasRecord::new(num_keys),
        }
    }

    #[inline]
    fn set_leak(&mut self, q: QubitId) {
        let (w, b) = (q / 64, 1u64 << (q % 64));
        if self.leaked[w] & b == 0 {
            self.leaked[w] |= b;
            self.leaked_count += 1;
        }
    }

    #[inline]
    fn clear_leak(&mut self, q: QubitId) {
        let (w, b) = (q / 64, 1u64 << (q % 64));
        if self.leaked[w] & b != 0 {
            self.leaked[w] &= !b;
            self.leaked_count -= 1;
        }
    }

    /// Clears frames, leakage flags, and the measurement record for a new
    /// shot, *keeping* the RNG stream (so consecutive shots are independent
    /// but the whole sequence stays reproducible).
    pub fn reset_shot(&mut self) {
        self.x.fill(false);
        self.z.fill(false);
        self.leaked.fill(0);
        self.leaked_count = 0;
        self.record.clear();
    }

    /// Replaces the RNG stream. The thread-invariant runtime gives every
    /// shot its own stream (a pure function of root seed and shot index), so
    /// results do not depend on how shots are partitioned across workers.
    pub fn reseed(&mut self, rng: Rng) {
        self.rng = rng;
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The measurement record of the current shot.
    pub fn record(&self) -> &MeasRecord {
        &self.record
    }

    /// Whether qubit `q` is currently leaked.
    #[inline]
    pub fn is_leaked(&self, q: QubitId) -> bool {
        self.leaked[q / 64] >> (q % 64) & 1 != 0
    }

    /// Total number of currently leaked qubits (O(1): maintained as a
    /// running count across every leak transition).
    pub fn leaked_count(&self) -> usize {
        self.leaked_count
    }

    /// Number of currently leaked qubits among `qubits`. Masked popcounts
    /// over the packed leak words — O(n/64), not an O(n) rescan; this sits
    /// on the per-round LPR probe path of every memory experiment.
    pub fn leaked_count_in(&self, qubits: std::ops::Range<usize>) -> usize {
        let (start, end) = (qubits.start, qubits.end.min(self.num_qubits));
        if start >= end {
            return 0;
        }
        let (first, last) = (start / 64, (end - 1) / 64);
        let lo = !0u64 << (start % 64);
        let hi = !0u64 >> (63 - (end - 1) % 64);
        if first == last {
            return (self.leaked[first] & lo & hi).count_ones() as usize;
        }
        let mut count = (self.leaked[first] & lo).count_ones();
        for w in &self.leaked[first + 1..last] {
            count += w.count_ones();
        }
        count += (self.leaked[last] & hi).count_ones();
        count as usize
    }

    /// The noise model in force.
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    /// The readout discriminator in force.
    pub fn discriminator(&self) -> Discriminator {
        self.discriminator
    }

    /// Replaces the discriminator (ERASER vs ERASER+M runs share everything
    /// else).
    pub fn set_discriminator(&mut self, discriminator: Discriminator) {
        self.discriminator = discriminator;
    }

    /// Applies a bare Pauli to a qubit's frame (no-op on leaked qubits). Used
    /// by tests to inject deterministic errors.
    pub fn apply_pauli(&mut self, q: QubitId, p: Pauli) {
        if !self.is_leaked(q) {
            self.x[q] ^= p.has_x();
            self.z[q] ^= p.has_z();
        }
    }

    /// Forces qubit `q` into the leaked state (used by targeted experiments
    /// such as the leakage-storm example).
    pub fn force_leak(&mut self, q: QubitId) {
        self.set_leak(q);
        self.x[q] = false;
        self.z[q] = false;
    }

    /// Executes a sequence of operations.
    pub fn run(&mut self, ops: &[Op]) {
        for op in ops {
            self.apply(op);
        }
    }

    /// Executes a single operation.
    pub fn apply(&mut self, op: &Op) {
        match *op {
            Op::H(q) => {
                if !self.is_leaked(q) {
                    let (xq, zq) = (self.x[q], self.z[q]);
                    self.x[q] = zq;
                    self.z[q] = xq;
                }
            }
            Op::Cnot { control, target } => self.cnot(control, target, true),
            Op::CnotNoTransport { control, target } => self.cnot(control, target, false),
            Op::Measure { qubit, key } => self.measure(qubit, key),
            Op::Reset(q) => {
                self.clear_leak(q);
                self.x[q] = false;
                self.z[q] = false;
            }
            Op::Depolarize1 { qubit, p } => {
                if !self.is_leaked(qubit) && self.rng.bernoulli(p) {
                    let e = self.rng.error_pauli();
                    self.x[qubit] ^= e.has_x();
                    self.z[qubit] ^= e.has_z();
                }
            }
            Op::Depolarize2 { a, b, p } => {
                // Gate noise is calibrated for the computational basis; a
                // leaked operand already received its random-Pauli kick in
                // `cnot`, so the channel is skipped to avoid double-counting.
                if !self.is_leaked(a) && !self.is_leaked(b) && self.rng.bernoulli(p) {
                    let (pa, pb) = loop {
                        let pa = self.rng.uniform_pauli();
                        let pb = self.rng.uniform_pauli();
                        if !(pa.is_identity() && pb.is_identity()) {
                            break (pa, pb);
                        }
                    };
                    self.x[a] ^= pa.has_x();
                    self.z[a] ^= pa.has_z();
                    self.x[b] ^= pb.has_x();
                    self.z[b] ^= pb.has_z();
                }
            }
            Op::XError { qubit, p } => {
                if !self.is_leaked(qubit) && self.rng.bernoulli(p) {
                    self.x[qubit] ^= true;
                }
            }
            Op::LeakInject { qubit, p } => {
                if self.rng.bernoulli(p) {
                    self.set_leak(qubit);
                    self.x[qubit] = false;
                    self.z[qubit] = false;
                }
            }
            Op::Seep { qubit, p } => {
                if self.is_leaked(qubit) && self.rng.bernoulli(p) {
                    // Return in a uniformly random computational state
                    // (§5.2.2 footnote 5).
                    self.clear_leak(qubit);
                    self.x[qubit] = self.rng.bit();
                    self.z[qubit] = self.rng.bit();
                }
            }
            Op::LeakIswap { data, parity } => self.leak_iswap(data, parity),
            Op::Tick => {}
        }
    }

    fn cnot(&mut self, c: QubitId, t: QubitId, transport_enabled: bool) {
        match (self.is_leaked(c), self.is_leaked(t)) {
            (false, false) => {
                self.x[t] ^= self.x[c];
                self.z[c] ^= self.z[t];
            }
            (true, true) => {
                // Both operands leaked: the gate does nothing useful; under
                // the exchange model a transport between two leaked qubits
                // also has no effect (Appendix A.1).
            }
            (leak_c, _) => {
                let (leaked_q, clean_q) = if leak_c { (c, t) } else { (t, c) };
                // The unleaked operand suffers a uniformly random Pauli
                // (§5.2.2: operations are only calibrated for the
                // computational basis).
                let kick = self.rng.uniform_pauli();
                self.x[clean_q] ^= kick.has_x();
                self.z[clean_q] ^= kick.has_z();
                // Leakage transport with probability p_LT.
                if transport_enabled && self.rng.bernoulli(self.noise.p_transport) {
                    match self.noise.transport {
                        TransportModel::Conservative => {
                            self.set_leak(clean_q);
                            self.x[clean_q] = false;
                            self.z[clean_q] = false;
                        }
                        TransportModel::Exchange => {
                            self.set_leak(clean_q);
                            self.x[clean_q] = false;
                            self.z[clean_q] = false;
                            self.clear_leak(leaked_q);
                            self.x[leaked_q] = self.rng.bit();
                            self.z[leaked_q] = self.rng.bit();
                        }
                    }
                }
            }
        }
    }

    fn measure(&mut self, q: QubitId, key: MeasKey) {
        if self.is_leaked(q) {
            match self.discriminator {
                Discriminator::TwoLevel => {
                    // A two-level classifier assigns a uniformly random
                    // computational label to |L⟩.
                    self.record.flips[key] = self.rng.bit();
                    self.record.labels[key] = ReadoutLabel::Computational;
                }
                Discriminator::MultiLevel => {
                    let err = self.noise.multilevel_error_p();
                    if self.rng.bernoulli(err) {
                        // Misclassified into the computational basis.
                        self.record.flips[key] = self.rng.bit();
                        self.record.labels[key] = ReadoutLabel::Computational;
                    } else {
                        // Correctly labelled |L⟩; the syndrome bit forwarded
                        // to the decoder is still a random computational
                        // value.
                        self.record.flips[key] = self.rng.bit();
                        self.record.labels[key] = ReadoutLabel::Leaked;
                    }
                }
            }
            // The qubit stays leaked through the measurement; only an
            // explicit reset removes leakage.
        } else {
            self.record.flips[key] = self.x[q];
            self.record.labels[key] = ReadoutLabel::Computational;
            // Z-basis measurement randomizes the phase frame (the standard
            // frame-simulation rule ensuring correct statistics for later
            // non-commuting operations).
            self.z[q] = self.rng.bit();
        }
    }

    fn leak_iswap(&mut self, data: QubitId, parity: QubitId) {
        // Google's LeakageISWAP (Appendix A.2): an iSWAP in the |11⟩/|20⟩
        // basis. It deterministically moves data-qubit leakage onto the
        // (just-reset) parity qubit and is not vulnerable to transport.
        if self.is_leaked(data) && !self.is_leaked(parity) {
            self.clear_leak(data);
            self.set_leak(parity);
            self.x[data] = self.rng.bit();
            self.z[data] = self.rng.bit();
        } else if !self.is_leaked(data) && !self.is_leaked(parity) && self.x[parity] {
            // The parity reset failed (it sits in |1⟩). If the data qubit is
            // also in |1⟩ — probability ½ for a generic data state — the
            // |11⟩→|20⟩ coupling excites the data qubit to |L⟩ (Fig 19(b)).
            if self.rng.bit() {
                self.set_leak(data);
                self.x[data] = false;
                self.z[data] = false;
            }
        }
        // Both leaked, or only the parity leaked: no effect; the subsequent
        // parity reset cleans up.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(noise: NoiseParams, keys: usize) -> FrameSimulator {
        FrameSimulator::new(4, keys, noise, Discriminator::TwoLevel, Rng::new(7))
    }

    #[test]
    fn x_error_propagates_through_cnot() {
        let mut s = sim(NoiseParams::without_leakage(0.0), 2);
        s.apply(&Op::XError { qubit: 0, p: 1.0 });
        s.apply(&Op::Cnot {
            control: 0,
            target: 1,
        });
        s.apply(&Op::Measure { qubit: 0, key: 0 });
        s.apply(&Op::Measure { qubit: 1, key: 1 });
        assert!(s.record().flip(0));
        assert!(s.record().flip(1));
    }

    #[test]
    fn z_error_propagates_backwards_through_cnot() {
        let mut s = sim(NoiseParams::without_leakage(0.0), 1);
        s.apply_pauli(1, Pauli::Z);
        s.apply(&Op::Cnot {
            control: 0,
            target: 1,
        });
        // Z on target propagates to control; H converts it to X there.
        s.apply(&Op::H(0));
        s.apply(&Op::Measure { qubit: 0, key: 0 });
        assert!(s.record().flip(0));
    }

    #[test]
    fn h_exchanges_x_and_z() {
        let mut s = sim(NoiseParams::without_leakage(0.0), 1);
        s.apply_pauli(0, Pauli::Z);
        s.apply(&Op::H(0));
        s.apply(&Op::Measure { qubit: 0, key: 0 });
        assert!(s.record().flip(0), "Z became X after H, flipping MZ");
    }

    #[test]
    fn reset_clears_frame_and_leakage() {
        let mut s = sim(NoiseParams::standard(1e-3), 1);
        s.apply_pauli(0, Pauli::Y);
        s.force_leak(0);
        s.apply(&Op::Reset(0));
        assert!(!s.is_leaked(0));
        s.apply(&Op::Measure { qubit: 0, key: 0 });
        assert!(!s.record().flip(0));
    }

    #[test]
    fn leaked_measurement_is_random() {
        let mut s = sim(NoiseParams::standard(1e-3), 1);
        let mut flips = 0;
        let n = 2000;
        for _ in 0..n {
            s.reset_shot();
            s.force_leak(0);
            s.apply(&Op::Measure { qubit: 0, key: 0 });
            assert_eq!(s.record().label(0), ReadoutLabel::Computational);
            if s.record().flip(0) {
                flips += 1;
            }
        }
        let frac = flips as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "leaked readout must be random, got {frac}"
        );
    }

    #[test]
    fn multilevel_labels_leaked_qubits() {
        let noise = NoiseParams::standard(1e-3);
        let mut s = FrameSimulator::new(1, 1, noise, Discriminator::MultiLevel, Rng::new(3));
        let mut labelled = 0;
        let n = 5000;
        for _ in 0..n {
            s.reset_shot();
            s.force_leak(0);
            s.apply(&Op::Measure { qubit: 0, key: 0 });
            if s.record().label(0).is_leaked() {
                labelled += 1;
            }
        }
        let frac = labelled as f64 / n as f64;
        // Expect 1 - 10p = 0.99.
        assert!((frac - 0.99).abs() < 0.01, "multi-level accuracy {frac}");
    }

    #[test]
    fn multilevel_never_mislabels_unleaked() {
        let noise = NoiseParams::standard(1e-3);
        let mut s = FrameSimulator::new(1, 1, noise, Discriminator::MultiLevel, Rng::new(3));
        for _ in 0..1000 {
            s.reset_shot();
            s.apply(&Op::Measure { qubit: 0, key: 0 });
            assert!(!s.record().label(0).is_leaked());
        }
    }

    #[test]
    fn leaked_cnot_kicks_partner_half_the_time() {
        let noise = NoiseParams::standard(1e-3);
        let mut s = FrameSimulator::new(2, 1, noise, Discriminator::TwoLevel, Rng::new(11));
        let mut flips = 0;
        let n = 4000;
        for _ in 0..n {
            s.reset_shot();
            s.force_leak(0);
            s.apply(&Op::Cnot {
                control: 0,
                target: 1,
            });
            // Z-basis measurement sees X or Y kicks: probability 1/2.
            if !s.is_leaked(1) {
                s.apply(&Op::Measure { qubit: 1, key: 0 });
                if s.record().flip(0) {
                    flips += 1;
                }
            }
        }
        let frac = flips as f64 / n as f64;
        // Transport (10%) sometimes removes the qubit from the sample; the
        // remaining 90% flip with probability 1/2 → ~0.45 overall.
        assert!((frac - 0.45).abs() < 0.05, "kick rate {frac}");
    }

    #[test]
    fn conservative_transport_duplicates_leakage() {
        let mut noise = NoiseParams::standard(1e-3);
        noise.p_transport = 1.0;
        let mut s = FrameSimulator::new(2, 0, noise, Discriminator::TwoLevel, Rng::new(1));
        s.force_leak(0);
        s.apply(&Op::Cnot {
            control: 0,
            target: 1,
        });
        assert!(s.is_leaked(0), "source stays leaked (conservative)");
        assert!(s.is_leaked(1), "target becomes leaked");
    }

    #[test]
    fn exchange_transport_moves_leakage() {
        let mut noise = NoiseParams::exchange_transport(1e-3);
        noise.p_transport = 1.0;
        let mut s = FrameSimulator::new(2, 0, noise, Discriminator::TwoLevel, Rng::new(1));
        s.force_leak(0);
        s.apply(&Op::Cnot {
            control: 0,
            target: 1,
        });
        assert!(!s.is_leaked(0), "source returns to computational basis");
        assert!(s.is_leaked(1), "target becomes leaked");
    }

    #[test]
    fn both_leaked_cnot_is_inert() {
        let mut noise = NoiseParams::standard(1e-3);
        noise.p_transport = 1.0;
        let mut s = FrameSimulator::new(2, 0, noise, Discriminator::TwoLevel, Rng::new(1));
        s.force_leak(0);
        s.force_leak(1);
        s.apply(&Op::Cnot {
            control: 0,
            target: 1,
        });
        assert!(s.is_leaked(0) && s.is_leaked(1));
    }

    #[test]
    fn seepage_returns_random_state() {
        let noise = NoiseParams::standard(1e-3);
        let mut s = FrameSimulator::new(1, 1, noise, Discriminator::TwoLevel, Rng::new(2));
        let mut returned_flipped = 0;
        let n = 4000;
        for _ in 0..n {
            s.reset_shot();
            s.force_leak(0);
            s.apply(&Op::Seep { qubit: 0, p: 1.0 });
            assert!(!s.is_leaked(0));
            s.apply(&Op::Measure { qubit: 0, key: 0 });
            if s.record().flip(0) {
                returned_flipped += 1;
            }
        }
        let frac = returned_flipped as f64 / n as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "seeped state must be random, got {frac}"
        );
    }

    #[test]
    fn leak_iswap_removes_data_leakage() {
        let noise = NoiseParams::standard(1e-3);
        let mut s = FrameSimulator::new(2, 0, noise, Discriminator::TwoLevel, Rng::new(5));
        s.force_leak(0);
        s.apply(&Op::LeakIswap { data: 0, parity: 1 });
        assert!(!s.is_leaked(0));
        assert!(s.is_leaked(1));
    }

    #[test]
    fn leak_iswap_reset_failure_can_excite_data() {
        let noise = NoiseParams::standard(1e-3);
        let mut s = FrameSimulator::new(2, 0, noise, Discriminator::TwoLevel, Rng::new(5));
        let mut excited = 0;
        let n = 4000;
        for _ in 0..n {
            s.reset_shot();
            // Parity reset failed: it sits in |1⟩ (x frame set).
            s.apply_pauli(1, Pauli::X);
            s.apply(&Op::LeakIswap { data: 0, parity: 1 });
            if s.is_leaked(0) {
                excited += 1;
            }
        }
        let frac = excited as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "excitation rate {frac}");
    }

    #[test]
    fn depolarize2_skipped_when_leaked() {
        let noise = NoiseParams::standard(1e-3);
        let mut s = FrameSimulator::new(2, 1, noise, Discriminator::TwoLevel, Rng::new(5));
        s.force_leak(0);
        for _ in 0..100 {
            s.apply(&Op::Depolarize2 { a: 0, b: 1, p: 1.0 });
        }
        s.apply(&Op::Measure { qubit: 1, key: 0 });
        assert!(
            !s.record().flip(0),
            "partner of leaked qubit untouched by gate channel"
        );
    }

    #[test]
    fn record_parity() {
        let mut s = sim(NoiseParams::without_leakage(0.0), 3);
        s.apply(&Op::XError { qubit: 0, p: 1.0 });
        s.apply(&Op::Measure { qubit: 0, key: 0 });
        s.apply(&Op::Measure { qubit: 1, key: 1 });
        s.apply(&Op::Measure { qubit: 2, key: 2 });
        assert!(s.record().parity(&[0, 1]));
        assert!(!s.record().parity(&[1, 2]));
    }

    #[test]
    fn reset_shot_preserves_rng_stream() {
        let noise = NoiseParams::standard(1e-3);
        let mut a = FrameSimulator::new(1, 1, noise, Discriminator::TwoLevel, Rng::new(9));
        let mut b = FrameSimulator::new(1, 1, noise, Discriminator::TwoLevel, Rng::new(9));
        // Two shots on `a` must consume the stream exactly like two shots on
        // `b` — i.e., reset_shot itself must not draw randomness.
        for s in [&mut a, &mut b] {
            s.force_leak(0);
            s.apply(&Op::Measure { qubit: 0, key: 0 });
            s.reset_shot();
        }
        a.force_leak(0);
        b.force_leak(0);
        a.apply(&Op::Measure { qubit: 0, key: 0 });
        b.apply(&Op::Measure { qubit: 0, key: 0 });
        assert_eq!(a.record().flip(0), b.record().flip(0));
    }
}
