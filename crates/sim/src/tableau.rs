//! Aaronson–Gottesman stabilizer tableau simulator.
//!
//! This is the *verification* simulator of the workspace: it executes Clifford
//! circuits exactly (tracking the full stabilizer group, not just a Pauli
//! frame), so the test-suite can prove properties the frame simulator merely
//! assumes — e.g. that every detector of a memory experiment is deterministic
//! in the absence of noise, including rounds with LRC swap circuits.
//!
//! The implementation follows the CHP algorithm (Aaronson & Gottesman,
//! "Improved simulation of stabilizer circuits", 2004): a `2n × 2n` binary
//! tableau of destabilizer/stabilizer generators plus sign bits.

use qec_core::{Op, QubitId};

/// Exact stabilizer-circuit simulator.
///
/// Supports H, CNOT, X, Z, S, Z-basis measurement and reset. Noise operations
/// in a [`qec_core::Circuit`] are ignored by [`TableauSimulator::run_circuit_ops`]
/// (it executes the *noiseless* reference circuit).
///
/// # Example
///
/// ```
/// use leak_sim::TableauSimulator;
///
/// // Bell pair: measurements agree.
/// let mut sim = TableauSimulator::new(2, 7);
/// sim.h(0);
/// sim.cnot(0, 1);
/// let a = sim.measure(0);
/// let b = sim.measure(1);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct TableauSimulator {
    n: usize,
    /// x[i][q], z[i][q] for rows i in 0..2n (destabilizers then stabilizers).
    x: Vec<Vec<bool>>,
    z: Vec<Vec<bool>>,
    /// Sign bit per row (phase −1 iff true).
    r: Vec<bool>,
    rng: qec_core::Rng,
}

impl TableauSimulator {
    /// Creates a simulator with every qubit in |0⟩, using `seed` for the
    /// random outcomes of indeterminate measurements.
    pub fn new(n: usize, seed: u64) -> TableauSimulator {
        let mut x = vec![vec![false; n]; 2 * n];
        let mut z = vec![vec![false; n]; 2 * n];
        for q in 0..n {
            x[q][q] = true; // destabilizer X_q
            z[n + q][q] = true; // stabilizer Z_q
        }
        TableauSimulator {
            n,
            x,
            z,
            r: vec![false; 2 * n],
            rng: qec_core::Rng::new(seed),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: QubitId) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            std::mem::swap(&mut self.x[i][q], &mut self.z[i][q]);
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: QubitId) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            self.z[i][q] ^= self.x[i][q];
        }
    }

    /// CNOT with control `c`, target `t`.
    pub fn cnot(&mut self, c: QubitId, t: QubitId) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][c] && self.z[i][t] && (self.x[i][t] ^ self.z[i][c] ^ true);
            self.x[i][t] ^= self.x[i][c];
            self.z[i][c] ^= self.z[i][t];
        }
    }

    /// Pauli X on `q`.
    pub fn x_gate(&mut self, q: QubitId) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.z[i][q];
        }
    }

    /// Pauli Z on `q`.
    pub fn z_gate(&mut self, q: QubitId) {
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q];
        }
    }

    /// The phase exponent contribution g(x1,z1,x2,z2) from the CHP paper
    /// (how the sign changes when multiplying two Pauli factors).
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => (z2 as i32) - (x2 as i32),
            (true, false) => (z2 as i32) * (2 * (x2 as i32) - 1),
            (false, true) => (x2 as i32) * (1 - 2 * (z2 as i32)),
        }
    }

    /// Row `h` ← row `h` · row `i` (Pauli multiplication with sign tracking).
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut phase = 2 * (self.r[h] as i32) + 2 * (self.r[i] as i32);
        for q in 0..self.n {
            phase += Self::g(self.x[i][q], self.z[i][q], self.x[h][q], self.z[h][q]);
        }
        phase = phase.rem_euclid(4);
        debug_assert!(phase == 0 || phase == 2, "tableau invariant broken");
        self.r[h] = phase == 2;
        for q in 0..self.n {
            self.x[h][q] ^= self.x[i][q];
            self.z[h][q] ^= self.z[i][q];
        }
    }

    /// Z-basis measurement of `q`; returns the outcome bit.
    pub fn measure(&mut self, q: QubitId) -> bool {
        self.measure_with(q, None)
    }

    /// Z-basis measurement with a forced outcome for indeterminate results
    /// (useful for constructing specific post-measurement states in tests).
    pub fn measure_with(&mut self, q: QubitId, forced: Option<bool>) -> bool {
        let n = self.n;
        // Find a stabilizer generator anticommuting with Z_q.
        if let Some(p) = (n..2 * n).find(|&i| self.x[i][q]) {
            // Indeterminate: outcome is random.
            let outcome = forced.unwrap_or_else(|| self.rng.bit());
            let rows: Vec<usize> = (0..2 * n).filter(|&i| i != p && self.x[i][q]).collect();
            for i in rows {
                self.rowsum(i, p);
            }
            // Destabilizer row p-n takes the old stabilizer; row p becomes Z_q
            // with the measured sign.
            self.x[p - n] = std::mem::take(&mut self.x[p]);
            self.z[p - n] = std::mem::take(&mut self.z[p]);
            self.r[p - n] = self.r[p];
            self.x[p] = vec![false; n];
            self.z[p] = vec![false; n];
            self.z[p][q] = true;
            self.r[p] = outcome;
            outcome
        } else {
            // Determinate: accumulate into a scratch row.

            self.scratch_measure(q)
        }
    }

    fn scratch_measure(&mut self, q: QubitId) -> bool {
        self.determinate_z_parity(&[q])
            .expect("caller guarantees determinism")
    }

    /// If the Pauli product `Z_{support}` is in the stabilizer group (up to
    /// sign), returns its eigenvalue parity (`true` for −1); otherwise `None`.
    fn determinate_z_parity(&self, support: &[QubitId]) -> Option<bool> {
        let n = self.n;
        // Deterministic iff every stabilizer generator commutes with the
        // product, i.e. has even X-overlap with the support.
        for i in n..2 * n {
            let overlap = support.iter().filter(|&&q| self.x[i][q]).count();
            if overlap % 2 == 1 {
                return None;
            }
        }
        // Accumulate the stabilizer rows whose destabilizer partners
        // anticommute with the product; the accumulated sign is the outcome.
        let mut sx = vec![false; n];
        let mut sz = vec![false; n];
        let mut sr = false;
        for i in 0..n {
            let overlap = support.iter().filter(|&&q| self.x[i][q]).count();
            if overlap % 2 == 1 {
                let mut phase = 2 * (sr as i32) + 2 * (self.r[i + n] as i32);
                for k in 0..n {
                    phase += Self::g(self.x[i + n][k], self.z[i + n][k], sx[k], sz[k]);
                }
                phase = phase.rem_euclid(4);
                debug_assert!(phase == 0 || phase == 2);
                sr = phase == 2;
                for k in 0..n {
                    sx[k] ^= self.x[i + n][k];
                    sz[k] ^= self.z[i + n][k];
                }
            }
        }
        Some(sr)
    }

    /// Whether a Z-basis measurement of `q` would be deterministic.
    pub fn is_deterministic(&self, q: QubitId) -> bool {
        (self.n..2 * self.n).all(|i| !self.x[i][q])
    }

    /// Measure-and-reset to |0⟩.
    pub fn reset(&mut self, q: QubitId) {
        let outcome = self.measure(q);
        if outcome {
            self.x_gate(q);
        }
    }

    /// The eigenvalue parity of the Pauli-Z product over `support`, if the
    /// product is stabilized: `Some(true)` for eigenvalue −1, `Some(false)`
    /// for +1, `None` if the product is indeterminate.
    ///
    /// Used to check stabilizer/logical eigenvalues without disturbing the
    /// state.
    pub fn z_product_parity(&self, support: &[QubitId]) -> Option<bool> {
        self.determinate_z_parity(support)
    }

    /// Executes the gate/measure/reset skeleton of a circuit op, ignoring
    /// noise channels, and returns the outcome for `Measure` ops.
    ///
    /// `LeakIswap` acts as the identity on computational states and is
    /// skipped.
    pub fn apply_op(&mut self, op: &Op) -> Option<(usize, bool)> {
        match *op {
            Op::H(q) => {
                self.h(q);
                None
            }
            Op::Cnot { control, target } | Op::CnotNoTransport { control, target } => {
                self.cnot(control, target);
                None
            }
            Op::Measure { qubit, key } => Some((key, self.measure(qubit))),
            Op::Reset(q) => {
                self.reset(q);
                None
            }
            _ => None,
        }
    }

    /// Runs a sequence of ops noiselessly, returning the measurement outcomes
    /// keyed by measurement record slot.
    pub fn run_circuit_ops(&mut self, ops: &[Op], outcomes: &mut Vec<Option<bool>>) {
        for op in ops {
            if let Some((key, bit)) = self.apply_op(op) {
                if outcomes.len() <= key {
                    outcomes.resize(key + 1, None);
                }
                outcomes[key] = Some(bit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_qubits_measure_zero() {
        let mut sim = TableauSimulator::new(3, 1);
        for q in 0..3 {
            assert!(sim.is_deterministic(q));
            assert!(!sim.measure(q));
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut sim = TableauSimulator::new(1, 1);
        sim.x_gate(0);
        assert!(sim.measure(0));
    }

    #[test]
    fn h_then_measure_is_random_but_repeatable() {
        let mut sim = TableauSimulator::new(1, 1);
        sim.h(0);
        assert!(!sim.is_deterministic(0));
        let first = sim.measure(0);
        // After projection the state is an eigenstate: repeated measurement
        // agrees.
        assert!(sim.is_deterministic(0));
        assert_eq!(sim.measure(0), first);
    }

    #[test]
    fn bell_pair_correlations() {
        for seed in 0..20 {
            let mut sim = TableauSimulator::new(2, seed);
            sim.h(0);
            sim.cnot(0, 1);
            assert_eq!(sim.measure(0), sim.measure(1));
        }
    }

    #[test]
    fn ghz_parity() {
        for seed in 0..10 {
            let mut sim = TableauSimulator::new(3, seed);
            sim.h(0);
            sim.cnot(0, 1);
            sim.cnot(1, 2);
            let bits = [sim.measure(0), sim.measure(1), sim.measure(2)];
            assert!(bits.iter().all(|&b| b == bits[0]));
        }
    }

    #[test]
    fn s_gate_squares_to_z() {
        let mut sim = TableauSimulator::new(1, 1);
        // |+⟩, apply S twice (=Z), back to X basis: deterministic 1.
        sim.h(0);
        sim.s(0);
        sim.s(0);
        sim.h(0);
        assert!(sim.is_deterministic(0));
        assert!(sim.measure(0));
    }

    #[test]
    fn reset_forces_zero() {
        for seed in 0..10 {
            let mut sim = TableauSimulator::new(1, seed);
            sim.h(0);
            sim.reset(0);
            assert!(sim.is_deterministic(0));
            assert!(!sim.measure(0));
        }
    }

    #[test]
    fn forced_measurement_controls_outcome() {
        let mut sim = TableauSimulator::new(1, 1);
        sim.h(0);
        assert!(sim.measure_with(0, Some(true)));
        assert!(sim.measure(0));
    }

    #[test]
    fn z_product_parity_on_bell() {
        let mut sim = TableauSimulator::new(2, 1);
        sim.h(0);
        sim.cnot(0, 1);
        // Z0 Z1 stabilizes the Bell state with eigenvalue +1.
        assert_eq!(sim.z_product_parity(&[0, 1]), Some(false));
        // Single-qubit Z is indeterminate.
        assert_eq!(sim.z_product_parity(&[0]), None);
    }

    #[test]
    fn swap_via_three_cnots_moves_state() {
        let mut sim = TableauSimulator::new(2, 1);
        sim.x_gate(0);
        sim.cnot(0, 1);
        sim.cnot(1, 0);
        sim.cnot(0, 1);
        assert!(!sim.measure(0));
        assert!(sim.measure(1));
    }

    #[test]
    fn two_cnot_move_after_reset() {
        // The LRC swap-back trick: CX(p,d); CX(d,p) moves p's state onto a
        // reset d, leaving p in |0⟩.
        let mut sim = TableauSimulator::new(2, 1);
        sim.x_gate(0); // p = qubit 0 in |1⟩, d = qubit 1 in |0⟩
        sim.cnot(0, 1);
        sim.cnot(1, 0);
        assert!(!sim.measure(0), "p ends in |0⟩");
        assert!(sim.measure(1), "d received the state");
    }
}
