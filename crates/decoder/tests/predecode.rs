//! Tiered ≡ full equivalence suite for the predecoder.
//!
//! The tentpole guarantee of `qec_decoder::predecode`: with the tier ladder
//! in front of any backend, every decode is **bit-identical** to the
//! untier'd path — same observable flip, the exact same f64 weight bits,
//! and the same correction-edge XOR — across 0/1/2/many-defect syndromes,
//! with and without erasure overlays, and through the windowed and fused
//! streaming paths where carried-in defects count against the tier
//! thresholds.

use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Rng};
use qec_decoder::{
    build_dem, DecoderFactory, DecodingGraph, DetectorErrorModel, FusionDecoder, FusionPlan,
    FusionPool, GreedyFactory, MwpmFactory, SparseMwpmFactory, StreamingDecoder, Syndrome,
    SyndromeDecoder, TieredDecoder, UnionFindFactory, WindowBackend, WindowPlan,
};
use std::collections::HashSet;
use std::sync::Arc;
use surface_code::{MemoryExperiment, RotatedCode};

const BACKENDS: [WindowBackend; 4] = [
    WindowBackend::Mwpm,
    WindowBackend::SparseMwpm,
    WindowBackend::UnionFind,
    WindowBackend::Greedy,
];

fn setup(d: usize, rounds: usize) -> (DecodingGraph, DetectorErrorModel) {
    let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    (graph, dem)
}

/// Samples a syndrome with an exact defect count `k` (distinct random
/// nodes, ascending) plus an optional erasure overlay. Arbitrary node sets
/// (not only valid fault signatures) are deliberate: the tier-1 closed form
/// must agree with the full decoder on *any* 1–2 defect input.
fn sample_syndrome(graph: &DecodingGraph, rng: &mut Rng, k: usize, erased: bool) -> Syndrome {
    let mut defects = HashSet::new();
    while defects.len() < k {
        defects.insert(rng.below(graph.num_nodes() as u64) as usize);
    }
    let mut defects: Vec<usize> = defects.into_iter().collect();
    defects.sort_unstable();
    let mut syndrome = Syndrome::new(defects);
    if erased {
        for _ in 0..1 + rng.below(3) {
            let v = rng.below(graph.num_nodes() as u64) as usize;
            syndrome.erasures.extend_from_slice(graph.incident(v));
        }
        syndrome.erasures.sort_unstable();
        syndrome.erasures.dedup();
    }
    syndrome
}

/// Correction edges compare as an XOR set: an edge listed twice cancels, so
/// path-sharing corrections with different edge orderings are equal iff
/// their parities agree everywhere.
fn xor_set(correction: &[usize]) -> HashSet<usize> {
    let mut set = HashSet::new();
    for &e in correction {
        if !set.insert(e) {
            set.remove(&e);
        }
    }
    set
}

/// The monolithic property: for every backend, random syndromes with
/// 0/1/2/many defects — a third of them under erasure overlays — decode
/// bit-identically through [`TieredDecoder`] and the bare backend, and the
/// tier counters route as the ladder promises.
#[test]
fn tiered_monolithic_is_bit_identical_to_full() {
    for (d, rounds, seed) in [(3usize, 4usize, 0x7139u64), (5, 3, 0x517E)] {
        let (graph, _) = setup(d, rounds);
        let mwpm = MwpmFactory::new(&graph);
        let factories: [&dyn DecoderFactory; 4] = [
            &mwpm,
            &SparseMwpmFactory::new(&graph),
            &UnionFindFactory::new(&graph),
            &GreedyFactory::with_paths(&graph, Arc::clone(mwpm.paths())),
        ];
        for factory in factories {
            let mut tiered = TieredDecoder::new(factory.build());
            let mut full = factory.build();
            let mut rng = Rng::new(seed ^ factory.name().len() as u64);
            let mut tiered_correction = Vec::new();
            let mut full_correction = Vec::new();
            let (mut empties, mut trials) = (0u64, 0u64);
            for trial in 0..160 {
                let k = [0, 1, 1, 2, 2, 3, 5, 9][trial % 8];
                let erased = trial % 3 == 0;
                let syndrome = sample_syndrome(&graph, &mut rng, k, erased);
                let t = tiered.decode_with_correction(&syndrome, &mut tiered_correction);
                let f = full.decode_with_correction(&syndrome, &mut full_correction);
                assert_eq!(
                    t.flip,
                    f.flip,
                    "[{}] d={d} trial {trial} (k={k}, erased={erased}): flip diverged",
                    factory.name()
                );
                assert_eq!(
                    t.weight.to_bits(),
                    f.weight.to_bits(),
                    "[{}] d={d} trial {trial}: weight not bit-identical ({} vs {})",
                    factory.name(),
                    t.weight,
                    f.weight
                );
                assert_eq!(t.defects, f.defects);
                assert_eq!(
                    xor_set(&tiered_correction),
                    xor_set(&full_correction),
                    "[{}] d={d} trial {trial}: correction XOR diverged",
                    factory.name()
                );
                trials += 1;
                if syndrome.defects.is_empty() && syndrome.erasures.is_empty() {
                    empties += 1;
                }
            }
            let counters = tiered.counters();
            assert_eq!(counters.total(), trials, "[{}]", factory.name());
            assert_eq!(counters.hits[0], empties, "[{}]", factory.name());
            assert!(
                counters.hits[2] > 0,
                "[{}] many-defect trials must fall through to tier 2",
                factory.name()
            );
        }
    }
}

/// Samples a random multi-fault shot (per-round defect groups from real
/// fault mechanisms, so sliding windows see genuine carried-in defects)
/// plus an optional per-round erasure overlay.
fn sample_shot(
    graph: &DecodingGraph,
    dem: &DetectorErrorModel,
    rng: &mut Rng,
    faults: usize,
    with_erasures: bool,
) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut events = vec![false; graph.num_nodes()];
    for _ in 0..faults {
        let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
        for &det in &mech.detectors {
            if let Some(node) = graph.node_of_detector(det) {
                events[node] ^= true;
            }
        }
    }
    let mut defects_by_round = vec![Vec::new(); graph.max_round() + 1];
    for node in (0..graph.num_nodes()).filter(|&n| events[n]) {
        defects_by_round[graph.node_round(node)].push(node);
    }
    let mut erasures_by_round = vec![Vec::new(); graph.max_round() + 1];
    if with_erasures {
        for _ in 0..1 + rng.below(3) {
            let v = rng.below(graph.num_nodes() as u64) as usize;
            erasures_by_round[graph.node_round(v)].extend_from_slice(graph.incident(v));
        }
    }
    (defects_by_round, erasures_by_round)
}

fn stream_shot(
    dec: &mut dyn StreamingDecoder,
    defects_by_round: &[Vec<usize>],
    erasures_by_round: &[Vec<usize>],
) -> qec_decoder::DecodeOutcome {
    dec.begin_shot();
    for (defects, erasures) in defects_by_round.iter().zip(erasures_by_round) {
        dec.push_round(defects, erasures);
    }
    dec.finish()
}

/// The streaming property: with sliding windows (so buffer-region defects
/// carry into the next position and count against the tier thresholds),
/// the tiered windowed decoder is bit-identical to the same plan with the
/// predecoder disabled — erasure overlays included — and the run-level
/// tier counters fire.
#[test]
fn tiered_windowed_is_bit_identical_to_full() {
    let (graph, dem) = setup(3, 14);
    let (window, stride) = (5usize, 2usize);
    for backend in BACKENDS {
        let plan = WindowPlan::new(&graph, window, stride, backend);
        assert!(plan.num_positions() > 3, "actually sliding");
        let mut tiered = plan.streaming();
        let mut full = plan.streaming();
        full.set_predecode(false);
        let mut rng = Rng::new(0x71E6 ^ backend.name().len() as u64);
        for trial in 0..80 {
            let faults = trial % 6; // includes fully-empty shots (tier 0)
            let (defects, erasures) = sample_shot(&graph, &dem, &mut rng, faults, trial % 3 == 0);
            let t = stream_shot(&mut tiered, &defects, &erasures);
            let f = stream_shot(&mut full, &defects, &erasures);
            assert_eq!(
                t.flip,
                f.flip,
                "[{}] trial {trial}: flip diverged",
                backend.name()
            );
            assert_eq!(
                t.weight.to_bits(),
                f.weight.to_bits(),
                "[{}] trial {trial}: weight not bit-identical ({} vs {})",
                backend.name(),
                t.weight,
                f.weight
            );
            assert_eq!(t.defects, f.defects);
        }
        let counters = *tiered.tier_counters();
        assert!(counters.is_active(), "[{}]", backend.name());
        assert!(counters.hits[0] > 0, "[{}] empty windows", backend.name());
        assert!(
            !full.tier_counters().is_active(),
            "[{}] disabled path must not count",
            backend.name()
        );
    }
}

/// The fusion property: with intra-shot parallel fusion (leaf replays feed
/// carried defect sets into downstream positions), enabling the predecoder
/// on the fused engines is unobservable in the outcome, and the merged
/// tier counters surface through [`FusionDecoder::tier_counters`].
#[test]
fn tiered_fusion_is_bit_identical_to_full() {
    let (graph, dem) = setup(3, 17);
    let (window, stride) = (6usize, 2usize);
    for backend in BACKENDS {
        let plan = Arc::new(WindowPlan::new(&graph, window, stride, backend));
        for threads in [2usize, 3] {
            let fplan = FusionPlan::new(Arc::clone(&plan), threads);
            let pool = Arc::new(FusionPool::new(threads));
            let mut tiered = FusionDecoder::new(&fplan, Arc::clone(&pool));
            let mut full = FusionDecoder::new(&fplan, pool);
            full.set_predecode(false);
            let mut rng = Rng::new(0xF05D ^ (threads as u64) << 8 ^ backend.name().len() as u64);
            for trial in 0..40 {
                let faults = trial % 6;
                let (defects, erasures) =
                    sample_shot(&graph, &dem, &mut rng, faults, trial % 3 == 0);
                let t = stream_shot(&mut tiered, &defects, &erasures);
                let f = stream_shot(&mut full, &defects, &erasures);
                assert_eq!(
                    t.flip,
                    f.flip,
                    "[{} × {threads}t] trial {trial}: flip diverged",
                    backend.name()
                );
                assert_eq!(
                    t.weight.to_bits(),
                    f.weight.to_bits(),
                    "[{} × {threads}t] trial {trial}: weight not bit-identical",
                    backend.name()
                );
                assert_eq!(t.defects, f.defects);
            }
            assert!(tiered.tier_counters().is_active());
            assert!(!full.tier_counters().is_active());
        }
    }
}
