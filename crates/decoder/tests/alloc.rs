//! Steady-state allocation audit: the erasure `WeightOverlay` must add
//! **zero** heap allocations to the per-shot loop once a decoder instance is
//! warm — the guarantee the stateful decoder API makes for the Monte-Carlo
//! hot path.
//!
//! Union-find and greedy are fully allocation-free in steady state, with or
//! without erasures, and are asserted at zero end to end. The MWPM blossom
//! solver's *interior* (blossom formation) allocates per solve — a
//! pre-existing property of the seed matcher that also occurs on
//! erasure-free batches — so for the two blossom backends (dense and sparse
//! MWPM) the overlay machinery is audited in isolation (apply →
//! effective_metrics → restore must be exactly zero) and the full pipeline
//! is asserted to be stable (repeating an identical warm batch costs an
//! identical allocation count: nothing accumulates or leaks).
//!
//! The test lives in its own integration-test binary so the counting global
//! allocator sees no interference from concurrently running tests.

use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Rng};
use qec_decoder::{
    build_dem, DecoderFactory, DecodingGraph, GreedyFactory, MwpmFactory, ShortestPaths,
    SparseMwpmFactory, Syndrome, UnionFindFactory, WeightOverlay,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use surface_code::{MemoryExperiment, RotatedCode};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Graph plus 24 random syndromes, a third of them carrying erasure sets
/// (edges around 1–2 random nodes) — the runtime's typical shape.
fn fixture() -> (DecodingGraph, Vec<Syndrome>) {
    let exp = MemoryExperiment::new(RotatedCode::new(5), NoiseParams::standard(1e-3), 5);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    let mut rng = Rng::new(4242);
    let mut syndromes = Vec::new();
    for i in 0..24 {
        let mut events = vec![false; graph.num_nodes()];
        for _ in 0..4 {
            let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        let mut erasures = Vec::new();
        if i % 3 == 0 {
            for _ in 0..1 + rng.below(2) {
                let node = rng.below(graph.num_nodes() as u64) as usize;
                erasures.extend_from_slice(graph.incident(node));
            }
            erasures.sort_unstable();
            erasures.dedup();
        }
        let defects = (0..graph.num_nodes()).filter(|&n| events[n]).collect();
        syndromes.push(Syndrome::build(defects).erasures(erasures).finish());
    }
    assert!(syndromes.iter().any(|s| !s.erasures.is_empty()));
    (graph, syndromes)
}

/// One combined audit: the three measurement phases share the single
/// process-global `ALLOCATIONS` counter, so they must run sequentially in
/// one `#[test]` — libtest would otherwise schedule them on parallel
/// threads and let one phase's allocations land inside another's
/// measurement window (observed as a rare count mismatch).
#[test]
fn warm_decoding_with_erasures_is_allocation_free() {
    let (graph, syndromes) = fixture();

    // Phase 1: union-find and greedy are allocation-free end to end.
    let mwpm = MwpmFactory::new(&graph); // shares its APSP table with greedy
    let uf = UnionFindFactory::new(&graph);
    let greedy = GreedyFactory::with_paths(&graph, Arc::clone(mwpm.paths()));
    let factories: [&dyn DecoderFactory; 2] = [&uf, &greedy];
    for factory in factories {
        let mut decoder = factory.build();
        let mut out = Vec::new();
        // Warm-up: grows every scratch buffer to its steady-state size.
        decoder.decode_batch(&syndromes, &mut out);
        decoder.decode_batch(&syndromes, &mut out);
        // Steady state: identical batch, zero allocations allowed.
        let before = allocations();
        decoder.decode_batch(&syndromes, &mut out);
        let delta = allocations() - before;
        assert_eq!(
            delta,
            0,
            "[{}] steady-state decode_batch allocated {delta} times",
            factory.name()
        );
    }

    // Phase 2: the `WeightOverlay` itself (apply -> effective_metrics ->
    // restore) is allocation-free once warm.
    let paths = ShortestPaths::compute(&graph);
    let mut overlay = WeightOverlay::new();
    let (mut dist, mut par) = (Vec::new(), Vec::new());
    for _warmup in 0..2 {
        for s in &syndromes {
            if s.erasures.is_empty() {
                continue;
            }
            overlay.apply(&graph, &s.erasures);
            overlay.effective_metrics(&paths, &s.defects, graph.boundary(), &mut dist, &mut par);
            overlay.restore();
        }
    }
    let before = allocations();
    for s in &syndromes {
        if s.erasures.is_empty() {
            continue;
        }
        overlay.apply(&graph, &s.erasures);
        overlay.effective_metrics(&paths, &s.defects, graph.boundary(), &mut dist, &mut par);
        overlay.restore();
    }
    let delta = allocations() - before;
    assert_eq!(delta, 0, "warm overlay pass allocated {delta} times");

    // Phase 3: MWPM. The blossom interior allocates per solve
    // (pre-existing, also on erasure-free batches); the requirement is
    // stability — an identical warm batch costs an identical count, i.e.
    // the overlay neither allocates nor leaks.
    let factory = MwpmFactory::new(&graph);
    let mut decoder = factory.build();
    let mut out = Vec::new();
    decoder.decode_batch(&syndromes, &mut out);
    decoder.decode_batch(&syndromes, &mut out);
    let before = allocations();
    decoder.decode_batch(&syndromes, &mut out);
    let first = allocations() - before;
    let before = allocations();
    decoder.decode_batch(&syndromes, &mut out);
    let second = allocations() - before;
    assert_eq!(
        first, second,
        "repeated warm MWPM erasure batches must cost identically"
    );

    // Phase 4: sparse MWPM, held to the same bar as dense MWPM: its
    // discovery Dijkstras, candidate buffers, component scratch, and the
    // per-erasure-shot boundary re-index are all epoch-stamped and reused,
    // so only the shared blossom interior may allocate — and an identical
    // warm batch must cost an identical count.
    let factory = SparseMwpmFactory::new(&graph);
    let mut decoder = factory.build();
    let mut out = Vec::new();
    decoder.decode_batch(&syndromes, &mut out);
    decoder.decode_batch(&syndromes, &mut out);
    let before = allocations();
    decoder.decode_batch(&syndromes, &mut out);
    let first = allocations() - before;
    let before = allocations();
    decoder.decode_batch(&syndromes, &mut out);
    let second = allocations() - before;
    assert_eq!(
        first, second,
        "repeated warm sparse-MWPM erasure batches must cost identically"
    );
}
