//! Property-based validation of the blossom matcher against brute force, and
//! structural invariants of decoding graphs. Random cases come from the
//! in-repo [`qec_core::Rng`] generator (no external proptest dependency).

use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Rng};
use qec_decoder::{
    build_dem, max_weight_matching, DecodingGraph, MwpmBatchDecoder, Syndrome, SyndromeDecoder,
};
use surface_code::{MemoryExperiment, RotatedCode};

/// Exhaustive matcher maximizing (cardinality, weight) or plain weight.
fn brute_force(n: usize, edges: &[(usize, usize, i64)], maxcard: bool) -> (usize, i64) {
    fn rec(
        edges: &[(usize, usize, i64)],
        used: &mut Vec<bool>,
        idx: usize,
        card: usize,
        weight: i64,
        best: &mut (usize, i64),
        maxcard: bool,
    ) {
        let better = if maxcard {
            (card, weight) > *best
        } else {
            weight > best.1
        };
        if better {
            *best = (card, weight);
        }
        if idx == edges.len() {
            return;
        }
        rec(edges, used, idx + 1, card, weight, best, maxcard);
        let (u, v, w) = edges[idx];
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            rec(edges, used, idx + 1, card + 1, weight + w, best, maxcard);
            used[u] = false;
            used[v] = false;
        }
    }
    let mut best = (0, 0);
    rec(edges, &mut vec![false; n], 0, 0, 0, &mut best, maxcard);
    best
}

/// Up to 7 vertices, a random subset of the 21 possible edges, signed
/// weights in -8..20 (the shape the old proptest strategy produced).
fn random_edges(rng: &mut Rng) -> Vec<(usize, usize, i64)> {
    let count = 1 + rng.below(13) as usize;
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for _ in 0..count {
        let a = rng.below(7) as usize;
        let b = rng.below(7) as usize;
        let w = rng.below(28) as i64 - 8;
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            edges.push((key.0, key.1, w));
        }
    }
    edges
}

#[test]
fn blossom_matches_brute_force() {
    let mut rng = Rng::new(0xB10_550);
    let mut checked = 0;
    for case in 0..200 {
        let edges = random_edges(&mut rng);
        if edges.is_empty() {
            continue;
        }
        let maxcard = rng.bit();
        let n = 7;
        let mate = max_weight_matching(&edges, maxcard);
        let mut mate_full = mate.clone();
        mate_full.resize(n, None);
        // Symmetry.
        for (v, m) in mate_full.iter().enumerate() {
            if let Some(w) = m {
                assert_eq!(mate_full[*w], Some(v), "case {case}: asymmetric mate");
            }
        }
        // Weight optimality.
        let mut card = 0usize;
        let mut weight = 0i64;
        for &(u, v, w) in &edges {
            if mate_full[u] == Some(v) {
                card += 1;
                weight += w;
            }
        }
        let (bcard, bweight) = brute_force(n, &edges, maxcard);
        if maxcard {
            assert_eq!((card, weight), (bcard, bweight), "case {case}: {edges:?}");
        } else {
            assert_eq!(weight, bweight, "case {case}: {edges:?}");
        }
        checked += 1;
    }
    assert!(checked > 150, "too few non-trivial cases ({checked})");
}

#[test]
fn mwpm_decodes_xor_of_two_mechanisms_consistently() {
    // Decoding the XOR of two elementary mechanisms must be deterministic,
    // and decoding the empty syndrome trivial (the weaker invariant the old
    // proptest suite asserted — MWPM may legitimately find a different
    // pairing with the same homology).
    let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    let mut decoder = MwpmBatchDecoder::new(&graph);
    let mut rng = Rng::new(0x2_3EC4);
    for _ in 0..16 {
        let a = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
        let b = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
        let mut events = vec![false; graph.num_nodes()];
        for mech in [a, b] {
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        let syndrome = Syndrome::new((0..graph.num_nodes()).filter(|&n| events[n]).collect());
        let first = decoder.decode_syndrome(&syndrome).flip;
        let second = decoder.decode_syndrome(&syndrome).flip;
        assert_eq!(first, second, "decoding must be deterministic");
        assert!(!decoder.decode_syndrome(&Syndrome::default()).flip);
    }
}
