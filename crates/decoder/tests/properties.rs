//! Property-based validation of the blossom matcher against brute force, and
//! structural invariants of decoding graphs.

use proptest::prelude::*;
use qec_core::circuit::DetectorBasis;
use qec_core::NoiseParams;
use qec_decoder::{
    build_dem, max_weight_matching, DecodingGraph, MwpmBatchDecoder, Syndrome, SyndromeDecoder,
};
use surface_code::{MemoryExperiment, RotatedCode};

/// Exhaustive matcher maximizing (cardinality, weight) or plain weight.
fn brute_force(n: usize, edges: &[(usize, usize, i64)], maxcard: bool) -> (usize, i64) {
    fn rec(
        edges: &[(usize, usize, i64)],
        used: &mut Vec<bool>,
        idx: usize,
        card: usize,
        weight: i64,
        best: &mut (usize, i64),
        maxcard: bool,
    ) {
        let better = if maxcard {
            (card, weight) > *best
        } else {
            weight > best.1
        };
        if better {
            *best = (card, weight);
        }
        if idx == edges.len() {
            return;
        }
        rec(edges, used, idx + 1, card, weight, best, maxcard);
        let (u, v, w) = edges[idx];
        if !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            rec(edges, used, idx + 1, card + 1, weight + w, best, maxcard);
            used[u] = false;
            used[v] = false;
        }
    }
    let mut best = (0, 0);
    rec(edges, &mut vec![false; n], 0, 0, 0, &mut best, maxcard);
    best
}

fn edge_strategy() -> impl Strategy<Value = Vec<(usize, usize, i64)>> {
    // Up to 7 vertices, subsets of the 21 possible edges, signed weights.
    proptest::collection::vec(((0usize..7, 0usize..7), -8i64..20), 1..14).prop_map(|raw| {
        let mut seen = std::collections::HashSet::new();
        raw.into_iter()
            .filter_map(|((a, b), w)| {
                if a == b {
                    return None;
                }
                let key = (a.min(b), a.max(b));
                seen.insert(key).then_some((key.0, key.1, w))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn blossom_matches_brute_force(edges in edge_strategy(), maxcard in any::<bool>()) {
        prop_assume!(!edges.is_empty());
        let n = 7;
        let mate = max_weight_matching(&edges, maxcard);
        let mut mate_full = mate.clone();
        mate_full.resize(n, None);
        // Symmetry.
        for (v, m) in mate_full.iter().enumerate() {
            if let Some(w) = m {
                prop_assert_eq!(mate_full[*w], Some(v));
            }
        }
        // Weight optimality.
        let mut card = 0usize;
        let mut weight = 0i64;
        for &(u, v, w) in &edges {
            if mate_full[u] == Some(v) {
                card += 1;
                weight += w;
            }
        }
        let (bcard, bweight) = brute_force(n, &edges, maxcard);
        if maxcard {
            prop_assert_eq!((card, weight), (bcard, bweight));
        } else {
            prop_assert_eq!(weight, bweight);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mwpm_decodes_xor_of_two_mechanisms_consistently(
        i in any::<prop::sample::Index>(),
        j in any::<prop::sample::Index>(),
    ) {
        // Decoding the XOR of two elementary mechanisms must flip the
        // observable iff an odd number of them do — MWPM finds either the
        // same pairing or a strictly-not-worse one with the same homology for
        // well-separated pairs; we assert the weaker invariant that decoding
        // twice is deterministic and decoding the empty syndrome is trivial.
        let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        let mut decoder = MwpmBatchDecoder::new(&graph);
        let a = i.get(&dem.mechanisms);
        let b = j.get(&dem.mechanisms);
        let mut events = vec![false; graph.num_nodes()];
        for mech in [a, b] {
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        let syndrome =
            Syndrome::new((0..graph.num_nodes()).filter(|&n| events[n]).collect());
        let first = decoder.decode_syndrome(&syndrome).flip;
        let second = decoder.decode_syndrome(&syndrome).flip;
        prop_assert_eq!(first, second, "decoding must be deterministic");
        prop_assert!(!decoder.decode_syndrome(&Syndrome::default()).flip);
    }
}
